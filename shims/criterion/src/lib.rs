//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`]. Timing is a plain adaptive wall-clock loop —
//! no statistics engine, no HTML reports — which is enough to spot
//! order-of-magnitude regressions in the kernels and keeps `cargo bench`
//! runnable offline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark driver handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement: Duration,
}

impl Criterion {
    /// Creates a driver with the default ~300 ms measurement budget.
    pub fn new() -> Self {
        Criterion {
            measurement: Duration::from_millis(300),
        }
    }

    /// Runs `f` as a named benchmark and prints its mean iteration time.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: if self.measurement.is_zero() {
                Duration::from_millis(300)
            } else {
                self.measurement
            },
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iterations == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iterations as f64
        };
        println!(
            "bench {name:<44} {:>12}  ({} iterations)",
            format_ns(mean_ns),
            b.iterations
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1.0e9 {
        format!("{:.3} s", ns / 1.0e9)
    } else if ns >= 1.0e6 {
        format!("{:.3} ms", ns / 1.0e6)
    } else if ns >= 1.0e3 {
        format!("{:.3} µs", ns / 1.0e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly (discarding a warm-up pass) until the
    /// measurement budget is exhausted, recording total time and count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call, then estimate the per-call cost.
        std_black_box(routine());
        let probe_start = Instant::now();
        std_black_box(routine());
        let per_call = probe_start.elapsed().max(Duration::from_nanos(1));

        let calls = (self.budget.as_nanos() / per_call.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..calls {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += calls;
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Emits a `main` that runs the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
        };
        let mut hits = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                hits += 1;
            });
        });
        assert!(hits > 0);
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12.0e3).ends_with("µs"));
        assert!(format_ns(12.0e6).ends_with("ms"));
        assert!(format_ns(12.0e9).ends_with(" s"));
    }
}
