//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of the proptest 1.x API this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc comments
//!   and `pat in strategy` parameters),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over the primitive numeric types, `Just`, tuples
//!   of strategies, [`collection::vec`], and the `Strategy::prop_map` /
//!   `Strategy::prop_flat_map` combinators.
//!
//! Cases are generated from a deterministic per-test seed (FNV-1a of the
//! test name), so failures reproduce exactly. There is no shrinking: a
//! failing case reports its index and message and panics — good enough to
//! flag the regression, and the fixed seed makes it debuggable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and error types.
pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert!`-style macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 generator backing value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Stable per-test generator: seed = FNV-1a of the test name.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// The next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)` with 53 random bits.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` returns for it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )+};
    }
    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )+};
    }
    float_range_strategy!(f64, f32);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with `size` elements (a count, `a..b` or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let n = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let ($($pat,)+) =
                    ($($crate::strategy::Strategy::new_value(&($strat), &mut rng),)+);
                let outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that fails the current property case instead of panicking
/// directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        // `if cond {} else { .. }` rather than `if !cond` so partial-ord
        // comparisons in `cond` don't trip clippy::neg_cmp_op_on_partial_ord
        // at every expansion site.
        if $cond {
        } else {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_test("ranges_respect_bounds");
        for _ in 0..1000 {
            let u = (3usize..9).new_value(&mut rng);
            assert!((3..9).contains(&u));
            let v = (5usize..=5).new_value(&mut rng);
            assert_eq!(v, 5);
            let x = (-2.0f64..3.0).new_value(&mut rng);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = TestRng::for_test("vec_and_tuple");
        let s = collection::vec((0usize..4, 0.0f64..1.0), 2..=6);
        for _ in 0..200 {
            let v = s.new_value(&mut rng);
            assert!((2..=6).contains(&v.len()));
            for (i, x) in v {
                assert!(i < 4 && (0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn map_and_flat_map_chain() {
        let mut rng = TestRng::for_test("map_flat_map");
        let s = (1usize..=8)
            .prop_flat_map(|n| (Just(n), collection::vec(0.0f64..1.0, n..=n)))
            .prop_map(|(n, v)| (n, v.len()));
        for _ in 0..200 {
            let (n, len) = s.new_value(&mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: doc comments, tuple patterns, trailing comma.
        #[test]
        fn macro_accepts_full_surface(
            (a, b) in (0usize..10, 0usize..10),
            scale in 1.0f64..2.0,
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(scale >= 1.0, "scale {} out of range", scale);
            prop_assert_eq!(a + b, b + a);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
