//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! exact subset of the rand 0.9 API the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::random::<T>()` for the primitive
//! types below. The generator is SplitMix64 — statistically solid for
//! simulation workloads and deterministic across platforms, which is all
//! the workload-trace and sensor-noise models need. It is NOT the CSPRNG
//! the real `StdRng` is; nothing in this workspace needs one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types a [`Rng`] can sample uniformly "at random".
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// Core generator interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` (uniform over `T`'s natural range;
    /// `[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn floats_land_in_unit_interval_and_fill_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }
}
