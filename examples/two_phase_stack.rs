//! Run the 2-tier 3D MPSoC with an evaporating R134a coolant in the
//! inter-tier cavity (§III's proposal) and compare against water.
//!
//! ```bash
//! cargo run --release --example two_phase_stack
//! ```

use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_thermal::{Coolant, ThermalModel, ThermalParams, TwoPhaseCoolant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec::new(12, 12)?;
    let stack = presets::liquid_cooled_mpsoc(2)?;
    let n = grid.cell_count();
    let maps = vec![vec![45.0 / n as f64; n], vec![12.0 / n as f64; n]];

    // Single-phase water at the Table I maximum flow.
    let mut water = ThermalModel::new(&stack, grid, ThermalParams::default())?;
    water.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))?;
    let wf = water.steady_state(&maps)?;
    println!(
        "water   @ 32.3 ml/min : peak {:.1} °C, outlet {:.1} °C (heats up)",
        wf.max().to_celsius().0,
        water.fluid_outlet_mean().to_celsius().0
    );

    // Two-phase R134a sized for the 57 W duty.
    let params = ThermalParams {
        coolant: Coolant::TwoPhase(TwoPhaseCoolant::r134a_30c(2800.0)),
        ..Default::default()
    };
    let mut two_phase = ThermalModel::new(&stack, grid, params)?;
    let tf = two_phase.steady_state(&maps)?;
    let s = two_phase.two_phase_summary().expect("solved");
    println!(
        "R134a   @ G=2800      : peak {:.1} °C, saturation falls to {:.1} °C (cools down)",
        tf.max().to_celsius().0,
        s.min_saturation.to_celsius().0
    );
    println!(
        "                        exit quality {:.2} (dry-out margin {:.2}), peak HTC {:.0} kW/m²K",
        s.max_exit_quality,
        s.dryout_margin,
        s.peak_htc / 1e3
    );

    println!("\nThe evaporating coolant holds the whole stack within a few kelvin of");
    println!("its saturation temperature — §III's case for two-phase 3D MPSoC cooling.");
    Ok(())
}
