//! Thermally-aware design-space optimization: find the cheapest cooling
//! operating point that keeps every junction at or below 85 °C — the
//! fig6-style "minimum pump power meeting the threshold" result, searched
//! rather than swept by hand — across tiers × coolant × flow schedules.
//!
//! The example also demonstrates the determinism contract: the exhaustive
//! grid and the seeded adaptive coordinate descent agree on the optimum,
//! and the full report is bit-identical at 1 vs 8 worker threads and
//! across reruns with the same seed (asserted below, not just claimed).
//!
//! ```bash
//! cargo run --release --example optimize_cooling
//! ```

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    Constraints, CoordinateDescent, DesignAxis, DesignSpace, GridSearch, Optimizer, ParetoFront,
    ParetoPoint,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::{CoolantChoice, FlowSchedule, ScenarioSpec};
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::TwoPhaseCoolant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ml = VolumetricFlow::from_ml_per_min;

    // The design space: stack height x cooling medium x pump operating
    // point, under the worst-case max-utilization workload. Two-phase
    // designs fix their mass flux, so every (two-phase, fixed-flow) cell
    // fails spec validation and is *skipped* — a design space may contain
    // invalid-by-construction corners without breaking the search.
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::MaxUtilization)
        .grid(GridSpec::new(8, 8)?)
        .seconds(24)
        .seed(42);
    let space = DesignSpace::new(base)
        .with_axis(DesignAxis::tiers([2, 4]))
        .with_axis(DesignAxis::coolants([
            CoolantChoice::Water,
            CoolantChoice::TwoPhase(TwoPhaseCoolant::r134a_30c(2800.0)),
        ]))
        .with_axis(DesignAxis::flow_schedules([
            ("policy-controlled pump".to_string(), FlowSchedule::Policy),
            (
                "fixed 10.0 ml/min".to_string(),
                FlowSchedule::Fixed(ml(10.0)),
            ),
            (
                "fixed 14.0 ml/min".to_string(),
                FlowSchedule::Fixed(ml(14.0)),
            ),
            (
                "fixed 20.0 ml/min".to_string(),
                FlowSchedule::Fixed(ml(20.0)),
            ),
            (
                "fixed 26.0 ml/min".to_string(),
                FlowSchedule::Fixed(ml(26.0)),
            ),
            (
                "fixed 32.3 ml/min".to_string(),
                FlowSchedule::Fixed(ml(32.3)),
            ),
        ]));
    let constraints = Constraints::peak_below(Celsius(85.0));
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runner = BatchRunner::new(threads);

    println!(
        "Searching {} designs (tiers x coolant x schedule) for minimum pump energy at <= 85 C\n",
        space.len()
    );
    let optimizer = Optimizer::new(space.clone(), constraints.clone(), &runner);
    let grid = optimizer.run(&mut GridSearch)?;

    println!(
        "{:<40} {:>8} {:>9} {:>4} {:>9}",
        "design", "peak °C", "pump J", "ok", "epochs"
    );
    println!("{}", "-".repeat(76));
    for e in &grid.evaluations {
        println!(
            "{:<40} {:>8.1} {:>9.1} {:>4} {:>6}/{}",
            e.label,
            e.peak.to_celsius().0,
            e.pump_energy,
            if e.feasible { "yes" } else { "no" },
            e.epochs_run,
            e.epochs_budget,
        );
    }
    println!(
        "\n{} designs evaluated, {} skipped as invalid (two-phase x fixed flow); early abort \
         saved {:.0} % of the epoch budget ({} of {} epochs run).",
        grid.n_evaluations(),
        grid.skipped,
        grid.early_abort_savings() * 100.0,
        grid.epochs_run,
        grid.epochs_budget,
    );

    let best = grid.best.as_ref().expect("a feasible design exists");
    println!("\nMinimum cooling energy meeting 85 °C: {}", best.label);
    println!(
        "  pump energy {:.1} J over {} s, peak {:.1} °C",
        best.pump_energy,
        best.metrics.seconds,
        best.peak.to_celsius().0
    );
    // The fig6-style per-stack statement: cheapest feasible pump
    // operating point for each tier count, water cooling.
    for (tier_level, tiers) in [(0usize, 2usize), (1, 4)] {
        let cheapest = grid
            .evaluations
            .iter()
            .filter(|e| e.feasible && e.design.indices()[0] == tier_level)
            .filter(|e| e.design.indices()[1] == 0) // water
            .min_by(|a, b| a.pump_energy.total_cmp(&b.pump_energy));
        if let Some(e) = cheapest {
            println!(
                "  {tiers}-tier water minimum: {} ({:.1} J, peak {:.1} °C)",
                e.label,
                e.pump_energy,
                e.peak.to_celsius().0
            );
        }
    }

    println!("\nPareto front (cooling energy vs. peak temperature), cheapest first:");
    for p in grid.front.points() {
        println!(
            "  {:<40} {:>9.1} J {:>7.1} °C",
            p.label,
            p.pump_energy,
            p.peak.to_celsius().0
        );
    }
    println!(
        "  (two-phase designs report zero pump-loop energy — the compressor loop sits \
         outside the model boundary — so they dominate the mixed front; the water-side \
         trade-off curve is the fig6-relevant one:)"
    );
    let mut water_front = ParetoFront::new();
    for e in grid.evaluations.iter().filter(|e| {
        e.feasible && e.design.indices()[1] == 0 // water designs only
    }) {
        water_front.insert(ParetoPoint {
            design: e.design.clone(),
            label: e.label.clone(),
            pump_energy: e.pump_energy,
            peak: e.peak,
            area: e.area,
        });
    }
    for p in water_front.points() {
        println!(
            "  {:<40} {:>9.1} J {:>7.1} °C",
            p.label,
            p.pump_energy,
            p.peak.to_celsius().0
        );
    }

    // --- Determinism contract, asserted.
    let mut descent = CoordinateDescent::seeded(7).restarts(3);
    let adaptive = optimizer.run(&mut descent)?;
    let adaptive_best = adaptive
        .best
        .as_ref()
        .expect("descent finds a feasible design");
    assert_eq!(
        adaptive_best.design, best.design,
        "grid and coordinate descent must agree on the optimum"
    );
    println!(
        "\nCoordinate descent (seed 7) found the same optimum in {} evaluations \
         (grid needed {}; optimum first seen at evaluation {} of the grid).",
        adaptive.n_evaluations(),
        grid.n_evaluations(),
        grid.evals_to_best.expect("grid found the best"),
    );

    let serial = Optimizer::new(space.clone(), constraints.clone(), &BatchRunner::new(1))
        .run(&mut GridSearch)?;
    let eight = Optimizer::new(space, constraints, &BatchRunner::new(8)).run(&mut GridSearch)?;
    assert_eq!(
        serial, eight,
        "the optimize report must be bit-identical at 1 vs 8 threads"
    );
    assert_eq!(serial, grid, "and across reruns");
    let rerun = optimizer.run(&mut CoordinateDescent::seeded(7).restarts(3))?;
    assert_eq!(rerun, adaptive, "same seed, same adaptive trajectory");
    println!("Determinism verified: bit-identical reports at 1 vs 8 threads and across reruns.");
    Ok(())
}
