//! Choosing a thermal solver backend.
//!
//! Every scenario runs on direct sparse LU by default. For fine grids —
//! where the pivoting factorisation's fill makes the first solve at each
//! operating point expensive — `ScenarioSpec::solver` switches the
//! thermal model to ILU(0)-preconditioned BiCGSTAB (setup stays O(nnz))
//! or to geometric-multigrid-preconditioned BiCGSTAB on the matrix-free
//! stencil operator (setup O(n), iteration counts resolution-independent,
//! and the fine operator is never assembled at all). Both fall back to
//! direct LU automatically if an iterative solve ever breaks down (see
//! `BENCH_iterative.json` for the measured crossover).
//!
//! This example runs the same fig6-style scenario under all three
//! backends, shows they agree to solver tolerance, and sweeps the
//! backend as a `Study` axis.

use cmosaic::policy::PolicyKind;
use cmosaic::{BatchRunner, ScenarioSpec, Study};
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::SolverBackend;

fn main() -> Result<(), cmosaic::CmosaicError> {
    let base = ScenarioSpec::new()
        .tiers(2)
        .policy(PolicyKind::LcFuzzy)
        .workload(WorkloadKind::WebServer)
        .grid(GridSpec::new(8, 8).expect("static dims"))
        .seconds(10)
        .seed(42);

    // One axis, three backends, executed as one batch.
    let report = Study::new(base)
        .over_solvers([
            SolverBackend::DirectLu,
            SolverBackend::iterative(),
            SolverBackend::multigrid(),
        ])
        .run(&BatchRunner::new(2))?;

    println!("backend comparison (2-tier water-cooled LC_FUZZY, 10 s):");
    for (spec, outcome) in report.iter() {
        let m = &outcome.metrics;
        let s = &outcome.solver;
        println!(
            "  {:<33} peak {:6.2} °C  chip {:7.1} J  pump {:5.1} J  \
             full-LU {}  bicgstab solves {} ({} iters)  V-cycles {}",
            spec.solver_backend().to_string(),
            m.peak_temperature.to_celsius().0,
            m.chip_energy,
            m.pump_energy,
            s.full_factorizations,
            s.iterative_solves,
            s.iterative_iterations,
            s.mg_cycles,
        );
    }

    let outcomes = report.outcomes();
    let direct = outcomes[0];

    // All backends agree on the physics to the iteration tolerance, and
    // neither iterative run ever paid for a pivoting factorisation of the
    // fine operator nor fell back to one.
    let dp = direct.metrics.peak_temperature.0;
    let mut worst = 0.0f64;
    for (name, o) in [("ilu0", outcomes[1]), ("multigrid", outcomes[2])] {
        let p = o.metrics.peak_temperature.0;
        assert!((dp - p).abs() < 1e-4, "{name} must agree: {dp} K vs {p} K");
        worst = worst.max((dp - p).abs());
        assert_eq!(o.solver.full_factorizations, 0, "{name} factorised");
        assert_eq!(o.solver.iterative_fallbacks, 0, "{name} fell back");
        assert!(o.solver.iterative_solves > 0);
    }
    // The multigrid run really ran V-cycles, and fewer Krylov iterations
    // than the ILU(0) run needed.
    assert!(outcomes[2].solver.mg_cycles > 0);
    assert!(outcomes[2].solver.iterative_iterations <= outcomes[1].solver.iterative_iterations);
    println!(
        "\nbackends agree within {worst:.1e} K; \
         neither iterative run used a single fine-level LU factorisation"
    );
    Ok(())
}
