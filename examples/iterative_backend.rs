//! Choosing a thermal solver backend.
//!
//! Every scenario runs on direct sparse LU by default. For fine grids —
//! where the pivoting factorisation's fill makes the first solve at each
//! operating point expensive — `ScenarioSpec::solver` switches the
//! thermal model to ILU(0)-preconditioned BiCGSTAB, which keeps setup
//! cost O(nnz) and falls back to direct LU automatically if an iterative
//! solve ever breaks down (see `BENCH_iterative.json` for the measured
//! crossover).
//!
//! This example runs the same fig6-style scenario under both backends,
//! shows they agree to solver tolerance, and sweeps the backend as a
//! `Study` axis.

use cmosaic::policy::PolicyKind;
use cmosaic::{BatchRunner, ScenarioSpec, Study};
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::SolverBackend;

fn main() -> Result<(), cmosaic::CmosaicError> {
    let base = ScenarioSpec::new()
        .tiers(2)
        .policy(PolicyKind::LcFuzzy)
        .workload(WorkloadKind::WebServer)
        .grid(GridSpec::new(8, 8).expect("static dims"))
        .seconds(10)
        .seed(42);

    // One axis, two backends, executed as one batch.
    let report = Study::new(base)
        .over_solvers([SolverBackend::DirectLu, SolverBackend::iterative()])
        .run(&BatchRunner::new(2))?;

    println!("backend comparison (2-tier water-cooled LC_FUZZY, 10 s):");
    for (spec, outcome) in report.iter() {
        let m = &outcome.metrics;
        let s = &outcome.solver;
        println!(
            "  {:<34} peak {:6.2} °C  chip {:7.1} J  pump {:5.1} J  \
             full-LU {}  bicgstab solves {} ({} iters)",
            spec.solver_backend().to_string(),
            m.peak_temperature.to_celsius().0,
            m.chip_energy,
            m.pump_energy,
            s.full_factorizations,
            s.iterative_solves,
            s.iterative_iterations,
        );
    }

    let outcomes = report.outcomes();
    let direct = outcomes[0];
    let iterative = outcomes[1];

    // The two backends agree on the physics to the iteration tolerance.
    let dp = direct.metrics.peak_temperature.0;
    let ip = iterative.metrics.peak_temperature.0;
    assert!(
        (dp - ip).abs() < 1e-4,
        "backends must agree: {dp} K vs {ip} K"
    );
    // The iterative run never paid for a pivoting factorisation and never
    // fell back to one.
    assert_eq!(iterative.solver.full_factorizations, 0);
    assert_eq!(iterative.solver.iterative_fallbacks, 0);
    assert!(iterative.solver.iterative_solves > 0);
    println!(
        "\nbackends agree within {:.1e} K; the iterative run used zero LU factorisations",
        (dp - ip).abs()
    );
    Ok(())
}
