//! Thermally-aware *placement* optimization: physical design as a
//! first-class optimizer axis. The design space crosses the pump
//! operating point with deterministic floorplan transformations (block
//! swaps, hot-spot-aware spreading) and per-gap micro-channel geometry
//! on the reference 2-tier Niagara stack, and the search minimises pump
//! energy subject to the 85 °C ceiling while the Pareto front tracks
//! three objectives: peak temperature, pump energy and silicon area.
//!
//! Two strategies run over the same memoizing evaluator: the exhaustive
//! grid (ground truth) and seeded simulated annealing, which must land
//! on the same optimum after simulating only a fraction of the space.
//! Determinism is asserted, not claimed: the annealer's report is
//! bit-identical at 1 vs 8 worker threads and across reruns.
//!
//! ```bash
//! cargo run --release --example optimize_placement
//! ```

use std::sync::Arc;

use cmosaic::batch::BatchRunner;
use cmosaic::optimize::{
    Constraints, DesignAxis, DesignSpace, GridSearch, Optimizer, SimulatedAnnealing, StackTransform,
};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::ScenarioSpec;
use cmosaic_floorplan::transform::{set_gap_cavity, spread_hotspots_in_tier, swap_in_tier};
use cmosaic_floorplan::{CavitySpec, ElementKind, GridSpec};
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::WorkloadKind;

/// The annealing seed and step budget shared with the placement tests
/// and the `perf_placement` bench: small enough that the annealer
/// simulates well under half the grid, large enough to reach the
/// optimum from its random start.
pub const SA_SEED: u64 = 11;
pub const SA_STEPS: usize = 12;

/// The reference 2-tier Niagara placement space: pump operating point x
/// block placement x inter-tier channel geometry.
fn placement_space() -> DesignSpace {
    let ml = VolumetricFlow::from_ml_per_min;
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcLb)
        .workload(WorkloadKind::Database)
        .grid(GridSpec::new(6, 6).expect("static dims"))
        .thermal_dt(0.5)
        .tiers(2)
        .seconds(12)
        .seed(7);
    // Placement moves: the as-designed tier-0 floorplan, a corner-to-corner
    // block swap, and the hot-spot-aware spread that pushes the heaviest
    // cores to the periphery (weights rank assumed core activity under the
    // database workload; ties broken deterministically). Under the skewed
    // per-core load these genuinely move the peak junction temperature.
    let identity: StackTransform = Arc::new(|s| Ok(s.clone()));
    let swap: StackTransform = Arc::new(|s| swap_in_tier(s, 0, "core0", "core7"));
    let spread: StackTransform = Arc::new(|s| {
        spread_hotspots_in_tier(
            s,
            0,
            ElementKind::Core,
            &[8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        )
    });
    // Channel geometry for the single inter-tier gap: the Table I cavity
    // (50 um channels at 150 um pitch) against a wide-channel variant
    // (100 um channels, same pitch) that spends silicon to drop the
    // hydraulic resistance — a genuine area/energy trade.
    let table1: StackTransform = Arc::new(|s| set_gap_cavity(s, 0, Some(CavitySpec::table1())));
    let wide: StackTransform = Arc::new(|s| {
        let spec = CavitySpec::new(
            0.1e-3,
            0.15e-3,
            0.1e-3,
            cmosaic_materials::solids::SolidMaterial::silicon(),
        )?;
        set_gap_cavity(s, 0, Some(spec))
    });
    DesignSpace::new(base)
        .with_axis(DesignAxis::flow_rates([
            ml(14.0),
            ml(20.0),
            ml(26.0),
            ml(32.3),
        ]))
        .with_axis(DesignAxis::stack_transforms(
            "placement",
            [
                ("as-designed", identity),
                ("swap(core0,core7)", swap),
                ("spread(core)", spread),
            ],
        ))
        .with_axis(DesignAxis::stack_transforms(
            "channel",
            [("table1 channels", table1), ("wide channels", wide)],
        ))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constraints = Constraints::peak_below(Celsius(85.0));
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runner = BatchRunner::new(threads);

    let space = placement_space();
    println!(
        "Searching {} designs (flow x placement x channel) for minimum pump energy at <= 85 C\n",
        space.len()
    );

    // Ground truth: the exhaustive grid.
    let optimizer = Optimizer::new(space.clone(), constraints.clone(), &runner);
    let grid = optimizer.run(&mut GridSearch)?;
    let grid_best = grid.best.as_ref().expect("feasible designs exist");
    println!(
        "grid optimum     {:<55} {:>8.1} J  {:>6.1} C  {:>6.1} mm^2  ({} evaluations)",
        grid_best.label,
        grid_best.pump_energy,
        grid_best.peak.to_celsius().0,
        grid_best.area * 1e6,
        grid.n_evaluations()
    );

    // Seeded annealing over the same space: same optimum, fewer sims.
    let sa = optimizer.run(&mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS))?;
    let sa_best = sa.best.as_ref().expect("annealer finds a feasible design");
    println!(
        "annealing        {:<55} {:>8.1} J  {:>6.1} C  {:>6.1} mm^2  ({} evaluations, {} requests, {:.0}% memoized)",
        sa_best.label,
        sa_best.pump_energy,
        sa_best.peak.to_celsius().0,
        sa_best.area * 1e6,
        sa.n_evaluations(),
        sa.eval_requests,
        sa.memo_hit_rate() * 100.0
    );
    assert_eq!(
        sa_best.design, grid_best.design,
        "annealing must land on the grid optimum"
    );
    assert!(
        sa.n_evaluations() * 2 < grid.n_evaluations(),
        "annealing must simulate under half the grid ({} vs {})",
        sa.n_evaluations(),
        grid.n_evaluations()
    );

    // The three-objective Pareto front: peak temperature vs pump energy
    // vs silicon area. Wide-channel designs pay area for pump energy;
    // placement moves peak temperature at fixed cost.
    println!("\nPareto front (pump energy, peak temperature, silicon area), cheapest first:");
    for p in grid.front.points() {
        println!(
            "  {:<55} {:>8.1} J  {:>6.1} C  {:>6.1} mm^2",
            p.label,
            p.pump_energy,
            p.peak.to_celsius().0,
            p.area * 1e6
        );
    }

    // Determinism contract: the annealing report is a pure function of
    // the seed — bit-identical at 1 vs 8 threads and across reruns.
    let rerun = |threads: usize| {
        Optimizer::new(
            space.clone(),
            constraints.clone(),
            &BatchRunner::new(threads),
        )
        .run(&mut SimulatedAnnealing::seeded(SA_SEED).steps(SA_STEPS))
    };
    let serial = rerun(1)?;
    let parallel = rerun(8)?;
    assert_eq!(serial, parallel, "thread count must not leak into results");
    assert_eq!(serial, rerun(1)?, "reruns are bit-identical");
    assert_eq!(
        serial.best.as_ref().map(|b| &b.design),
        sa.best.as_ref().map(|b| &b.design)
    );
    println!("\ndeterminism: annealing reports bit-identical at 1 vs 8 threads and across reruns");

    Ok(())
}
