//! Explore the two-phase micro-evaporator of §III/Fig. 8: sweep the
//! hot-spot intensity and the mass flux, watch the self-regulating HTC and
//! the dry-out boundary.
//!
//! ```bash
//! cargo run --release --example two_phase_evaporator
//! ```

use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::Kelvin;
use cmosaic_twophase::channel::OperatingPoint;
use cmosaic_twophase::{MicroEvaporator, TwoPhaseError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Two-phase micro-evaporator exploration (R245fa, 135 x 85 um channels)\n");

    // --- 1. The Fig. 8 reference point.
    let reference = MicroEvaporator::fig8().solve(400)?;
    println!("Fig. 8 reference (rows at 2/2/30.2/2/2 W/cm²):");
    for row in &reference.rows {
        println!(
            "  row {}: q''={:5.1} W/cm²  h={:6.0} W/m²K  fluid={:.2} °C  wall={:.2} °C",
            row.row,
            row.heat_flux / 1e4,
            row.htc,
            row.fluid.to_celsius().0,
            row.wall.to_celsius().0
        );
    }
    println!(
        "  outlet {:.2} °C (inlet 30.00 °C) — the refrigerant leaves COLDER\n",
        reference.outlet_fluid.to_celsius().0
    );

    // --- 2. Hot-spot intensity sweep: the HTC rises with flux, so the
    //        wall superheat grows far slower than the flux itself.
    println!("Hot-spot sweep (background 2 W/cm²):");
    println!("  hot flux   HTC ratio   superheat ratio   flux ratio");
    for hot in [5.0, 10.0, 20.0, 30.2, 45.0] {
        let e = MicroEvaporator::fig8().with_row_fluxes([2.0e4, 2.0e4, hot * 1e4, 2.0e4, 2.0e4]);
        let r = e.solve(400)?;
        let htc_ratio = r.rows[2].htc / r.rows[0].htc;
        let sh = |i: usize| r.rows[i].wall.0 - r.rows[i].fluid.0;
        println!(
            "  {hot:>5.1}      {htc_ratio:>5.2}x      {:>5.2}x            {:>5.2}x",
            sh(2) / sh(0),
            hot / 2.0
        );
    }

    // --- 3. Mass-flux sweep: flow boiling is "only a weak function of the
    //        flow rate" — until the film dries out.
    println!("\nMass-flux sweep at the Fig. 8 heat load:");
    for g in [40.0, 80.0, 150.0, 300.0, 600.0] {
        let e = MicroEvaporator::fig8().with_operating_point(OperatingPoint {
            inlet_quality: 0.05,
            ..OperatingPoint::new(Refrigerant::R245fa, Kelvin::from_celsius(30.0), g)
        });
        match e.solve(400) {
            Ok(r) => println!(
                "  G = {g:>5.0} kg/m²s: hot-row wall {:.2} °C, exit quality {:.3}, margin {:.2}",
                r.rows[2].wall.to_celsius().0,
                r.outlet_quality,
                r.dryout_margin
            ),
            Err(TwoPhaseError::Dryout { position, quality }) => println!(
                "  G = {g:>5.0} kg/m²s: DRY-OUT at z = {:.1} mm (x = {quality:.2}) — flow too low",
                position * 1e3
            ),
            Err(e) => return Err(e.into()),
        }
    }

    println!("\nNote how the hot-row wall temperature barely moves across a 4x flow");
    println!("range (§III: boiling is a weak function of flow rate), while too little");
    println!("flow hits the dry-out boundary the controller must always respect.");
    Ok(())
}
