//! Cooling design-space exploration with the `ScenarioSpec`/`Study` API:
//! a cartesian sweep over coolants (single-phase water vs. two-phase
//! R134a), open-loop flow schedules and tier counts — a scenario family
//! the flat config plumbing could not express — with a custom per-epoch
//! [`Observer`] measuring the *spatial* extent of hot spots, which the
//! aggregate run metrics do not record.
//!
//! ```bash
//! cargo run --release --example cooling_design_space
//! ```

use cmosaic::observe::{EpochCtx, Observer};
use cmosaic::policy::PolicyKind;
use cmosaic::scenario::{CoolantChoice, FlowSchedule};
use cmosaic::{BatchRunner, ScenarioSpec, Study};
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_thermal::TwoPhaseCoolant;

/// Custom probe: worst spatial hot-spot extent (fraction of junction
/// cells above the threshold on the worst tier) and when it occurred —
/// per-epoch data no aggregate metric carries.
#[derive(Default)]
struct HotspotExtent {
    worst_fraction: f64,
    at_epoch: usize,
}

impl Observer for HotspotExtent {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        let threshold = ctx.threshold.to_kelvin();
        let cells_per_tier = ctx.grid.cell_count();
        for tier in 0..ctx.n_tiers() {
            let frac = ctx.field.tier_cells_above(tier, threshold) as f64 / cells_per_tier as f64;
            if frac > self.worst_fraction {
                self.worst_fraction = frac;
                self.at_epoch = ctx.epoch;
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ml = VolumetricFlow::from_ml_per_min;
    let schedules = [
        (FlowSchedule::Policy, "policy-controlled"),
        (FlowSchedule::Fixed(ml(8.0)), "fixed 8 ml/min"),
        (FlowSchedule::Fixed(ml(32.3)), "fixed 32.3 ml/min"),
        (
            FlowSchedule::Sweep {
                lo: ml(10.0),
                hi: ml(32.3),
                period: 20,
            },
            "triangle 10-32.3 ml/min",
        ),
    ];
    let schedule_name = |s: &FlowSchedule| {
        schedules
            .iter()
            .find(|(sched, _)| sched == s)
            .map_or("?", |(_, name)| *name)
    };

    // Coolant x flow-schedule x tiers, pruned of the one invalid slice:
    // a two-phase operating point fixes its mass flux, so only the
    // policy-neutral schedule survives there.
    let base = ScenarioSpec::new()
        .policy(PolicyKind::LcFuzzy)
        .workload(WorkloadKind::MaxUtilization)
        .grid(GridSpec::new(10, 10)?)
        .seconds(40)
        .seed(42);
    let study = Study::new(base)
        .over_coolants([
            CoolantChoice::Water,
            CoolantChoice::TwoPhase(TwoPhaseCoolant::r134a_30c(2800.0)),
        ])
        .over_flow_schedules(schedules.iter().map(|(s, _)| s.clone()))
        .over_tiers([2, 4])
        .retain(|s| {
            !matches!(s.coolant_choice(), CoolantChoice::TwoPhase(_))
                || s.flow_schedule_spec().is_policy()
        });

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Sweeping {} scenarios on {threads} threads (water x 4 schedules x 2 tiers, \
         plus two-phase x 2 tiers):\n",
        study.len()
    );
    let (report, extents) =
        study.run_observed(&BatchRunner::new(threads), |_, _| HotspotExtent::default())?;

    println!(
        "{:<10} {:<24} {:>6} {:>9} {:>9} {:>9} {:>12}",
        "coolant", "flow schedule", "tiers", "peak °C", "chip J", "pump J", "hot extent %"
    );
    println!("{}", "-".repeat(84));
    for ((spec, outcome), extent) in report.iter().zip(&extents) {
        let extent = extent.as_ref().expect("healthy slot keeps its observer");
        let m = &outcome.metrics;
        println!(
            "{:<10} {:<24} {:>6} {:>9.1} {:>9.0} {:>9.0} {:>12}",
            spec.coolant_choice().to_string(),
            schedule_name(spec.flow_schedule_spec()),
            spec.preset_tiers().expect("preset stacks"),
            m.peak_temperature.to_celsius().0,
            m.chip_energy,
            m.pump_energy,
            if extent.worst_fraction > 0.0 {
                format!("{:.0} @{}s", extent.worst_fraction * 100.0, extent.at_epoch)
            } else {
                "none".into()
            },
        );
    }

    println!(
        "\nOne batch, {} thermal pattern groups, {} full factorisations \
         (one per group — every other scenario adopted a donor's analysis).",
        report.pattern_groups(),
        report.total_full_factorizations()
    );
    println!("Reading the table:");
    println!("  * starving the pump (8 ml/min) leaves hot spots with real spatial extent,");
    println!("    and the triangle sweep overheats whenever it dwells near its low end;");
    println!("  * the fuzzy policy matches the 32.3 ml/min worst-case design thermally");
    println!("    at a fraction of the pump energy;");
    println!("  * two-phase R134a holds the stack near saturation with zero pump-loop");
    println!("    energy in this model (the compressor loop is outside the boundary).");
    Ok(())
}
