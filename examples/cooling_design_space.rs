//! Electro-thermal co-design exploration (§II.C): sweep the coolant flow
//! rate and the cavity channel width, and map the trade-off between peak
//! junction temperature and pumping power — the design space the run-time
//! fuzzy controller later navigates dynamically.
//!
//! ```bash
//! cargo run --release --example cooling_design_space
//! ```

use cmosaic_floorplan::stack::{presets, CavitySpec, StackBuilder};
use cmosaic_floorplan::{niagara, GridSpec};
use cmosaic_hydraulics::pump::PumpMap;
use cmosaic_materials::solids::SolidMaterial;
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_thermal::{ThermalModel, ThermalParams};

/// A realistic 2-tier heat load: busy cores below, caches above.
fn power_maps(grid: GridSpec) -> Vec<Vec<f64>> {
    let n = grid.cell_count();
    vec![vec![38.0 / n as f64; n], vec![9.0 / n as f64; n]]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let grid = GridSpec::new(12, 12)?;
    let maps = power_maps(grid);
    let pump = PumpMap::table1();

    println!("Flow-rate sweep (Table I cavity, 2-tier stack, 47 W):\n");
    println!("  flow (ml/min)   peak °C   outlet °C   ΔP (bar)   pump power (W)");
    let stack = presets::liquid_cooled_mpsoc(2)?;
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default())?;
    for ml in [10.0, 14.0, 18.0, 22.0, 26.0, 32.3] {
        let q = VolumetricFlow::from_ml_per_min(ml);
        model.set_flow_rate(q)?;
        let field = model.steady_state(&maps)?;
        println!(
            "  {ml:>10.1}   {:>8.1}   {:>8.1}   {:>8.3}   {:>10.2}",
            field.max().to_celsius().0,
            model.fluid_outlet_mean().to_celsius().0,
            model.cavity_pressure_drop()?.to_bar(),
            pump.power(q).0,
        );
    }
    println!("\n  Over-cooling an under-utilised stack wastes pump power — the gap the");
    println!("  LC_FUZZY controller closes at run time.\n");

    println!("Channel-width sweep at 22 ml/min (pitch fixed at 150 µm):\n");
    println!("  width (µm)   peak °C   ΔP (bar)");
    for width_um in [30.0, 40.0, 50.0, 60.0, 80.0] {
        let cavity = CavitySpec::new(width_um * 1e-6, 150e-6, 100e-6, SolidMaterial::silicon())?;
        let mut b = StackBuilder::new(
            format!("2-tier-w{width_um}"),
            niagara::DIE_WIDTH,
            niagara::DIE_HEIGHT,
        );
        b.tier(
            niagara::core_tier()?,
            presets::WIRING_THICKNESS,
            presets::DIE_THICKNESS,
        );
        b.cavity(cavity);
        b.tier(
            niagara::cache_tier()?,
            presets::WIRING_THICKNESS,
            presets::DIE_THICKNESS,
        );
        let stack = b.build()?;
        let mut model = ThermalModel::new(&stack, grid, ThermalParams::default())?;
        model.set_flow_rate(VolumetricFlow::from_ml_per_min(22.0))?;
        let field = model.steady_state(&maps)?;
        println!(
            "  {width_um:>9.0}   {:>8.1}   {:>8.3}",
            field.max().to_celsius().0,
            model.cavity_pressure_drop()?.to_bar(),
        );
    }
    println!("\n  Narrower channels buy a few kelvin at a steep pressure-drop cost —");
    println!("  §II.C's conclusion that the channel width 'should only be reduced at");
    println!("  locations where the maximal junction temperature would be exceeded'.");
    Ok(())
}
