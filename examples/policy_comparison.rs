//! Policy shoot-out across the paper's seven stack/policy configurations
//! and all four workload classes — a condensed Fig. 6 + Fig. 7 in one
//! binary.
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use cmosaic::experiments::{figure_configurations, run_policy, PolicyRunConfig};
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seconds = 60;
    let grid = GridSpec::new(10, 10)?;
    println!(
        "{:<22} {:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "config", "workload", "peak °C", "hot %", "chip J", "pump J", "perf %"
    );
    println!("{}", "-".repeat(96));

    for (tiers, policy) in figure_configurations() {
        for workload in [
            WorkloadKind::WebServer,
            WorkloadKind::Database,
            WorkloadKind::Multimedia,
            WorkloadKind::MaxUtilization,
        ] {
            let m = run_policy(&PolicyRunConfig {
                tiers,
                policy,
                workload,
                seconds,
                seed: 42,
                grid,
            })?;
            println!(
                "{:<22} {:<16} {:>8.1} {:>10.1} {:>12.0} {:>12.0} {:>10.4}",
                format!("{tiers}-tier {policy}"),
                workload.to_string(),
                m.peak_temperature.to_celsius().0,
                m.hotspot_time_per_core * 100.0,
                m.chip_energy,
                m.pump_energy,
                m.perf_loss_max * 100.0,
            );
        }
    }

    println!("\nReading the table:");
    println!("  * air-cooled stacks overheat (4-tier catastrophically, §IV.A);");
    println!("  * liquid cooling removes every hot spot;");
    println!("  * LC_FUZZY trades a few kelvin of headroom for large pump-energy savings");
    println!("    with negligible performance loss.");
    Ok(())
}
