//! Policy shoot-out across the paper's seven stack/policy configurations
//! and all four workload classes — a condensed Fig. 6 + Fig. 7 in one
//! binary.
//!
//! ```bash
//! cargo run --release --example policy_comparison
//! ```

use cmosaic::experiments::fig6_study;
use cmosaic::BatchRunner;
use cmosaic_floorplan::GridSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seconds = 60;
    let grid = GridSpec::new(10, 10)?;
    println!(
        "{:<22} {:<16} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "config", "workload", "peak °C", "hot %", "chip J", "pump J", "perf %"
    );
    println!("{}", "-".repeat(96));

    // The whole 28-scenario matrix runs as one batch: one full thermal
    // factorisation per (stack, grid) pattern, bit-identical results at
    // any thread count.
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = fig6_study(seconds, 42, grid).run(&BatchRunner::new(threads))?;
    for (spec, outcome) in report.iter() {
        let m = &outcome.metrics;
        println!(
            "{:<22} {:<16} {:>8.1} {:>10.1} {:>12.0} {:>12.0} {:>10.4}",
            format!(
                "{}-tier {}",
                spec.preset_tiers().expect("preset stacks"),
                spec.policy_kind()
            ),
            spec.workload_kind().to_string(),
            m.peak_temperature.to_celsius().0,
            m.hotspot_time_per_core * 100.0,
            m.chip_energy,
            m.pump_energy,
            m.perf_loss_max * 100.0,
        );
    }

    println!("\nReading the table:");
    println!("  * air-cooled stacks overheat (4-tier catastrophically, §IV.A);");
    println!("  * liquid cooling removes every hot spot;");
    println!("  * LC_FUZZY trades a few kelvin of headroom for large pump-energy savings");
    println!("    with negligible performance loss.");
    Ok(())
}
