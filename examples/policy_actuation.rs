//! Per-block actuation shoot-out: task migration vs. fuzzy flow
//! modulation vs. their combination on the same traces, plus the
//! heterogeneous allocator presets pricing a memory-on-logic stack.
//!
//! ```bash
//! cargo run --release --example policy_actuation
//! ```

use cmosaic::experiments::{actuation_dataset, actuation_policies};
use cmosaic::scenario::ScenarioSpec;
use cmosaic::study::Study;
use cmosaic::BatchRunner;
use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_power::AllocatorPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seconds = 60;
    let seed = 42;
    let grid = GridSpec::new(10, 10)?;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let runner = BatchRunner::new(threads);

    // --- Part 1: how should a liquid-cooled 4-tier stack spend its
    // actuators? Flow modulation alone, migration alone (at worst-case
    // maximum flow), or both together.
    println!("Actuation strategies, 4-tier stack, WebServer workload, {seconds} s:");
    println!(
        "{:<16} {:>9} {:>11} {:>11} {:>8} {:>8}",
        "policy", "peak °C", "pump J", "system J", "hot %", "perf %"
    );
    println!("{}", "-".repeat(68));
    let rows = actuation_dataset(&runner, seconds, seed, grid)?;
    for r in &rows {
        println!(
            "{:<16} {:>9.1} {:>11.0} {:>11.0} {:>8.2} {:>8.3}",
            r.policy.to_string(),
            r.peak_celsius,
            r.pump_energy,
            r.system_energy,
            r.hotspot_pct_any,
            r.perf_loss_mean_pct,
        );
    }
    let flow_only = &rows[0];
    let combined = &rows[2];
    println!(
        "\ncombined control spends {:.1} % less pump energy than flow modulation alone\n",
        (1.0 - combined.pump_energy / flow_only.pump_energy) * 100.0
    );

    // --- Part 2: the same policies on a heterogeneous memory-on-logic
    // stack, priced by the matching allocator preset. The allocator axis
    // re-prices per-block power each epoch; the thermal operator is
    // shared across the whole matrix.
    println!("Heterogeneous memory-on-logic stack (4 tiers), same traces:");
    let stack = presets::memory_on_logic(4)?;
    let report = Study::new(
        ScenarioSpec::new()
            .stack(stack)
            .allocator(AllocatorPreset::MemoryOnLogic)
            .workload(cmosaic_power::trace::WorkloadKind::WebServer)
            .seconds(seconds)
            .seed(seed)
            .grid(grid),
    )
    .over_policies(actuation_policies(seed))
    .run(&runner)?;
    for (spec, outcome) in report.iter() {
        let m = &outcome.metrics;
        println!(
            "{:<16} peak {:>5.1} °C   pump {:>7.0} J   chip {:>8.0} J",
            spec.policy_kind().to_string(),
            m.peak_temperature.to_celsius().0,
            m.pump_energy,
            m.chip_energy,
        );
    }

    println!("\nReading the tables:");
    println!("  * migration at max flow holds the constraint but pays worst-case pump energy;");
    println!("  * fuzzy flow alone saves pump energy on what the hotspots require;");
    println!("  * migration + fuzzy flattens the hotspots first, so the rule base can");
    println!("    throttle the pump further — the cheapest way to hold the constraint.");
    Ok(())
}
