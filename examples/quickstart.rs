//! Quickstart: build a liquid-cooled 2-tier 3D MPSoC, run the fuzzy
//! thermal controller on a web-server workload, and print the numbers the
//! paper cares about.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cmosaic::policy::PolicyKind;
use cmosaic::ScenarioSpec;
use cmosaic_power::trace::WorkloadKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cmosaic quickstart: 2-tier 3D MPSoC with inter-tier liquid cooling\n");

    // A scenario spec names the whole experiment; `build()` validates it
    // and `run()` executes the full co-simulation: stack construction,
    // workload generation, steady-state initialisation, then the closed
    // power→thermal→policy loop.
    for policy in [PolicyKind::LcLb, PolicyKind::LcFuzzy] {
        let metrics = ScenarioSpec::new()
            .tiers(2)
            .policy(policy)
            .workload(WorkloadKind::WebServer)
            .seconds(60)
            .seed(42)
            .build()?
            .run()?;

        println!("policy {policy}:");
        println!(
            "  peak junction temperature  {:.1} °C (threshold 85 °C)",
            metrics.peak_temperature.to_celsius().0
        );
        println!(
            "  hot-spot residency         {:.1} % of core-samples",
            metrics.hotspot_time_per_core * 100.0
        );
        println!(
            "  chip energy                {:.0} J over {} s",
            metrics.chip_energy, metrics.seconds
        );
        println!("  pump energy                {:.0} J", metrics.pump_energy);
        if let Some(q) = metrics.mean_flow {
            println!(
                "  mean coolant flow          {:.1} ml/min per cavity",
                q.to_ml_per_min()
            );
        }
        println!(
            "  worst performance loss     {:.4} %\n",
            metrics.perf_loss_max * 100.0
        );
    }

    println!("LC_FUZZY keeps the stack below the threshold while pumping far less");
    println!("coolant than the worst-case maximum flow rate (LC_LB).\n");

    // Bonus: a steady-state junction heat map of the core tier (coolant
    // flows left to right — note the hotter outlet side).
    use cmosaic::floorplan::{stack::presets, GridSpec};
    use cmosaic::materials::units::VolumetricFlow;
    use cmosaic::thermal::{ThermalModel, ThermalParams};
    let grid = GridSpec::new(24, 16)?;
    let stack = presets::liquid_cooled_mpsoc(2)?;
    let mut model = ThermalModel::new(&stack, grid, ThermalParams::default())?;
    model.set_flow_rate(VolumetricFlow::from_ml_per_min(18.0))?;
    let n = grid.cell_count();
    let field = model.steady_state(&[vec![40.0 / n as f64; n], vec![10.0 / n as f64; n]])?;
    println!("core-tier junction map at 18 ml/min (flow →):");
    print!("{}", field.render_tier(0));
    Ok(())
}
