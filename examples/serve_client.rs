//! Simulation-as-a-service walkthrough: start the `cmosaic-serve` daemon
//! in-process on a unix socket, talk to it as a plain NDJSON client, and
//! shut it down gracefully.
//!
//! ```bash
//! cargo run --release --example serve_client
//! ```
//!
//! The same conversation works against a standalone daemon
//! (`cargo run --release --bin cmosaic-serve -- --socket /tmp/cmosaic.sock`)
//! with nothing but `nc -U /tmp/cmosaic.sock`; the in-process server here
//! keeps the example self-contained. CI runs this example as the daemon
//! smoke test — every `assert!` is part of the contract.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use cmosaic_serve::json::Json;
use cmosaic_serve::scheduler::SchedulerConfig;
use cmosaic_serve::server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cmosaic-serve: coalescing simulation daemon over a unix socket\n");

    let path =
        std::env::temp_dir().join(format!("cmosaic-serve-example-{}.sock", std::process::id()));
    let server = Server::start(ServerConfig {
        socket: Some(path.clone()),
        http: None,
        scheduler: SchedulerConfig {
            threads: 2,
            window: Duration::from_millis(5),
            ..SchedulerConfig::default()
        },
    })?;
    println!("daemon listening on {}\n", path.display());

    let mut stream = UnixStream::connect(&path)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let request = |stream: &mut UnixStream, line: &str| -> std::io::Result<()> {
        writeln!(stream, "{line}")?;
        stream.flush()
    };
    let next_event = |reader: &mut BufReader<UnixStream>| -> Result<Json, String> {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        Json::parse(line.trim()).map_err(|e| e.to_string())
    };

    // Liveness first.
    request(&mut stream, r#"{"op":"ping"}"#)?;
    let pong = next_event(&mut reader)?;
    assert_eq!(pong.get("event").and_then(Json::as_str), Some("pong"));
    println!("ping -> pong");

    // A streamed two-scenario run: both specs share one operator pattern,
    // so the daemon factorises once and the second scenario adopts.
    let run = r#"{"op":"run","id":"demo","stream":true,"specs":[
        {"tiers":2,"grid":{"nx":8,"ny":8},"seconds":4,"seed":1,"policy":"lc-fuzzy"},
        {"tiers":2,"grid":{"nx":8,"ny":8},"seconds":4,"seed":2,"policy":"lc-fuzzy"}]}"#
        .replace('\n', " ");
    request(&mut stream, &run)?;
    println!("run (streaming, 2 scenarios, 1 operator pattern):");
    let done = loop {
        let event = next_event(&mut reader)?;
        match event.get("event").and_then(Json::as_str) {
            Some("epoch") => {
                let slot = event.get("slot").and_then(Json::as_u64).unwrap_or(0);
                let t = event.get("time_s").and_then(Json::as_f64).unwrap_or(0.0);
                let peak = event.get("peak_k").and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "  epoch slot={slot} t={t:>4.1}s peak={:.1}degC",
                    peak - 273.15
                );
            }
            Some("done") => break event,
            other => panic!("unexpected event {other:?}"),
        }
    };
    let results = done.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), 2);
    for slot in results {
        assert_eq!(slot.get("ok").and_then(Json::as_bool), Some(true));
        let label = slot.get("label").and_then(Json::as_str).unwrap_or("?");
        let peak = slot
            .get("metrics")
            .and_then(|m| m.get("peak_temperature_k"))
            .and_then(Json::as_f64)
            .expect("metrics present");
        println!("  done  {label}: peak {:.1}degC", peak - 273.15);
    }

    // The identical request again: answered from the result cache,
    // byte-identical by the determinism contract.
    request(&mut stream, &run)?;
    let warm = loop {
        let event = next_event(&mut reader)?;
        if event.get("event").and_then(Json::as_str) == Some("done") {
            break event;
        }
    };
    assert_eq!(
        warm.encode(),
        done.encode(),
        "cache warmth must be invisible"
    );
    println!("\nrepeated request: byte-identical answer off the result cache");

    // The stats endpoint tells the efficiency story the responses hide.
    request(&mut stream, r#"{"op":"stats"}"#)?;
    let stats = next_event(&mut reader)?;
    let cache = stats.get("cache").expect("cache stats");
    let solver = stats.get("solver").expect("solver stats");
    let n = |v: &Json, k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "stats: {} scenarios across {} requests, {} full factorisation(s), \
         {} adopted, {} result-cache hit(s)",
        n(cache, "scenarios"),
        n(cache, "requests"),
        n(solver, "full_factorizations"),
        n(solver, "adopted_symbolics"),
        n(cache, "result_hits"),
    );
    assert_eq!(
        n(solver, "full_factorizations"),
        1,
        "one pattern, one factorisation"
    );
    assert_eq!(
        n(cache, "result_hits"),
        2,
        "the repeat was served from cache"
    );

    // Graceful shutdown: the daemon drains, acknowledges, and the accept
    // loops wind down.
    request(&mut stream, r#"{"op":"shutdown"}"#)?;
    let bye = next_event(&mut reader)?;
    assert_eq!(bye.get("event").and_then(Json::as_str), Some("bye"));
    drop(stream);
    server.wait();
    assert!(!path.exists(), "socket file removed on clean shutdown");
    println!("shutdown -> bye; daemon drained and stopped cleanly");
    Ok(())
}
