//! Axial marching solver for one evaporating micro-channel.

use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::modulation::HeatZone;
use cmosaic_materials::refrigerant::{Refrigerant, RefrigerantProperties};
use cmosaic_materials::units::{Kelvin, Pressure};

use crate::boiling::{pressure_gradient, two_phase_htc, DRYOUT_QUALITY};
use crate::TwoPhaseError;

/// Inlet operating point of an evaporating channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Working fluid.
    pub fluid: Refrigerant,
    /// Inlet saturation temperature.
    pub inlet_temperature: Kelvin,
    /// Mass flux through the channel cross-section, kg/(m²·s).
    pub mass_flux: f64,
    /// Inlet vapour quality (0 = saturated liquid).
    pub inlet_quality: f64,
    /// Dry-out quality limit.
    pub dryout_quality: f64,
}

impl OperatingPoint {
    /// A saturated-liquid inlet at `t` with mass flux `g`.
    pub fn new(fluid: Refrigerant, t: Kelvin, g: f64) -> Self {
        OperatingPoint {
            fluid,
            inlet_temperature: t,
            mass_flux: g,
            inlet_quality: 0.0,
            dryout_quality: DRYOUT_QUALITY,
        }
    }
}

/// One axial station of the march.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// Axial position from the inlet, m.
    pub z: f64,
    /// Local vapour quality.
    pub quality: f64,
    /// Local pressure.
    pub pressure: Pressure,
    /// Local saturation (fluid) temperature.
    pub t_sat: Kelvin,
    /// Local heat flux on the footprint, W/m².
    pub heat_flux: f64,
    /// Local two-phase heat-transfer coefficient, W/m²K.
    pub htc: f64,
    /// Local channel-wall temperature.
    pub t_wall: Kelvin,
}

/// The completed march.
#[derive(Debug, Clone, PartialEq)]
pub struct MarchResult {
    /// Axial stations, inlet to outlet.
    pub stations: Vec<Station>,
    /// Outlet quality.
    pub outlet_quality: f64,
    /// Total channel pressure drop.
    pub pressure_drop: Pressure,
    /// Margin to dry-out: `dryout_quality − outlet_quality`.
    pub dryout_margin: f64,
}

impl MarchResult {
    /// Outlet fluid (saturation) temperature.
    ///
    /// # Panics
    ///
    /// Panics if the march produced no stations (cannot happen through
    /// [`march_channel`]).
    pub fn outlet_temperature(&self) -> Kelvin {
        self.stations.last().expect("non-empty march").t_sat
    }

    /// Hottest wall temperature along the channel.
    pub fn peak_wall(&self) -> Kelvin {
        self.stations
            .iter()
            .map(|s| s.t_wall)
            .fold(Kelvin(f64::NEG_INFINITY), Kelvin::max)
    }
}

fn zone_flux_at(zones: &[HeatZone], z: f64) -> f64 {
    let mut acc = 0.0;
    for zone in zones {
        if z < acc + zone.length {
            return zone.heat_flux;
        }
        acc += zone.length;
    }
    zones.last().map_or(0.0, |zn| zn.heat_flux)
}

/// Marches the two-phase state along a heated channel.
///
/// `zones` is the piecewise-constant footprint heat-flux profile along the
/// channel; fluxes are per unit *footprint* area of the channel's pitch
/// cell, and `footprint_per_length` converts them to heat per unit channel
/// length (for a channel pitch `p`, this is just `p`).
///
/// # Errors
///
/// * [`TwoPhaseError::NonPositive`] — bad geometry/operating point or
///   `steps == 0`.
/// * [`TwoPhaseError::Dryout`] — the critical quality is crossed.
/// * [`TwoPhaseError::Material`] — the local pressure leaves the
///   saturation-correlation range.
pub fn march_channel(
    geom: &ChannelGeometry,
    zones: &[HeatZone],
    footprint_per_length: f64,
    op: &OperatingPoint,
    steps: usize,
) -> Result<MarchResult, TwoPhaseError> {
    if steps == 0 {
        return Err(TwoPhaseError::NonPositive {
            what: "step count",
            value: 0.0,
        });
    }
    if !(footprint_per_length > 0.0 && footprint_per_length.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "footprint width per channel",
            value: footprint_per_length,
        });
    }
    if !(op.mass_flux > 0.0 && op.mass_flux.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "mass flux",
            value: op.mass_flux,
        });
    }
    if !(0.0..1.0).contains(&op.inlet_quality) {
        return Err(TwoPhaseError::NonPositive {
            what: "inlet quality in [0,1)",
            value: op.inlet_quality,
        });
    }

    let props: RefrigerantProperties = op.fluid.properties();
    let mut pressure = props.saturation_pressure(op.inlet_temperature)?;
    let mut quality = op.inlet_quality;
    let dz = geom.length() / steps as f64;
    let mdot = op.mass_flux * geom.cross_area();
    let inlet_pressure = pressure;

    let mut stations = Vec::with_capacity(steps + 1);
    for i in 0..=steps {
        let z = i as f64 * dz;
        let state = props.saturation_state_at_pressure(pressure)?;
        let q_flux = zone_flux_at(zones, z.min(geom.length() - 1e-12));
        // Heat absorbed per metre of channel (footprint flux × pitch).
        let q_per_len = q_flux * footprint_per_length;
        let dxdz = q_per_len / (mdot * state.h_fg);

        let (htc, t_wall) = if q_flux > 0.0 {
            let h = two_phase_htc(&props, geom, &state, quality, q_flux)?;
            (h, Kelvin(state.temperature.0 + q_flux / h))
        } else {
            let h = crate::boiling::convective_htc(geom, &state, quality);
            (h, state.temperature)
        };

        stations.push(Station {
            z,
            quality,
            pressure,
            t_sat: state.temperature,
            heat_flux: q_flux,
            htc,
            t_wall,
        });

        if i == steps {
            break;
        }

        // Advance quality and pressure over [z, z+dz].
        let dpdz = pressure_gradient(geom, &state, op.mass_flux, quality, dxdz)?;
        quality += dxdz * dz;
        pressure = Pressure(pressure.0 - dpdz * dz);
        if quality >= op.dryout_quality {
            return Err(TwoPhaseError::Dryout {
                position: z + dz,
                quality,
            });
        }
        if pressure.0 <= 0.0 {
            return Err(TwoPhaseError::OutOfValidityRange {
                detail: "channel pressure fell to zero".into(),
            });
        }
    }

    let outlet_quality = quality;
    Ok(MarchResult {
        dryout_margin: op.dryout_quality - outlet_quality,
        outlet_quality,
        pressure_drop: Pressure(inlet_pressure.0 - pressure.0),
        stations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ChannelGeometry {
        ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).unwrap()
    }

    fn uniform_zones(flux: f64) -> Vec<HeatZone> {
        vec![HeatZone {
            length: 12.5e-3,
            heat_flux: flux,
        }]
    }

    fn op(g: f64) -> OperatingPoint {
        OperatingPoint {
            inlet_quality: 0.05,
            ..OperatingPoint::new(Refrigerant::R245fa, Kelvin::from_celsius(30.0), g)
        }
    }

    #[test]
    fn fluid_temperature_falls_along_the_channel() {
        // §III: "in flow boiling the exit temperature of the refrigerant is
        // lower than at the inlet".
        let r = march_channel(&geom(), &uniform_zones(5.0e4), 131e-6, &op(300.0), 100).unwrap();
        let t_in = r.stations.first().unwrap().t_sat;
        let t_out = r.outlet_temperature();
        assert!(
            t_out.0 < t_in.0,
            "outlet {t_out} must be colder than inlet {t_in}"
        );
        // Monotone decline.
        for w in r.stations.windows(2) {
            assert!(w[1].t_sat.0 <= w[0].t_sat.0 + 1e-12);
        }
    }

    #[test]
    fn energy_balance_fixes_outlet_quality() {
        let flux = 5.0e4;
        let r = march_channel(&geom(), &uniform_zones(flux), 131e-6, &op(300.0), 400).unwrap();
        let mdot = 300.0 * geom().cross_area();
        let power = flux * 131e-6 * 12.5e-3;
        // Mean latent heat over the run.
        let h_fg = Refrigerant::R245fa
            .properties()
            .latent_heat(Kelvin::from_celsius(30.0))
            .unwrap();
        let expected_dx = power / (mdot * h_fg);
        let got_dx = r.outlet_quality - 0.05;
        assert!(
            (got_dx - expected_dx).abs() < 0.05 * expected_dx,
            "Δx = {got_dx} vs {expected_dx}"
        );
    }

    #[test]
    fn quality_rises_monotonically_under_heating() {
        let r = march_channel(&geom(), &uniform_zones(3.0e4), 131e-6, &op(300.0), 100).unwrap();
        for w in r.stations.windows(2) {
            assert!(w[1].quality >= w[0].quality);
        }
        assert!(r.dryout_margin > 0.0);
    }

    #[test]
    fn dryout_detected_at_high_duty() {
        // Very low flow + high flux exhausts the liquid film.
        let r = march_channel(&geom(), &uniform_zones(30.0e4), 131e-6, &op(20.0), 200);
        assert!(matches!(r, Err(TwoPhaseError::Dryout { .. })));
    }

    #[test]
    fn hot_zone_raises_wall_temperature_locally() {
        let zones = vec![
            HeatZone {
                length: 5.0e-3,
                heat_flux: 2.0e4,
            },
            HeatZone {
                length: 2.5e-3,
                heat_flux: 30.2e4,
            },
            HeatZone {
                length: 5.0e-3,
                heat_flux: 2.0e4,
            },
        ];
        let r = march_channel(&geom(), &zones, 131e-6, &op(300.0), 250).unwrap();
        let peak = r.peak_wall();
        let first = r.stations[5].t_wall;
        assert!(peak.0 > first.0 + 3.0, "hot row must stand out");
        // The peak wall station sits inside the hot zone.
        let hot = r
            .stations
            .iter()
            .max_by(|a, b| a.t_wall.partial_cmp(&b.t_wall).expect("finite"))
            .unwrap();
        assert!(
            hot.z >= 5.0e-3 && hot.z <= 7.5e-3,
            "peak at {} mm",
            hot.z * 1e3
        );
    }

    #[test]
    fn invalid_operating_points_rejected() {
        assert!(march_channel(&geom(), &uniform_zones(1e4), 131e-6, &op(300.0), 0).is_err());
        assert!(march_channel(&geom(), &uniform_zones(1e4), 0.0, &op(300.0), 10).is_err());
        assert!(march_channel(&geom(), &uniform_zones(1e4), 131e-6, &op(-5.0), 10).is_err());
        let bad_quality = OperatingPoint {
            inlet_quality: 1.2,
            ..op(300.0)
        };
        assert!(march_channel(&geom(), &uniform_zones(1e4), 131e-6, &bad_quality, 10).is_err());
    }
}
