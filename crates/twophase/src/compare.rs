//! Water vs. refrigerant comparison (§III).
//!
//! "Since the latent heat of vaporization of most common refrigerants is
//! large compared to the specific heat of water … the flow rate of the
//! two-phase coolant can be as little as 1/5 to 1/10 that of water …
//! two-phase cooling enjoys a significant energy savings with respect to
//! water (about 80-90 % less energy consumption in the micro-channels)."
//!
//! The comparison is at *equal heat load and equal thermal-uniformity
//! budget*: water carries the heat sensibly, so its flow is set by the
//! allowed fluid temperature rise (a few kelvin if the die must stay
//! thermally uniform); the refrigerant absorbs latent heat at essentially
//! constant temperature, so its flow is set by the exit quality the
//! dry-out margin permits.

use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::LiquidProperties;
use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::{Kelvin, Pressure};

use crate::boiling::lockhart_martinelli_gradient;
use crate::TwoPhaseError;

/// Outcome of the §III comparison for one heat load.
#[derive(Debug, Clone, PartialEq)]
pub struct CoolantComparison {
    /// Required water mass flow, kg/s.
    pub water_mass_flow: f64,
    /// Required refrigerant mass flow, kg/s.
    pub refrigerant_mass_flow: f64,
    /// `refrigerant / water` mass-flow ratio (the paper's 1/5–1/10).
    pub flow_ratio: f64,
    /// Water pumping power, W (ΔP·Q̇, unit pump efficiency).
    pub water_pump_power: f64,
    /// Refrigerant pumping power, W.
    pub refrigerant_pump_power: f64,
    /// Pumping-energy saving, percent (the paper's 80–90 %).
    pub pump_saving_pct: f64,
    /// Water outlet temperature rise, K (positive).
    pub water_exit_rise: f64,
    /// Refrigerant outlet temperature *drop*, K (positive number — the
    /// fluid leaves colder).
    pub refrigerant_exit_drop: f64,
}

/// Compares water and two-phase cooling for a heat load `q_watts` removed
/// through `n_channels` channels of the given geometry.
///
/// * `water_dt_budget` — allowed sensible temperature rise for water, K
///   (the thermal-uniformity budget; §II.C quotes 40 K as the *unbudgeted*
///   consequence at full power, uniform designs want single-digit K).
/// * `exit_quality` — refrigerant design exit quality (must stay below the
///   dry-out limit).
///
/// # Errors
///
/// [`TwoPhaseError::NonPositive`] for invalid budgets,
/// [`TwoPhaseError::OutOfValidityRange`] if either side leaves its
/// correlation envelope.
pub fn compare_for_load(
    q_watts: f64,
    n_channels: usize,
    geom: &ChannelGeometry,
    fluid: Refrigerant,
    inlet: Kelvin,
    water_dt_budget: f64,
    exit_quality: f64,
) -> Result<CoolantComparison, TwoPhaseError> {
    if !(q_watts > 0.0 && q_watts.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "heat load",
            value: q_watts,
        });
    }
    if n_channels == 0 {
        return Err(TwoPhaseError::NonPositive {
            what: "channel count",
            value: 0.0,
        });
    }
    if !(water_dt_budget > 0.0 && water_dt_budget.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "water temperature budget",
            value: water_dt_budget,
        });
    }
    if !(exit_quality > 0.0 && exit_quality < crate::boiling::DRYOUT_QUALITY) {
        return Err(TwoPhaseError::NonPositive {
            what: "exit quality below the dry-out limit",
            value: exit_quality,
        });
    }

    // --- Water side: sensible heat, flow from the ΔT budget.
    let water =
        LiquidProperties::water_at(inlet).map_err(|e| TwoPhaseError::OutOfValidityRange {
            detail: e.to_string(),
        })?;
    let water_mass_flow = q_watts / (water.specific_heat * water_dt_budget);
    let water_q_per_channel = water_mass_flow / water.density / n_channels as f64;
    let water_dp = geom
        .pressure_drop(water_q_per_channel, &water)
        .map_err(|e| TwoPhaseError::OutOfValidityRange {
            detail: e.to_string(),
        })?;
    let water_pump = water_dp.0 * water_q_per_channel * n_channels as f64;

    // --- Refrigerant side: latent heat, flow from the exit quality.
    let props = fluid.properties();
    let state = props.saturation_state(inlet)?;
    let refrigerant_mass_flow = q_watts / (state.h_fg * exit_quality);
    let g = refrigerant_mass_flow / n_channels as f64 / geom.cross_area();
    // Mean-quality separated-flow pressure gradient over the channel (the
    // conservative model for pump sizing; see `boiling`).
    let mean_x = exit_quality / 2.0;
    let dpdz = lockhart_martinelli_gradient(geom, &state, g, mean_x)?;
    let ref_dp = Pressure(dpdz * geom.length());
    // Flow work dissipated in the channels: ΔP · volumetric flow at the
    // mean homogeneous density.
    let ref_pump = ref_dp.0 * (refrigerant_mass_flow / state.homogeneous_density(mean_x));
    let exit_drop = props.dtsat_dp(inlet)? * ref_dp.0;

    Ok(CoolantComparison {
        water_mass_flow,
        refrigerant_mass_flow,
        flow_ratio: refrigerant_mass_flow / water_mass_flow,
        water_pump_power: water_pump,
        refrigerant_pump_power: ref_pump,
        pump_saving_pct: (1.0 - ref_pump / water_pump) * 100.0,
        water_exit_rise: water_dt_budget,
        refrigerant_exit_drop: exit_drop,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> ChannelGeometry {
        ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).unwrap()
    }

    #[test]
    fn flow_ratio_is_one_fifth_to_one_tenth() {
        // §III with a tight (4 K) water uniformity budget.
        let c = compare_for_load(
            100.0,
            135,
            &geom(),
            Refrigerant::R134a,
            Kelvin::from_celsius(30.0),
            4.0,
            0.55,
        )
        .unwrap();
        assert!(
            c.flow_ratio > 0.08 && c.flow_ratio < 0.25,
            "flow ratio = {:.3} (expect ~1/5..1/10)",
            c.flow_ratio
        );
    }

    #[test]
    fn pump_saving_is_eighty_to_ninety_percent() {
        let c = compare_for_load(
            100.0,
            135,
            &geom(),
            Refrigerant::R134a,
            Kelvin::from_celsius(30.0),
            4.0,
            0.55,
        )
        .unwrap();
        assert!(
            c.pump_saving_pct > 70.0 && c.pump_saving_pct < 99.0,
            "pump saving = {:.1} % (paper: 80-90 %)",
            c.pump_saving_pct
        );
    }

    #[test]
    fn exit_temperatures_move_in_opposite_directions() {
        let c = compare_for_load(
            60.0,
            135,
            &geom(),
            Refrigerant::R245fa,
            Kelvin::from_celsius(30.0),
            5.0,
            0.4,
        )
        .unwrap();
        assert!(c.water_exit_rise > 0.0, "water heats up");
        assert!(c.refrigerant_exit_drop > 0.0, "refrigerant cools down");
    }

    #[test]
    fn all_three_refrigerants_need_far_less_flow() {
        for fluid in Refrigerant::all() {
            let c = compare_for_load(
                80.0,
                135,
                &geom(),
                fluid,
                Kelvin::from_celsius(30.0),
                4.0,
                0.5,
            )
            .unwrap();
            assert!(c.flow_ratio < 0.35, "{fluid}: ratio {}", c.flow_ratio);
            assert!(c.refrigerant_exit_drop > 0.0, "{fluid}");
        }
    }

    #[test]
    fn higher_saturation_pressure_pumps_cheaper() {
        // §III: "the proper refrigerant must be chosen" — denser vapour
        // (higher reduced pressure) keeps the two-phase pressure drop and
        // pumping power down. R134a (6.6 bar at 25 °C) must beat R245fa
        // (1.5 bar) at the same duty.
        let run = |fluid| {
            compare_for_load(
                80.0,
                135,
                &geom(),
                fluid,
                Kelvin::from_celsius(30.0),
                4.0,
                0.5,
            )
            .unwrap()
        };
        let r134a = run(Refrigerant::R134a);
        let r245fa = run(Refrigerant::R245fa);
        assert!(
            r134a.refrigerant_pump_power < r245fa.refrigerant_pump_power,
            "{} !< {}",
            r134a.refrigerant_pump_power,
            r245fa.refrigerant_pump_power
        );
        assert!(r134a.pump_saving_pct > 70.0);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let g = geom();
        let t = Kelvin::from_celsius(30.0);
        assert!(compare_for_load(0.0, 135, &g, Refrigerant::R134a, t, 4.0, 0.5).is_err());
        assert!(compare_for_load(10.0, 0, &g, Refrigerant::R134a, t, 4.0, 0.5).is_err());
        assert!(compare_for_load(10.0, 135, &g, Refrigerant::R134a, t, 0.0, 0.5).is_err());
        // Exit quality beyond dry-out.
        assert!(compare_for_load(10.0, 135, &g, Refrigerant::R134a, t, 4.0, 0.9).is_err());
    }
}
