//! Local flow-boiling correlations.
//!
//! * **Nucleate** heat transfer uses the Cooper pool-boiling form
//!   `h = C(P_r, M) · q″ⁿ` with `n = 0.75` and the prefactor normalised so
//!   that R245fa at 30 °C reproduces the ≈32 kW/m²K the Fig. 8 experiment
//!   measured at 30.2 W/cm² (and ≈4 kW/m²K at 2 W/cm²). The `q″`-dominance
//!   of the HTC is what makes the hot-spot superheat grow only ~2× under a
//!   15× heat-flux contrast (§IV.B).
//! * **Convective** heat transfer is the laminar liquid-film value with a
//!   mild quality enhancement; it matters only at very low flux.
//! * **Pressure gradient** uses the homogeneous two-phase model (McAdams
//!   viscosity, mass-averaged density) with friction + acceleration terms —
//!   enough to reproduce the 0.5 K saturation-temperature decline of
//!   Fig. 8 and the <0.9 bar drops of Agostini's experiments.

use crate::TwoPhaseError;
use cmosaic_hydraulics::duct::{nusselt_h1, ChannelGeometry};
use cmosaic_materials::refrigerant::{RefrigerantProperties, SaturationState};

/// Default critical (dry-out) vapour quality.
pub const DRYOUT_QUALITY: f64 = 0.65;

/// Nucleate-boiling exponent on heat flux.
pub const NUCLEATE_EXPONENT: f64 = 0.75;

/// Calibration constant: R245fa at 30 °C gives `h = 2.48·q″^0.75`
/// (32 kW/m²K at 30.2 W/cm²), anchored on the micro-evaporator data the
/// paper's Fig. 8 presents (ref. \[10]).
const NUCLEATE_CALIBRATION: f64 = 2.48;

/// Cooper's reduced-pressure/molar-mass factor, unnormalised.
fn cooper_factor(props: &RefrigerantProperties, state: &SaturationState) -> f64 {
    let pr = state.pressure.0 / props.critical_pressure().0;
    let pr = pr.clamp(1e-4, 0.9);
    pr.powf(0.12) * (-pr.log10()).powf(-0.55) * (props.molar_mass() * 1e3).powf(-0.5)
}

/// Nucleate-boiling HTC (W/m²K) at wall heat flux `q_wall` (W/m², on the
/// heated footprint).
///
/// # Errors
///
/// Returns [`TwoPhaseError::NonPositive`] for a non-positive flux.
pub fn nucleate_htc(
    props: &RefrigerantProperties,
    state: &SaturationState,
    q_wall: f64,
) -> Result<f64, TwoPhaseError> {
    if !(q_wall > 0.0 && q_wall.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "wall heat flux",
            value: q_wall,
        });
    }
    // Normalise the Cooper factor by its R245fa@30 °C value so the
    // calibration constant carries the absolute level.
    let r245fa = cmosaic_materials::refrigerant::Refrigerant::R245fa.properties();
    let ref_state = r245fa
        .saturation_state(cmosaic_materials::units::Kelvin::from_celsius(30.0))
        .expect("R245fa reference state is in range");
    let scale = cooper_factor(props, state) / cooper_factor(&r245fa, &ref_state);
    Ok(NUCLEATE_CALIBRATION * scale * q_wall.powf(NUCLEATE_EXPONENT))
}

/// Convective (liquid-film) HTC with a mild quality enhancement.
pub fn convective_htc(geom: &ChannelGeometry, state: &SaturationState, quality: f64) -> f64 {
    let h_liquid = nusselt_h1(geom.aspect_ratio()) * state.k_liquid / geom.hydraulic_diameter();
    h_liquid * (1.0 + 2.5 * quality.clamp(0.0, 1.0))
}

/// Combined two-phase HTC: cubic blend of the nucleate and convective
/// contributions (asymptotically picks the dominant mechanism).
///
/// # Errors
///
/// Same as [`nucleate_htc`].
pub fn two_phase_htc(
    props: &RefrigerantProperties,
    geom: &ChannelGeometry,
    state: &SaturationState,
    quality: f64,
    q_wall: f64,
) -> Result<f64, TwoPhaseError> {
    let h_nb = nucleate_htc(props, state, q_wall)?;
    let h_cb = convective_htc(geom, state, quality);
    Ok((h_nb.powi(3) + h_cb.powi(3)).powf(1.0 / 3.0))
}

/// Homogeneous two-phase frictional + accelerational pressure gradient
/// (Pa/m, positive in the flow direction) at mass flux `g` (kg/m²s) and
/// quality-change rate `dxdz` (1/m).
///
/// # Errors
///
/// * [`TwoPhaseError::NonPositive`] — non-positive mass flux.
/// * [`TwoPhaseError::OutOfValidityRange`] — turbulent two-phase Reynolds
///   number (>10⁴).
pub fn pressure_gradient(
    geom: &ChannelGeometry,
    state: &SaturationState,
    g: f64,
    quality: f64,
    dxdz: f64,
) -> Result<f64, TwoPhaseError> {
    if !(g > 0.0 && g.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "mass flux",
            value: g,
        });
    }
    let x = quality.clamp(0.0, 1.0);
    let rho_h = state.homogeneous_density(x);
    let mu_h = state.homogeneous_viscosity(x);
    let dh = geom.hydraulic_diameter();
    let re = g * dh / mu_h;
    if re > 1.0e4 {
        return Err(TwoPhaseError::OutOfValidityRange {
            detail: format!("two-phase Re = {re:.0} > 1e4"),
        });
    }
    // Laminar-form Fanning friction with a floor for wavy/transitional
    // flow.
    let f = (16.0 / re).max(0.003);
    let friction = 2.0 * f * g * g / (rho_h * dh);
    // Acceleration: G² · d(1/ρ_h)/dx · dx/dz.
    let dv = 1.0 / state.rho_vapor - 1.0 / state.rho_liquid;
    let acceleration = g * g * dv * dxdz.max(0.0);
    Ok(friction + acceleration)
}

/// Separated-flow (Lockhart–Martinelli) frictional pressure gradient
/// (Pa/m) — the standard model for sizing two-phase pumping loops; it
/// predicts larger drops than the homogeneous model at moderate quality.
///
/// `φ_l² = 1 + C/X + 1/X²` with the laminar-laminar constant `C = 5`.
///
/// # Errors
///
/// Same conditions as [`pressure_gradient`].
pub fn lockhart_martinelli_gradient(
    geom: &ChannelGeometry,
    state: &SaturationState,
    g: f64,
    quality: f64,
) -> Result<f64, TwoPhaseError> {
    if !(g > 0.0 && g.is_finite()) {
        return Err(TwoPhaseError::NonPositive {
            what: "mass flux",
            value: g,
        });
    }
    let x = quality.clamp(1e-4, 1.0 - 1e-4);
    let dh = geom.hydraulic_diameter();
    // Phase-alone gradients (laminar Fanning, f = 16/Re).
    let alone = |g_phase: f64, mu: f64, rho: f64| -> Result<f64, TwoPhaseError> {
        let re = g_phase * dh / mu;
        if re > 1.0e4 {
            return Err(TwoPhaseError::OutOfValidityRange {
                detail: format!("phase-alone Re = {re:.0} > 1e4"),
            });
        }
        let f = (16.0 / re).max(0.003);
        Ok(2.0 * f * g_phase * g_phase / (rho * dh))
    };
    let dp_l = alone(g * (1.0 - x), state.mu_liquid, state.rho_liquid)?;
    let dp_v = alone(g * x, state.mu_vapor, state.rho_vapor)?;
    let x_param = (dp_l / dp_v).sqrt();
    let phi_l2 = 1.0 + 5.0 / x_param + 1.0 / (x_param * x_param);
    Ok(phi_l2 * dp_l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::refrigerant::Refrigerant;
    use cmosaic_materials::units::Kelvin;

    fn r245fa_at_30() -> (RefrigerantProperties, SaturationState) {
        let p = Refrigerant::R245fa.properties();
        let s = p.saturation_state(Kelvin::from_celsius(30.0)).unwrap();
        (p, s)
    }

    fn fig8_geometry() -> ChannelGeometry {
        ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).unwrap()
    }

    #[test]
    fn nucleate_htc_matches_fig8_anchors() {
        let (p, s) = r245fa_at_30();
        // 30.2 W/cm² hot row → ≈32 kW/m²K; 2 W/cm² background → ≈4 kW/m²K.
        let h_hot = nucleate_htc(&p, &s, 30.2e4).unwrap();
        let h_low = nucleate_htc(&p, &s, 2.0e4).unwrap();
        assert!((h_hot - 3.2e4).abs() < 0.2e4, "h_hot = {h_hot}");
        assert!((h_low - 4.2e3).abs() < 0.5e3, "h_low = {h_low}");
    }

    #[test]
    fn htc_ratio_is_submultiplicative_in_flux() {
        // §IV.B: HTC 8× higher under a 15× hot spot.
        let (p, s) = r245fa_at_30();
        let ratio = nucleate_htc(&p, &s, 30.2e4).unwrap() / nucleate_htc(&p, &s, 2.0e4).unwrap();
        assert!(ratio > 5.0 && ratio < 10.0, "ratio = {ratio}");
        // Wall superheat q/h therefore grows only ~2x (vs 15x with water).
        let superheat_ratio = 15.1 / ratio;
        assert!(superheat_ratio > 1.4 && superheat_ratio < 3.0);
    }

    #[test]
    fn other_refrigerants_scale_with_cooper_factor() {
        let g = 10.0e4;
        let (p245, s245) = r245fa_at_30();
        let h245 = nucleate_htc(&p245, &s245, g).unwrap();
        for fluid in [Refrigerant::R134a, Refrigerant::R236fa] {
            let p = fluid.properties();
            let s = p.saturation_state(Kelvin::from_celsius(30.0)).unwrap();
            let h = nucleate_htc(&p, &s, g).unwrap();
            assert!(h > 0.3 * h245 && h < 3.0 * h245, "{fluid}: {h} vs {h245}");
        }
    }

    #[test]
    fn convective_part_grows_with_quality() {
        let (_, s) = r245fa_at_30();
        let g = fig8_geometry();
        assert!(convective_htc(&g, &s, 0.5) > convective_htc(&g, &s, 0.0));
    }

    #[test]
    fn blended_htc_dominated_by_the_larger_mechanism() {
        let (p, s) = r245fa_at_30();
        let g = fig8_geometry();
        let h = two_phase_htc(&p, &g, &s, 0.1, 30.2e4).unwrap();
        let h_nb = nucleate_htc(&p, &s, 30.2e4).unwrap();
        assert!(h >= h_nb && h < 1.3 * h_nb);
    }

    #[test]
    fn pressure_gradient_increases_with_quality_and_flux() {
        let (_, s) = r245fa_at_30();
        let g = fig8_geometry();
        let low = pressure_gradient(&g, &s, 300.0, 0.05, 0.0).unwrap();
        let high_x = pressure_gradient(&g, &s, 300.0, 0.4, 0.0).unwrap();
        let high_g = pressure_gradient(&g, &s, 600.0, 0.05, 0.0).unwrap();
        assert!(high_x > low, "quality raises dp/dz");
        assert!(high_g > low, "mass flux raises dp/dz");
        // Acceleration term adds on top.
        let acc = pressure_gradient(&g, &s, 300.0, 0.05, 5.0).unwrap();
        assert!(acc > low);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let (p, s) = r245fa_at_30();
        let g = fig8_geometry();
        assert!(nucleate_htc(&p, &s, 0.0).is_err());
        assert!(pressure_gradient(&g, &s, -1.0, 0.1, 0.0).is_err());
        assert!(matches!(
            pressure_gradient(&g, &s, 5.0e4, 0.9, 0.0),
            Err(TwoPhaseError::OutOfValidityRange { .. })
        ));
        assert!(lockhart_martinelli_gradient(&g, &s, -1.0, 0.1).is_err());
    }

    #[test]
    fn lockhart_martinelli_exceeds_homogeneous_at_moderate_quality() {
        let (_, s) = r245fa_at_30();
        let g = fig8_geometry();
        for x in [0.1, 0.25, 0.4] {
            let lm = lockhart_martinelli_gradient(&g, &s, 300.0, x).unwrap();
            let hom = pressure_gradient(&g, &s, 300.0, x, 0.0).unwrap();
            assert!(lm > hom, "x={x}: LM {lm} should exceed homogeneous {hom}");
            assert!(lm < 10.0 * hom, "x={x}: LM {lm} implausibly large vs {hom}");
        }
    }
}
