//! Two-phase (flow-boiling) micro-channel cooling — §III of the paper.
//!
//! Flow boiling evaporates a refrigerant inside the micro-channels and
//! removes heat as latent heat. The behaviours this crate reproduces are
//! the ones §III highlights as decisive for 3D MPSoCs:
//!
//! * the refrigerant's temperature **falls** from inlet to outlet (the
//!   saturation temperature tracks the falling pressure), unlike
//!   single-phase coolants which heat up;
//! * the heat-transfer coefficient **rises under hot spots** (nucleate
//!   boiling intensifies with heat flux), so the wall superheat grows only
//!   ~2× under a 15× heat-flux hot spot where water cooling would see the
//!   full 15×;
//! * the required flow rate is ~1/5–1/10 of water's, cutting pumping
//!   energy by 80–90 %;
//! * all of this holds only while the annular liquid film survives —
//!   dry-out is tracked as a hard validity bound.
//!
//! Modules:
//!
//! * [`boiling`] — local correlations: Cooper-form nucleate HTC, laminar
//!   convective contribution, homogeneous two-phase pressure gradient.
//! * [`channel`] — the axial marching solver for one heated channel.
//! * [`evaporator`] — the Fig. 8 micro-evaporator: 135 × 85 µm channels, a
//!   5×7 heater array with a 30.2 W/cm² hot-spot row against a 2 W/cm²
//!   background, R245fa entering saturated at 30 °C.
//! * [`compare`] — the §III water-vs-refrigerant flow/pumping comparison.
//!
//! # Example
//!
//! ```
//! use cmosaic_twophase::evaporator::MicroEvaporator;
//!
//! # fn main() -> Result<(), cmosaic_twophase::TwoPhaseError> {
//! let result = MicroEvaporator::fig8().solve(200)?;
//! // The outlet is *colder* than the 30 °C inlet (Fig. 8: 29.5 °C).
//! assert!(result.outlet_fluid.to_celsius().0 < 30.0);
//! // The hot row's HTC is many times the background rows'.
//! let ratio = result.rows[2].htc / result.rows[0].htc;
//! assert!(ratio > 4.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boiling;
pub mod channel;
pub mod compare;
pub mod evaporator;

pub use channel::{march_channel, MarchResult, OperatingPoint, Station};
pub use evaporator::{EvaporatorResult, MicroEvaporator, RowReading};

use cmosaic_materials::MaterialError;

use std::error::Error;
use std::fmt;

/// Errors produced by the flow-boiling models.
#[derive(Debug, Clone, PartialEq)]
pub enum TwoPhaseError {
    /// A geometric or operating quantity was not strictly positive.
    NonPositive {
        /// What the quantity describes.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The liquid film dried out before the channel exit.
    Dryout {
        /// Axial position (m) where the critical quality was crossed.
        position: f64,
        /// The local vapour quality there.
        quality: f64,
    },
    /// The operating point left the correlation validity range.
    OutOfValidityRange {
        /// Explanation.
        detail: String,
    },
    /// A refrigerant-property query failed.
    Material(MaterialError),
}

impl fmt::Display for TwoPhaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoPhaseError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            TwoPhaseError::Dryout { position, quality } => write!(
                f,
                "film dry-out at z = {:.2} mm (quality {quality:.3})",
                position * 1e3
            ),
            TwoPhaseError::OutOfValidityRange { detail } => {
                write!(f, "outside correlation validity: {detail}")
            }
            TwoPhaseError::Material(e) => write!(f, "refrigerant property error: {e}"),
        }
    }
}

impl Error for TwoPhaseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TwoPhaseError::Material(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MaterialError> for TwoPhaseError {
    fn from(e: MaterialError) -> Self {
        TwoPhaseError::Material(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = TwoPhaseError::Dryout {
            position: 0.01,
            quality: 0.71,
        };
        assert!(e.to_string().contains("10.00 mm"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TwoPhaseError>();
    }
}
