//! The Fig. 8 micro-evaporator test vehicle.
//!
//! §IV.B: a silicon die with 35 micro-heaters and 35 RTD sensors in a 5×7
//! grid on one face, cooled by R245fa evaporating in 135 parallel 85 µm
//! channels on the other face. Heater rows 1–2 and 4–5 dissipate 2 W/cm²;
//! row 3 is the 15×-stronger hot-spot stripe at 30.2 W/cm². The
//! refrigerant enters saturated at 30 °C and leaves ≈0.5 K *colder*.
//!
//! The solver marches one representative channel (all 135 see the same
//! axial profile — the heater rows span the full die width) and reports
//! per-sensor-row readings: heat flux, HTC, fluid/wall temperature, and
//! the base (heater-side) temperature obtained by 1-D conduction through
//! the die.

use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::modulation::HeatZone;
use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::solids::SolidMaterial;
use cmosaic_materials::units::{Kelvin, Pressure};

use crate::channel::{march_channel, OperatingPoint};
use crate::TwoPhaseError;

/// Number of sensor rows along the flow direction.
pub const SENSOR_ROWS: usize = 5;

/// The micro-evaporator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroEvaporator {
    channels: usize,
    geometry: ChannelGeometry,
    /// Channel pitch across the die (m).
    pitch: f64,
    /// Per-row footprint heat flux, inlet row first (W/m²).
    row_fluxes: [f64; SENSOR_ROWS],
    /// Die thickness between channel wall and heater plane (m).
    base_thickness: f64,
    base_material: SolidMaterial,
    operating: OperatingPoint,
}

impl MicroEvaporator {
    /// The Fig. 8 vehicle: 135 channels of 85 µm × 560 µm over a 12.5 mm
    /// heated length, 131 µm pitch, rows at \[2, 2, 30.2, 2, 2\] W/cm²,
    /// R245fa entering at 30 °C saturation with a 300 kg/m²s mass flux.
    pub fn fig8() -> Self {
        MicroEvaporator {
            channels: 135,
            geometry: ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).expect("static geometry"),
            pitch: 131e-6,
            row_fluxes: [2.0e4, 2.0e4, 30.2e4, 2.0e4, 2.0e4],
            base_thickness: 380e-6,
            base_material: SolidMaterial::silicon(),
            operating: OperatingPoint {
                inlet_quality: 0.05,
                ..OperatingPoint::new(Refrigerant::R245fa, Kelvin::from_celsius(30.0), 300.0)
            },
        }
    }

    /// Replaces the per-row heat fluxes (W/m², inlet row first).
    pub fn with_row_fluxes(mut self, fluxes: [f64; SENSOR_ROWS]) -> Self {
        self.row_fluxes = fluxes;
        self
    }

    /// Replaces the operating point.
    pub fn with_operating_point(mut self, op: OperatingPoint) -> Self {
        self.operating = op;
        self
    }

    /// Number of parallel channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Channel geometry.
    pub fn geometry(&self) -> &ChannelGeometry {
        &self.geometry
    }

    /// Total heater power, watts.
    pub fn total_power(&self) -> f64 {
        let row_len = self.geometry.length() / SENSOR_ROWS as f64;
        let die_width = self.pitch * self.channels as f64;
        self.row_fluxes
            .iter()
            .map(|f| f * row_len * die_width)
            .sum()
    }

    /// Solves the evaporator with `steps` axial stations.
    ///
    /// # Errors
    ///
    /// Forwards marching errors ([`TwoPhaseError::Dryout`] in particular).
    pub fn solve(&self, steps: usize) -> Result<EvaporatorResult, TwoPhaseError> {
        let row_len = self.geometry.length() / SENSOR_ROWS as f64;
        let zones: Vec<HeatZone> = self
            .row_fluxes
            .iter()
            .map(|&heat_flux| HeatZone {
                length: row_len,
                heat_flux,
            })
            .collect();
        let march = march_channel(&self.geometry, &zones, self.pitch, &self.operating, steps)?;

        // Aggregate stations into per-row readings (mid-row sampling, as
        // the RTDs sit at row centres).
        let conduction = self.base_thickness / self.base_material.thermal_conductivity();
        let mut rows = Vec::with_capacity(SENSOR_ROWS);
        for (row, &flux) in self.row_fluxes.iter().enumerate() {
            let z_mid = (row as f64 + 0.5) * row_len;
            let station = march
                .stations
                .iter()
                .min_by(|a, b| {
                    (a.z - z_mid)
                        .abs()
                        .partial_cmp(&(b.z - z_mid).abs())
                        .expect("finite")
                })
                .expect("non-empty march");
            rows.push(RowReading {
                row: row + 1,
                heat_flux: flux,
                htc: station.htc,
                fluid: station.t_sat,
                wall: station.t_wall,
                base: Kelvin(station.t_wall.0 + flux * conduction),
            });
        }

        Ok(EvaporatorResult {
            rows,
            inlet_fluid: march.stations.first().expect("non-empty").t_sat,
            outlet_fluid: march.outlet_temperature(),
            pressure_drop: march.pressure_drop,
            outlet_quality: march.outlet_quality,
            dryout_margin: march.dryout_margin,
            total_power: self.total_power(),
        })
    }
}

impl Default for MicroEvaporator {
    fn default() -> Self {
        MicroEvaporator::fig8()
    }
}

/// Readings of one sensor row (what Fig. 8 plots against row number).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowReading {
    /// Row number, 1 (inlet) … 5 (outlet).
    pub row: usize,
    /// Applied heat flux, W/m².
    pub heat_flux: f64,
    /// Local heat-transfer coefficient, W/m²K.
    pub htc: f64,
    /// Local fluid (saturation) temperature.
    pub fluid: Kelvin,
    /// Channel-wall temperature.
    pub wall: Kelvin,
    /// Heater-plane (base) temperature: wall + conduction through the die.
    pub base: Kelvin,
}

/// Complete solved state of the micro-evaporator.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaporatorResult {
    /// Per-sensor-row readings, inlet first.
    pub rows: Vec<RowReading>,
    /// Fluid temperature at the inlet.
    pub inlet_fluid: Kelvin,
    /// Fluid temperature at the outlet (colder than the inlet!).
    pub outlet_fluid: Kelvin,
    /// Total channel pressure drop.
    pub pressure_drop: Pressure,
    /// Outlet vapour quality.
    pub outlet_quality: f64,
    /// Margin to the dry-out quality.
    pub dryout_margin: f64,
    /// Total heater power, watts.
    pub total_power: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_outlet_is_about_half_a_kelvin_colder() {
        let r = MicroEvaporator::fig8().solve(500).unwrap();
        let drop = r.inlet_fluid.0 - r.outlet_fluid.0;
        assert!(
            drop > 0.2 && drop < 1.2,
            "Fig. 8 reports ≈0.5 K decline, got {drop:.2} K"
        );
        assert!((r.inlet_fluid.to_celsius().0 - 30.0).abs() < 0.05);
    }

    #[test]
    fn fig8_hot_row_htc_is_many_times_higher() {
        // §IV.B: "the local heat transfer coefficient under the hot spot is
        // 8 times higher".
        let r = MicroEvaporator::fig8().solve(500).unwrap();
        let ratio = r.rows[2].htc / r.rows[0].htc;
        assert!(ratio > 5.0 && ratio < 10.0, "HTC ratio = {ratio:.1}");
    }

    #[test]
    fn fig8_wall_superheat_only_doubles_under_the_hot_spot() {
        // "…so that the wall superheat is only 2 times higher under the hot
        // spot rather than 15 times with water cooling."
        let r = MicroEvaporator::fig8().solve(500).unwrap();
        let superheat = |row: &RowReading| row.wall.0 - row.fluid.0;
        let ratio = superheat(&r.rows[2]) / superheat(&r.rows[0]);
        assert!(ratio > 1.4 && ratio < 3.2, "superheat ratio = {ratio:.2}");
        // Water cooling would see the full flux ratio.
        let flux_ratio = r.rows[2].heat_flux / r.rows[0].heat_flux;
        assert!((flux_ratio - 15.1).abs() < 0.1);
        assert!(ratio < flux_ratio / 4.0);
    }

    #[test]
    fn base_is_warmer_than_wall_is_warmer_than_fluid() {
        let r = MicroEvaporator::fig8().solve(300).unwrap();
        for row in &r.rows {
            assert!(row.base.0 > row.wall.0);
            assert!(row.wall.0 > row.fluid.0);
        }
        // The hot row dominates the base-temperature profile, like the
        // Fig. 8 peak at sensor row 3.
        let peak_row = r
            .rows
            .iter()
            .max_by(|a, b| a.base.partial_cmp(&b.base).expect("finite"))
            .unwrap();
        assert_eq!(peak_row.row, 3);
    }

    #[test]
    fn pressure_drop_is_well_below_the_agostini_bound() {
        // §III: heat fluxes to 255 W/cm² were handled with < 0.9 bar.
        let r = MicroEvaporator::fig8().solve(300).unwrap();
        assert!(r.pressure_drop.to_bar() < 0.9);
        assert!(r.pressure_drop.0 > 0.0);
    }

    #[test]
    fn total_power_matches_row_arithmetic() {
        let e = MicroEvaporator::fig8();
        // 4 rows at 2 W/cm² + 1 row at 30.2 W/cm², rows of
        // (12.5/5) mm × 135·131 µm.
        let row_area = 2.5e-3 * 135.0 * 131e-6;
        let expected = (4.0 * 2.0e4 + 30.2e4) * row_area;
        assert!((e.total_power() - expected).abs() < 1e-9);
        // ~17 W total.
        assert!(e.total_power() > 10.0 && e.total_power() < 25.0);
    }

    #[test]
    fn no_dryout_at_the_fig8_operating_point() {
        let r = MicroEvaporator::fig8().solve(300).unwrap();
        assert!(r.dryout_margin > 0.3, "margin = {}", r.dryout_margin);
        assert!(r.outlet_quality < 0.3);
    }

    #[test]
    fn builders_replace_fields() {
        let e = MicroEvaporator::fig8()
            .with_row_fluxes([1e4; 5])
            .with_operating_point(OperatingPoint::new(
                Refrigerant::R236fa,
                Kelvin::from_celsius(25.0),
                200.0,
            ));
        let r = e.solve(200).unwrap();
        assert!((r.rows[0].heat_flux - 1e4).abs() < 1e-9);
        assert!((r.inlet_fluid.to_celsius().0 - 25.0).abs() < 0.05);
    }
}
