//! Property-based tests of the flow-boiling march: physical invariants
//! that must hold for any in-range operating point.

use cmosaic_hydraulics::duct::ChannelGeometry;
use cmosaic_hydraulics::modulation::HeatZone;
use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::Kelvin;
use cmosaic_twophase::channel::{march_channel, OperatingPoint};
use cmosaic_twophase::TwoPhaseError;
use proptest::prelude::*;

fn geometry() -> ChannelGeometry {
    ChannelGeometry::new(85e-6, 560e-6, 12.5e-3).expect("static geometry")
}

fn operating_point(g: f64, t_c: f64, x_in: f64) -> OperatingPoint {
    OperatingPoint {
        inlet_quality: x_in,
        ..OperatingPoint::new(Refrigerant::R245fa, Kelvin::from_celsius(t_c), g)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Saturation temperature never increases and quality never decreases
    /// along a heated channel, for any in-range operating point.
    #[test]
    fn monotone_profiles(
        g in 150.0f64..800.0,
        t_c in 20.0f64..45.0,
        x_in in 0.0f64..0.2,
        flux in 5.0e3f64..1.2e5,
    ) {
        let zones = [HeatZone { length: 12.5e-3, heat_flux: flux }];
        match march_channel(&geometry(), &zones, 131e-6, &operating_point(g, t_c, x_in), 120) {
            Ok(r) => {
                for w in r.stations.windows(2) {
                    prop_assert!(w[1].t_sat.0 <= w[0].t_sat.0 + 1e-9);
                    prop_assert!(w[1].quality >= w[0].quality - 1e-12);
                    prop_assert!(w[1].pressure.0 <= w[0].pressure.0 + 1e-9);
                }
                prop_assert!(r.pressure_drop.0 > 0.0);
                prop_assert!(r.dryout_margin > 0.0);
                // Walls are superheated wherever flux is applied.
                for s in &r.stations {
                    prop_assert!(s.t_wall.0 >= s.t_sat.0);
                    prop_assert!(s.htc > 0.0);
                }
            }
            // Dry-out is an acceptable outcome for aggressive samples; any
            // other error would be a bug.
            Err(TwoPhaseError::Dryout { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }

    /// Energy closure: outlet quality equals inlet plus absorbed heat over
    /// ṁ·h_fg within discretisation error.
    #[test]
    fn energy_closure(
        g in 200.0f64..700.0,
        flux in 1.0e4f64..6.0e4,
    ) {
        let zones = [HeatZone { length: 12.5e-3, heat_flux: flux }];
        let op = operating_point(g, 30.0, 0.05);
        if let Ok(r) = march_channel(&geometry(), &zones, 131e-6, &op, 300) {
            let mdot = g * geometry().cross_area();
            let power = flux * 131e-6 * 12.5e-3;
            let h_fg = Refrigerant::R245fa
                .properties()
                .latent_heat(Kelvin::from_celsius(30.0))
                .expect("in range");
            let expected = 0.05 + power / (mdot * h_fg);
            prop_assert!(
                (r.outlet_quality - expected).abs() < 0.08 * (expected - 0.05).max(1e-6) + 1e-4,
                "outlet {} vs expected {expected}",
                r.outlet_quality
            );
        }
    }

    /// The boiling HTC grows with the applied flux at a fixed station —
    /// the self-regulation behind the paper's hot-spot claim.
    #[test]
    fn htc_grows_with_flux(
        flux_lo in 1.0e4f64..4.0e4,
        ratio in 1.5f64..6.0,
    ) {
        let run = |flux: f64| {
            let zones = [HeatZone { length: 12.5e-3, heat_flux: flux }];
            march_channel(&geometry(), &zones, 131e-6, &operating_point(500.0, 30.0, 0.05), 60)
        };
        if let (Ok(lo), Ok(hi)) = (run(flux_lo), run(flux_lo * ratio)) {
            let h_lo = lo.stations[30].htc;
            let h_hi = hi.stations[30].htc;
            prop_assert!(h_hi > h_lo, "HTC must grow with flux: {h_hi} !> {h_lo}");
            // Sub-linear growth => superheat still rises, but slower than
            // the flux.
            let sh_lo = lo.stations[30].t_wall.0 - lo.stations[30].t_sat.0;
            let sh_hi = hi.stations[30].t_wall.0 - hi.stations[30].t_sat.0;
            prop_assert!(sh_hi / sh_lo < ratio, "superheat grew faster than flux");
        }
    }
}
