//! Parallel batch sweep engine: fan a matrix of co-simulation scenarios
//! across a worker pool, sharing the one-per-pattern thermal symbolic
//! analysis, with results that are bit-identical at any thread count.
//!
//! Design-space exploration (the paper's Figs. 6–8, a thermally-aware
//! floorplanner's inner loop) evaluates the same stack family at many
//! operating points: the [`Scenario`] matrices a
//! [`Study`](crate::study::Study) expands. [`BatchRunner`] executes such a
//! matrix on a `std::thread::scope` pool with a work-stealing index
//! cursor, and layers two guarantees on top:
//!
//! * **One full factorisation per pattern.** Scenarios are grouped by
//!   thermal-operator pattern ([`Scenario::same_operator_pattern`]: stack,
//!   grid and thermal parameters). The first scenario of each group — the
//!   *donor*, fixed by scenario order, never by thread scheduling — runs
//!   first and exports its frozen
//!   [`SharedAnalysis`]; every other
//!   scenario of the group adopts it and goes straight to cheap numeric
//!   refactorisation. Across the whole batch the expensive pivoting
//!   factorisation runs exactly once per distinct pattern, however many
//!   scenarios and threads are in play.
//! * **Deterministic aggregation.** Results land in slots indexed by
//!   scenario position; each scenario is itself deterministic, and the
//!   donor/adopter structure depends only on scenario order — so
//!   [`BatchRunner::run_scenarios`] returns bit-identical
//!   [`RunMetrics`] whether it ran on 1 thread or 8 (asserted by the
//!   tests).
//!
//! Donor release is **per group**, not a global barrier: the job queue is
//! ordered donors-first, and an adopter of pattern group `g` waits (on a
//! condvar) only until donor `g` has published its analysis — adopters of
//! a fast group start while a slow group's donor (e.g. the 4-tier stacks
//! of the fig6 matrix) is still factorising. The wait is deadlock-free by
//! construction: every donor precedes every adopter in the queue, a
//! worker executing a donor never waits, and a failed donor publishes an
//! empty analysis so its adopters proceed unshared. None of this changes
//! the deterministic structure — who donates to whom is fixed by scenario
//! order alone.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use cmosaic_thermal::{SharedAnalysis, SolverStats};

use crate::metrics::RunMetrics;
use crate::observe::Observer;
use crate::scenario::Scenario;
use crate::CmosaicError;

/// What one worker produces for one scenario, alongside its observer.
type JobResult = Result<(RunMetrics, SolverStats, Option<SharedAnalysis>), CmosaicError>;

/// The outcome of one scenario of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Position in the scenario slice handed to the runner.
    pub index: usize,
    /// The run's aggregated metrics.
    pub metrics: RunMetrics,
    /// Thermal solver-path counters: donors show one full factorisation,
    /// adopters show zero (refactor-only).
    pub solver: SolverStats,
}

/// Results of one batch sweep, in scenario order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One outcome per scenario, index-aligned with the input slice.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Distinct operator-pattern groups the batch contained.
    pub pattern_groups: usize,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchReport {
    /// Total full pivoting factorisations across every scenario — with
    /// analysis sharing enabled this equals `pattern_groups`.
    pub fn total_full_factorizations(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.solver.full_factorizations)
            .sum()
    }
}

/// Runs a set of independent co-simulation scenarios across a thread
/// pool. See the [module docs](self) for the sharing and determinism
/// guarantees.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    share_analysis: bool,
}

impl BatchRunner {
    /// Creates a runner with `threads` workers (donor scenarios first,
    /// then everything else, both phases work-stealing). A zero thread
    /// count is clamped to one worker, so
    /// `BatchRunner::new(available_parallelism_hint)` is always safe.
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            share_analysis: true,
        }
    }

    /// Disables cross-scenario symbolic-analysis sharing (every scenario
    /// pays its own full factorisation). Useful for measuring what the
    /// sharing buys.
    pub fn without_shared_analysis(mut self) -> Self {
        self.share_analysis = false;
        self
    }

    /// Worker threads this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every scenario and returns the outcomes in scenario
    /// order.
    ///
    /// # Errors
    ///
    /// If any scenario fails, the error of the lowest-indexed failing
    /// scenario is returned (deterministic regardless of thread count).
    pub fn run_scenarios(&self, scenarios: &[Scenario]) -> Result<BatchReport, CmosaicError> {
        self.run_scenarios_observed(scenarios, |_, _| ())
            .map(|(report, _)| report)
    }

    /// Executes every scenario with one observer apiece, created by
    /// `factory(index, scenario)` inside the worker that runs the
    /// scenario; the observers are returned in scenario order.
    ///
    /// # Errors
    ///
    /// Same as [`BatchRunner::run_scenarios`] (observers of failed
    /// scenarios are discarded with the batch).
    pub fn run_scenarios_observed<O, F>(
        &self,
        scenarios: &[Scenario],
        factory: F,
    ) -> Result<(BatchReport, Vec<O>), CmosaicError>
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
    {
        let n = scenarios.len();
        // Group scenarios by operator pattern; the first of each group is
        // its donor.
        let mut group_reps: Vec<usize> = Vec::new();
        let mut group_of = vec![0usize; n];
        for (i, s) in scenarios.iter().enumerate() {
            match group_reps
                .iter()
                .position(|&r| scenarios[r].same_operator_pattern(s))
            {
                Some(g) => group_of[i] = g,
                None => {
                    group_of[i] = group_reps.len();
                    group_reps.push(i);
                }
            }
        }
        let donors = &group_reps;

        let slots: Mutex<Vec<Option<(JobResult, O)>>> = Mutex::new((0..n).map(|_| None).collect());
        let run_one = |i: usize, adopt: Option<&SharedAnalysis>| {
            let mut observer = factory(i, &scenarios[i]);
            let r = run_scenario(&scenarios[i], adopt, &mut observer);
            (r, observer)
        };
        if self.share_analysis {
            // Donors-first job order plus per-group release: an adopter
            // only ever waits for its *own* group's donor. `published[g]`
            // is `None` until donor `g` finishes, then `Some(analysis)`
            // (`Some(None)` for a donor that failed or had nothing to
            // share, so adopters proceed unshared instead of waiting
            // forever).
            let mut jobs: Vec<usize> = donors.clone();
            jobs.extend((0..n).filter(|i| !donors.contains(i)));
            let published: Mutex<Vec<Option<Option<SharedAnalysis>>>> =
                Mutex::new(vec![None; group_reps.len()]);
            let ready = Condvar::new();
            // Publishes a group's analysis on drop, so a donor that
            // *panics* mid-run (not just one that returns Err) still
            // releases its adopters — otherwise they would wait on the
            // condvar forever and the scoped join could never complete.
            struct PublishOnDrop<'a> {
                g: usize,
                table: &'a Mutex<Vec<Option<Option<SharedAnalysis>>>>,
                ready: &'a Condvar,
                analysis: Option<SharedAnalysis>,
            }
            impl Drop for PublishOnDrop<'_> {
                fn drop(&mut self) {
                    // Keep publishing even if another panicking worker
                    // poisoned the lock: stranding adopters is worse.
                    let mut guard = match self.table.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard[self.g] = Some(self.analysis.take());
                    drop(guard);
                    self.ready.notify_all();
                }
            }
            self.par_run(&jobs, &slots, |i| {
                let g = group_of[i];
                if donors[g] == i {
                    let mut publish = PublishOnDrop {
                        g,
                        table: &published,
                        ready: &ready,
                        analysis: None,
                    };
                    let out = run_one(i, None);
                    if let Ok((_, _, a)) = &out.0 {
                        publish.analysis = a.clone();
                    }
                    drop(publish);
                    out
                } else {
                    // Recover from a poisoned table the same way the drop
                    // guard does: a panicking donor poisons the mutex as
                    // it publishes, and adopters — this group's and every
                    // healthy group's — must still proceed rather than
                    // cascade a misleading secondary panic.
                    let guard = published
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    let guard = ready
                        .wait_while(guard, |p| p[g].is_none())
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    // SharedAnalysis is Arc-backed; the clone is cheap.
                    let analysis = guard[g].clone().expect("donor published");
                    drop(guard);
                    run_one(i, analysis.as_ref())
                }
            });
        } else {
            let all: Vec<usize> = (0..n).collect();
            self.par_run(&all, &slots, |i| run_one(i, None));
        }

        let mut outcomes = Vec::with_capacity(n);
        let mut observers = Vec::with_capacity(n);
        let slots = slots.into_inner().expect("result slots poisoned");
        for (index, slot) in slots.into_iter().enumerate() {
            let (result, observer) = slot.expect("every scenario was scheduled");
            let (metrics, solver, _) = result?;
            outcomes.push(ScenarioOutcome {
                index,
                metrics,
                solver,
            });
            observers.push(observer);
        }
        Ok((
            BatchReport {
                outcomes,
                pattern_groups: group_reps.len(),
                threads: self.threads,
            },
            observers,
        ))
    }

    /// Executes a matrix of legacy flat configs (the pre-`ScenarioSpec`
    /// API). Thin adapter: every config is converted to a spec, built,
    /// and run through [`BatchRunner::run_scenarios`].
    ///
    /// # Errors
    ///
    /// Build errors first, then the error of the lowest-indexed failing
    /// scenario.
    #[allow(deprecated)]
    #[deprecated(
        since = "0.2.0",
        note = "build a `Study` (or `ScenarioSpec`s) and call `run_scenarios`"
    )]
    pub fn run(
        &self,
        scenarios: &[crate::experiments::PolicyRunConfig],
    ) -> Result<BatchReport, CmosaicError> {
        let scenarios: Vec<Scenario> = scenarios
            .iter()
            .map(|c| c.to_spec().build())
            .collect::<Result<_, _>>()?;
        self.run_scenarios(&scenarios)
    }

    /// Runs `f` over `jobs` (scenario indices) on up to `self.threads`
    /// scoped workers with a shared work-stealing cursor, writing each
    /// result into its scenario's slot.
    fn par_run<T, F>(&self, jobs: &[usize], slots: &Mutex<Vec<Option<T>>>, f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if jobs.is_empty() {
            return;
        }
        let workers = self.threads.min(jobs.len());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let j = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&idx) = jobs.get(j) else { break };
                    let out = f(idx);
                    slots.lock().expect("result slots poisoned")[idx] = Some(out);
                });
            }
        });
    }
}

/// Runs one scenario end to end, optionally adopting a donor's thermal
/// analysis before initialisation.
fn run_scenario<O: Observer>(
    scenario: &Scenario,
    adopt: Option<&SharedAnalysis>,
    observer: &mut O,
) -> JobResult {
    let mut sim = scenario.build_simulator()?;
    if let Some(analysis) = adopt {
        sim.adopt_thermal_analysis(analysis);
    }
    sim.initialize()?;
    let metrics = sim.run_observed(scenario.seconds(), observer)?;
    let analysis = sim.export_thermal_analysis();
    Ok((metrics, sim.solver_stats(), analysis))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::EnergyBreakdown;
    use crate::policy::PolicyKind;
    use crate::scenario::ScenarioSpec;
    use cmosaic_floorplan::GridSpec;
    use cmosaic_power::trace::WorkloadKind;

    fn tiny_grid() -> GridSpec {
        GridSpec::new(6, 6).expect("static")
    }

    fn tiny_matrix() -> Vec<Scenario> {
        crate::experiments::fig6_study(2, 7, tiny_grid())
            .build()
            .expect("valid specs")
    }

    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        // The core guarantee: the fig6 scenario matrix at 1 thread and at
        // 8 threads yields bit-identical RunMetrics per scenario.
        let scenarios = tiny_matrix();
        let serial = BatchRunner::new(1).run_scenarios(&scenarios).unwrap();
        let parallel = BatchRunner::new(8).run_scenarios(&scenarios).unwrap();
        assert_eq!(serial.outcomes.len(), scenarios.len());
        assert_eq!(
            serial.outcomes, parallel.outcomes,
            "scenario outcomes must not depend on thread count"
        );
        assert_eq!(serial.pattern_groups, parallel.pattern_groups);
    }

    #[test]
    fn shared_analysis_factorises_once_per_pattern() {
        // All four scenarios are 2-tier liquid-cooled on one grid: one
        // pattern group, so exactly one full pivoting factorisation in
        // the whole batch — the donor's. Adopters ride refactor-only.
        let scenarios: Vec<Scenario> = [
            (PolicyKind::LcLb, WorkloadKind::WebServer),
            (PolicyKind::LcFuzzy, WorkloadKind::WebServer),
            (PolicyKind::LcLb, WorkloadKind::Database),
            (PolicyKind::LcFuzzy, WorkloadKind::Multimedia),
        ]
        .into_iter()
        .map(|(policy, workload)| {
            ScenarioSpec::new()
                .policy(policy)
                .workload(workload)
                .seconds(2)
                .seed(3)
                .grid(tiny_grid())
                .build()
                .expect("valid spec")
        })
        .collect();
        let report = BatchRunner::new(4).run_scenarios(&scenarios).unwrap();
        assert_eq!(report.pattern_groups, 1);
        assert_eq!(report.total_full_factorizations(), 1);
        assert_eq!(report.outcomes[0].solver.full_factorizations, 1);
        for o in &report.outcomes[1..] {
            assert_eq!(o.solver.full_factorizations, 0, "adopter {}", o.index);
            assert_eq!(o.solver.adopted_symbolics, 1);
            assert!(o.solver.refactorizations >= 1);
        }

        // Without sharing, every scenario pays its own factorisation —
        // and the metrics still agree with the shared run to solver
        // round-off... but bitwise they are allowed to differ, so only
        // the counter is asserted here.
        let unshared = BatchRunner::new(2)
            .without_shared_analysis()
            .run_scenarios(&scenarios)
            .unwrap();
        assert_eq!(unshared.total_full_factorizations(), scenarios.len() as u64);
    }

    #[test]
    fn per_group_release_keeps_identity_and_sharing_on_interleaved_groups() {
        // Scenarios deliberately interleave two pattern groups (2-tier and
        // 4-tier) so the donors are not the first two entries of the input
        // order; per-group release must still hand each adopter its own
        // group's analysis, factorise once per group, and stay
        // bit-identical across thread counts.
        let mk = |tiers: usize, seed: u64| {
            ScenarioSpec::new()
                .tiers(tiers)
                .seed(seed)
                .seconds(2)
                .grid(tiny_grid())
                .build()
                .expect("valid spec")
        };
        let scenarios = vec![mk(2, 1), mk(4, 1), mk(2, 2), mk(4, 2), mk(2, 3), mk(4, 3)];
        let serial = BatchRunner::new(1).run_scenarios(&scenarios).unwrap();
        let parallel = BatchRunner::new(4).run_scenarios(&scenarios).unwrap();
        assert_eq!(serial.outcomes, parallel.outcomes);
        assert_eq!(serial.pattern_groups, 2);
        assert_eq!(serial.total_full_factorizations(), 2);
        // Donors are the first scenario of each group in input order.
        for (idx, o) in serial.outcomes.iter().enumerate() {
            if idx < 2 {
                assert_eq!(o.solver.full_factorizations, 1, "donor {idx}");
            } else {
                assert_eq!(o.solver.full_factorizations, 0, "adopter {idx}");
                assert_eq!(o.solver.adopted_symbolics, 1, "adopter {idx}");
            }
        }
    }

    #[test]
    fn failed_donor_releases_its_adopters() {
        // A donor that fails at run time must publish an empty analysis so
        // its adopters are not stranded on the condvar; the batch then
        // reports the donor's error (lowest failing index) after every
        // scenario ran.
        let good = ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap();
        // A two-phase scenario starved to dry-out fails inside the run.
        let failing = ScenarioSpec::new()
            .two_phase(cmosaic_thermal::TwoPhaseCoolant::r134a_30c(8.0))
            .policy(PolicyKind::LcLb)
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap();
        // Failing donor first, then its (also failing) group-mate, then a
        // healthy group.
        let scenarios = vec![failing.clone(), failing, good];
        let r = BatchRunner::new(2).run_scenarios(&scenarios);
        assert!(r.is_err(), "the failing donor's error must surface");
        let serial = BatchRunner::new(1).run_scenarios(&scenarios).unwrap_err();
        assert_eq!(
            r.unwrap_err().to_string(),
            serial.to_string(),
            "deterministic error selection across thread counts"
        );
    }

    #[test]
    fn fig6_matrix_spans_the_expected_pattern_groups() {
        // 7 configurations × 4 workloads, 4 distinct (tiers, cooling)
        // patterns on one grid.
        let scenarios = tiny_matrix();
        assert_eq!(scenarios.len(), 28);
        let report = BatchRunner::new(2).run_scenarios(&scenarios).unwrap();
        assert_eq!(report.pattern_groups, 4);
        assert_eq!(report.total_full_factorizations(), 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = BatchRunner::new(3).run_scenarios(&[]).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.pattern_groups, 0);
    }

    #[test]
    fn zero_threads_clamp_to_one_worker() {
        // `BatchRunner::new(0)` used to panic — a footgun for callers
        // deriving the count from an `available_parallelism` hint that
        // can legitimately be zero.
        let runner = BatchRunner::new(0);
        assert_eq!(runner.threads(), 1);
        let scenarios = vec![ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap()];
        let report = runner.run_scenarios(&scenarios).unwrap();
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn observers_are_returned_in_scenario_order() {
        let scenarios: Vec<Scenario> = [4usize, 2]
            .into_iter()
            .map(|secs| {
                ScenarioSpec::new()
                    .seconds(secs)
                    .grid(tiny_grid())
                    .build()
                    .unwrap()
            })
            .collect();
        let (report, energies) = BatchRunner::new(2)
            .run_scenarios_observed(&scenarios, |_, _| EnergyBreakdown::new())
            .unwrap();
        assert_eq!(energies.len(), 2);
        assert_eq!(energies[0].trajectory().len(), 4);
        assert_eq!(energies[1].trajectory().len(), 2);
        for (o, e) in report.outcomes.iter().zip(&energies) {
            assert_eq!(
                o.metrics.chip_energy,
                e.chip_joules(),
                "observer integration matches the run metrics"
            );
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_config_adapter_matches_the_scenario_path() {
        // The deprecated `run(&[PolicyRunConfig])` shim must produce
        // bit-identical outcomes to the ScenarioSpec path it wraps.
        use crate::experiments::fig6_scenario_matrix;
        let legacy = fig6_scenario_matrix(2, 7, tiny_grid());
        let via_shim = BatchRunner::new(2).run(&legacy).unwrap();
        let via_scenarios = BatchRunner::new(2).run_scenarios(&tiny_matrix()).unwrap();
        assert_eq!(via_shim, via_scenarios);
    }
}
