//! Parallel batch sweep engine: fan a matrix of co-simulation scenarios
//! across a worker pool, sharing the one-per-pattern thermal symbolic
//! analysis, with results that are bit-identical at any thread count —
//! and with every failure contained to its own slot.
//!
//! Design-space exploration (the paper's Figs. 6–8, a thermally-aware
//! floorplanner's inner loop) evaluates the same stack family at many
//! operating points: the [`Scenario`] matrices a
//! [`Study`](crate::study::Study) expands. [`BatchRunner`] executes such a
//! matrix on a `std::thread::scope` pool with a work-stealing index
//! cursor, and layers three guarantees on top:
//!
//! * **One full factorisation per pattern.** Scenarios are grouped by
//!   thermal-operator pattern ([`Scenario::same_operator_pattern`]: stack,
//!   grid and thermal parameters). The first scenario of each group — the
//!   *donor*, fixed by scenario order, never by thread scheduling — runs
//!   first and exports its frozen
//!   [`SharedAnalysis`]; every other
//!   scenario of the group adopts it and goes straight to cheap numeric
//!   refactorisation. Across the whole batch the expensive pivoting
//!   factorisation runs exactly once per distinct pattern, however many
//!   scenarios and threads are in play.
//! * **Deterministic aggregation.** Results land in slots indexed by
//!   scenario position; each scenario is itself deterministic, and the
//!   donor/adopter structure depends only on scenario order — so
//!   [`BatchRunner::run_scenarios`] returns bit-identical
//!   [`RunMetrics`] whether it ran on 1 thread or 8 (asserted by the
//!   tests).
//! * **Fault isolation.** One scenario panicking, diverging or erroring
//!   never takes the batch down: every attempt runs under
//!   `catch_unwind`, retryable failures walk a deterministic
//!   degradation ladder (stepwise backend demotion multigrid→ILU(0)→
//!   direct, then up to two Δt halvings — see [`RecoveryRecord`]), and
//!   the final
//!   [`BatchReport`] carries a per-slot `Result` so healthy outcomes
//!   survive alongside structured [`SlotError`]s. Because the ladder is
//!   a pure function of the scenario (never of thread scheduling), the
//!   per-slot results — including the errors — stay bit-identical
//!   across thread counts.
//!
//! Donor release is **per group**, not a global barrier: the job queue is
//! ordered donors-first, and an adopter of pattern group `g` waits (on a
//! condvar) only until donor `g` has published its analysis — adopters of
//! a fast group start while a slow group's donor (e.g. the 4-tier stacks
//! of the fig6 matrix) is still factorising. The wait is deadlock-free by
//! construction: every donor precedes every adopter in the queue, a
//! worker executing a donor never waits, and a failed or panicking donor
//! publishes an empty analysis (via a drop guard) so its adopters proceed
//! unshared. None of this changes the deterministic structure — who
//! donates to whom is fixed by scenario order alone.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use cmosaic_thermal::{SharedAnalysis, SolverStats, ThermalError};

use crate::metrics::RunMetrics;
use crate::observe::Observer;
use crate::scenario::Scenario;
use crate::CmosaicError;

/// Maximum Δt halvings the retry ladder applies to one scenario.
const MAX_DT_HALVINGS: u32 = 2;

/// Maximum backend demotions the retry ladder applies to one scenario —
/// enough to walk the full multigrid → ILU(0) → direct ladder.
const MAX_BACKEND_DEMOTIONS: u32 = 2;

/// How hard the retry/degradation ladder worked for one slot.
///
/// A clean run is `attempts: 1` with zero demotions and halvings. The
/// ladder is deterministic per scenario: after a retryable failure it
/// first demotes the backend one rung down the solver ladder (multigrid
/// → ILU(0) at the same operating point → direct LU, each demotion
/// sticky), then halves the thermal timestep up to two times, re-running
/// the whole scenario from scratch at each rung. Non-retryable failures
/// (panics, config errors, dry-out) stop the ladder immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryRecord {
    /// Full scenario attempts made (1 = clean first try; 0 only for
    /// slots that were never scheduled).
    pub attempts: u32,
    /// Backend demotions taken (up to 2: multigrid → ILU(0) → direct;
    /// ILU(0) starts one rung in, direct starts at the bottom).
    pub backend_demotions: u32,
    /// Thermal-timestep halvings applied (at most two).
    pub dt_halvings: u32,
}

impl RecoveryRecord {
    /// `true` when the slot succeeded or failed on its first attempt
    /// with no degradation applied.
    pub fn clean(&self) -> bool {
        self.attempts <= 1 && self.backend_demotions == 0 && self.dt_halvings == 0
    }
}

/// Why one scenario of a batch failed — the structured taxonomy carried
/// per slot in a [`BatchReport`].
///
/// Equality is *bitwise* on the diverged value (`f64::to_bits`), so two
/// reports carrying the same NaN compare equal — required for the
/// bit-identity contract across thread counts and resumes.
#[derive(Debug, Clone)]
pub enum ScenarioError {
    /// The scenario's worker caught a panic (isolated via
    /// `catch_unwind`; the rest of the batch is unaffected). Panics are
    /// never retried.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// The per-epoch divergence guard found a non-finite or physically
    /// implausible cell temperature, on every rung of the retry ladder.
    Diverged {
        /// Control interval at which the guard tripped (last attempt).
        epoch: usize,
        /// Offending cell (layer-major, lowest index wins).
        cell: usize,
        /// The offending temperature in kelvin (NaN, ±∞, or out of the
        /// physical band).
        value: f64,
    },
    /// Any other simulation failure, carried as its rendered message so
    /// the error stays `Clone`/`Send` across worker boundaries.
    Failed {
        /// The underlying error's display rendering.
        detail: String,
    },
}

impl PartialEq for ScenarioError {
    fn eq(&self, other: &Self) -> bool {
        use ScenarioError::*;
        match (self, other) {
            (Panicked { message: a }, Panicked { message: b }) => a == b,
            (
                Diverged {
                    epoch: e1,
                    cell: c1,
                    value: v1,
                },
                Diverged {
                    epoch: e2,
                    cell: c2,
                    value: v2,
                },
            ) => e1 == e2 && c1 == c2 && v1.to_bits() == v2.to_bits(),
            (Failed { detail: a }, Failed { detail: b }) => a == b,
            _ => false,
        }
    }
}

impl ScenarioError {
    /// Maps a simulation error into the slot taxonomy.
    fn from_error(e: CmosaicError) -> Self {
        match e {
            CmosaicError::Diverged { epoch, cell, value } => {
                ScenarioError::Diverged { epoch, cell, value }
            }
            other => ScenarioError::Failed {
                detail: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Panicked { message } => write!(f, "scenario panicked: {message}"),
            ScenarioError::Diverged { epoch, cell, value } => write!(
                f,
                "simulation diverged at epoch {epoch}: cell {cell} reached {value} K"
            ),
            ScenarioError::Failed { detail } => f.write_str(detail),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A failed batch slot: the final error after the retry ladder gave up,
/// plus the ladder's footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotError {
    /// Why the last attempt failed.
    pub error: ScenarioError,
    /// What the ladder tried before giving up.
    pub recovery: RecoveryRecord,
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} attempts)",
            self.error, self.recovery.attempts
        )
    }
}

impl std::error::Error for SlotError {}

/// The outcome of one successful scenario of a batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Position in the scenario slice handed to the runner.
    pub index: usize,
    /// The run's aggregated metrics.
    pub metrics: RunMetrics,
    /// Thermal solver-path counters: donors show one full factorisation,
    /// adopters show zero (refactor-only).
    pub solver: SolverStats,
    /// What the retry ladder did to get here (clean on the happy path).
    pub recovery: RecoveryRecord,
}

/// Results of one batch sweep, in scenario order. Always complete: a
/// failed scenario occupies its slot as a [`SlotError`] instead of
/// discarding the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One result per scenario, index-aligned with the input slice.
    pub slots: Vec<Result<ScenarioOutcome, SlotError>>,
    /// Distinct operator-pattern groups the batch contained.
    pub pattern_groups: usize,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchReport {
    /// The successful outcomes, in scenario order (indexable; failed
    /// slots are skipped — their indices live in
    /// [`ScenarioOutcome::index`]).
    pub fn outcomes(&self) -> Vec<&ScenarioOutcome> {
        self.slots.iter().filter_map(|s| s.as_ref().ok()).collect()
    }

    /// The failed slots as `(scenario index, error)`, in scenario order.
    pub fn errors(&self) -> Vec<(usize, &SlotError)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().err().map(|e| (i, e)))
            .collect()
    }

    /// The lowest-indexed failure, if any — deterministic regardless of
    /// thread count.
    pub fn first_error(&self) -> Option<(usize, &SlotError)> {
        self.slots
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.as_ref().err().map(|e| (i, e)))
    }

    /// `true` when every scenario succeeded.
    pub fn all_ok(&self) -> bool {
        self.slots.iter().all(Result::is_ok)
    }

    /// Number of scenarios in the batch (successful or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total full pivoting factorisations across every successful
    /// scenario — with analysis sharing enabled and no failures this
    /// equals `pattern_groups`.
    pub fn total_full_factorizations(&self) -> u64 {
        self.outcomes()
            .iter()
            .map(|o| o.solver.full_factorizations)
            .sum()
    }
}

/// What one successful attempt produces.
struct JobSuccess {
    metrics: RunMetrics,
    solver: SolverStats,
    analysis: Option<SharedAnalysis>,
}

/// Locks a mutex, recovering the guard even when another worker panicked
/// while holding it — the data is index-sloted and each slot is written
/// once, so a poisoned lock carries no torn state worth propagating.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload (string payloads verbatim).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// `true` for failures the degradation ladder may retry: divergence and
/// linear-solver breakdowns. Panics, config errors and physical limits
/// (e.g. two-phase dry-out) are final.
fn retryable(e: &CmosaicError) -> bool {
    matches!(
        e,
        CmosaicError::Diverged { .. } | CmosaicError::Thermal(ThermalError::Solver(_))
    )
}

/// One job of a batch run.
#[derive(Clone, Copy)]
enum Job {
    /// Run scenario `i` (donor or adopter by group structure).
    Run(usize),
    /// Rebuild and publish the frozen analysis of an already-completed
    /// donor (resumed runs only): build + initialise reproduces the
    /// identical symbolic analysis the donor exported originally, so
    /// pending adopters of a resumed study adopt bit-identically.
    Regen(usize),
}

/// Runs a set of independent co-simulation scenarios across a thread
/// pool. See the [module docs](self) for the sharing, determinism and
/// fault-isolation guarantees.
#[derive(Debug, Clone)]
pub struct BatchRunner {
    threads: usize,
    share_analysis: bool,
    job_limit: Option<usize>,
}

impl BatchRunner {
    /// Creates a runner with `threads` workers (donor scenarios first,
    /// then everything else, both phases work-stealing). A zero thread
    /// count is clamped to one worker, so
    /// `BatchRunner::new(available_parallelism_hint)` is always safe.
    pub fn new(threads: usize) -> Self {
        BatchRunner {
            threads: threads.max(1),
            share_analysis: true,
            job_limit: None,
        }
    }

    /// Disables cross-scenario symbolic-analysis sharing (every scenario
    /// pays its own full factorisation). Useful for measuring what the
    /// sharing buys.
    pub fn without_shared_analysis(mut self) -> Self {
        self.share_analysis = false;
        self
    }

    /// Caps how many jobs this run executes, leaving later scenarios
    /// unscheduled (their slots report a `Failed` error). Because the
    /// job order is fixed by scenario order (donors first), the set of
    /// executed jobs — and hence the report — is deterministic at any
    /// thread count. This is the checkpoint drill hook: it emulates a
    /// run killed partway so resume paths can be exercised exactly.
    pub fn with_job_limit(mut self, limit: usize) -> Self {
        self.job_limit = Some(limit);
        self
    }

    /// Worker threads this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes every scenario and returns the per-slot results in
    /// scenario order. Never fails as a whole: panicking, diverging or
    /// erroring scenarios surface as [`SlotError`]s in their own slots
    /// while healthy scenarios complete normally.
    pub fn run_scenarios(&self, scenarios: &[Scenario]) -> BatchReport {
        self.run_scenarios_observed(scenarios, |_, _| ()).0
    }

    /// Executes every scenario with one observer apiece, created by
    /// `factory(index, scenario)` inside the worker that runs the
    /// scenario; the observers are returned in scenario order, `None`
    /// for slots that failed (each retry attempt gets a fresh observer;
    /// the returned one belongs to the successful attempt).
    pub fn run_scenarios_observed<O, F>(
        &self,
        scenarios: &[Scenario],
        factory: F,
    ) -> (BatchReport, Vec<Option<O>>)
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
    {
        self.run_scenarios_resumed(scenarios, &[], factory, |_, _| {})
    }

    /// [`run_scenarios_observed`](Self::run_scenarios_observed) with a
    /// cross-batch analysis cache spliced in: before a pattern group's
    /// donor runs, `seed(scenario)` is consulted with the group's
    /// representative; a `Some` analysis is adopted by *every* scenario
    /// of the group — donor included — so a warm pattern costs zero full
    /// factorisations in this batch. Fresh analyses donated by unseeded
    /// groups are returned as `(scenario index, analysis)` pairs for the
    /// caller to keep (the index is the group representative's, so
    /// `scenarios[i].pattern_fingerprint()` keys it).
    ///
    /// Seeding is bit-neutral: since analysis donation normalises donor
    /// and adopter onto the same numeric sweep, a scenario's outcome is
    /// the same bitwise whether its pattern was seeded, donated within
    /// the batch, or factorised standalone. Only the [`SolverStats`]
    /// counters observe the difference.
    pub fn run_scenarios_seeded_observed<O, F, S>(
        &self,
        scenarios: &[Scenario],
        seed: S,
        factory: F,
    ) -> (BatchReport, Vec<Option<O>>, Vec<(usize, SharedAnalysis)>)
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
        S: Fn(&Scenario) -> Option<SharedAnalysis> + Sync,
    {
        self.run_scenarios_engine(scenarios, &[], &seed, factory, |_, _| {})
    }

    /// The full engine: optionally resumes from prior per-slot results
    /// (`completed`, index-aligned or empty) and reports each freshly
    /// finished slot through `record` from inside the worker — the hook
    /// the study journal appends from, so an interrupted process has
    /// every finished scenario on disk.
    ///
    /// Completed slots are not re-run; their prior results are merged
    /// into the report verbatim. A completed *donor* whose group still
    /// has pending adopters gets a cheap regeneration job
    /// ([`Job::Regen`]) when its journaled result shows it had published
    /// (succeeded without backend demotion), keeping resumed adopters
    /// bit-identical to the uninterrupted run.
    pub(crate) fn run_scenarios_resumed<O, F, R>(
        &self,
        scenarios: &[Scenario],
        completed: &[Option<Result<ScenarioOutcome, SlotError>>],
        factory: F,
        record: R,
    ) -> (BatchReport, Vec<Option<O>>)
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
        R: Fn(usize, &Result<ScenarioOutcome, SlotError>) + Sync,
    {
        let (report, observers, _) =
            self.run_scenarios_engine(scenarios, completed, &|_| None, factory, record);
        (report, observers)
    }

    /// The innermost engine behind every run flavour: resume merging,
    /// analysis seeding, per-slot observers and the record hook in one
    /// place (see the public wrappers for the individual contracts).
    fn run_scenarios_engine<O, F, R>(
        &self,
        scenarios: &[Scenario],
        completed: &[Option<Result<ScenarioOutcome, SlotError>>],
        seed: &(dyn Fn(&Scenario) -> Option<SharedAnalysis> + Sync),
        factory: F,
        record: R,
    ) -> (BatchReport, Vec<Option<O>>, Vec<(usize, SharedAnalysis)>)
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
        R: Fn(usize, &Result<ScenarioOutcome, SlotError>) + Sync,
    {
        let n = scenarios.len();
        debug_assert!(completed.is_empty() || completed.len() == n);
        let done = |i: usize| completed.get(i).is_some_and(Option::is_some);
        // Group scenarios by operator pattern; the first of each group is
        // its donor. Grouping runs over the full slice (not just pending
        // scenarios) so a resumed run sees the identical structure.
        let mut group_reps: Vec<usize> = Vec::new();
        let mut group_of = vec![0usize; n];
        for (i, s) in scenarios.iter().enumerate() {
            match group_reps
                .iter()
                .position(|&r| scenarios[r].same_operator_pattern(s))
            {
                Some(g) => group_of[i] = g,
                None => {
                    group_of[i] = group_reps.len();
                    group_reps.push(i);
                }
            }
        }
        let donors = &group_reps;

        type Slot<O> = Option<(Result<ScenarioOutcome, SlotError>, Option<O>)>;
        let slots: Mutex<Vec<Slot<O>>> = Mutex::new((0..n).map(|_| None).collect());
        let run_one = |i: usize, adopt: Option<&SharedAnalysis>| {
            run_with_recovery(&scenarios[i], adopt, || factory(i, &scenarios[i]))
        };
        // Converts an attempt result into the slot shape, reports it,
        // and stores it.
        let finish = |i: usize,
                      result: Result<(JobSuccess, RecoveryRecord), SlotError>,
                      observer: Option<O>| {
            let slot = result.map(|(success, recovery)| ScenarioOutcome {
                index: i,
                metrics: success.metrics,
                solver: success.solver,
                recovery,
            });
            record(i, &slot);
            lock_unpoisoned(&slots)[i] = Some((slot, observer));
        };

        let mut harvested: Vec<(usize, SharedAnalysis)> = Vec::new();
        if self.share_analysis {
            // Donors-first job order plus per-group release: an adopter
            // only ever waits for its *own* group's donor. `published[g]`
            // is `None` until donor `g` finishes, then `Some(analysis)`
            // (`Some(None)` for a donor that failed, panicked, demoted
            // its backend, or had nothing to share — adopters proceed
            // unshared instead of waiting forever). A group whose pattern
            // the `seed` lookup already knows is published before any job
            // runs, and its donor takes the adopter path like everyone
            // else.
            let mut prepublished = vec![None; group_reps.len()];
            let mut seeded = vec![false; group_reps.len()];
            let mut jobs: Vec<Job> = Vec::new();
            for (g, &d) in donors.iter().enumerate() {
                if !done(d) {
                    if let Some(analysis) = seed(&scenarios[d]) {
                        prepublished[g] = Some(Some(analysis));
                        seeded[g] = true;
                    }
                    jobs.push(Job::Run(d));
                    continue;
                }
                let pending_adopters = (0..n).any(|i| group_of[i] == g && i != d && !done(i));
                let had_published = matches!(
                    completed.get(d).and_then(Option::as_ref),
                    Some(Ok(o)) if o.recovery.backend_demotions == 0
                );
                if pending_adopters && had_published {
                    jobs.push(Job::Regen(d));
                } else {
                    // Nothing to regenerate (the donor never published,
                    // or nobody is waiting): release the group up front.
                    prepublished[g] = Some(None);
                }
            }
            jobs.extend(
                (0..n)
                    .filter(|&i| donors[group_of[i]] != i && !done(i))
                    .map(Job::Run),
            );
            if let Some(limit) = self.job_limit {
                jobs.truncate(limit);
            }
            let published: Mutex<Vec<Option<Option<SharedAnalysis>>>> = Mutex::new(prepublished);
            let ready = Condvar::new();
            // Publishes a group's analysis on drop, so a donor that
            // *panics* mid-run (not just one that returns Err) still
            // releases its adopters — otherwise they would wait on the
            // condvar forever and the scoped join could never complete.
            struct PublishOnDrop<'a> {
                g: usize,
                table: &'a Mutex<Vec<Option<Option<SharedAnalysis>>>>,
                ready: &'a Condvar,
                analysis: Option<SharedAnalysis>,
            }
            impl Drop for PublishOnDrop<'_> {
                fn drop(&mut self) {
                    let mut guard = lock_unpoisoned(self.table);
                    guard[self.g] = Some(self.analysis.take());
                    drop(guard);
                    self.ready.notify_all();
                }
            }
            self.par_run(&jobs, |job| match *job {
                Job::Run(i) => {
                    let g = group_of[i];
                    if donors[g] == i && !seeded[g] {
                        let mut publish = PublishOnDrop {
                            g,
                            table: &published,
                            ready: &ready,
                            analysis: None,
                        };
                        let (mut result, observer) = run_one(i, None);
                        if let Ok((success, recovery)) = &mut result {
                            // A backend demotion changed the operator
                            // pattern mid-ladder; the exported analysis
                            // no longer matches the group, so publish
                            // nothing and let adopters run unshared.
                            if recovery.backend_demotions == 0 {
                                publish.analysis = success.analysis.take();
                            }
                        }
                        drop(publish);
                        finish(i, result, observer);
                    } else {
                        let guard = lock_unpoisoned(&published);
                        let guard = ready
                            .wait_while(guard, |p| p[g].is_none())
                            .unwrap_or_else(PoisonError::into_inner);
                        // SharedAnalysis is Arc-backed; the clone is
                        // cheap. `flatten` turns a failed donor's empty
                        // publication into an unshared run.
                        let analysis = guard[g].clone().flatten();
                        drop(guard);
                        let (result, observer) = run_one(i, analysis.as_ref());
                        finish(i, result, observer);
                    }
                }
                Job::Regen(d) => {
                    let mut publish = PublishOnDrop {
                        g: group_of[d],
                        table: &published,
                        ready: &ready,
                        analysis: None,
                    };
                    // Initialisation alone reproduces the donor's frozen
                    // symbolic analysis (it is fixed at the first
                    // factorisation and timestep-independent). If the
                    // rebuild fails — it succeeded in the original run —
                    // the guard releases the group unshared.
                    let regenerated =
                        catch_unwind(AssertUnwindSafe(|| regenerate_analysis(&scenarios[d])));
                    if let Ok(Ok(analysis)) = regenerated {
                        publish.analysis = analysis;
                    }
                    drop(publish);
                }
            });
            // Hand freshly donated analyses (not the ones the caller
            // seeded in — it already has those) back for cross-batch
            // reuse.
            let published = published
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            harvested.extend(
                published
                    .into_iter()
                    .enumerate()
                    .filter(|(g, _)| !seeded[*g])
                    .filter_map(|(g, slot)| slot.flatten().map(|a| (donors[g], a))),
            );
        } else {
            let mut jobs: Vec<Job> = (0..n).filter(|&i| !done(i)).map(Job::Run).collect();
            if let Some(limit) = self.job_limit {
                jobs.truncate(limit);
            }
            self.par_run(&jobs, |job| {
                if let Job::Run(i) = *job {
                    let (result, observer) = run_one(i, None);
                    finish(i, result, observer);
                }
            });
        }

        let mut report_slots = Vec::with_capacity(n);
        let mut observers = Vec::with_capacity(n);
        let slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        for (index, slot) in slots.into_iter().enumerate() {
            match slot {
                Some((result, observer)) => {
                    report_slots.push(result);
                    observers.push(observer);
                }
                // Not run this time: either journaled earlier (merge the
                // prior result verbatim) or cut off by the job limit.
                None => {
                    let prior = completed.get(index).and_then(Clone::clone);
                    report_slots.push(prior.unwrap_or_else(|| {
                        Err(SlotError {
                            error: ScenarioError::Failed {
                                detail: "interrupted before the scenario was scheduled".to_string(),
                            },
                            recovery: RecoveryRecord::default(),
                        })
                    }));
                    observers.push(None);
                }
            }
        }
        (
            BatchReport {
                slots: report_slots,
                pattern_groups: group_reps.len(),
                threads: self.threads,
            },
            observers,
            harvested,
        )
    }

    /// Runs `f` over `jobs` on up to `self.threads` scoped workers with
    /// a shared work-stealing cursor.
    fn par_run<F>(&self, jobs: &[Job], f: F)
    where
        F: Fn(&Job) + Sync,
    {
        if jobs.is_empty() {
            return;
        }
        let workers = self.threads.min(jobs.len());
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let j = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(j) else { break };
                    f(job);
                });
            }
        });
    }
}

/// Runs one scenario through the deterministic retry/degradation ladder,
/// isolating panics per attempt. Returns the final result plus the
/// observer of the successful attempt (failed slots yield no observer).
fn run_with_recovery<O, F>(
    scenario: &Scenario,
    adopt: Option<&SharedAnalysis>,
    factory: F,
) -> (Result<(JobSuccess, RecoveryRecord), SlotError>, Option<O>)
where
    O: Observer,
    F: Fn() -> O,
{
    let mut recovery = RecoveryRecord::default();
    let mut current = scenario.clone();
    let mut adopt = adopt;
    loop {
        recovery.attempts += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let mut observer = factory();
            let result = run_scenario(&current, adopt, &mut observer);
            (result, observer)
        }));
        let (result, observer) = match attempt {
            Err(payload) => {
                return (
                    Err(SlotError {
                        error: ScenarioError::Panicked {
                            message: panic_message(payload.as_ref()),
                        },
                        recovery,
                    }),
                    None,
                );
            }
            Ok(pair) => pair,
        };
        match result {
            Ok(success) => return (Ok((success, recovery)), Some(observer)),
            Err(e) if retryable(&e) => {
                // Retries restart the scenario from scratch; the adopted
                // analysis belongs to the original configuration only.
                adopt = None;
                if recovery.backend_demotions < MAX_BACKEND_DEMOTIONS {
                    if let Some(demoted) = current.demoted_backend() {
                        current = demoted;
                        recovery.backend_demotions += 1;
                        continue;
                    }
                }
                if recovery.dt_halvings < MAX_DT_HALVINGS {
                    current = current.halved_dt();
                    recovery.dt_halvings += 1;
                    continue;
                }
                return (
                    Err(SlotError {
                        error: ScenarioError::from_error(e),
                        recovery,
                    }),
                    None,
                );
            }
            Err(e) => {
                return (
                    Err(SlotError {
                        error: ScenarioError::from_error(e),
                        recovery,
                    }),
                    None,
                );
            }
        }
    }
}

/// Runs one scenario end to end, optionally adopting a donor's thermal
/// analysis before initialisation.
fn run_scenario<O: Observer>(
    scenario: &Scenario,
    adopt: Option<&SharedAnalysis>,
    observer: &mut O,
) -> Result<JobSuccess, CmosaicError> {
    let mut sim = scenario.build_simulator()?;
    if let Some(analysis) = adopt {
        sim.adopt_thermal_analysis(analysis);
    }
    sim.initialize()?;
    let metrics = sim.run_observed(scenario.seconds(), observer)?;
    let analysis = sim.export_thermal_analysis();
    Ok(JobSuccess {
        metrics,
        solver: sim.solver_stats(),
        analysis,
    })
}

/// Rebuilds an already-completed donor's frozen analysis for a resumed
/// run's pending adopters (see [`Job::Regen`]).
fn regenerate_analysis(scenario: &Scenario) -> Result<Option<SharedAnalysis>, CmosaicError> {
    let mut sim = scenario.build_simulator()?;
    sim.initialize()?;
    Ok(sim.export_thermal_analysis())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::observe::EnergyBreakdown;
    use crate::policy::PolicyKind;
    use crate::scenario::ScenarioSpec;
    use cmosaic_floorplan::GridSpec;
    use cmosaic_power::trace::WorkloadKind;

    fn tiny_grid() -> GridSpec {
        GridSpec::new(6, 6).expect("static")
    }

    fn tiny_matrix() -> Vec<Scenario> {
        crate::experiments::fig6_study(2, 7, tiny_grid())
            .build()
            .expect("valid specs")
    }

    #[test]
    fn batch_is_bit_identical_across_thread_counts() {
        // The core guarantee: the fig6 scenario matrix at 1 thread and at
        // 8 threads yields bit-identical RunMetrics per scenario.
        let scenarios = tiny_matrix();
        let serial = BatchRunner::new(1).run_scenarios(&scenarios);
        let parallel = BatchRunner::new(8).run_scenarios(&scenarios);
        assert_eq!(serial.len(), scenarios.len());
        assert!(serial.all_ok());
        assert_eq!(
            serial.slots, parallel.slots,
            "scenario outcomes must not depend on thread count"
        );
        assert_eq!(serial.pattern_groups, parallel.pattern_groups);
    }

    #[test]
    fn shared_analysis_factorises_once_per_pattern() {
        // All four scenarios are 2-tier liquid-cooled on one grid: one
        // pattern group, so exactly one full pivoting factorisation in
        // the whole batch — the donor's. Adopters ride refactor-only.
        let scenarios: Vec<Scenario> = [
            (PolicyKind::LcLb, WorkloadKind::WebServer),
            (PolicyKind::LcFuzzy, WorkloadKind::WebServer),
            (PolicyKind::LcLb, WorkloadKind::Database),
            (PolicyKind::LcFuzzy, WorkloadKind::Multimedia),
        ]
        .into_iter()
        .map(|(policy, workload)| {
            ScenarioSpec::new()
                .policy(policy)
                .workload(workload)
                .seconds(2)
                .seed(3)
                .grid(tiny_grid())
                .build()
                .expect("valid spec")
        })
        .collect();
        let report = BatchRunner::new(4).run_scenarios(&scenarios);
        assert!(report.all_ok());
        assert_eq!(report.pattern_groups, 1);
        assert_eq!(report.total_full_factorizations(), 1);
        let outcomes = report.outcomes();
        assert_eq!(outcomes[0].solver.full_factorizations, 1);
        for o in &outcomes[1..] {
            assert_eq!(o.solver.full_factorizations, 0, "adopter {}", o.index);
            assert_eq!(o.solver.adopted_symbolics, 1);
            assert!(o.solver.refactorizations >= 1);
            assert!(o.recovery.clean());
        }

        // Without sharing, every scenario pays its own factorisation —
        // and the metrics still agree with the shared run to solver
        // round-off... but bitwise they are allowed to differ, so only
        // the counter is asserted here.
        let unshared = BatchRunner::new(2)
            .without_shared_analysis()
            .run_scenarios(&scenarios);
        assert_eq!(unshared.total_full_factorizations(), scenarios.len() as u64);
    }

    #[test]
    fn per_group_release_keeps_identity_and_sharing_on_interleaved_groups() {
        // Scenarios deliberately interleave two pattern groups (2-tier and
        // 4-tier) so the donors are not the first two entries of the input
        // order; per-group release must still hand each adopter its own
        // group's analysis, factorise once per group, and stay
        // bit-identical across thread counts.
        let mk = |tiers: usize, seed: u64| {
            ScenarioSpec::new()
                .tiers(tiers)
                .seed(seed)
                .seconds(2)
                .grid(tiny_grid())
                .build()
                .expect("valid spec")
        };
        let scenarios = vec![mk(2, 1), mk(4, 1), mk(2, 2), mk(4, 2), mk(2, 3), mk(4, 3)];
        let serial = BatchRunner::new(1).run_scenarios(&scenarios);
        let parallel = BatchRunner::new(4).run_scenarios(&scenarios);
        assert_eq!(serial.slots, parallel.slots);
        assert_eq!(serial.pattern_groups, 2);
        assert_eq!(serial.total_full_factorizations(), 2);
        // Donors are the first scenario of each group in input order.
        for (idx, o) in serial.outcomes().iter().enumerate() {
            if idx < 2 {
                assert_eq!(o.solver.full_factorizations, 1, "donor {idx}");
            } else {
                assert_eq!(o.solver.full_factorizations, 0, "adopter {idx}");
                assert_eq!(o.solver.adopted_symbolics, 1, "adopter {idx}");
            }
        }
    }

    #[test]
    fn failed_donor_releases_its_adopters() {
        // A donor that fails at run time must publish an empty analysis
        // so its adopters are not stranded on the condvar; the failures
        // stay in their own slots while the healthy group completes.
        let good = ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap();
        // A two-phase scenario starved to dry-out fails inside the run —
        // a physical limit, so the retry ladder must not retry it.
        let failing = ScenarioSpec::new()
            .two_phase(cmosaic_thermal::TwoPhaseCoolant::r134a_30c(8.0))
            .policy(PolicyKind::LcLb)
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap();
        // Failing donor first, then its (also failing) group-mate, then a
        // healthy group.
        let scenarios = vec![failing.clone(), failing, good];
        let parallel = BatchRunner::new(2).run_scenarios(&scenarios);
        let serial = BatchRunner::new(1).run_scenarios(&scenarios);
        assert_eq!(
            serial.slots, parallel.slots,
            "per-slot results (including errors) are thread-count invariant"
        );
        assert_eq!(serial.errors().len(), 2);
        let (index, first) = serial.first_error().expect("the dry-out surfaces");
        assert_eq!(index, 0);
        assert!(
            matches!(&first.error, ScenarioError::Failed { detail } if detail.contains("dry")),
            "dry-out is carried as a structured failure: {first}"
        );
        assert_eq!(
            first.recovery.attempts, 1,
            "physical limits are not retried"
        );
        // The healthy scenario still produced its outcome.
        let outcomes = serial.outcomes();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].index, 2);
    }

    #[test]
    fn panicking_scenario_is_isolated_to_its_slot() {
        let good = ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap();
        let panicking = ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .fault_plan(FaultPlan::none().at(0, FaultKind::Panic))
            .build()
            .unwrap();
        let scenarios = vec![panicking, good];
        let report = BatchRunner::new(2).run_scenarios(&scenarios);
        let (index, e) = report.first_error().expect("the panic is captured");
        assert_eq!(index, 0);
        assert!(
            matches!(&e.error, ScenarioError::Panicked { message } if message.contains("injected")),
            "panic payload is carried: {e}"
        );
        assert_eq!(e.recovery.attempts, 1, "panics are never retried");
        assert_eq!(report.outcomes().len(), 1);
        assert_eq!(
            report.slots,
            BatchRunner::new(1).run_scenarios(&scenarios).slots
        );
    }

    #[test]
    fn iterative_breakdown_walks_the_stepwise_demotion_ladder() {
        // An injected breakdown fires while the backend is iterative, so
        // a multigrid scenario must take *two* demotions (mg → ILU(0) →
        // direct) before it clears, while an ILU(0) scenario takes one —
        // and neither scenario burns a Δt halving on the way down.
        let mk = |backend| {
            ScenarioSpec::new()
                .seconds(2)
                .grid(tiny_grid())
                .solver(backend)
                .fault_plan(FaultPlan::none().at(0, FaultKind::IterativeBreakdown))
                .build()
                .unwrap()
        };
        let scenarios = vec![
            mk(cmosaic_thermal::SolverBackend::multigrid()),
            mk(cmosaic_thermal::SolverBackend::iterative()),
        ];
        let report = BatchRunner::new(2).run_scenarios(&scenarios);
        assert!(report.all_ok(), "{:?}", report.errors());
        let outcomes = report.outcomes();
        let mg = &outcomes[0].recovery;
        assert_eq!(
            (mg.attempts, mg.backend_demotions, mg.dt_halvings),
            (3, 2, 0)
        );
        let ilu = &outcomes[1].recovery;
        assert_eq!(
            (ilu.attempts, ilu.backend_demotions, ilu.dt_halvings),
            (2, 1, 0)
        );
        // The ladder depends only on the scenario, never on scheduling.
        assert_eq!(
            report.slots,
            BatchRunner::new(1).run_scenarios(&scenarios).slots
        );
    }

    #[test]
    fn multigrid_backend_rides_the_batch_bit_identically() {
        // A fig6-style LC_FUZZY scenario under the multigrid backend:
        // agrees with direct LU to solver tolerance, never assembles or
        // factorises the fine level, never falls back, and the outcomes
        // are bit-identical across thread counts.
        let mk = |backend| {
            ScenarioSpec::new()
                .policy(PolicyKind::LcFuzzy)
                .workload(WorkloadKind::WebServer)
                .seconds(4)
                .seed(11)
                .grid(tiny_grid())
                .solver(backend)
                .build()
                .unwrap()
        };
        let scenarios = vec![
            mk(cmosaic_thermal::SolverBackend::multigrid()),
            mk(cmosaic_thermal::SolverBackend::DirectLu),
        ];
        let serial = BatchRunner::new(1).run_scenarios(&scenarios);
        let parallel = BatchRunner::new(8).run_scenarios(&scenarios);
        assert!(serial.all_ok(), "{:?}", serial.errors());
        assert_eq!(
            serial.slots, parallel.slots,
            "multigrid outcomes must not depend on thread count"
        );
        // Different solver params split the pattern groups, so the mg
        // scenario is its own donor and still pays no fine factorisation.
        assert_eq!(serial.pattern_groups, 2);
        let outcomes = serial.outcomes();
        let (mg, direct) = (&outcomes[0], &outcomes[1]);
        assert!(mg.recovery.clean(), "{:?}", mg.recovery);
        assert_eq!(mg.solver.full_factorizations, 0, "{:?}", mg.solver);
        assert_eq!(mg.solver.iterative_fallbacks, 0, "{:?}", mg.solver);
        assert!(mg.solver.mg_cycles >= 1, "{:?}", mg.solver);
        assert!(mg.solver.iterative_solves >= 1, "{:?}", mg.solver);
        let (pm, pd) = (
            mg.metrics.peak_temperature.0,
            direct.metrics.peak_temperature.0,
        );
        assert!((pm - pd).abs() < 1e-4, "mg {pm} vs direct {pd}");
        assert!(
            (mg.metrics.pump_energy - direct.metrics.pump_energy).abs()
                < 1e-6 * direct.metrics.pump_energy.max(1.0),
            "the fuzzy controller must make the same decisions under mg"
        );
    }

    #[test]
    fn job_limit_leaves_trailing_slots_unscheduled() {
        let scenarios: Vec<Scenario> = (0..3)
            .map(|seed| {
                ScenarioSpec::new()
                    .seconds(2)
                    .seed(seed)
                    .grid(tiny_grid())
                    .build()
                    .unwrap()
            })
            .collect();
        let partial = BatchRunner::new(2)
            .with_job_limit(2)
            .run_scenarios(&scenarios);
        assert_eq!(partial.outcomes().len(), 2);
        let (index, e) = partial.first_error().expect("the cut-off slot errors");
        assert_eq!(index, 2);
        assert!(matches!(&e.error, ScenarioError::Failed { detail }
            if detail.contains("interrupted")));
        assert_eq!(e.recovery.attempts, 0, "never attempted");
        // Deterministic at any thread count.
        let serial = BatchRunner::new(1)
            .with_job_limit(2)
            .run_scenarios(&scenarios);
        assert_eq!(serial.slots, partial.slots);
    }

    #[test]
    fn fig6_matrix_spans_the_expected_pattern_groups() {
        // 7 configurations × 4 workloads, 4 distinct (tiers, cooling)
        // patterns on one grid.
        let scenarios = tiny_matrix();
        assert_eq!(scenarios.len(), 28);
        let report = BatchRunner::new(2).run_scenarios(&scenarios);
        assert_eq!(report.pattern_groups, 4);
        assert_eq!(report.total_full_factorizations(), 4);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = BatchRunner::new(3).run_scenarios(&[]);
        assert!(report.is_empty());
        assert!(report.all_ok());
        assert_eq!(report.pattern_groups, 0);
    }

    #[test]
    fn zero_threads_clamp_to_one_worker() {
        // `BatchRunner::new(0)` used to panic — a footgun for callers
        // deriving the count from an `available_parallelism` hint that
        // can legitimately be zero.
        let runner = BatchRunner::new(0);
        assert_eq!(runner.threads(), 1);
        let scenarios = vec![ScenarioSpec::new()
            .seconds(2)
            .grid(tiny_grid())
            .build()
            .unwrap()];
        let report = runner.run_scenarios(&scenarios);
        assert_eq!(report.len(), 1);
        assert!(report.all_ok());
        assert_eq!(report.threads, 1);
    }

    #[test]
    fn observers_are_returned_in_scenario_order() {
        let scenarios: Vec<Scenario> = [4usize, 2]
            .into_iter()
            .map(|secs| {
                ScenarioSpec::new()
                    .seconds(secs)
                    .grid(tiny_grid())
                    .build()
                    .unwrap()
            })
            .collect();
        let (report, energies) =
            BatchRunner::new(2).run_scenarios_observed(&scenarios, |_, _| EnergyBreakdown::new());
        let energies: Vec<EnergyBreakdown> = energies
            .into_iter()
            .map(|e| e.expect("all scenarios succeed"))
            .collect();
        assert_eq!(energies.len(), 2);
        assert_eq!(energies[0].trajectory().len(), 4);
        assert_eq!(energies[1].trajectory().len(), 2);
        for (o, e) in report.outcomes().iter().zip(&energies) {
            assert_eq!(
                o.metrics.chip_energy,
                e.chip_joules(),
                "observer integration matches the run metrics"
            );
        }
    }
}
