//! Metrics collected by the co-simulation — the quantities Figs. 6 and 7
//! plot.

use cmosaic_materials::units::{Kelvin, VolumetricFlow};

/// Aggregated results of one policy run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Fraction of (core, sample) pairs above the 85 °C threshold — the
    /// "averaged per core" hot-spot measure of Fig. 6.
    pub hotspot_time_per_core: f64,
    /// Fraction of samples where *any* core is above the threshold — the
    /// "% of time hot spots are observed across the stack" measure.
    pub hotspot_time_any: f64,
    /// Hottest junction temperature seen during the run.
    pub peak_temperature: Kelvin,
    /// Chip (compute + leakage) energy, joules.
    pub chip_energy: f64,
    /// Coolant pumping energy, joules (zero for air-cooled runs).
    pub pump_energy: f64,
    /// Mean performance loss: deferred work as a fraction of offered work,
    /// averaged over cores ("Average performance loss (average)").
    pub perf_loss_mean: f64,
    /// Worst per-core performance loss ("Average performance loss (max)").
    pub perf_loss_max: f64,
    /// Time-averaged per-cavity flow rate (liquid-cooled runs).
    pub mean_flow: Option<VolumetricFlow>,
    /// Simulated seconds.
    pub seconds: usize,
}

impl RunMetrics {
    /// Total system energy: chip + pump, joules.
    pub fn total_energy(&self) -> f64 {
        self.chip_energy + self.pump_energy
    }

    /// Mean system power over the run, watts.
    pub fn mean_power(&self) -> f64 {
        if self.seconds == 0 {
            0.0
        } else {
            self.total_energy() / self.seconds as f64
        }
    }
}

/// Incremental accumulator used by the simulator.
#[derive(Debug, Clone, Default)]
pub(crate) struct MetricsAccumulator {
    pub samples: usize,
    pub core_samples: usize,
    pub hot_core_samples: usize,
    pub hot_any_samples: usize,
    pub peak: f64,
    pub chip_energy: f64,
    pub pump_energy: f64,
    pub offered_work: Vec<f64>,
    pub deferred_work: Vec<f64>,
    pub flow_integral: f64,
    pub flow_samples: usize,
}

impl MetricsAccumulator {
    pub fn new(cores: usize) -> Self {
        MetricsAccumulator {
            offered_work: vec![0.0; cores],
            deferred_work: vec![0.0; cores],
            ..Default::default()
        }
    }

    pub fn finish(self, seconds: usize, liquid: bool) -> RunMetrics {
        let perf: Vec<f64> = self
            .offered_work
            .iter()
            .zip(&self.deferred_work)
            .map(|(&o, &d)| if o > 0.0 { d / o } else { 0.0 })
            .collect();
        let perf_mean = if perf.is_empty() {
            0.0
        } else {
            perf.iter().sum::<f64>() / perf.len() as f64
        };
        let perf_max = perf.iter().copied().fold(0.0f64, f64::max);
        RunMetrics {
            hotspot_time_per_core: if self.core_samples == 0 {
                0.0
            } else {
                self.hot_core_samples as f64 / self.core_samples as f64
            },
            hotspot_time_any: if self.samples == 0 {
                0.0
            } else {
                self.hot_any_samples as f64 / self.samples as f64
            },
            peak_temperature: Kelvin(self.peak),
            chip_energy: self.chip_energy,
            pump_energy: self.pump_energy,
            perf_loss_mean: perf_mean,
            perf_loss_max: perf_max,
            mean_flow: (liquid && self.flow_samples > 0)
                .then(|| VolumetricFlow(self.flow_integral / self.flow_samples as f64)),
            seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_computes_fractions() {
        let mut acc = MetricsAccumulator::new(2);
        acc.samples = 10;
        acc.core_samples = 20;
        acc.hot_core_samples = 5;
        acc.hot_any_samples = 4;
        acc.peak = 360.0;
        acc.chip_energy = 100.0;
        acc.pump_energy = 20.0;
        acc.offered_work = vec![10.0, 5.0];
        acc.deferred_work = vec![1.0, 0.0];
        acc.flow_integral = 10.0;
        acc.flow_samples = 10;
        let m = acc.finish(10, true);
        assert!((m.hotspot_time_per_core - 0.25).abs() < 1e-12);
        assert!((m.hotspot_time_any - 0.4).abs() < 1e-12);
        assert!((m.perf_loss_mean - 0.05).abs() < 1e-12);
        assert!((m.perf_loss_max - 0.1).abs() < 1e-12);
        assert!((m.total_energy() - 120.0).abs() < 1e-12);
        assert!((m.mean_power() - 12.0).abs() < 1e-12);
        assert!(m.mean_flow.is_some());
    }

    #[test]
    fn empty_run_is_well_defined() {
        let m = MetricsAccumulator::new(0).finish(0, false);
        assert_eq!(m.hotspot_time_per_core, 0.0);
        assert_eq!(m.perf_loss_max, 0.0);
        assert_eq!(m.mean_power(), 0.0);
        assert!(m.mean_flow.is_none());
    }
}
