//! The discrete design space an optimizer searches: a base
//! [`ScenarioSpec`] plus named axes of spec transformations.
//!
//! Unlike a [`Study`](crate::study::Study) — which eagerly expands a flat
//! scenario list — a [`DesignSpace`] keeps its axes *indexable*, so an
//! adaptive strategy can move coordinate-wise ("same design, one level
//! more coolant") without materialising the whole cartesian product. A
//! design is a [`DesignPoint`]: one level index per axis; the space turns
//! it back into a concrete, labelled [`ScenarioSpec`].

use std::fmt;
use std::sync::Arc;

use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::{FloorplanError, Stack3d};
use cmosaic_materials::units::VolumetricFlow;
use cmosaic_power::AllocatorPreset;
use cmosaic_thermal::SolverBackend;

use crate::policy::PolicyKind;
use crate::scenario::{CoolantChoice, FlowSchedule, ScenarioSpec, StackChoice};
use crate::CmosaicError;

/// A spec transformation shared by every design that selects this level.
///
/// Fallible: placement-valued levels (see
/// [`DesignAxis::stack_transforms`]) may legitimately fail on some
/// combinations of upstream axes — the [`Evaluator`](super::Evaluator)
/// records such designs as *skipped*, exactly like build-time validation
/// failures.
type ApplyFn = Arc<dyn Fn(ScenarioSpec) -> Result<ScenarioSpec, CmosaicError> + Send + Sync>;

/// A stack transformation used by [`DesignAxis::stack_transforms`]: maps
/// the design's current (resolved) stack to a new one, e.g. the
/// deterministic placement moves of
/// [`cmosaic_floorplan::transform`].
pub type StackTransform = Arc<dyn Fn(&Stack3d) -> Result<Stack3d, FloorplanError> + Send + Sync>;

/// One selectable value of a design axis: a label plus the spec
/// transformation it stands for.
#[derive(Clone)]
pub struct DesignLevel {
    label: String,
    apply: ApplyFn,
}

impl DesignLevel {
    /// A level applying the infallible `f` to the spec, displayed as
    /// `label`.
    pub fn new<F>(label: impl Into<String>, f: F) -> Self
    where
        F: Fn(ScenarioSpec) -> ScenarioSpec + Send + Sync + 'static,
    {
        Self::fallible(label, move |s| Ok(f(s)))
    }

    /// A level whose transformation may fail (an invalid-by-construction
    /// corner of the space); the evaluator skips such designs instead of
    /// aborting the search.
    pub fn fallible<F>(label: impl Into<String>, f: F) -> Self
    where
        F: Fn(ScenarioSpec) -> Result<ScenarioSpec, CmosaicError> + Send + Sync + 'static,
    {
        DesignLevel {
            label: label.into(),
            apply: Arc::new(f),
        }
    }

    /// The level's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for DesignLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("DesignLevel").field(&self.label).finish()
    }
}

/// One named, ordered dimension of a design space.
#[derive(Debug, Clone)]
pub struct DesignAxis {
    name: String,
    levels: Vec<DesignLevel>,
}

impl DesignAxis {
    /// A custom axis from explicit levels.
    pub fn new(name: impl Into<String>, levels: Vec<DesignLevel>) -> Self {
        DesignAxis {
            name: name.into(),
            levels,
        }
    }

    /// The one generalized axis builder every preset constructor forwards
    /// through: an axis named `name` with one level per value, labelled by
    /// `label` and applying `apply(spec, &value)`.
    ///
    /// ```
    /// use cmosaic::optimize::DesignAxis;
    ///
    /// let axis = DesignAxis::over("seed", [1u64, 7], |s| format!("seed {s}"), |spec, s| {
    ///     spec.seed(*s)
    /// });
    /// assert_eq!(axis.len(), 2);
    /// assert_eq!(axis.levels()[1].label(), "seed 7");
    /// ```
    pub fn over<T, L, F>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = T>,
        label: L,
        apply: F,
    ) -> Self
    where
        T: Send + Sync + 'static,
        L: Fn(&T) -> String,
        F: Fn(ScenarioSpec, &T) -> ScenarioSpec + Send + Sync + Clone + 'static,
    {
        Self::new(
            name,
            values
                .into_iter()
                .map(|v| {
                    let f = apply.clone();
                    let text = label(&v);
                    DesignLevel::new(text, move |s| f(s, &v))
                })
                .collect(),
        )
    }

    /// A preset tier-count axis (forwards through [`DesignAxis::over`]).
    pub fn tiers(counts: impl IntoIterator<Item = usize>) -> Self {
        Self::over("tiers", counts, |t| format!("{t}-tier"), |s, t| s.tiers(*t))
    }

    /// A fixed per-cavity flow-rate axis ([`FlowSchedule::Fixed`]
    /// schedules, ordered as given; forwards through
    /// [`DesignAxis::over`]).
    pub fn flow_rates(rates: impl IntoIterator<Item = VolumetricFlow>) -> Self {
        Self::over(
            "flow",
            rates,
            |q| format!("{:.1} ml/min", q.to_ml_per_min()),
            |s, q| s.flow_schedule(FlowSchedule::Fixed(*q)),
        )
    }

    /// A runtime-policy axis (labels from the policy's `Display`:
    /// `AC_LB`, `LC_MIG`, …). Like
    /// [`Study::over_policies`](crate::study::Study::over_policies), the
    /// air/water coolant choice follows each policy's cooling mode, so a
    /// policy axis composes with preset stacks without hand-pairing a
    /// coolant axis. Forwards through [`DesignAxis::over`].
    pub fn policies(kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        Self::over("policy", kinds, PolicyKind::to_string, |s, p| {
            let s = s.policy(*p);
            match (p.is_liquid_cooled(), s.coolant_choice()) {
                (false, CoolantChoice::Water) => s.air(),
                (true, CoolantChoice::Air) => s.water(),
                _ => s,
            }
        })
    }

    /// A power-allocator preset axis (labels from the preset's
    /// `Display`: `niagara`, `memory-on-logic`, `mixed-accelerator`;
    /// forwards through [`DesignAxis::over`]).
    pub fn allocators(presets: impl IntoIterator<Item = AllocatorPreset>) -> Self {
        Self::over("allocator", presets, AllocatorPreset::to_string, |s, a| {
            s.allocator(*a)
        })
    }

    /// A coolant axis (forwards through [`DesignAxis::over`]).
    pub fn coolants(choices: impl IntoIterator<Item = CoolantChoice>) -> Self {
        Self::over("coolant", choices, CoolantChoice::to_string, |s, c| {
            s.coolant(c.clone())
        })
    }

    /// A thermal solver-backend axis (labels from the backend's
    /// `Display`: `direct-lu` / `bicgstab-ilu0(tol …, cap …)` /
    /// `bicgstab-mg(tol …, cap …)`, so two iterative operating points
    /// stay distinguishable; forwards through [`DesignAxis::over`]).
    pub fn solvers(backends: impl IntoIterator<Item = SolverBackend>) -> Self {
        Self::over("solver", backends, SolverBackend::to_string, |s, b| {
            s.solver(*b)
        })
    }

    /// A labelled flow-schedule axis (forwards through
    /// [`DesignAxis::over`]).
    pub fn flow_schedules(
        entries: impl IntoIterator<Item = (impl Into<String>, FlowSchedule)>,
    ) -> Self {
        Self::over(
            "schedule",
            entries
                .into_iter()
                .map(|(label, sched)| (label.into(), sched))
                .collect::<Vec<(String, FlowSchedule)>>(),
            |e| e.0.clone(),
            |s, e| s.flow_schedule(e.1.clone()),
        )
    }

    /// A placement axis: each level resolves the design's current stack
    /// (custom, or the preset implied by tier count and coolant), passes
    /// it through a deterministic [`StackTransform`] — e.g. the block
    /// swaps, hot-spot spreads and per-gap cavity toggles of
    /// [`cmosaic_floorplan::transform`] — and installs the re-validated
    /// result as a custom stack.
    ///
    /// Order matters: place this axis *after* any `tiers`/`coolants` axis
    /// so the transform sees the stack those axes select. Transform
    /// failures make the design an invalid-by-construction corner (the
    /// evaluator skips it), not a search-aborting error.
    pub fn stack_transforms(
        name: impl Into<String>,
        entries: impl IntoIterator<Item = (impl Into<String>, StackTransform)>,
    ) -> Self {
        Self::new(
            name,
            entries
                .into_iter()
                .map(|(label, transform)| {
                    DesignLevel::fallible(label, move |spec: ScenarioSpec| {
                        let stack = DesignSpace::resolve_stack(&spec)?;
                        let transformed = transform(&stack).map_err(CmosaicError::from)?;
                        Ok(spec.stack(transformed))
                    })
                })
                .collect(),
        )
    }

    /// The axis name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The axis levels, in index order.
    pub fn levels(&self) -> &[DesignLevel] {
        &self.levels
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `true` when the axis has no levels (it annihilates the space).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

/// One design: a level index per axis of its [`DesignSpace`], in axis
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignPoint(Vec<usize>);

impl DesignPoint {
    /// A point from explicit level indices.
    pub fn new(indices: Vec<usize>) -> Self {
        DesignPoint(indices)
    }

    /// The level indices, in axis order.
    pub fn indices(&self) -> &[usize] {
        &self.0
    }
}

/// A discrete design space: base spec × named axes.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    base: ScenarioSpec,
    axes: Vec<DesignAxis>,
}

impl DesignSpace {
    /// A space containing only the base design (no axes yet).
    pub fn new(base: ScenarioSpec) -> Self {
        DesignSpace {
            base,
            axes: Vec::new(),
        }
    }

    /// Appends one axis (applied after every axis already present, so
    /// later axes win conflicting spec fields).
    pub fn with_axis(mut self, axis: DesignAxis) -> Self {
        self.axes.push(axis);
        self
    }

    /// The base spec every design starts from.
    pub fn base(&self) -> &ScenarioSpec {
        &self.base
    }

    /// The axes, in application order.
    pub fn axes(&self) -> &[DesignAxis] {
        &self.axes
    }

    /// Number of axes.
    pub fn n_axes(&self) -> usize {
        self.axes.len()
    }

    /// Number of designs in the space (the product of the axis sizes; 1
    /// for an axis-less space, 0 if any axis is empty).
    pub fn len(&self) -> usize {
        self.axes.iter().map(DesignAxis::len).product()
    }

    /// `true` when the space contains no design at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every design of the space in lexicographic order (first axis
    /// slowest), the order an exhaustive grid search evaluates.
    pub fn points(&self) -> Vec<DesignPoint> {
        let total = self.len();
        let mut points = Vec::with_capacity(total);
        if total == 0 {
            return points;
        }
        let mut odometer = vec![0usize; self.axes.len()];
        loop {
            points.push(DesignPoint::new(odometer.clone()));
            // Advance the last axis first; carry leftwards.
            let mut axis = self.axes.len();
            loop {
                if axis == 0 {
                    return points;
                }
                axis -= 1;
                odometer[axis] += 1;
                if odometer[axis] < self.axes[axis].len() {
                    break;
                }
                odometer[axis] = 0;
            }
        }
    }

    /// The human-readable label of a design ("2-tier, 12.0 ml/min").
    ///
    /// # Panics
    ///
    /// Panics if the point does not index this space (wrong axis count or
    /// a level index out of range).
    pub fn label_of(&self, point: &DesignPoint) -> String {
        self.check(point);
        if self.axes.is_empty() {
            return "base design".into();
        }
        self.axes
            .iter()
            .zip(point.indices())
            .map(|(axis, &level)| axis.levels()[level].label().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Resolves a design into its concrete [`ScenarioSpec`], labelled with
    /// [`DesignSpace::label_of`].
    ///
    /// # Errors
    ///
    /// Forwards the first failing level transformation (e.g. a placement
    /// move that does not apply to the stack selected by earlier axes) —
    /// an invalid-by-construction corner of the space, which the
    /// [`Evaluator`](super::Evaluator) records as *skipped*.
    ///
    /// # Panics
    ///
    /// Panics if the point does not index this space (wrong axis count or
    /// a level index out of range).
    pub fn spec(&self, point: &DesignPoint) -> Result<ScenarioSpec, CmosaicError> {
        self.check(point);
        let mut spec = self.base.clone();
        for (axis, &level) in self.axes.iter().zip(point.indices()) {
            spec = (axis.levels()[level].apply)(spec)?;
        }
        Ok(spec.label(self.label_of(point)))
    }

    /// The stack a design with this spec would simulate: the custom stack
    /// if one is installed, otherwise the Niagara preset implied by the
    /// spec's tier count and coolant — the same resolution
    /// `ScenarioSpec::build` performs.
    ///
    /// # Errors
    ///
    /// Forwards preset-construction failures (e.g. a zero tier count).
    pub fn resolve_stack(spec: &ScenarioSpec) -> Result<Stack3d, CmosaicError> {
        match spec.stack_choice() {
            StackChoice::Custom(stack) => Ok(stack.clone()),
            StackChoice::Preset { tiers } => {
                let stack = if spec.coolant_choice().is_liquid() {
                    presets::liquid_cooled_mpsoc(*tiers)
                } else {
                    presets::air_cooled_mpsoc(*tiers)
                }?;
                Ok(stack)
            }
        }
    }

    fn check(&self, point: &DesignPoint) {
        assert_eq!(
            point.indices().len(),
            self.axes.len(),
            "design point has {} indices, space has {} axes",
            point.indices().len(),
            self.axes.len()
        );
        for (axis, &level) in self.axes.iter().zip(point.indices()) {
            assert!(
                level < axis.len(),
                "level {level} out of range for axis `{}` ({} levels)",
                axis.name(),
                axis.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn ml(x: f64) -> VolumetricFlow {
        VolumetricFlow::from_ml_per_min(x)
    }

    fn tiny_space() -> DesignSpace {
        DesignSpace::new(ScenarioSpec::new().policy(PolicyKind::LcLb).seconds(2))
            .with_axis(DesignAxis::tiers([2, 4]))
            .with_axis(DesignAxis::flow_rates([ml(8.0), ml(16.0), ml(32.3)]))
    }

    #[test]
    fn points_enumerate_lexicographically() {
        let space = tiny_space();
        assert_eq!(space.len(), 6);
        let pts = space.points();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0].indices(), &[0, 0]);
        assert_eq!(pts[1].indices(), &[0, 1]);
        assert_eq!(pts[3].indices(), &[1, 0]);
        assert_eq!(pts[5].indices(), &[1, 2]);
    }

    #[test]
    fn specs_resolve_with_labels() {
        let space = tiny_space();
        let p = DesignPoint::new(vec![1, 2]);
        assert_eq!(space.label_of(&p), "4-tier, 32.3 ml/min");
        let spec = space.spec(&p).unwrap();
        assert_eq!(spec.preset_tiers(), Some(4));
        assert_eq!(
            spec.flow_schedule_spec(),
            &FlowSchedule::Fixed(ml(32.3)),
            "the flow axis installs a fixed schedule"
        );
        assert_eq!(spec.display_label(), "4-tier, 32.3 ml/min");
        assert!(spec.build().is_ok());
    }

    #[test]
    fn empty_axis_annihilates_and_axisless_is_singleton() {
        let dead = tiny_space().with_axis(DesignAxis::new("void", vec![]));
        assert_eq!(dead.len(), 0);
        assert!(dead.is_empty());
        assert!(dead.points().is_empty());

        let base_only = DesignSpace::new(ScenarioSpec::new().seconds(2));
        assert_eq!(base_only.len(), 1);
        let pts = base_only.points();
        assert_eq!(pts.len(), 1);
        assert!(pts[0].indices().is_empty());
        assert_eq!(base_only.label_of(&pts[0]), "base design");
        assert!(base_only.spec(&pts[0]).unwrap().build().is_ok());
    }

    #[test]
    fn solver_axis_resolves_backends() {
        let space = DesignSpace::new(ScenarioSpec::new().policy(PolicyKind::LcLb).seconds(2))
            .with_axis(DesignAxis::solvers([
                SolverBackend::DirectLu,
                SolverBackend::iterative(),
                SolverBackend::multigrid(),
            ]));
        assert_eq!(space.len(), 3);
        let pts = space.points();
        assert_eq!(space.label_of(&pts[0]), "direct-lu");
        assert_eq!(
            space.label_of(&pts[1]),
            "bicgstab-ilu0(tol 1e-10, cap 2000)"
        );
        assert_eq!(space.label_of(&pts[2]), "bicgstab-mg(tol 1e-10, cap 2000)");
        assert!(!space.spec(&pts[0]).unwrap().solver_backend().is_iterative());
        assert!(space.spec(&pts[1]).unwrap().solver_backend().is_iterative());
        assert!(space.spec(&pts[2]).unwrap().solver_backend().is_iterative());
        assert!(space.spec(&pts[1]).unwrap().build().is_ok());
        assert!(space.spec(&pts[2]).unwrap().build().is_ok());
    }

    #[test]
    fn policy_and_allocator_axes_resolve() {
        let space = DesignSpace::new(ScenarioSpec::new().seconds(2))
            .with_axis(DesignAxis::policies([
                PolicyKind::AcLb,
                PolicyKind::LcMigration { seed: 42 },
            ]))
            .with_axis(DesignAxis::allocators(AllocatorPreset::all()));
        assert_eq!(space.len(), 6);
        let pts = space.points();
        assert_eq!(space.label_of(&pts[0]), "AC_LB, niagara");
        assert_eq!(space.label_of(&pts[5]), "LC_MIG, mixed-accelerator");
        // The policy axis steers the coolant the way a study would.
        let air = space.spec(&pts[0]).unwrap();
        assert_eq!(air.coolant_choice(), &CoolantChoice::Air);
        let wet = space.spec(&pts[5]).unwrap();
        assert_eq!(wet.coolant_choice(), &CoolantChoice::Water);
        assert_eq!(wet.allocator_preset(), AllocatorPreset::MixedAccelerator);
        assert!(air.build().is_ok());
        assert!(wet.build().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_levels_panic() {
        let space = tiny_space();
        space.spec(&DesignPoint::new(vec![0, 9])).unwrap();
    }

    #[test]
    fn stack_transform_axis_installs_custom_stacks() {
        use cmosaic_floorplan::transform::swap_in_tier;

        let baseline: StackTransform = Arc::new(|s: &Stack3d| Ok(s.clone()));
        let swap: StackTransform = Arc::new(|s: &Stack3d| swap_in_tier(s, 0, "core0", "core7"));
        let bad: StackTransform = Arc::new(|s: &Stack3d| swap_in_tier(s, 0, "core0", "nope"));
        let space = DesignSpace::new(ScenarioSpec::new().policy(PolicyKind::LcLb).seconds(2))
            .with_axis(DesignAxis::tiers([2]))
            .with_axis(DesignAxis::stack_transforms(
                "placement",
                [
                    ("baseline", baseline),
                    ("swap core0<->core7", swap),
                    ("broken", bad),
                ],
            ));
        assert_eq!(space.len(), 3);
        let pts = space.points();
        assert_eq!(space.label_of(&pts[1]), "2-tier, swap core0<->core7");

        // The baseline level resolves the 2-tier liquid preset as a custom
        // stack; the swap level moves core0 to core7's rectangle.
        let base_spec = space.spec(&pts[0]).unwrap();
        let swap_spec = space.spec(&pts[1]).unwrap();
        let base_stack = match base_spec.stack_choice() {
            StackChoice::Custom(s) => s.clone(),
            StackChoice::Preset { .. } => panic!("transform installs a custom stack"),
        };
        assert_eq!(base_stack.tiers().len(), 2);
        assert!(swap_spec.build().is_ok());
        assert!(base_spec.build().is_ok());

        // The failing transform is an invalid corner, not a panic.
        assert!(space.spec(&pts[2]).is_err());
    }

    #[test]
    fn resolve_stack_matches_build_resolution() {
        let liquid = ScenarioSpec::new().tiers(4);
        let s = DesignSpace::resolve_stack(&liquid).unwrap();
        assert_eq!(s.name(), "4-tier-liquid-cooled");
        let air = ScenarioSpec::new().tiers(2).coolant(CoolantChoice::Air);
        assert_eq!(
            DesignSpace::resolve_stack(&air).unwrap().name(),
            "2-tier-air-cooled"
        );
    }
}
