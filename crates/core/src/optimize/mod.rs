//! Constrained design-space optimization over scenario axes: find the
//! stack configuration and cooling operating point that minimize cooling
//! energy subject to temperature ceilings — the "thermally-aware design"
//! loop the paper argues for.
//!
//! The pieces:
//!
//! * a [`DesignSpace`]: a base [`ScenarioSpec`](crate::ScenarioSpec) plus
//!   indexable axes (tier counts, coolants, flow rates/schedules, or any
//!   custom transformation — all built through the one generalized
//!   [`DesignAxis::over`] constructor) — unlike a
//!   [`Study`](crate::study::Study)'s flat expansion, designs stay
//!   addressable by per-axis level indices, so adaptive strategies can
//!   move coordinate-wise. [`DesignAxis::stack_transforms`] makes
//!   *physical design* an axis: levels are deterministic placement moves
//!   (block swaps, hot-spot spreads, per-gap cavity toggles from
//!   [`cmosaic_floorplan::transform`]) applied to the design's resolved
//!   stack;
//! * [`Constraints`]: the peak-temperature ceiling (85 °C in the paper)
//!   plus optional per-tier ceilings, enforced *inside* the loop by the
//!   early-abort [`ConstraintMonitor`] observer — an infeasible design
//!   costs only the epochs up to its first violation;
//! * an [`Evaluator`]: batches un-cached designs through the
//!   [`BatchRunner`] (inheriting per-pattern
//!   [`SharedAnalysis`](cmosaic_thermal::SharedAnalysis) donation and
//!   any-thread-count bit-identity), memoizing every evaluation so
//!   revisits are free;
//! * [`SearchStrategy`] implementations sharing that evaluator:
//!   exhaustive [`GridSearch`], the adaptive, seeded
//!   [`CoordinateDescent`], and the seeded, bit-reproducible
//!   [`SimulatedAnnealing`] whose [`NeighborMove`] trait lets placement
//!   axes expose *moves* instead of exhaustively enumerated levels;
//! * an [`OptimizeReport`]: the best feasible design, the ranked
//!   [`ParetoFront`] of (cooling energy, peak temperature, silicon area)
//!   trade-offs, and the search-cost counters (evaluations,
//!   evaluations-to-optimum, memo hits, epochs saved by the early
//!   abort).
//!
//! Everything is deterministic: given the same space, constraints, seed
//! and strategy, the report is bit-identical across reruns and across
//! `BatchRunner` thread counts.
//!
//! ```
//! use cmosaic::batch::BatchRunner;
//! use cmosaic::optimize::{Constraints, DesignAxis, DesignSpace, GridSearch, Optimizer};
//! use cmosaic::policy::PolicyKind;
//! use cmosaic::scenario::ScenarioSpec;
//! use cmosaic_floorplan::GridSpec;
//! use cmosaic_materials::units::{Celsius, VolumetricFlow};
//!
//! # fn main() -> Result<(), cmosaic::CmosaicError> {
//! let ml = VolumetricFlow::from_ml_per_min;
//! let space = DesignSpace::new(
//!     ScenarioSpec::new()
//!         .policy(PolicyKind::LcLb)
//!         .grid(GridSpec::new(6, 6).expect("static"))
//!         .seconds(2),
//! )
//! .with_axis(DesignAxis::flow_rates([ml(8.0), ml(32.3)]));
//! let runner = BatchRunner::new(2);
//! let report = Optimizer::new(space, Constraints::peak_below(Celsius(85.0)), &runner)
//!     .run(&mut GridSearch)?;
//! let best = report.best.as_ref().expect("a feasible design exists");
//! assert!(best.feasible);
//! assert_eq!(report.front.min_energy().unwrap().design, best.design);
//! # Ok(())
//! # }
//! ```

mod anneal;
mod constraints;
mod descent;
mod grid;
mod pareto;
mod space;

pub use anneal::{AxisNudge, AxisStep, NeighborMove, SimulatedAnnealing};
pub use constraints::{ConstraintMonitor, Constraints, Violation};
pub use descent::CoordinateDescent;
pub use grid::GridSearch;
pub use pareto::{ParetoFront, ParetoPoint};
pub use space::{DesignAxis, DesignLevel, DesignPoint, DesignSpace, StackTransform};

use std::collections::{HashMap, HashSet};

use cmosaic_materials::units::Kelvin;

use crate::batch::{BatchRunner, SlotError};
use crate::metrics::RunMetrics;
use crate::observe::{EnergyBreakdown, PeakTemperature};
use crate::CmosaicError;

/// Everything one design evaluation produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// The design's level indices.
    pub design: DesignPoint,
    /// Human-readable design label.
    pub label: String,
    /// Cooling (pump) energy over the run, joules — the objective, from
    /// the [`EnergyBreakdown`] observer. Partial for aborted runs.
    pub pump_energy: f64,
    /// Peak junction temperature over the run (sub-step granularity).
    pub peak: Kelvin,
    /// Silicon/stack area of the design, m² (see
    /// [`Stack3d::silicon_area`](cmosaic_floorplan::Stack3d::silicon_area))
    /// — the third objective of the multi-objective front.
    pub area: f64,
    /// Per-tier peak junction temperatures at control-interval
    /// granularity (from [`PeakTemperature`]).
    pub per_tier_peak: Vec<Kelvin>,
    /// `true` when no constraint was violated over the whole run.
    pub feasible: bool,
    /// The first observed violation of an infeasible design.
    pub violation: Option<Violation>,
    /// Control intervals actually simulated (< budget after an early
    /// abort).
    pub epochs_run: usize,
    /// Control intervals a full run would have cost.
    pub epochs_budget: usize,
    /// The run's aggregate metrics (partial for aborted runs).
    pub metrics: RunMetrics,
}

impl Evaluation {
    /// Strategy-facing total order: feasible beats infeasible; among
    /// feasible designs lower cooling energy wins (ties: lower peak, then
    /// smaller silicon area, then lower level indices); among infeasible
    /// designs the cooler one wins (the gradient an adaptive search
    /// climbs back to feasibility on).
    pub fn better_than(&self, other: &Evaluation) -> bool {
        match (self.feasible, other.feasible) {
            (true, false) => true,
            (false, true) => false,
            (true, true) => {
                (
                    self.pump_energy,
                    self.peak.0,
                    self.area,
                    self.design.indices(),
                ) < (
                    other.pump_energy,
                    other.peak.0,
                    other.area,
                    other.design.indices(),
                )
            }
            (false, false) => {
                (self.peak.0, self.design.indices()) < (other.peak.0, other.design.indices())
            }
        }
    }
}

/// Where one design landed in the evaluator's bookkeeping.
enum Slot {
    /// Index into `evaluations`.
    Done(usize),
    /// Index into `skipped`: the spec failed build-time validation.
    Invalid(usize),
    /// Index into `failed`: the scenario failed at *run* time (panic,
    /// divergence, exhausted retry ladder) and the batch isolated it.
    Failed(usize),
}

/// Memoizing batch evaluator handed to a [`SearchStrategy`].
///
/// Un-cached designs are resolved, validated and executed as one
/// [`BatchRunner`] batch (the same engine a [`Study`](crate::study::Study)
/// runs on) with a `(PeakTemperature, EnergyBreakdown, ConstraintMonitor)`
/// observer apiece; designs whose spec fails validation (e.g. a two-phase
/// coolant crossed with a flow schedule) are recorded as *skipped*, not
/// errors — a design space may legitimately contain
/// invalid-by-construction corners.
pub struct Evaluator<'a> {
    space: &'a DesignSpace,
    constraints: &'a Constraints,
    runner: &'a BatchRunner,
    early_abort: bool,
    slots: HashMap<DesignPoint, Slot>,
    evaluations: Vec<Evaluation>,
    skipped: Vec<(DesignPoint, CmosaicError)>,
    failed: Vec<(DesignPoint, SlotError)>,
    eval_requests: usize,
    memo_hits: usize,
}

impl<'a> Evaluator<'a> {
    fn new(
        space: &'a DesignSpace,
        constraints: &'a Constraints,
        runner: &'a BatchRunner,
        early_abort: bool,
    ) -> Self {
        Evaluator {
            space,
            constraints,
            runner,
            early_abort,
            slots: HashMap::new(),
            evaluations: Vec::new(),
            skipped: Vec::new(),
            failed: Vec::new(),
            eval_requests: 0,
            memo_hits: 0,
        }
    }

    /// The space under search.
    pub fn space(&self) -> &DesignSpace {
        self.space
    }

    /// Evaluates every not-yet-seen design in `points` as one batch
    /// (cached, invalid and previously-failed designs cost nothing).
    ///
    /// # Errors
    ///
    /// Currently none: build-time validation failures are recorded as
    /// *skipped* designs, and run-time failures (the batch isolates
    /// panics/divergence per slot) as *failed* designs — both queryable
    /// afterwards, neither aborting the search. The signature stays
    /// fallible for [`SearchStrategy`] implementations.
    pub fn evaluate_all(&mut self, points: &[DesignPoint]) -> Result<(), CmosaicError> {
        let mut batch: Vec<DesignPoint> = Vec::new();
        let mut queued: HashSet<&DesignPoint> = HashSet::new();
        for p in points {
            self.eval_requests += 1;
            if !self.slots.contains_key(p) && queued.insert(p) {
                batch.push(p.clone());
            } else {
                self.memo_hits += 1;
            }
        }
        let mut valid = Vec::with_capacity(batch.len());
        let mut scenarios = Vec::with_capacity(batch.len());
        for p in batch {
            // Resolve and build once: the resolved Scenario is what the
            // runner executes (a rebuild would regenerate every workload
            // trace). A failing level transform (a placement move that
            // does not apply) is a skip, exactly like a build failure.
            match self.space.spec(&p).and_then(|spec| spec.build()) {
                Ok(scenario) => {
                    valid.push(p);
                    scenarios.push(scenario);
                }
                Err(e) => {
                    self.slots
                        .insert(p.clone(), Slot::Invalid(self.skipped.len()));
                    self.skipped.push((p, e));
                }
            }
        }
        if scenarios.is_empty() {
            return Ok(());
        }
        let constraints = self.constraints.clone();
        let abort = self.early_abort;
        let (report, observers) = self.runner.run_scenarios_observed(&scenarios, |_, _| {
            let monitor = ConstraintMonitor::new(constraints.clone());
            (
                PeakTemperature::new(),
                EnergyBreakdown::new(),
                if abort {
                    monitor
                } else {
                    monitor.observe_only()
                },
            )
        });
        let ceiling_k = self.constraints.peak_ceiling().to_kelvin();
        for (((point, slot), observer), scenario) in valid
            .into_iter()
            .zip(&report.slots)
            .zip(observers)
            .zip(&scenarios)
        {
            let (outcome, (peak_obs, energy, monitor)) = match (slot, observer) {
                (Ok(outcome), Some(obs)) => (outcome, obs),
                // The batch isolated a run-time failure to this design's
                // slot; record it and keep searching.
                (Err(e), _) => {
                    self.slots
                        .insert(point.clone(), Slot::Failed(self.failed.len()));
                    self.failed.push((point, e.clone()));
                    continue;
                }
                (Ok(_), None) => unreachable!("successful slots keep their observers"),
            };
            let budget = scenario.seconds();
            let metrics = outcome.metrics.clone();
            let peak = metrics.peak_temperature;
            let violation = monitor.violation().cloned();
            // Feasibility combines the monitor's epoch-granular verdict
            // with the metrics' sub-step-granular peak, so a transient
            // spike between interval ends still disqualifies a design.
            let feasible = violation.is_none() && peak.0 <= ceiling_k.0;
            let eval = Evaluation {
                label: self.space.label_of(&point),
                design: point.clone(),
                pump_energy: energy.pump_joules(),
                peak,
                area: scenario.stack().silicon_area(),
                per_tier_peak: peak_obs.per_tier().to_vec(),
                feasible,
                violation,
                epochs_run: monitor.epochs_seen(),
                epochs_budget: budget,
                metrics,
            };
            self.slots.insert(point, Slot::Done(self.evaluations.len()));
            self.evaluations.push(eval);
        }
        Ok(())
    }

    /// The cached evaluation of one design, if it ran to completion.
    pub fn evaluation(&self, point: &DesignPoint) -> Option<&Evaluation> {
        match self.slots.get(point)? {
            Slot::Done(i) => Some(&self.evaluations[*i]),
            Slot::Invalid(_) | Slot::Failed(_) => None,
        }
    }

    /// Why a design was skipped, if its spec failed validation.
    pub fn skip_reason(&self, point: &DesignPoint) -> Option<&CmosaicError> {
        match self.slots.get(point)? {
            Slot::Invalid(i) => Some(&self.skipped[*i].1),
            Slot::Done(_) | Slot::Failed(_) => None,
        }
    }

    /// Why a design failed at run time, if the batch isolated it.
    pub fn failure_reason(&self, point: &DesignPoint) -> Option<&SlotError> {
        match self.slots.get(point)? {
            Slot::Failed(i) => Some(&self.failed[*i].1),
            Slot::Done(_) | Slot::Invalid(_) => None,
        }
    }

    /// Every evaluation so far, in evaluation order.
    pub fn evaluations(&self) -> &[Evaluation] {
        &self.evaluations
    }

    /// Designs whose spec failed build-time validation, with the error.
    pub fn skipped(&self) -> &[(DesignPoint, CmosaicError)] {
        &self.skipped
    }

    /// Designs that failed at run time (panic, divergence, exhausted
    /// retry ladder), with the structured slot error.
    pub fn failures(&self) -> &[(DesignPoint, SlotError)] {
        &self.failed
    }

    /// Total designs requested through [`Evaluator::evaluate_all`]
    /// (including revisits).
    pub fn eval_requests(&self) -> usize {
        self.eval_requests
    }

    /// Requests satisfied from the memo (already-seen designs, including
    /// duplicates inside one batch) — the work the memoization saved.
    pub fn memo_hits(&self) -> usize {
        self.memo_hits
    }

    /// The best feasible evaluation so far (see
    /// [`Evaluation::better_than`]), if any design was feasible.
    pub fn best(&self) -> Option<&Evaluation> {
        self.evaluations
            .iter()
            .filter(|e| e.feasible)
            .fold(None, |best, e| match best {
                Some(b) if !e.better_than(b) => Some(b),
                _ => Some(e),
            })
    }

    fn into_report(self, strategy: &str) -> OptimizeReport {
        let best = self.best().cloned();
        let mut front = ParetoFront::new();
        for e in self.evaluations.iter().filter(|e| e.feasible) {
            front.insert(ParetoPoint {
                design: e.design.clone(),
                label: e.label.clone(),
                pump_energy: e.pump_energy,
                peak: e.peak,
                area: e.area,
            });
        }
        let evals_to_best = best.as_ref().map(|b| {
            1 + self
                .evaluations
                .iter()
                .position(|e| e.design == b.design)
                .expect("best came from evaluations")
        });
        OptimizeReport {
            strategy: strategy.to_string(),
            epochs_run: self.evaluations.iter().map(|e| e.epochs_run).sum(),
            epochs_budget: self.evaluations.iter().map(|e| e.epochs_budget).sum(),
            skipped: self.skipped.len(),
            failed: self.failed.len(),
            eval_requests: self.eval_requests,
            memo_hits: self.memo_hits,
            best,
            front,
            evals_to_best,
            evaluations: self.evaluations,
        }
    }
}

/// A search strategy: drives an [`Evaluator`] over the design space. The
/// surrounding [`Optimizer`] turns whatever the strategy explored into
/// the [`OptimizeReport`], so a strategy only decides *which* designs to
/// evaluate, in what order.
pub trait SearchStrategy {
    /// Short strategy name for reports ("grid", "coordinate-descent").
    fn name(&self) -> &str;

    /// Explores the space (all of it, or an adaptive subset).
    ///
    /// # Errors
    ///
    /// Forwards evaluation errors.
    fn explore(&mut self, evaluator: &mut Evaluator<'_>) -> Result<(), CmosaicError>;
}

/// The result of one optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizeReport {
    /// Name of the strategy that produced it.
    pub strategy: String,
    /// The best feasible design found, if any.
    pub best: Option<Evaluation>,
    /// The (cooling energy, peak temperature, silicon area) Pareto front
    /// over every feasible design evaluated, cheapest cooling first.
    pub front: ParetoFront,
    /// Every design evaluated, in evaluation order.
    pub evaluations: Vec<Evaluation>,
    /// Designs skipped because their spec failed build-time validation.
    pub skipped: usize,
    /// Designs that failed at run time and were isolated to their slots
    /// by the fault-tolerant batch (never aborting the search).
    pub failed: usize,
    /// 1-based position of the best design in the evaluation order — the
    /// "evaluations-to-optimum" cost of the strategy.
    pub evals_to_best: Option<usize>,
    /// Total design evaluations the strategy requested (revisits
    /// included).
    pub eval_requests: usize,
    /// Requests the memoization satisfied without simulating anything.
    pub memo_hits: usize,
    /// Control intervals actually simulated across all evaluations.
    pub epochs_run: usize,
    /// Control intervals the same evaluations would have cost without the
    /// early abort.
    pub epochs_budget: usize,
}

impl OptimizeReport {
    /// Number of designs evaluated.
    pub fn n_evaluations(&self) -> usize {
        self.evaluations.len()
    }

    /// Fraction of evaluation requests the memoization satisfied without
    /// simulating anything (0 when nothing was requested).
    pub fn memo_hit_rate(&self) -> f64 {
        if self.eval_requests == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.eval_requests as f64
        }
    }

    /// Fraction of the epoch budget the early abort saved (0 when every
    /// evaluated design was feasible, or with the abort disabled).
    pub fn early_abort_savings(&self) -> f64 {
        if self.epochs_budget == 0 {
            0.0
        } else {
            1.0 - self.epochs_run as f64 / self.epochs_budget as f64
        }
    }
}

/// Ties a [`DesignSpace`], [`Constraints`] and a
/// [`BatchRunner`] together and runs
/// [`SearchStrategy`]s over them.
pub struct Optimizer<'a> {
    space: DesignSpace,
    constraints: Constraints,
    runner: &'a BatchRunner,
    early_abort: bool,
}

impl<'a> Optimizer<'a> {
    /// An optimizer with the infeasibility early abort enabled.
    pub fn new(space: DesignSpace, constraints: Constraints, runner: &'a BatchRunner) -> Self {
        Optimizer {
            space,
            constraints,
            runner,
            early_abort: true,
        }
    }

    /// Disables the early abort: infeasible designs run to completion
    /// (for measuring what the abort saves). Feasible designs are
    /// unaffected, so the best design and the front do not change.
    pub fn without_early_abort(mut self) -> Self {
        self.early_abort = false;
        self
    }

    /// The space under search.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The feasibility constraints.
    pub fn constraints(&self) -> &Constraints {
        &self.constraints
    }

    /// Runs one strategy from a fresh (empty) evaluation cache.
    ///
    /// # Errors
    ///
    /// Forwards evaluation errors.
    pub fn run(&self, strategy: &mut dyn SearchStrategy) -> Result<OptimizeReport, CmosaicError> {
        let mut evaluator = Evaluator::new(
            &self.space,
            &self.constraints,
            self.runner,
            self.early_abort,
        );
        strategy.explore(&mut evaluator)?;
        Ok(evaluator.into_report(strategy.name()))
    }

    /// Runs one strategy with the evaluation cache warm-started from a
    /// prior report — the in-memory resume path: designs the prior run
    /// already evaluated cost nothing, so an interrupted or extended
    /// search picks up where it stopped. The prior report must come from
    /// the same space, constraints and scenario parameters; cached
    /// evaluations are trusted verbatim.
    ///
    /// # Errors
    ///
    /// Forwards evaluation errors.
    pub fn run_seeded(
        &self,
        strategy: &mut dyn SearchStrategy,
        prior: &OptimizeReport,
    ) -> Result<OptimizeReport, CmosaicError> {
        let mut evaluator = Evaluator::new(
            &self.space,
            &self.constraints,
            self.runner,
            self.early_abort,
        );
        for e in &prior.evaluations {
            evaluator
                .slots
                .insert(e.design.clone(), Slot::Done(evaluator.evaluations.len()));
            evaluator.evaluations.push(e.clone());
        }
        strategy.explore(&mut evaluator)?;
        Ok(evaluator.into_report(strategy.name()))
    }
}
