//! Adaptive search: seeded multi-restart coordinate descent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::space::DesignPoint;
use super::{Evaluator, SearchStrategy};
use crate::CmosaicError;

/// Coordinate descent with seeded random restarts.
///
/// Each restart starts from a design drawn uniformly (from the shim
/// [`StdRng`], so the whole trajectory is deterministic given the seed)
/// and repeatedly sweeps the axes: for one axis it evaluates the full
/// line of levels with every other coordinate fixed — one
/// [`BatchRunner`](crate::batch::BatchRunner) batch, memoized, so
/// revisits are free — and moves to the best point on the line
/// ([`Evaluation::better_than`](super::Evaluation::better_than): feasible
/// designs by cooling energy, infeasible ones by peak temperature, which
/// is the gradient back into the feasible region). It stops when a full
/// sweep moves nothing.
///
/// On spaces whose objective is monotone along each axis (flow rate
/// sweeps, tier counts) a single restart is exact; restarts guard
/// against local optima on rougher spaces. Cost per restart is
/// `O(rounds × Σ axis sizes)` evaluations versus the grid's
/// `Π axis sizes`.
#[derive(Debug, Clone)]
pub struct CoordinateDescent {
    seed: u64,
    restarts: usize,
    max_rounds: usize,
}

impl CoordinateDescent {
    /// A descent with the given RNG seed, 2 restarts and at most 8
    /// axis sweeps per restart.
    pub fn seeded(seed: u64) -> Self {
        CoordinateDescent {
            seed,
            restarts: 2,
            max_rounds: 8,
        }
    }

    /// Sets the number of random restarts (clamped to at least 1).
    pub fn restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the axis-sweep cap per restart (clamped to at least 1).
    pub fn max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }
}

impl SearchStrategy for CoordinateDescent {
    fn name(&self) -> &str {
        "coordinate-descent"
    }

    fn explore(&mut self, evaluator: &mut Evaluator<'_>) -> Result<(), CmosaicError> {
        let axis_lens: Vec<usize> = evaluator.space().axes().iter().map(|a| a.len()).collect();
        if axis_lens.contains(&0) {
            return Ok(()); // annihilated space: nothing to search
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.restarts {
            let mut current: Vec<usize> = axis_lens
                .iter()
                .map(|&len| (rng.random::<u64>() % len as u64) as usize)
                .collect();
            evaluator.evaluate_all(std::slice::from_ref(&DesignPoint::new(current.clone())))?;
            for _ in 0..self.max_rounds {
                let mut moved = false;
                for (axis, &len) in axis_lens.iter().enumerate() {
                    let line: Vec<DesignPoint> = (0..len)
                        .map(|level| {
                            let mut indices = current.clone();
                            indices[axis] = level;
                            DesignPoint::new(indices)
                        })
                        .collect();
                    evaluator.evaluate_all(&line)?;
                    let mut choice = current[axis];
                    let mut incumbent = evaluator.evaluation(&line[choice]);
                    for (level, point) in line.iter().enumerate() {
                        if let Some(candidate) = evaluator.evaluation(point) {
                            let wins = match incumbent {
                                None => true, // any evaluated design beats an invalid one
                                Some(e) => candidate.better_than(e),
                            };
                            if wins {
                                choice = level;
                                incumbent = Some(candidate);
                            }
                        }
                    }
                    if choice != current[axis] {
                        current[axis] = choice;
                        moved = true;
                    }
                }
                if !moved {
                    break;
                }
            }
        }
        Ok(())
    }
}
