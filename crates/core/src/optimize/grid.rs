//! Exhaustive grid search: the whole design space as one batch.

use super::{Evaluator, SearchStrategy};
use crate::CmosaicError;

/// Evaluates every design of the space in lexicographic order, as a
/// single [`BatchRunner`](crate::batch::BatchRunner) batch — the same
/// execution path a [`Study`](crate::study::Study) runs on, so scenarios
/// sharing a thermal-operator pattern pay one full factorisation between
/// them and the result is bit-identical at any thread count.
///
/// The reference strategy: exact by construction, cost = the full
/// cartesian product. Use it to certify an adaptive strategy on a small
/// space, or whenever the space is cheap enough to sweep outright.
#[derive(Debug, Clone, Copy, Default)]
pub struct GridSearch;

impl SearchStrategy for GridSearch {
    fn name(&self) -> &str {
        "grid"
    }

    fn explore(&mut self, evaluator: &mut Evaluator<'_>) -> Result<(), CmosaicError> {
        let points = evaluator.space().points();
        evaluator.evaluate_all(&points)
    }
}
