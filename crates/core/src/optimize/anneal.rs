//! Seeded, bit-reproducible simulated annealing with pluggable neighbor
//! moves — the strategy for placement-valued design spaces whose
//! cartesian product is too large to enumerate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::space::DesignPoint;
use super::{Evaluation, Evaluator, SearchStrategy};
use crate::CmosaicError;

/// A neighborhood move: given the current design's level indices and the
/// axis sizes, proposes the next candidate. Implementations must be
/// deterministic functions of `(current, axis_lens, rng)` — all
/// randomness comes from the shim [`StdRng`], so a seeded trajectory is
/// bit-identical across platforms, thread counts and reruns.
///
/// This is how placement axes expose *moves* rather than exhaustively
/// enumerated levels: an axis built from
/// [`DesignAxis::stack_transforms`](super::DesignAxis::stack_transforms)
/// lists candidate placements, and the move decides which neighbor to
/// try next.
pub trait NeighborMove: Send + Sync {
    /// Short move name for diagnostics.
    fn name(&self) -> &str;

    /// Proposes a neighbor of `current` (one level index per axis).
    /// Returning `current` unchanged is allowed — it costs one memoized
    /// (free) evaluation.
    fn propose(&self, current: &[usize], axis_lens: &[usize], rng: &mut StdRng) -> Vec<usize>;
}

/// The default move: pick a uniformly random axis with more than one
/// level, then jump to a uniformly random *different* level of it.
#[derive(Debug, Clone, Default)]
pub struct AxisStep;

impl NeighborMove for AxisStep {
    fn name(&self) -> &str {
        "axis-step"
    }

    fn propose(&self, current: &[usize], axis_lens: &[usize], rng: &mut StdRng) -> Vec<usize> {
        let movable: Vec<usize> = axis_lens
            .iter()
            .enumerate()
            .filter(|(_, &len)| len > 1)
            .map(|(i, _)| i)
            .collect();
        let mut next = current.to_vec();
        if movable.is_empty() {
            return next;
        }
        let axis = movable[(rng.random::<u64>() % movable.len() as u64) as usize];
        let len = axis_lens[axis];
        let offset = 1 + (rng.random::<u64>() % (len as u64 - 1)) as usize;
        next[axis] = (current[axis] + offset) % len;
        next
    }
}

/// A local move for ordered axes (flow rates, tier counts): pick a random
/// axis with more than one level and step its index by ±1, clamped to
/// the axis range.
#[derive(Debug, Clone, Default)]
pub struct AxisNudge;

impl NeighborMove for AxisNudge {
    fn name(&self) -> &str {
        "axis-nudge"
    }

    fn propose(&self, current: &[usize], axis_lens: &[usize], rng: &mut StdRng) -> Vec<usize> {
        let movable: Vec<usize> = axis_lens
            .iter()
            .enumerate()
            .filter(|(_, &len)| len > 1)
            .map(|(i, _)| i)
            .collect();
        let mut next = current.to_vec();
        if movable.is_empty() {
            return next;
        }
        let axis = movable[(rng.random::<u64>() % movable.len() as u64) as usize];
        let up = rng.random::<bool>();
        let len = axis_lens[axis];
        next[axis] = if up {
            (current[axis] + 1).min(len - 1)
        } else {
            current[axis].saturating_sub(1)
        };
        next
    }
}

/// Seeded simulated annealing over a [`DesignSpace`](super::DesignSpace).
///
/// Starting from a random design, each step draws a [`NeighborMove`],
/// evaluates the proposed neighbor (memoized — revisits are free), and
/// accepts it if it is better ([`Evaluation::better_than`]) or, when
/// worse, with the Metropolis probability `exp(-Δ/T)` under a geometric
/// cooling schedule. Skipped/failed proposals are always rejected.
///
/// Determinism: the trajectory is a pure function of the seed and the
/// (deterministic) evaluations, so a fixed-seed run is bit-identical
/// across reruns and `BatchRunner` thread counts. Because evaluations
/// are memoized per design, the simulation cost is the number of
/// *distinct* designs visited, typically far below the grid's
/// exhaustive count.
pub struct SimulatedAnnealing {
    seed: u64,
    steps: usize,
    initial_temperature: f64,
    cooling: f64,
    moves: Vec<Box<dyn NeighborMove>>,
}

impl SimulatedAnnealing {
    /// An annealer with the given RNG seed and defaults: 48 steps,
    /// initial temperature 5.0 (objective units: joules of pump energy),
    /// geometric cooling ×0.9 per step, and the [`AxisStep`] move.
    pub fn seeded(seed: u64) -> Self {
        SimulatedAnnealing {
            seed,
            steps: 48,
            initial_temperature: 5.0,
            cooling: 0.9,
            moves: vec![Box::new(AxisStep)],
        }
    }

    /// Sets the number of annealing steps (clamped to at least 1).
    pub fn steps(mut self, steps: usize) -> Self {
        self.steps = steps.max(1);
        self
    }

    /// Sets the initial temperature in objective units (clamped positive).
    pub fn initial_temperature(mut self, t0: f64) -> Self {
        self.initial_temperature = t0.max(f64::MIN_POSITIVE);
        self
    }

    /// Sets the geometric cooling factor per step (clamped to (0, 1]).
    pub fn cooling(mut self, factor: f64) -> Self {
        self.cooling = factor.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Replaces the move set (ignored if empty). Each step draws one move
    /// uniformly from the set.
    pub fn moves(mut self, moves: Vec<Box<dyn NeighborMove>>) -> Self {
        if !moves.is_empty() {
            self.moves = moves;
        }
        self
    }

    /// Scalar energy the Metropolis criterion works on: feasible designs
    /// cost their pump energy; infeasible ones a large constant plus
    /// their peak temperature, so the annealer walks downhill back into
    /// the feasible region.
    fn energy(e: &Evaluation) -> f64 {
        if e.feasible {
            e.pump_energy
        } else {
            1.0e6 + e.peak.0
        }
    }
}

impl SearchStrategy for SimulatedAnnealing {
    fn name(&self) -> &str {
        "simulated-annealing"
    }

    fn explore(&mut self, evaluator: &mut Evaluator<'_>) -> Result<(), CmosaicError> {
        let axis_lens: Vec<usize> = evaluator.space().axes().iter().map(|a| a.len()).collect();
        if axis_lens.contains(&0) {
            return Ok(()); // annihilated space: nothing to search
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Start from a random design; if it lands on an invalid corner,
        // re-draw (deterministically) a bounded number of times.
        let mut current = DesignPoint::new(
            axis_lens
                .iter()
                .map(|&len| (rng.random::<u64>() % len as u64) as usize)
                .collect(),
        );
        evaluator.evaluate_all(std::slice::from_ref(&current))?;
        let mut redraws = 0;
        while evaluator.evaluation(&current).is_none() && redraws < 16 {
            current = DesignPoint::new(
                axis_lens
                    .iter()
                    .map(|&len| (rng.random::<u64>() % len as u64) as usize)
                    .collect(),
            );
            evaluator.evaluate_all(std::slice::from_ref(&current))?;
            redraws += 1;
        }
        let mut temperature = self.initial_temperature;
        for _ in 0..self.steps {
            let mv = &self.moves[(rng.random::<u64>() % self.moves.len() as u64) as usize];
            let candidate = DesignPoint::new(mv.propose(current.indices(), &axis_lens, &mut rng));
            evaluator.evaluate_all(std::slice::from_ref(&candidate))?;
            let accept = match (
                evaluator.evaluation(&candidate),
                evaluator.evaluation(&current),
            ) {
                (Some(cand), Some(cur)) => {
                    if cand.better_than(cur) {
                        true
                    } else {
                        let delta = Self::energy(cand) - Self::energy(cur);
                        // delta >= 0 here; the acceptance draw keeps the
                        // rng stream aligned regardless of the outcome.
                        rng.random::<f64>() < (-delta / temperature).exp()
                    }
                }
                // Leaving an invalid corner is always an improvement.
                (Some(_), None) => true,
                // Skipped/failed proposals are never accepted.
                (None, _) => false,
            };
            if accept {
                current = candidate;
            }
            temperature *= self.cooling;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_step_proposes_in_range_and_differs() {
        let mut rng = StdRng::seed_from_u64(3);
        let lens = [4usize, 1, 3];
        let current = [2usize, 0, 1];
        for _ in 0..64 {
            let next = AxisStep.propose(&current, &lens, &mut rng);
            assert_eq!(next.len(), 3);
            assert_ne!(next, current, "axis-step always moves somewhere");
            for (i, (&n, &len)) in next.iter().zip(&lens).enumerate() {
                assert!(n < len, "axis {i} proposal {n} out of range {len}");
            }
            assert_eq!(next[1], 0, "single-level axes never move");
        }
    }

    #[test]
    fn axis_nudge_stays_adjacent() {
        let mut rng = StdRng::seed_from_u64(9);
        let lens = [5usize];
        let mut current = vec![2usize];
        for _ in 0..64 {
            let next = AxisNudge.propose(&current, &lens, &mut rng);
            let d = next[0].abs_diff(current[0]);
            assert!(d <= 1, "nudge moved {d} levels");
            assert!(next[0] < 5);
            current = next;
        }
    }

    #[test]
    fn degenerate_spaces_propose_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(AxisStep.propose(&[0], &[1], &mut rng), vec![0]);
        assert_eq!(AxisNudge.propose(&[0], &[1], &mut rng), vec![0]);
        assert_eq!(AxisStep.name(), "axis-step");
        assert_eq!(AxisNudge.name(), "axis-nudge");
    }

    #[test]
    fn builders_clamp() {
        let sa = SimulatedAnnealing::seeded(1)
            .steps(0)
            .initial_temperature(-4.0)
            .cooling(7.0)
            .moves(vec![]);
        assert_eq!(sa.steps, 1);
        assert!(sa.initial_temperature > 0.0);
        assert!(sa.cooling <= 1.0 && sa.cooling > 0.0);
        assert_eq!(sa.moves.len(), 1, "empty move set is ignored");
    }
}
