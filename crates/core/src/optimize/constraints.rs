//! Thermal feasibility constraints and the early-abort observer that
//! enforces them inside the co-simulation loop.

use std::fmt;

use cmosaic_materials::units::{Celsius, Kelvin};

use crate::observe::{EpochCtx, Observer};

/// Temperature ceilings a design must respect to be feasible.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraints {
    peak_ceiling: Celsius,
    tier_ceilings: Vec<(usize, Celsius)>,
}

impl Constraints {
    /// Feasible iff the hottest junction stays at or below `ceiling`
    /// (85 °C in the paper).
    pub fn peak_below(ceiling: Celsius) -> Self {
        Constraints {
            peak_ceiling: ceiling,
            tier_ceilings: Vec::new(),
        }
    }

    /// Additionally caps one tier's junction temperature (e.g. a DRAM
    /// tier rated below the logic tiers). Checked at control-interval
    /// granularity; ceilings on tiers the stack does not have are
    /// ignored.
    pub fn with_tier_ceiling(mut self, tier: usize, ceiling: Celsius) -> Self {
        self.tier_ceilings.push((tier, ceiling));
        self
    }

    /// The stack-wide peak ceiling.
    pub fn peak_ceiling(&self) -> Celsius {
        self.peak_ceiling
    }

    /// The per-tier ceilings, as added.
    pub fn tier_ceilings(&self) -> &[(usize, Celsius)] {
        &self.tier_ceilings
    }

    /// The first constraint this epoch violates, if any (stack-wide peak
    /// first, then tier ceilings in insertion order).
    pub fn violation_of(&self, ctx: &EpochCtx<'_>) -> Option<Violation> {
        if ctx.peak.0 > self.peak_ceiling.to_kelvin().0 {
            return Some(Violation {
                epoch: ctx.epoch,
                tier: None,
                temperature: ctx.peak,
                limit: self.peak_ceiling,
            });
        }
        for &(tier, ceiling) in &self.tier_ceilings {
            if tier >= ctx.n_tiers() {
                continue;
            }
            let t = ctx.field.tier_max(tier);
            if t.0 > ceiling.to_kelvin().0 {
                return Some(Violation {
                    epoch: ctx.epoch,
                    tier: Some(tier),
                    temperature: t,
                    limit: ceiling,
                });
            }
        }
        None
    }
}

/// One observed constraint violation: what got too hot, when, by how
/// much.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Control interval at which the violation was observed.
    pub epoch: usize,
    /// The violated tier ceiling, or `None` for the stack-wide peak.
    pub tier: Option<usize>,
    /// The offending temperature.
    pub temperature: Kelvin,
    /// The ceiling it crossed.
    pub limit: Celsius,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.tier {
            Some(tier) => write!(
                f,
                "tier {tier} reached {:.1} °C (> {}) at epoch {}",
                self.temperature.to_celsius().0,
                self.limit,
                self.epoch
            ),
            None => write!(
                f,
                "peak reached {:.1} °C (> {}) at epoch {}",
                self.temperature.to_celsius().0,
                self.limit,
                self.epoch
            ),
        }
    }
}

/// Observer enforcing [`Constraints`] inside the loop: it records the
/// first violation and — unless switched to
/// [`observe_only`](ConstraintMonitor::observe_only) — asks the simulator
/// to stop right there via [`Observer::should_stop`], so an infeasible
/// design costs only the epochs up to its first violation instead of the
/// full run.
#[derive(Debug, Clone)]
pub struct ConstraintMonitor {
    constraints: Constraints,
    abort: bool,
    violation: Option<Violation>,
    epochs_seen: usize,
}

impl ConstraintMonitor {
    /// A monitor that aborts the run at the first violation.
    pub fn new(constraints: Constraints) -> Self {
        ConstraintMonitor {
            constraints,
            abort: true,
            violation: None,
            epochs_seen: 0,
        }
    }

    /// Keeps recording but never aborts (for measuring what the early
    /// abort saves, or for post-hoc feasibility of a full run).
    pub fn observe_only(mut self) -> Self {
        self.abort = false;
        self
    }

    /// The first violation observed, if any.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }

    /// `true` once any constraint was violated.
    pub fn is_violated(&self) -> bool {
        self.violation.is_some()
    }

    /// Control intervals this monitor actually observed (with the abort
    /// enabled, the epochs the run cost before stopping).
    pub fn epochs_seen(&self) -> usize {
        self.epochs_seen
    }
}

impl Observer for ConstraintMonitor {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        self.epochs_seen += 1;
        if self.violation.is_none() {
            self.violation = self.constraints.violation_of(ctx);
        }
    }

    fn should_stop(&self) -> bool {
        self.abort && self.violation.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_floorplan::GridSpec;
    use cmosaic_thermal::{TemperatureField, ThermalModel, ThermalParams};

    fn field_at(t: f64) -> TemperatureField {
        ThermalModel::new(
            &cmosaic_floorplan::stack::presets::air_cooled_mpsoc(2).expect("preset"),
            GridSpec::new(2, 2).expect("static"),
            ThermalParams {
                initial: Kelvin(t),
                ..Default::default()
            },
        )
        .expect("model")
        .current_field()
    }

    fn ctx(field: &TemperatureField, epoch: usize) -> EpochCtx<'_> {
        EpochCtx {
            epoch,
            time: (epoch + 1) as f64,
            interval: 1.0,
            field,
            core_temps: &[],
            peak: field.max(),
            threshold: Celsius(85.0),
            chip_power: 10.0,
            pump_power: 1.0,
            flow: None,
            assigned: &[],
            vf_levels: &[],
            grid: GridSpec::new(2, 2).expect("static"),
        }
    }

    #[test]
    fn monitor_records_first_violation_and_stops() {
        let cool = field_at(Celsius(60.0).to_kelvin().0);
        let hot = field_at(Celsius(90.0).to_kelvin().0);
        let mut m = ConstraintMonitor::new(Constraints::peak_below(Celsius(85.0)));
        m.on_epoch(&ctx(&cool, 0));
        assert!(!m.is_violated() && !m.should_stop());
        m.on_epoch(&ctx(&hot, 1));
        assert!(m.should_stop());
        let v = m.violation().expect("violated").clone();
        assert_eq!(v.epoch, 1);
        assert_eq!(v.tier, None);
        assert!(v.to_string().contains("> 85"));
        // Later epochs do not overwrite the first violation.
        m.on_epoch(&ctx(&cool, 2));
        assert_eq!(m.violation(), Some(&v));
        assert_eq!(m.epochs_seen(), 3);
    }

    #[test]
    fn observe_only_never_stops() {
        let hot = field_at(Celsius(90.0).to_kelvin().0);
        let mut m = ConstraintMonitor::new(Constraints::peak_below(Celsius(85.0))).observe_only();
        m.on_epoch(&ctx(&hot, 0));
        assert!(m.is_violated());
        assert!(!m.should_stop(), "observe-only records without aborting");
    }

    #[test]
    fn tier_ceilings_bind_per_tier_and_skip_absent_tiers() {
        let warm = field_at(Celsius(70.0).to_kelvin().0);
        let c = Constraints::peak_below(Celsius(85.0))
            .with_tier_ceiling(0, Celsius(65.0))
            .with_tier_ceiling(9, Celsius(20.0)); // tier 9 does not exist
        let v = c.violation_of(&ctx(&warm, 3)).expect("tier 0 too hot");
        assert_eq!(v.tier, Some(0));
        assert_eq!(v.limit, Celsius(65.0));
        assert!(v.to_string().starts_with("tier 0"));
        // The stack-wide peak outranks tier ceilings.
        let hot = field_at(Celsius(90.0).to_kelvin().0);
        let v = c.violation_of(&ctx(&hot, 0)).expect("peak violated");
        assert_eq!(v.tier, None);
    }
}
