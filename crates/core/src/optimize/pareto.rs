//! The multi-objective Pareto front a design-space search returns:
//! non-dominated trade-offs over (cooling energy, peak temperature,
//! silicon/stack area).

use cmosaic_materials::units::Kelvin;

use super::space::DesignPoint;

/// One non-dominated design: its cooling energy, peak temperature and
/// silicon/stack area.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// The design's level indices.
    pub design: DesignPoint,
    /// Human-readable design label.
    pub label: String,
    /// Cooling (pump) energy over the run, joules.
    pub pump_energy: f64,
    /// Peak junction temperature over the run.
    pub peak: Kelvin,
    /// Silicon/stack area of the design, m² (see
    /// [`Stack3d::silicon_area`](cmosaic_floorplan::Stack3d::silicon_area)).
    pub area: f64,
}

impl ParetoPoint {
    /// `true` when `self` is at least as good as `other` on all three
    /// objectives and strictly better on at least one.
    fn dominates(&self, other: &ParetoPoint) -> bool {
        self.pump_energy <= other.pump_energy
            && self.peak.0 <= other.peak.0
            && self.area <= other.area
            && (self.pump_energy < other.pump_energy
                || self.peak.0 < other.peak.0
                || self.area < other.area)
    }
}

/// The set of non-dominated (pump energy, peak temperature, area)
/// designs, kept sorted by ascending energy (ties: peak, then area) —
/// cheapest cooling first.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFront {
    points: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate: rejected (returning `false`) if any resident
    /// point dominates it, otherwise inserted in rank order, evicting
    /// every point it dominates. Ties on all objectives coexist,
    /// ordered by design indices — the same tie-break as
    /// [`Evaluation::better_than`](super::Evaluation::better_than), so
    /// [`ParetoFront::min_energy`] and the evaluator's best design agree
    /// regardless of evaluation order.
    pub fn insert(&mut self, candidate: ParetoPoint) -> bool {
        if self.points.iter().any(|p| p.dominates(&candidate)) {
            return false;
        }
        self.points.retain(|p| !candidate.dominates(p));
        let key = |p: &ParetoPoint| (p.pump_energy, p.peak.0, p.area);
        let pos = self.points.partition_point(|p| {
            key(p) < key(&candidate)
                || (key(p) == key(&candidate) && p.design.indices() < candidate.design.indices())
        });
        self.points.insert(pos, candidate);
        true
    }

    /// The front, sorted by ascending pump energy.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    /// Number of non-dominated designs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when no design was ever accepted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cheapest-cooling design on the front (ties broken by peak,
    /// then area, then design indices).
    pub fn min_energy(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(design: usize, energy: f64, peak_c: f64) -> ParetoPoint {
        pt3(design, energy, peak_c, 1.0)
    }

    fn pt3(design: usize, energy: f64, peak_c: f64, area: f64) -> ParetoPoint {
        ParetoPoint {
            design: DesignPoint::new(vec![design]),
            label: format!("d{design}"),
            pump_energy: energy,
            peak: Kelvin(273.15 + peak_c),
            area,
        }
    }

    #[test]
    fn dominated_candidates_are_rejected_and_evicted() {
        let mut front = ParetoFront::new();
        assert!(front.insert(pt(0, 10.0, 80.0)));
        // Strictly worse on both thermal axes, equal area: rejected.
        assert!(!front.insert(pt(1, 12.0, 82.0)));
        // Trades energy for temperature: coexists.
        assert!(front.insert(pt(2, 6.0, 84.0)));
        assert_eq!(front.len(), 2);
        // Dominates both residents: evicts them.
        assert!(front.insert(pt(3, 5.0, 79.0)));
        assert_eq!(front.len(), 1);
        assert_eq!(front.min_energy().unwrap().label, "d3");
    }

    #[test]
    fn area_is_a_real_third_objective() {
        let mut front = ParetoFront::new();
        assert!(front.insert(pt3(0, 10.0, 80.0, 2.0)));
        // Worse on energy and peak, but smaller silicon: survives.
        assert!(front.insert(pt3(1, 12.0, 82.0, 1.0)));
        assert_eq!(front.len(), 2);
        // Same thermals as d0 with more silicon: dominated.
        assert!(!front.insert(pt3(2, 10.0, 80.0, 3.0)));
        // Smaller area than everyone at middling thermals: survives and
        // evicts d1 (better than it on every objective).
        assert!(front.insert(pt3(3, 11.0, 81.0, 0.5)));
        assert_eq!(front.len(), 2);
        let labels: Vec<&str> = front.points().iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["d0", "d3"]);
    }

    #[test]
    fn front_stays_sorted_by_energy() {
        let mut front = ParetoFront::new();
        front.insert(pt(0, 30.0, 60.0));
        front.insert(pt(1, 10.0, 80.0));
        front.insert(pt(2, 20.0, 70.0));
        let energies: Vec<f64> = front.points().iter().map(|p| p.pump_energy).collect();
        assert_eq!(energies, vec![10.0, 20.0, 30.0]);
        assert_eq!(front.min_energy().unwrap().pump_energy, 10.0);
    }

    #[test]
    fn exact_ties_coexist_ordered_by_design() {
        let mut front = ParetoFront::new();
        // Insert the higher-indexed design first: the tie must still rank
        // the lower-indexed design ahead (matching `Evaluation::better_than`,
        // whatever order a strategy evaluated them in).
        assert!(front.insert(pt(1, 10.0, 80.0)));
        assert!(
            front.insert(pt(0, 10.0, 80.0)),
            "equal point is not dominated"
        );
        assert_eq!(front.len(), 2);
        assert_eq!(front.min_energy().unwrap().label, "d0");
        assert_eq!(front.points()[1].label, "d1");
        assert!(ParetoFront::new().min_energy().is_none());
    }
}
