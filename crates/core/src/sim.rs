//! The co-simulation engine: workload → scheduler/policy → power →
//! thermal, in a closed loop with leakage feedback.
//!
//! The loop follows §IV.A: utilization traces sampled at 1 s drive the
//! power model; temperature sensors (one per core, area-averaged over the
//! core's junction cells) feed the policy; the policy sets task placement,
//! per-core V/f and (for liquid-cooled stacks) the per-cavity flow rate;
//! the compact thermal model advances with a 0.25 s backward-Euler step
//! (four sub-steps per control interval). Leakage is re-evaluated from the
//! current temperatures every interval, closing the electrothermal loop
//! that produces the 4-tier air-cooled runaway.
//!
//! Power is priced per *block*: every control interval the simulator
//! refreshes one [`BlockState`] per floorplan element (demand, V/f level,
//! kind) from the policy's action and re-evaluates the per-tier power maps
//! through the [`PowerAllocator`] — heterogeneous tiers (DRAM,
//! accelerators) price exactly like homogeneous ones. The whole epoch
//! pipeline (sensors → observation → decision → block states → power maps)
//! runs over buffers precomputed at construction, so warm epochs touch the
//! heap zero times.

use cmosaic_floorplan::plan::ElementKind;
use cmosaic_floorplan::stack::Stack3d;
use cmosaic_floorplan::{Floorplan, GridSpec};
use cmosaic_hydraulics::pump::PumpMap;
use cmosaic_materials::units::{Celsius, Kelvin, VolumetricFlow};
use cmosaic_power::trace::WorkloadTrace;
use cmosaic_power::{BlockKind, BlockState, PowerAllocator};
use cmosaic_thermal::{TemperatureField, ThermalModel, ThermalParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;
use crate::metrics::{MetricsAccumulator, RunMetrics};
use crate::observe::{EpochCtx, Observer};
use crate::policy::{Action, Observation, Policy};
use crate::scenario::FlowSchedule;
use crate::CmosaicError;

/// Lower bound of the plausible-temperature band the per-epoch divergence
/// guard enforces (well below any coolant inlet; a cell colder than this
/// is numerics, not physics).
pub const PHYSICAL_MIN_KELVIN: f64 = 150.0;
/// Upper bound of the plausible band (far beyond silicon survival; even
/// the 4-tier air-cooled runaway stays hundreds of kelvin below).
pub const PHYSICAL_MAX_KELVIN: f64 = 2000.0;

/// Static configuration of a co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Thermal grid per layer.
    pub grid: GridSpec,
    /// Thermal integration step, seconds.
    pub thermal_dt: f64,
    /// Control (and trace) interval, seconds.
    pub control_interval: f64,
    /// Hot-spot threshold (85 °C in the paper).
    pub threshold: Celsius,
    /// Thermal model parameters.
    pub thermal: ThermalParams,
    /// Standard deviation of Gaussian sensor noise added to the per-core
    /// readings the *policy* sees (metrics always use the true
    /// temperatures). Zero disables it. Real on-die sensors are 1–2 K
    /// accurate; use this to test controller robustness.
    pub sensor_noise_std: f64,
    /// Seed of the sensor-noise stream (independent of the trace seed).
    pub sensor_seed: u64,
    /// Injected faults (test harness; empty in production — see
    /// [`FaultPlan`]).
    pub fault_plan: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            grid: GridSpec::new(12, 12).expect("static dims"),
            thermal_dt: 0.25,
            control_interval: 1.0,
            threshold: Celsius(85.0),
            thermal: ThermalParams::default(),
            sensor_noise_std: 0.0,
            sensor_seed: 0x5e_a5,
            fault_plan: FaultPlan::default(),
        }
    }
}

/// One core's location in the stack: `(tier index, element index)`.
type CoreRef = (usize, usize);

/// Reused per-epoch buffers of the control loop: the observation and
/// action the policy fills, the per-block actuation states, and the
/// per-tier power vectors and maps derived from them. Everything is sized
/// once at construction, so re-evaluating the power map from block state
/// every epoch allocates nothing.
#[derive(Debug, Default)]
struct EpochScratch {
    obs: Observation,
    action: Action,
    /// Per-tier, per-element junction temperatures (leakage feedback).
    element_temps: Vec<Vec<Kelvin>>,
    /// Per-tier, per-element actuation states.
    states: Vec<Vec<BlockState>>,
    /// Per-element power scratch of the tier currently being priced.
    powers: Vec<f64>,
    /// Per-tier power maps fed to the thermal operator.
    maps: Vec<Vec<f64>>,
}

/// The co-simulation of one 3D MPSoC under one policy and one workload.
pub struct Simulator {
    stack_name: String,
    tier_plans: Vec<Floorplan>,
    model: ThermalModel,
    allocator: PowerAllocator,
    policy: Box<dyn Policy>,
    trace: WorkloadTrace,
    config: SimConfig,
    pump: PumpMap,
    n_cavities: usize,
    cores: Vec<CoreRef>,
    /// Per-tier list of positions into `cores` (for demand slicing).
    tier_core_slots: Vec<Vec<usize>>,
    /// Per-tier, per-element `(cell, weight)` lists on the thermal grid,
    /// precomputed once so per-epoch averaging and power-map scatter
    /// never re-derive geometry (or allocate).
    elem_weights: Vec<Vec<Vec<(usize, f64)>>>,
    acc: MetricsAccumulator,
    seconds_run: usize,
    current_flow: Option<VolumetricFlow>,
    /// Per-second flow override applied on top of the policy's commands
    /// ([`FlowSchedule::Policy`] leaves the policy in charge).
    flow_schedule: FlowSchedule,
    sensor_rng: StdRng,
    /// Reused temperature-field buffer of the sub-step loop (`None` until
    /// the first `run`), so warm sub-steps allocate nothing.
    scratch_field: Option<TemperatureField>,
    /// Reused per-core sensor-reading buffer of the sub-step loop.
    temp_scratch: Vec<Kelvin>,
    /// Reused per-epoch control-loop buffers.
    scratch: EpochScratch,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("stack", &self.stack_name)
            .field("policy", &self.policy.kind())
            .field("workload", &self.trace.kind())
            .field("seconds_run", &self.seconds_run)
            .finish()
    }
}

impl Simulator {
    /// Builds a simulator.
    ///
    /// # Errors
    ///
    /// [`CmosaicError::Config`] when the trace core count does not match
    /// the stack, or the policy's cooling mode does not match the stack's.
    pub fn new(
        stack: &Stack3d,
        policy: Box<dyn Policy>,
        trace: WorkloadTrace,
        allocator: PowerAllocator,
        config: SimConfig,
    ) -> Result<Self, CmosaicError> {
        let tier_plans: Vec<Floorplan> = stack.tiers().to_vec();
        let mut cores = Vec::new();
        let mut tier_core_slots = vec![Vec::new(); tier_plans.len()];
        let mut tier_of = Vec::new();
        for (tier, plan) in tier_plans.iter().enumerate() {
            for e in plan.indices_of_kind(ElementKind::Core) {
                tier_core_slots[tier].push(cores.len());
                cores.push((tier, e));
                tier_of.push(tier);
            }
        }
        if trace.cores() != cores.len() {
            return Err(CmosaicError::Config {
                detail: format!(
                    "trace has {} cores, stack `{}` has {}",
                    trace.cores(),
                    stack.name(),
                    cores.len()
                ),
            });
        }
        if policy.kind().is_liquid_cooled() != stack.is_liquid_cooled() {
            return Err(CmosaicError::Config {
                detail: format!(
                    "policy {} does not match the cooling mode of stack `{}`",
                    policy.kind(),
                    stack.name()
                ),
            });
        }
        let model = ThermalModel::new(stack, config.grid, config.thermal.clone())?;
        let (width, height) = (stack.width(), stack.height());
        let elem_weights: Vec<Vec<Vec<(usize, f64)>>> = tier_plans
            .iter()
            .map(|plan| {
                plan.elements()
                    .iter()
                    .map(|e| config.grid.region_weights(e.rect(), width, height))
                    .collect()
            })
            .collect();
        let scratch = EpochScratch {
            obs: Observation {
                tier_of,
                ..Observation::default()
            },
            action: Action::default(),
            element_temps: tier_plans
                .iter()
                .map(|p| vec![Kelvin::default(); p.elements().len()])
                .collect(),
            states: tier_plans
                .iter()
                .map(|p| {
                    p.elements()
                        .iter()
                        .map(|e| BlockState::idle(BlockKind::from(e.kind())))
                        .collect()
                })
                .collect(),
            powers: Vec::new(),
            maps: tier_plans
                .iter()
                .map(|_| vec![0.0; config.grid.cell_count()])
                .collect(),
        };
        let n_cores = cores.len();
        let sensor_seed = config.sensor_seed;
        Ok(Simulator {
            stack_name: stack.name().to_string(),
            tier_plans,
            model,
            allocator,
            policy,
            trace,
            config,
            pump: PumpMap::table1(),
            n_cavities: stack.cavity_count(),
            cores,
            tier_core_slots,
            elem_weights,
            acc: MetricsAccumulator::new(n_cores),
            seconds_run: 0,
            current_flow: None,
            flow_schedule: FlowSchedule::Policy,
            sensor_rng: StdRng::seed_from_u64(sensor_seed),
            scratch_field: None,
            temp_scratch: Vec::new(),
            scratch,
        })
    }

    /// Applies the configured Gaussian sensor noise to a clean reading
    /// (Box–Muller; deterministic given the sensor seed).
    fn noisy(&mut self, t: Kelvin) -> Kelvin {
        if self.config.sensor_noise_std <= 0.0 {
            return t;
        }
        let u1: f64 = self.sensor_rng.random::<f64>().max(1e-12);
        let u2: f64 = self.sensor_rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        Kelvin(t.0 + z * self.config.sensor_noise_std)
    }

    /// Number of cores across all tiers.
    pub fn n_cores(&self) -> usize {
        self.cores.len()
    }

    /// Installs a coolant-flow override schedule: whenever the schedule
    /// yields a flow for a control interval, it replaces the policy's
    /// pump command for that interval. Ignored on air-cooled and
    /// two-phase stacks (the former has no pump, the latter a fixed mass
    /// flux — [`ScenarioSpec::build`](crate::scenario::ScenarioSpec::build)
    /// rejects those combinations up front).
    pub fn set_flow_schedule(&mut self, schedule: FlowSchedule) {
        self.flow_schedule = schedule;
    }

    /// Solver-path counters of the underlying thermal model: a healthy
    /// closed-loop run shows one full factorisation and a refactorisation
    /// per newly-visited (flow, Δt) operating point, however long the run.
    pub fn solver_stats(&self) -> cmosaic_thermal::SolverStats {
        self.model.solver_stats()
    }

    /// Operator-cache occupancy/evictions of the underlying thermal model.
    pub fn cache_stats(&self) -> cmosaic_thermal::CacheStats {
        self.model.cached_operators()
    }

    /// Area-weighted average of one element's source-layer cells through
    /// the precomputed weight list (allocation-free).
    fn element_average(&self, field: &TemperatureField, tier: usize, element: usize) -> Kelvin {
        let cells = field.tier(tier);
        Kelvin(
            self.elem_weights[tier][element]
                .iter()
                .map(|&(c, f)| cells[c] * f)
                .sum(),
        )
    }

    /// Per-core sensor readings (area-averaged junction temperature) into
    /// a reused buffer — allocation-free once `out` has warmed up.
    fn core_temps_into(&self, field: &TemperatureField, out: &mut Vec<Kelvin>) {
        out.clear();
        out.extend(
            self.cores
                .iter()
                .map(|&(tier, e)| self.element_average(field, tier, e)),
        );
    }

    /// Thermal-solver analysis snapshot for sharing with other simulators
    /// of the same (stack, grid) pattern — see
    /// [`cmosaic_thermal::SharedAnalysis`]. `None` before the first solve.
    pub fn export_thermal_analysis(&self) -> Option<cmosaic_thermal::SharedAnalysis> {
        self.model.export_analysis()
    }

    /// Adopts a donor's thermal symbolic analysis (pattern-checked, always
    /// safe) so this simulator skips its own full pivoting factorisation.
    /// Call before [`Simulator::initialize`]. Returns whether anything was
    /// adopted.
    pub fn adopt_thermal_analysis(&mut self, analysis: &cmosaic_thermal::SharedAnalysis) -> bool {
        self.model.adopt_analysis(analysis)
    }

    /// Maximum junction-layer temperature across tiers.
    fn junction_max(&self, field: &TemperatureField) -> Kelvin {
        (0..self.tier_plans.len())
            .map(|t| field.tier_max(t))
            .fold(Kelvin(f64::NEG_INFINITY), Kelvin::max)
    }

    /// Per-tier element temperatures (for the leakage model) into the
    /// pre-sized scratch — allocation-free.
    fn element_temps_into(&self, field: &TemperatureField, out: &mut [Vec<Kelvin>]) {
        for (tier, temps) in out.iter_mut().enumerate() {
            for (e, slot) in temps.iter_mut().enumerate() {
                *slot = self.element_average(field, tier, e);
            }
        }
    }

    /// Refreshes the per-block actuation states from the policy's action:
    /// cores take their assigned demand and V/f level; uncore blocks (L2,
    /// crossbar, DRAM, accelerators) see the mean demand of the tier's
    /// cores — or the chip-wide mean on tiers without cores (a cache or
    /// memory tier serves the whole chip).
    fn fill_block_states(&mut self, assigned: &[f64], vf_levels: &[usize]) {
        let chip_mean = if assigned.is_empty() {
            0.0
        } else {
            assigned.iter().sum::<f64>() / assigned.len() as f64
        };
        for (tier, states) in self.scratch.states.iter_mut().enumerate() {
            let slots = &self.tier_core_slots[tier];
            let mean = if slots.is_empty() {
                chip_mean
            } else {
                slots.iter().map(|&s| assigned[s]).sum::<f64>() / slots.len() as f64
            };
            let mut core_cursor = 0;
            for state in states.iter_mut() {
                match state.kind {
                    BlockKind::Core => {
                        let slot = slots[core_cursor];
                        core_cursor += 1;
                        state.demand = assigned[slot];
                        state.vf_level = vf_levels[slot];
                    }
                    _ => {
                        state.demand = mean;
                        state.vf_level = 0;
                    }
                }
            }
        }
    }

    /// Re-prices every tier from the current block states and element
    /// temperatures and scatters the result onto the per-tier power maps.
    /// Returns the total chip power. Allocation-free on the warm path.
    fn power_maps_into(&mut self) -> Result<f64, CmosaicError> {
        let mut chip_power = 0.0;
        for (tier, plan) in self.tier_plans.iter().enumerate() {
            self.allocator.tier_powers_into(
                plan,
                &self.scratch.states[tier],
                &self.scratch.element_temps[tier],
                &mut self.scratch.powers,
            )?;
            let tier_power: f64 = self.scratch.powers.iter().sum();
            if !tier_power.is_finite() {
                // A non-finite power map (leakage feedback off a diverged
                // field, or a corrupt trace that slipped past validation)
                // must not reach the thermal operator.
                return Err(CmosaicError::Config {
                    detail: format!("non-finite power ({tier_power}) on tier {tier}"),
                });
            }
            chip_power += tier_power;
            let map = &mut self.scratch.maps[tier];
            map.iter_mut().for_each(|c| *c = 0.0);
            for (weights, &p) in self.elem_weights[tier].iter().zip(&self.scratch.powers) {
                if p == 0.0 {
                    continue;
                }
                for &(cell, frac) in weights {
                    map[cell] += p * frac;
                }
            }
        }
        Ok(chip_power)
    }

    /// Initialises the thermal state with a steady-state solve at the
    /// trace's first sample (the paper initialises with steady-state
    /// temperatures). Liquid-cooled stacks start at maximum flow.
    ///
    /// # Errors
    ///
    /// Forwards model errors.
    pub fn initialize(&mut self) -> Result<(), CmosaicError> {
        // Two-phase stacks fix their mass flux at model construction; only
        // single-phase liquid cooling has a flow rate to set here.
        if self.model.is_liquid_cooled() && !self.model.is_two_phase() {
            let q = VolumetricFlow::from_ml_per_min(32.3);
            self.model.set_flow_rate(q)?;
            self.current_flow = Some(q);
        }
        let demands = self.trace.row(0).to_vec();
        let vf = vec![0usize; self.cores.len()];
        let warm = Celsius(55.0).to_kelvin();
        for temps in self.scratch.element_temps.iter_mut() {
            temps.iter_mut().for_each(|t| *t = warm);
        }
        // Two fixed-point sweeps couple leakage and temperature.
        for _ in 0..2 {
            self.fill_block_states(&demands, &vf);
            self.power_maps_into()?;
            let field = self.model.steady_state(&self.scratch.maps)?;
            let mut element_temps = std::mem::take(&mut self.scratch.element_temps);
            self.element_temps_into(&field, &mut element_temps);
            self.scratch.element_temps = element_temps;
        }
        Ok(())
    }

    /// Runs `seconds` control intervals, accumulating metrics.
    ///
    /// The whole epoch pipeline — sensing, observation, policy decision,
    /// block-state refresh, power-map assembly and the thermal sub-steps —
    /// runs over buffers precomputed at construction
    /// ([`ThermalModel::step_into`] for the field, an internal epoch
    /// scratch for the control loop), so warm epochs allocate nothing.
    ///
    /// # Errors
    ///
    /// Forwards policy/power/thermal errors.
    pub fn run(&mut self, seconds: usize) -> Result<RunMetrics, CmosaicError> {
        self.run_observed(seconds, &mut ())
    }

    /// Runs `seconds` control intervals with an [`Observer`] invoked at
    /// the end of every interval (see [`EpochCtx`] for what it sees).
    /// Everything else behaves exactly like [`Simulator::run`]; the no-op
    /// observer `()` compiles down to it.
    ///
    /// After each epoch the loop polls [`Observer::should_stop`]: a `true`
    /// ends the run right there (the epoch that was just observed is the
    /// last one simulated), and the returned metrics cover only the
    /// intervals that actually ran — the mechanism behind the design-space
    /// optimizer's infeasibility early abort
    /// ([`ConstraintMonitor`](crate::optimize::ConstraintMonitor)).
    ///
    /// # Errors
    ///
    /// Forwards policy/power/thermal errors.
    pub fn run_observed<O: Observer + ?Sized>(
        &mut self,
        seconds: usize,
        observer: &mut O,
    ) -> Result<RunMetrics, CmosaicError> {
        let mut field = self
            .scratch_field
            .take()
            .unwrap_or_else(|| self.model.current_field());
        let mut temps = std::mem::take(&mut self.temp_scratch);
        let r = self.run_inner(seconds, &mut field, &mut temps, observer);
        self.scratch_field = Some(field);
        self.temp_scratch = temps;
        r
    }

    fn run_inner<O: Observer + ?Sized>(
        &mut self,
        seconds: usize,
        field: &mut TemperatureField,
        temps: &mut Vec<Kelvin>,
        observer: &mut O,
    ) -> Result<RunMetrics, CmosaicError> {
        let substeps = (self.config.control_interval / self.config.thermal_dt).round() as usize;
        let substeps = substeps.max(1);
        let dt = self.config.control_interval / substeps as f64;
        let threshold_k = self.config.threshold.to_kelvin();
        let mut executed = 0;

        for t in 0..seconds {
            let epoch = self.seconds_run + t;
            // Injected faults (empty plan in production): a panic models a
            // policy/observer bug, a breakdown models the iterative solver
            // giving up — both anchored to a deterministic epoch.
            if self.config.fault_plan.panics_at(epoch) {
                panic!("injected fault: panic at epoch {epoch}");
            }
            if self
                .config
                .fault_plan
                .breaks_down_at(epoch, &self.config.thermal.solver)
            {
                return Err(CmosaicError::Thermal(
                    cmosaic_thermal::ThermalError::Solver(cmosaic_sparse::SparseError::Breakdown {
                        iteration: 0,
                    }),
                ));
            }
            self.model.current_field_into(field);
            self.core_temps_into(field, temps);
            // Refill the reused observation: demands straight from the
            // trace, sensor readings through the noise model (same RNG
            // draw order as the readings are listed).
            let mut obs = std::mem::take(&mut self.scratch.obs);
            obs.demands.clear();
            obs.demands.extend_from_slice(self.trace.row(epoch));
            obs.core_temps.clear();
            for epoch_t in temps.iter() {
                let noisy = self.noisy(*epoch_t);
                obs.core_temps.push(noisy);
            }
            obs.max_temp = self.noisy(self.junction_max(field));
            let mut action = std::mem::take(&mut self.scratch.action);
            self.policy.decide_into(&obs, &mut action);

            // The schedule (if any) outranks the policy's pump command;
            // air-cooled stacks have no pump and two-phase stacks no
            // adjustable flow, so commands are ignored on both.
            let commanded = self.flow_schedule.flow_at(epoch).or(action.flow);
            if self.model.is_liquid_cooled() && !self.model.is_two_phase() {
                if let Some(q) = commanded {
                    if self.current_flow != Some(q) {
                        self.model.set_flow_rate(q)?;
                        self.current_flow = Some(q);
                    }
                }
            }

            let mut element_temps = std::mem::take(&mut self.scratch.element_temps);
            self.element_temps_into(field, &mut element_temps);
            self.scratch.element_temps = element_temps;
            self.fill_block_states(&action.assigned, &action.vf_levels);
            let chip_power = match self.power_maps_into() {
                Ok(p) => p,
                Err(e) => {
                    self.scratch.obs = obs;
                    self.scratch.action = action;
                    return Err(e);
                }
            };

            // Two-phase stacks advance quasi-statically (one steady solve
            // per interval): the thermal model deliberately refuses
            // transient two-phase steps — the film's storage makes the
            // quasi-static solution the conservative envelope.
            let interval_steps = if self.model.is_two_phase() {
                1
            } else {
                substeps
            };
            let mut epoch_peak = Kelvin(f64::NEG_INFINITY);
            for _ in 0..interval_steps {
                let step = if self.model.is_two_phase() {
                    self.model
                        .steady_state(&self.scratch.maps)
                        .map(|f| *field = f)
                } else {
                    self.model.step_into(&self.scratch.maps, dt, field)
                };
                if let Err(e) = step {
                    self.scratch.obs = obs;
                    self.scratch.action = action;
                    return Err(e.into());
                }
                // Sensor sampling at sub-step granularity (the paper's
                // 100 ms sensors against our 250 ms steps).
                self.core_temps_into(field, temps);
                self.acc.samples += 1;
                let mut any_hot = false;
                for temp in temps.iter() {
                    self.acc.core_samples += 1;
                    if temp.0 > threshold_k.0 {
                        self.acc.hot_core_samples += 1;
                        any_hot = true;
                    }
                }
                if any_hot {
                    self.acc.hot_any_samples += 1;
                }
                let peak = self.junction_max(field);
                if peak.0 > self.acc.peak {
                    self.acc.peak = peak.0;
                }
                epoch_peak = epoch_peak.max(peak);
            }

            // Injected NaN (test harness): poison the field right where a
            // numerically broken solve would have left one, so the guard
            // below is exercised on the real detection path.
            if let Some(cell) = self
                .config
                .fault_plan
                .nan_cell_at(epoch, self.config.thermal_dt)
            {
                field.set_cell(cell, Kelvin(f64::NAN));
            }

            // Per-epoch divergence guard: one O(cells) scan per control
            // interval, so a non-finite or physically implausible field
            // surfaces as a structured error instead of NaN-poisoning the
            // observers, metrics and downstream Pareto fronts.
            if let Some((cell, value)) =
                field.first_non_physical(Kelvin(PHYSICAL_MIN_KELVIN), Kelvin(PHYSICAL_MAX_KELVIN))
            {
                self.scratch.obs = obs;
                self.scratch.action = action;
                return Err(CmosaicError::Diverged { epoch, cell, value });
            }

            // Energy and performance accounting over the interval.
            let interval = self.config.control_interval;
            self.acc.chip_energy += chip_power * interval;
            let mut pump_power = 0.0;
            if let Some(q) = self.current_flow {
                pump_power = self.pump.power(q).0 * self.n_cavities as f64;
                self.acc.pump_energy += pump_power * interval;
                self.acc.flow_integral += q.0;
                self.acc.flow_samples += 1;
            }
            for (slot, &demand) in obs.demands.iter().enumerate() {
                // Performance is measured against the *offered* (pre-LB)
                // work; serving capacity is determined by the assignment
                // and V/f level.
                let assigned = action.assigned[slot];
                let speed = self.allocator.vf().speed(action.vf_levels[slot]);
                let deferred = (assigned - speed).max(0.0);
                self.acc.offered_work[slot] += demand * interval;
                self.acc.deferred_work[slot] += deferred * interval;
            }

            // Epoch hook: observers see the end-of-interval state with the
            // true (noise-free) temperatures.
            let ctx = EpochCtx {
                epoch,
                time: (epoch + 1) as f64 * interval,
                interval,
                field,
                core_temps: temps,
                peak: epoch_peak,
                threshold: self.config.threshold,
                chip_power,
                pump_power,
                flow: self.current_flow,
                assigned: &action.assigned,
                vf_levels: &action.vf_levels,
                grid: self.config.grid,
            };
            observer.on_epoch(&ctx);
            self.scratch.obs = obs;
            self.scratch.action = action;
            executed = t + 1;
            if observer.should_stop() {
                break;
            }
        }
        self.seconds_run += executed;
        let liquid = self.model.is_liquid_cooled();
        Ok(self.acc.clone().finish(self.seconds_run, liquid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{make_policy, PolicyKind};
    use cmosaic_floorplan::stack::presets;
    use cmosaic_power::trace::WorkloadKind;

    fn small_config() -> SimConfig {
        SimConfig {
            grid: GridSpec::new(6, 6).expect("static"),
            thermal_dt: 0.5,
            ..Default::default()
        }
    }

    fn run(kind: PolicyKind, tiers: usize, workload: WorkloadKind, secs: usize) -> RunMetrics {
        let stack = if kind.is_liquid_cooled() {
            presets::liquid_cooled_mpsoc(tiers).unwrap()
        } else {
            presets::air_cooled_mpsoc(tiers).unwrap()
        };
        let n_cores = tiers.div_ceil(2) * 8;
        let trace = workload.generate(n_cores, secs, 11);
        let policy = make_policy(kind, n_cores);
        let mut sim = Simulator::new(
            &stack,
            policy,
            trace,
            PowerAllocator::niagara(),
            small_config(),
        )
        .unwrap();
        sim.initialize().unwrap();
        sim.run(secs).unwrap()
    }

    #[test]
    fn liquid_cooling_removes_hot_spots() {
        let m = run(PolicyKind::LcLb, 2, WorkloadKind::MaxUtilization, 10);
        assert_eq!(m.hotspot_time_per_core, 0.0, "LC_LB must have no hot spots");
        assert!(m.peak_temperature.to_celsius().0 < 85.0);
    }

    #[test]
    fn fuzzy_saves_pump_energy_versus_max_flow() {
        let lb = run(PolicyKind::LcLb, 2, WorkloadKind::WebServer, 20);
        let fz = run(PolicyKind::LcFuzzy, 2, WorkloadKind::WebServer, 20);
        assert!(
            fz.pump_energy < lb.pump_energy,
            "fuzzy {} J !< max-flow {} J",
            fz.pump_energy,
            lb.pump_energy
        );
        assert_eq!(fz.hotspot_time_per_core, 0.0);
    }

    #[test]
    fn air_cooled_four_tier_overheats() {
        let m = run(PolicyKind::AcLb, 4, WorkloadKind::MaxUtilization, 10);
        assert!(
            m.peak_temperature.to_celsius().0 > 110.0,
            "4-tier AC peak {} should exceed 110 °C",
            m.peak_temperature.to_celsius().0
        );
        assert!(m.hotspot_time_per_core > 0.5);
    }

    #[test]
    fn config_mismatches_are_rejected() {
        let stack = presets::air_cooled_mpsoc(2).unwrap();
        // Wrong core count.
        let trace = WorkloadKind::Database.generate(4, 10, 0);
        let r = Simulator::new(
            &stack,
            make_policy(PolicyKind::AcLb, 4),
            trace,
            PowerAllocator::niagara(),
            small_config(),
        );
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        // Liquid policy on an air-cooled stack.
        let trace = WorkloadKind::Database.generate(8, 10, 0);
        let r = Simulator::new(
            &stack,
            make_policy(PolicyKind::LcLb, 8),
            trace,
            PowerAllocator::niagara(),
            small_config(),
        );
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
    }

    #[test]
    fn control_loop_rides_the_refactor_path() {
        // The fuzzy controller modulates the flow every interval; the
        // thermal model must absorb that with exactly one full pivoting
        // factorisation and numeric refactorisations for everything else.
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let trace = WorkloadKind::WebServer.generate(8, 30, 11);
        let mut sim = Simulator::new(
            &stack,
            make_policy(PolicyKind::LcFuzzy, 8),
            trace,
            PowerAllocator::niagara(),
            small_config(),
        )
        .unwrap();
        sim.initialize().unwrap();
        sim.run(30).unwrap();
        let s = sim.solver_stats();
        assert_eq!(s.full_factorizations, 1, "{s:?}");
        assert_eq!(s.pivot_fallbacks, 0, "{s:?}");
        assert!(s.refactorizations >= 1, "{s:?}");
        // The bounded caches never exceed their capacity.
        let c = sim.cache_stats();
        assert!(c.steady_entries <= c.capacity && c.transient_entries <= c.capacity);
    }

    #[test]
    fn flow_schedules_are_ignored_on_air_cooled_stacks() {
        // Directly-built simulators bypass ScenarioSpec validation; a
        // schedule on a pump-less stack must be a no-op, not a run error.
        let stack = presets::air_cooled_mpsoc(2).unwrap();
        let trace = WorkloadKind::WebServer.generate(8, 5, 11);
        let mut sim = Simulator::new(
            &stack,
            make_policy(PolicyKind::AcLb, 8),
            trace,
            PowerAllocator::niagara(),
            small_config(),
        )
        .unwrap();
        sim.set_flow_schedule(crate::scenario::FlowSchedule::Fixed(
            VolumetricFlow::from_ml_per_min(20.0),
        ));
        sim.initialize().unwrap();
        let m = sim.run(5).unwrap();
        assert_eq!(m.pump_energy, 0.0);
        assert!(m.mean_flow.is_none());
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(PolicyKind::LcFuzzy, 2, WorkloadKind::Database, 8);
        let b = run(PolicyKind::LcFuzzy, 2, WorkloadKind::Database, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn migration_runs_end_to_end_and_conserves_safety() {
        let m = run(
            PolicyKind::LcMigration { seed: 42 },
            2,
            WorkloadKind::Database,
            10,
        );
        assert_eq!(m.hotspot_time_per_core, 0.0);
        assert!(m.peak_temperature.to_celsius().0 < 85.0);
    }

    #[test]
    fn heterogeneous_stacks_simulate_end_to_end() {
        // Memory-on-logic: DRAM tiers carry no cores, so the trace spans
        // only the logic tiers' cores; the allocator prices the DRAM banks.
        let stack = presets::memory_on_logic(4).unwrap();
        let n_cores = 16; // 2 core tiers × 8
        let trace = WorkloadKind::WebServer.generate(n_cores, 5, 11);
        let mut sim = Simulator::new(
            &stack,
            make_policy(PolicyKind::LcLb, n_cores),
            trace,
            PowerAllocator::memory_on_logic(),
            small_config(),
        )
        .unwrap();
        sim.initialize().unwrap();
        let m = sim.run(5).unwrap();
        assert!(m.peak_temperature.to_celsius().0 < 85.0);
        assert!(m.chip_energy > 0.0);
    }

    #[test]
    fn performance_loss_is_negligible_for_fuzzy() {
        // §IV.A: "the performance degradation results do not exceed 0.01%".
        let m = run(PolicyKind::LcFuzzy, 2, WorkloadKind::Multimedia, 20);
        assert!(
            m.perf_loss_max < 0.01,
            "fuzzy perf loss {} should be negligible",
            m.perf_loss_max
        );
    }

    #[test]
    fn joint_control_beats_flow_only_on_chip_energy() {
        // §IV.A: LC_FUZZY wins "due to the joint control of flow rate and
        // DVFS" — the flow-only ablation must save less chip energy.
        let joint = run(PolicyKind::LcFuzzy, 2, WorkloadKind::WebServer, 20);
        let flow_only = run(PolicyKind::LcFuzzyFlowOnly, 2, WorkloadKind::WebServer, 20);
        assert!(
            joint.chip_energy < flow_only.chip_energy,
            "joint {} J !< flow-only {} J",
            joint.chip_energy,
            flow_only.chip_energy
        );
        // Both keep the stack safe.
        assert_eq!(flow_only.hotspot_time_per_core, 0.0);
    }

    #[test]
    fn fuzzy_is_robust_to_sensor_noise() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let trace = WorkloadKind::Database.generate(8, 20, 11);
        let config = SimConfig {
            grid: GridSpec::new(6, 6).expect("static"),
            thermal_dt: 0.5,
            sensor_noise_std: 2.0, // a poor 2 K-sigma sensor
            ..Default::default()
        };
        let mut sim = Simulator::new(
            &stack,
            make_policy(PolicyKind::LcFuzzy, 8),
            trace,
            PowerAllocator::niagara(),
            config,
        )
        .unwrap();
        sim.initialize().unwrap();
        let m = sim.run(20).unwrap();
        assert_eq!(
            m.hotspot_time_per_core, 0.0,
            "noisy sensors must not cause hot spots (temperature rules dominate)"
        );
        assert!(m.peak_temperature.to_celsius().0 < 85.0);
    }
}
