//! Checkpoint/resume journal for long [`Study`](crate::study::Study)
//! runs.
//!
//! A [`StudyJournal`] is a versioned, append-only, line-oriented text
//! file recording one line per finished scenario slot — success or
//! structured failure — flushed as each worker finishes, so a process
//! killed mid-study loses at most the scenarios that were in flight.
//! [`Study::run_checkpointed`](crate::study::Study::run_checkpointed)
//! opens the journal, skips every journaled slot, re-runs the rest, and
//! merges the two sets into a report that is **bit-identical to the
//! uninterrupted run at any thread count**: all floating-point payloads
//! are serialised as exact IEEE-754 bit patterns (`f64::to_bits`, hex),
//! never as decimal round-trips, and completed donors of pattern groups
//! with pending adopters have their frozen symbolic analyses cheaply
//! regenerated (initialisation reproduces them exactly) so resumed
//! adopters still ride the shared-analysis path.
//!
//! The journal is bound to its study by a fingerprint over every
//! [`ScenarioSpec`] (FNV-1a over the specs' debug
//! renderings) plus the scenario count; resuming against a journal from
//! a different study fails with [`CmosaicError::Journal`] instead of
//! silently merging foreign results. A torn trailing line — the expected
//! artefact of a kill mid-append — is ignored, as is anything after it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_thermal::SolverStats;

use crate::batch::{RecoveryRecord, ScenarioError, ScenarioOutcome, SlotError};
use crate::metrics::RunMetrics;
use crate::scenario::{Fnv1a, ScenarioSpec};
use crate::CmosaicError;

const VERSION: u32 = 3;

/// FNV-1a fingerprint binding a journal to its study: folds the ordered
/// per-spec [`ScenarioSpec::fingerprint`] values, plus the count, so the
/// journal key and any per-spec cache key derive from the same identity.
/// Any change to a scenario — axes, seeds, duration, fault plans —
/// changes the fingerprint and invalidates old journals. (v3 bumped the
/// version when the composition moved onto the public per-spec
/// fingerprints.)
pub fn fingerprint(specs: &[ScenarioSpec]) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(&(specs.len() as u64).to_le_bytes());
    for spec in specs {
        h.eat(&spec.fingerprint().to_le_bytes());
    }
    h.finish()
}

/// An append-only on-disk record of finished study slots (see the
/// [module docs](self)).
#[derive(Debug)]
pub struct StudyJournal {
    completed: Vec<Option<Result<ScenarioOutcome, SlotError>>>,
    file: Mutex<File>,
}

impl StudyJournal {
    /// Opens (or creates) the journal at `path` for a study of
    /// `scenarios` slots with the given spec `fingerprint`, loading any
    /// slots a previous run already journaled.
    ///
    /// # Errors
    ///
    /// [`CmosaicError::Journal`] when the file cannot be opened/read,
    /// or when an existing journal's version, fingerprint or scenario
    /// count does not match this study.
    pub fn open(
        path: &Path,
        fingerprint: u64,
        scenarios: usize,
    ) -> Result<StudyJournal, CmosaicError> {
        let journal_err = |detail: String| CmosaicError::Journal { detail };
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)
            .map_err(|e| journal_err(format!("cannot open {}: {e}", path.display())))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| journal_err(format!("cannot read {}: {e}", path.display())))?;

        let mut completed: Vec<Option<Result<ScenarioOutcome, SlotError>>> =
            (0..scenarios).map(|_| None).collect();
        if text.is_empty() {
            let header =
                format!("cmosaic-study-journal v{VERSION} fingerprint={fingerprint:016x} scenarios={scenarios}\n");
            file.write_all(header.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| journal_err(format!("cannot write {}: {e}", path.display())))?;
        } else {
            let mut lines = text.lines();
            let header = lines.next().unwrap_or("");
            let expected = format!(
                "cmosaic-study-journal v{VERSION} fingerprint={fingerprint:016x} scenarios={scenarios}"
            );
            if header != expected {
                return Err(journal_err(format!(
                    "{} does not belong to this study (found `{header}`, expected `{expected}`)",
                    path.display()
                )));
            }
            for line in lines {
                // A torn tail from a kill mid-append parses as garbage;
                // everything from the first malformed line on is dropped
                // and simply re-run.
                let Some((index, slot)) = parse_slot_line(line) else {
                    break;
                };
                if index >= scenarios {
                    break;
                }
                completed[index] = Some(slot);
            }
        }
        Ok(StudyJournal {
            completed,
            file: Mutex::new(file),
        })
    }

    /// The slots a previous run already finished, index-aligned with the
    /// study's scenarios (`None` = still to run).
    pub fn completed(&self) -> &[Option<Result<ScenarioOutcome, SlotError>>] {
        &self.completed
    }

    /// How many slots are already journaled.
    pub fn completed_count(&self) -> usize {
        self.completed.iter().filter(|s| s.is_some()).count()
    }

    /// Appends one finished slot and flushes it to disk. Called from
    /// batch workers as each scenario finishes; append order across
    /// threads is arbitrary (lines are keyed by slot index). Best
    /// effort: an append that fails only costs the slot a re-run on the
    /// next resume, so I/O errors are swallowed rather than aborting a
    /// batch that is otherwise making progress.
    pub fn record(&self, index: usize, slot: &Result<ScenarioOutcome, SlotError>) {
        let line = render_slot_line(index, slot);
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.write_all(line.as_bytes()).and_then(|()| file.flush());
    }
}

// ---- Serialisation. Line-oriented, space-separated, positional. All
// f64 payloads travel as 16-hex-digit IEEE-754 bit patterns so a
// journaled value is *the* value, bit for bit; strings travel hex-coded
// so they can never contain a separator.

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(tok: &str) -> Option<f64> {
    (tok.len() == 16)
        .then(|| u64::from_str_radix(tok, 16).ok().map(f64::from_bits))
        .flatten()
}

fn hex_str(s: &str) -> String {
    s.bytes().map(|b| format!("{b:02x}")).collect()
}

fn parse_hex_str(tok: &str) -> Option<String> {
    if !tok.len().is_multiple_of(2) {
        return None;
    }
    let bytes: Option<Vec<u8>> = (0..tok.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&tok[i..i + 2], 16).ok())
        .collect();
    String::from_utf8(bytes?).ok()
}

fn render_recovery(r: &RecoveryRecord) -> String {
    format!("{} {} {}", r.attempts, r.backend_demotions, r.dt_halvings)
}

fn render_slot_line(index: usize, slot: &Result<ScenarioOutcome, SlotError>) -> String {
    match slot {
        Ok(o) => {
            let m = &o.metrics;
            let s = &o.solver;
            format!(
                "slot {index} ok {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}\n",
                render_recovery(&o.recovery),
                hex_f64(m.hotspot_time_per_core),
                hex_f64(m.hotspot_time_any),
                hex_f64(m.peak_temperature.0),
                hex_f64(m.chip_energy),
                hex_f64(m.pump_energy),
                hex_f64(m.perf_loss_mean),
                hex_f64(m.perf_loss_max),
                m.mean_flow.map_or("none".to_string(), |f| hex_f64(f.0)),
                m.seconds,
                s.full_factorizations,
                s.refactorizations,
                s.pivot_fallbacks,
                s.value_updates,
                s.in_place_solves,
                s.workspace_grows,
                s.adopted_symbolics,
                s.iterative_solves,
                s.iterative_iterations,
                s.iterative_fallbacks,
                s.ilu_refreshes,
                s.mg_cycles,
                s.mg_smooth_sweeps,
                s.mg_coarse_solves,
            )
        }
        Err(e) => {
            let kind = match &e.error {
                ScenarioError::Panicked { message } => {
                    format!("panicked {}", hex_str(message))
                }
                ScenarioError::Diverged { epoch, cell, value } => {
                    format!("diverged {epoch} {cell} {}", hex_f64(*value))
                }
                ScenarioError::Failed { detail } => format!("failed {}", hex_str(detail)),
            };
            format!("slot {index} err {} {kind}\n", render_recovery(&e.recovery))
        }
    }
}

fn parse_slot_line(line: &str) -> Option<(usize, Result<ScenarioOutcome, SlotError>)> {
    let toks: Vec<&str> = line.split(' ').collect();
    if toks.len() < 4 || toks[0] != "slot" {
        return None;
    }
    let index: usize = toks[1].parse().ok()?;
    let recovery = RecoveryRecord {
        attempts: toks[3].parse().ok()?,
        backend_demotions: toks[4].parse().ok()?,
        dt_halvings: toks[5].parse().ok()?,
    };
    match toks[2] {
        "ok" => {
            if toks.len() != 29 {
                return None;
            }
            let f = |i: usize| parse_hex_f64(toks[i]);
            let u = |i: usize| toks[i].parse::<u64>().ok();
            let metrics = RunMetrics {
                hotspot_time_per_core: f(6)?,
                hotspot_time_any: f(7)?,
                peak_temperature: Kelvin(f(8)?),
                chip_energy: f(9)?,
                pump_energy: f(10)?,
                perf_loss_mean: f(11)?,
                perf_loss_max: f(12)?,
                mean_flow: if toks[13] == "none" {
                    None
                } else {
                    Some(VolumetricFlow(parse_hex_f64(toks[13])?))
                },
                seconds: toks[14].parse().ok()?,
            };
            let solver = SolverStats {
                full_factorizations: u(15)?,
                refactorizations: u(16)?,
                pivot_fallbacks: u(17)?,
                value_updates: u(18)?,
                in_place_solves: u(19)?,
                workspace_grows: u(20)?,
                adopted_symbolics: u(21)?,
                iterative_solves: u(22)?,
                iterative_iterations: u(23)?,
                iterative_fallbacks: u(24)?,
                ilu_refreshes: u(25)?,
                mg_cycles: u(26)?,
                mg_smooth_sweeps: u(27)?,
                mg_coarse_solves: u(28)?,
            };
            Some((
                index,
                Ok(ScenarioOutcome {
                    index,
                    metrics,
                    solver,
                    recovery,
                }),
            ))
        }
        "err" => {
            let error = match *toks.get(6)? {
                "panicked" if toks.len() == 8 => ScenarioError::Panicked {
                    message: parse_hex_str(toks[7])?,
                },
                "diverged" if toks.len() == 10 => ScenarioError::Diverged {
                    epoch: toks[7].parse().ok()?,
                    cell: toks[8].parse().ok()?,
                    value: parse_hex_f64(toks[9])?,
                },
                "failed" if toks.len() == 8 => ScenarioError::Failed {
                    detail: parse_hex_str(toks[7])?,
                },
                _ => return None,
            };
            Some((index, Err(SlotError { error, recovery })))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_journal_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "cmosaic-journal-{}-{tag}-{}.log",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_ok(index: usize) -> Result<ScenarioOutcome, SlotError> {
        Ok(ScenarioOutcome {
            index,
            metrics: RunMetrics {
                hotspot_time_per_core: 0.1 + index as f64,
                hotspot_time_any: 0.25,
                peak_temperature: Kelvin(351.062_500_000_001),
                chip_energy: 123.456,
                pump_energy: 7.89,
                perf_loss_mean: 0.01,
                perf_loss_max: 0.05,
                mean_flow: index.is_multiple_of(2).then_some(VolumetricFlow(4.2e-7)),
                seconds: 30,
            },
            solver: SolverStats {
                full_factorizations: 1,
                refactorizations: 29,
                in_place_solves: 120,
                ..Default::default()
            },
            recovery: RecoveryRecord {
                attempts: 2,
                backend_demotions: 0,
                dt_halvings: 1,
            },
        })
    }

    fn sample_errors() -> Vec<Result<ScenarioOutcome, SlotError>> {
        let rec = RecoveryRecord {
            attempts: 4,
            backend_demotions: 1,
            dt_halvings: 2,
        };
        vec![
            Err(SlotError {
                error: ScenarioError::Panicked {
                    message: "injected fault: panic at epoch 3".into(),
                },
                recovery: RecoveryRecord {
                    attempts: 1,
                    ..Default::default()
                },
            }),
            Err(SlotError {
                error: ScenarioError::Diverged {
                    epoch: 7,
                    cell: 42,
                    value: f64::NAN,
                },
                recovery: rec,
            }),
            Err(SlotError {
                error: ScenarioError::Failed {
                    detail: "thermal model error: dry-out in cavity 0".into(),
                },
                recovery: rec,
            }),
        ]
    }

    #[test]
    fn slot_lines_round_trip_bit_exactly() {
        let mut slots = vec![sample_ok(0), sample_ok(1)];
        slots.extend(sample_errors());
        for (i, slot) in slots.iter().enumerate() {
            let line = render_slot_line(i, slot);
            let (index, parsed) = parse_slot_line(line.trim_end()).expect("parses");
            assert_eq!(index, i);
            match (slot, &parsed) {
                // NaN breaks PartialEq; compare the bits instead.
                (Err(a), Err(b)) => {
                    assert_eq!(a.recovery, b.recovery);
                    match (&a.error, &b.error) {
                        (
                            ScenarioError::Diverged { value: va, .. },
                            ScenarioError::Diverged { value: vb, .. },
                        ) => assert_eq!(va.to_bits(), vb.to_bits()),
                        (ea, eb) => assert_eq!(ea, eb),
                    }
                }
                _ => assert_eq!(*slot, parsed),
            }
        }
    }

    #[test]
    fn journal_persists_and_reloads_slots() {
        let path = temp_journal_path("reload");
        let fp = 0xdead_beef_u64;
        {
            let journal = StudyJournal::open(&path, fp, 3).unwrap();
            assert_eq!(journal.completed_count(), 0);
            journal.record(1, &sample_ok(1));
            journal.record(0, &sample_errors()[0]);
        }
        let journal = StudyJournal::open(&path, fp, 3).unwrap();
        assert_eq!(journal.completed_count(), 2);
        assert_eq!(journal.completed()[1], Some(sample_ok(1)));
        assert!(matches!(
            &journal.completed()[0],
            Some(Err(e)) if matches!(e.error, ScenarioError::Panicked { .. })
        ));
        assert!(journal.completed()[2].is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn foreign_journals_are_rejected() {
        let path = temp_journal_path("foreign");
        StudyJournal::open(&path, 1, 2).unwrap();
        // Different fingerprint and different scenario count both fail.
        assert!(matches!(
            StudyJournal::open(&path, 2, 2),
            Err(CmosaicError::Journal { .. })
        ));
        assert!(matches!(
            StudyJournal::open(&path, 1, 3),
            Err(CmosaicError::Journal { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = temp_journal_path("torn");
        {
            let journal = StudyJournal::open(&path, 9, 4).unwrap();
            journal.record(0, &sample_ok(0));
            journal.record(1, &sample_ok(1));
        }
        // Emulate a kill mid-append: chop the file mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap();
        let journal = StudyJournal::open(&path, 9, 4).unwrap();
        assert_eq!(journal.completed_count(), 1, "torn slot 1 is re-run");
        assert_eq!(journal.completed()[0], Some(sample_ok(0)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_tracks_spec_changes() {
        let a = vec![ScenarioSpec::new().seconds(2)];
        let b = vec![ScenarioSpec::new().seconds(3)];
        let two = vec![
            ScenarioSpec::new().seconds(2),
            ScenarioSpec::new().seconds(2),
        ];
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&two));
    }
}
