//! Observer hooks into the co-simulation loop.
//!
//! A design-space exploration rarely wants only the aggregate
//! [`RunMetrics`](crate::RunMetrics): one study needs the per-epoch hotspot
//! field, another the cooling-energy trajectory, a third a custom probe at
//! one floorplan element. Before this module the only way to get those was
//! to fork the simulation loop. Instead, [`Simulator::run_observed`]
//! (and [`Scenario::run_observed`], [`Study::run_observed`]) invoke an
//! [`Observer`] once per control interval (*epoch*) with an [`EpochCtx`]
//! snapshot of everything the loop knows — temperatures, powers, the
//! policy's action — without the loop allocating anything extra for
//! observers that do not ask for it.
//!
//! Observers compose: tuples of observers are observers, `Vec<Box<dyn
//! Observer>>` is an observer, and `()` is the no-op observer the plain
//! [`Simulator::run`](crate::Simulator::run) uses. An observer can also
//! end a run early: the loop polls [`Observer::should_stop`] after every
//! epoch, the hook behind the design-space optimizer's infeasibility
//! abort ([`ConstraintMonitor`](crate::optimize::ConstraintMonitor)).
//!
//! [`Simulator::run_observed`]: crate::Simulator::run_observed
//! [`Scenario::run_observed`]: crate::scenario::Scenario::run_observed
//! [`Study::run_observed`]: crate::study::Study::run_observed

use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, Kelvin, VolumetricFlow};
use cmosaic_thermal::TemperatureField;

/// Everything the co-simulation loop knows at the end of one control
/// interval, lent to observers.
///
/// All temperatures are the *true* model temperatures (metrics and
/// observers never see sensor noise; only the policy does).
#[derive(Debug)]
pub struct EpochCtx<'a> {
    /// Absolute control-interval index since the simulator was built
    /// (continues across successive `run` calls).
    pub epoch: usize,
    /// Simulated time at the end of this interval, seconds.
    pub time: f64,
    /// Control-interval length, seconds.
    pub interval: f64,
    /// Full temperature field at the end of the interval.
    pub field: &'a TemperatureField,
    /// Per-core junction temperatures (area-averaged source-layer cells).
    pub core_temps: &'a [Kelvin],
    /// Hottest junction temperature anywhere in the stack over the
    /// interval (maximum across its thermal sub-steps, the same sampling
    /// as the run metrics — not just the interval's endpoint).
    pub peak: Kelvin,
    /// The hot-spot threshold the run is judged against.
    pub threshold: Celsius,
    /// Chip (compute + leakage) power over the interval, watts.
    pub chip_power: f64,
    /// Pump power over the interval, watts (zero when no coolant flows).
    pub pump_power: f64,
    /// Per-cavity coolant flow during the interval, if any.
    pub flow: Option<VolumetricFlow>,
    /// Per-core demand after the policy's balancing/migration.
    pub assigned: &'a [f64],
    /// Per-core DVFS level chosen by the policy (0 = nominal).
    pub vf_levels: &'a [usize],
    /// Thermal grid of the run.
    pub grid: GridSpec,
}

impl EpochCtx<'_> {
    /// Number of tiers in the observed stack.
    pub fn n_tiers(&self) -> usize {
        self.field.n_tiers()
    }

    /// Total system power (chip + pump) over the interval, watts.
    pub fn system_power(&self) -> f64 {
        self.chip_power + self.pump_power
    }
}

/// A per-epoch hook into the co-simulation loop.
///
/// Implementations must not assume anything about epochs they did not see:
/// a simulator can be run in several `run` calls, and `epoch` is absolute.
pub trait Observer {
    /// Called once at the end of every control interval.
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>);

    /// Polled by the loop right after every [`Observer::on_epoch`]; return
    /// `true` to end the run early (the interval that was just observed is
    /// the last one simulated and accounted). The default never stops —
    /// only deliberately early-aborting observers such as
    /// [`ConstraintMonitor`](crate::optimize::ConstraintMonitor) override
    /// it. Composite observers stop as soon as *any* member asks to.
    fn should_stop(&self) -> bool {
        false
    }
}

/// The no-op observer (what [`Simulator::run`](crate::Simulator::run)
/// uses).
impl Observer for () {
    fn on_epoch(&mut self, _ctx: &EpochCtx<'_>) {}
}

impl<O: Observer + ?Sized> Observer for &mut O {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        (**self).on_epoch(ctx);
    }

    fn should_stop(&self) -> bool {
        (**self).should_stop()
    }
}

impl<O: Observer + ?Sized> Observer for Box<O> {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        (**self).on_epoch(ctx);
    }

    fn should_stop(&self) -> bool {
        (**self).should_stop()
    }
}

impl<A: Observer, B: Observer> Observer for (A, B) {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        self.0.on_epoch(ctx);
        self.1.on_epoch(ctx);
    }

    fn should_stop(&self) -> bool {
        self.0.should_stop() || self.1.should_stop()
    }
}

impl<A: Observer, B: Observer, C: Observer> Observer for (A, B, C) {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        self.0.on_epoch(ctx);
        self.1.on_epoch(ctx);
        self.2.on_epoch(ctx);
    }

    fn should_stop(&self) -> bool {
        self.0.should_stop() || self.1.should_stop() || self.2.should_stop()
    }
}

impl Observer for Vec<Box<dyn Observer + Send>> {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        for o in self {
            o.on_epoch(ctx);
        }
    }

    fn should_stop(&self) -> bool {
        self.iter().any(|o| o.should_stop())
    }
}

/// Built-in observer: tracks the peak junction temperature, when it
/// occurred, and the per-tier peaks.
#[derive(Debug, Clone, Default)]
pub struct PeakTemperature {
    peak: Option<(Kelvin, usize)>,
    per_tier: Vec<Kelvin>,
}

impl PeakTemperature {
    /// A fresh tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The hottest junction temperature observed, if any epoch ran.
    pub fn peak(&self) -> Option<Kelvin> {
        self.peak.map(|(t, _)| t)
    }

    /// The epoch index at which the peak occurred.
    pub fn peak_epoch(&self) -> Option<usize> {
        self.peak.map(|(_, e)| e)
    }

    /// Per-tier peak junction temperatures (index = tier).
    pub fn per_tier(&self) -> &[Kelvin] {
        &self.per_tier
    }
}

impl Observer for PeakTemperature {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        if self.per_tier.len() < ctx.n_tiers() {
            self.per_tier
                .resize(ctx.n_tiers(), Kelvin(f64::NEG_INFINITY));
        }
        for (tier, peak) in self.per_tier.iter_mut().enumerate() {
            *peak = peak.max(ctx.field.tier_max(tier));
        }
        match self.peak {
            Some((t, _)) if t.0 >= ctx.peak.0 => {}
            _ => self.peak = Some((ctx.peak, ctx.epoch)),
        }
    }
}

/// Built-in observer: integrates chip and pump energy and keeps the
/// per-epoch power trajectory — the data behind a Fig. 7-style breakdown.
#[derive(Debug, Clone, Default)]
pub struct EnergyBreakdown {
    chip_joules: f64,
    pump_joules: f64,
    /// `(chip W, pump W)` per observed epoch.
    trajectory: Vec<(f64, f64)>,
}

impl EnergyBreakdown {
    /// A fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chip (compute + leakage) energy so far, joules.
    pub fn chip_joules(&self) -> f64 {
        self.chip_joules
    }

    /// Pump energy so far, joules.
    pub fn pump_joules(&self) -> f64 {
        self.pump_joules
    }

    /// Total system energy so far, joules.
    pub fn total_joules(&self) -> f64 {
        self.chip_joules + self.pump_joules
    }

    /// Fraction of the system energy spent on cooling.
    pub fn cooling_fraction(&self) -> f64 {
        if self.total_joules() <= 0.0 {
            0.0
        } else {
            self.pump_joules / self.total_joules()
        }
    }

    /// Per-epoch `(chip W, pump W)` trajectory, in observation order.
    pub fn trajectory(&self) -> &[(f64, f64)] {
        &self.trajectory
    }
}

impl Observer for EnergyBreakdown {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        self.chip_joules += ctx.chip_power * ctx.interval;
        self.pump_joules += ctx.pump_power * ctx.interval;
        self.trajectory.push((ctx.chip_power, ctx.pump_power));
    }
}

/// Built-in observer: snapshots the full temperature field every `every`
/// epochs — the raw material for hotspot-evolution maps.
#[derive(Debug, Clone)]
pub struct ThermalMap {
    every: usize,
    snapshots: Vec<(usize, TemperatureField)>,
}

impl ThermalMap {
    /// Snapshots every `every`-th epoch (clamped to at least 1), starting
    /// with the first observed epoch.
    pub fn every(every: usize) -> Self {
        ThermalMap {
            every: every.max(1),
            snapshots: Vec::new(),
        }
    }

    /// The `(epoch, field)` snapshots collected so far.
    pub fn snapshots(&self) -> &[(usize, TemperatureField)] {
        &self.snapshots
    }
}

impl Observer for ThermalMap {
    fn on_epoch(&mut self, ctx: &EpochCtx<'_>) {
        if ctx.epoch.is_multiple_of(self.every) {
            self.snapshots.push((ctx.epoch, ctx.field.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_thermal::TemperatureField;

    fn ctx(field: &TemperatureField, epoch: usize) -> EpochCtx<'_> {
        EpochCtx {
            epoch,
            time: (epoch + 1) as f64,
            interval: 1.0,
            field,
            core_temps: &[],
            peak: field.max(),
            threshold: Celsius(85.0),
            chip_power: 10.0,
            pump_power: 2.0,
            flow: None,
            assigned: &[],
            vf_levels: &[],
            grid: GridSpec::new(1, 1).expect("static"),
        }
    }

    fn hot_field(t: f64) -> TemperatureField {
        // Built through the public model path in integration tests; here a
        // minimal handcrafted field is enough for observer arithmetic.
        let mut model = cmosaic_thermal::ThermalModel::new(
            &cmosaic_floorplan::stack::presets::air_cooled_mpsoc(1).expect("preset"),
            GridSpec::new(2, 2).expect("static"),
            cmosaic_thermal::ThermalParams {
                initial: Kelvin(t),
                ..Default::default()
            },
        )
        .expect("model");
        let _ = &mut model;
        model.current_field()
    }

    #[test]
    fn peak_tracker_keeps_first_maximum() {
        let cool = hot_field(300.0);
        let hot = hot_field(350.0);
        let mut obs = PeakTemperature::new();
        obs.on_epoch(&ctx(&cool, 0));
        obs.on_epoch(&ctx(&hot, 1));
        obs.on_epoch(&ctx(&cool, 2));
        assert_eq!(obs.peak().unwrap().0, 350.0);
        assert_eq!(obs.peak_epoch(), Some(1));
        assert_eq!(obs.per_tier().len(), 1);
        assert_eq!(obs.per_tier()[0].0, 350.0);
    }

    #[test]
    fn energy_breakdown_integrates_power() {
        let f = hot_field(300.0);
        let mut obs = EnergyBreakdown::new();
        obs.on_epoch(&ctx(&f, 0));
        obs.on_epoch(&ctx(&f, 1));
        assert_eq!(obs.chip_joules(), 20.0);
        assert_eq!(obs.pump_joules(), 4.0);
        assert_eq!(obs.total_joules(), 24.0);
        assert!((obs.cooling_fraction() - 4.0 / 24.0).abs() < 1e-12);
        assert_eq!(obs.trajectory().len(), 2);
    }

    #[test]
    fn thermal_map_samples_on_schedule() {
        let f = hot_field(300.0);
        let mut obs = ThermalMap::every(2);
        for e in 0..5 {
            obs.on_epoch(&ctx(&f, e));
        }
        let epochs: Vec<usize> = obs.snapshots().iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs, vec![0, 2, 4]);
    }

    #[test]
    fn observers_compose() {
        let f = hot_field(310.0);
        let mut pair = (PeakTemperature::new(), EnergyBreakdown::new());
        pair.on_epoch(&ctx(&f, 0));
        assert!(pair.0.peak().is_some());
        assert_eq!(pair.1.trajectory().len(), 1);
        let mut boxed: Vec<Box<dyn Observer + Send>> = vec![
            Box::new(PeakTemperature::new()),
            Box::new(ThermalMap::every(1)),
        ];
        boxed.on_epoch(&ctx(&f, 0));
        ().on_epoch(&ctx(&f, 0));
    }

    /// A stub that asks to stop after a fixed number of epochs.
    struct StopAfter {
        left: usize,
    }

    impl Observer for StopAfter {
        fn on_epoch(&mut self, _ctx: &EpochCtx<'_>) {
            self.left = self.left.saturating_sub(1);
        }

        fn should_stop(&self) -> bool {
            self.left == 0
        }
    }

    #[test]
    fn stop_requests_propagate_through_composites() {
        let f = hot_field(300.0);
        assert!(!().should_stop(), "the no-op observer never stops");
        assert!(!PeakTemperature::new().should_stop());

        let mut pair = (PeakTemperature::new(), StopAfter { left: 2 });
        pair.on_epoch(&ctx(&f, 0));
        assert!(!pair.should_stop());
        pair.on_epoch(&ctx(&f, 1));
        assert!(pair.should_stop(), "any member stopping stops the tuple");

        let mut boxed: Vec<Box<dyn Observer + Send>> = vec![
            Box::new(EnergyBreakdown::new()),
            Box::new(StopAfter { left: 1 }),
        ];
        assert!(!boxed.should_stop());
        boxed.on_epoch(&ctx(&f, 0));
        assert!(boxed.should_stop());
        let mref = &mut boxed;
        assert!(Observer::should_stop(&mref), "&mut delegates");
    }
}
