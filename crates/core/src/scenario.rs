//! Typed scenario specification: the composable front door of the
//! co-simulation.
//!
//! A [`ScenarioSpec`] names *what* to simulate — stack geometry (preset
//! tier counts or a custom [`Stack3d`]), cooling medium (air, single-phase
//! water, two-phase refrigerant), thermal grid, workload, policy, an
//! optional [`FlowSchedule`] overriding the policy's pump commands,
//! duration and seed — and validates the combination **at build time**,
//! so a mismatched policy/coolant pair or a ragged custom trace fails with
//! a [`CmosaicError::Config`] before any matrix is assembled, instead of
//! deep inside `Simulator::new`.
//!
//! [`ScenarioSpec::build`] resolves the spec into a [`Scenario`]: stack
//! constructed, trace generated, simulation config frozen. A `Scenario`
//! runs directly ([`Scenario::run`], [`Scenario::run_observed`]) or as one
//! cell of a [`Study`](crate::study::Study) matrix executed by the
//! [`BatchRunner`](crate::batch::BatchRunner).
//!
//! ```
//! use cmosaic::scenario::ScenarioSpec;
//! use cmosaic::policy::PolicyKind;
//! use cmosaic_power::trace::WorkloadKind;
//!
//! # fn main() -> Result<(), cmosaic::CmosaicError> {
//! let metrics = ScenarioSpec::new()
//!     .tiers(2)
//!     .policy(PolicyKind::LcFuzzy)
//!     .workload(WorkloadKind::WebServer)
//!     .seconds(30)
//!     .seed(1)
//!     .build()?
//!     .run()?;
//! assert!(metrics.peak_temperature.to_celsius().0 < 85.0);
//! # Ok(())
//! # }
//! ```

use cmosaic_floorplan::plan::ElementKind;
use cmosaic_floorplan::stack::{presets, Stack3d};
use cmosaic_floorplan::GridSpec;
use cmosaic_materials::units::{Celsius, VolumetricFlow};
use cmosaic_power::trace::{WorkloadKind, WorkloadTrace};
use cmosaic_power::AllocatorPreset;
use cmosaic_thermal::{Coolant, SolverBackend, ThermalParams, TwoPhaseCoolant};

use crate::fault::FaultPlan;
use crate::metrics::RunMetrics;
use crate::observe::Observer;
use crate::policy::{make_policy, PolicyKind};
use crate::sim::{SimConfig, Simulator};
use crate::CmosaicError;

/// The cooling medium of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum CoolantChoice {
    /// Back-side air cooling through a lumped heat sink (no cavities).
    Air,
    /// Single-phase water through inter-tier micro-channel cavities; the
    /// flow rate is set at run time by the policy or a [`FlowSchedule`].
    Water,
    /// Two-phase refrigerant through the cavities (§III); the operating
    /// point is fixed, so flow commands are ignored.
    TwoPhase(TwoPhaseCoolant),
}

impl CoolantChoice {
    /// `true` for the cavity-based (liquid) cooling media.
    pub fn is_liquid(&self) -> bool {
        !matches!(self, CoolantChoice::Air)
    }
}

impl std::fmt::Display for CoolantChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoolantChoice::Air => "air",
            CoolantChoice::Water => "water",
            CoolantChoice::TwoPhase(_) => "two-phase",
        })
    }
}

/// Stack geometry of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum StackChoice {
    /// The paper's alternating core/cache Niagara preset with `tiers`
    /// tiers; the cooling structure follows the scenario's
    /// [`CoolantChoice`].
    Preset {
        /// Number of tiers (2 and 4 in the paper, any positive count
        /// works).
        tiers: usize,
    },
    /// An explicit user-built stack (its cavity/sink structure must match
    /// the coolant choice).
    Custom(Stack3d),
}

/// Workload of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSource {
    /// A synthetic benchmark-class trace, generated deterministically from
    /// the scenario seed for exactly the scenario duration.
    Synthetic(WorkloadKind),
    /// A recorded (or otherwise precomputed) per-core utilization trace;
    /// wraps around if the scenario outlives it.
    Trace(WorkloadTrace),
}

/// A per-second coolant-flow override applied on top of the policy's
/// decisions — the axis that turns a closed-loop controller study into an
/// open-loop flow-design sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FlowSchedule {
    /// No override: the policy owns the pump (default).
    #[default]
    Policy,
    /// Constant per-cavity flow for the whole run.
    Fixed(VolumetricFlow),
    /// Piecewise-constant steps of `(seconds, flow)`, repeated cyclically.
    Cycle(Vec<(usize, VolumetricFlow)>),
    /// Continuous triangle-wave modulation between `lo` and `hi` over
    /// `period` seconds — every interval visits a slightly different flow,
    /// the regime that exercises the bounded operator caches hardest.
    Sweep {
        /// Lowest flow (start of each period).
        lo: VolumetricFlow,
        /// Highest flow (mid-period).
        hi: VolumetricFlow,
        /// Seconds per full low→high→low excursion.
        period: usize,
    },
}

impl FlowSchedule {
    /// `true` when the waveform has no well-defined value at any instant:
    /// a [`FlowSchedule::Cycle`] whose steps sum to zero seconds
    /// (including the empty cycle) or a [`FlowSchedule::Sweep`] with a
    /// zero period.
    ///
    /// [`ScenarioSpec::build`] rejects degenerate schedules outright, so
    /// validated scenarios never carry one. `flow_at` is nevertheless
    /// callable on *unvalidated* schedules (a `Simulator` can be handed
    /// one directly); both degenerate shapes then take the same documented
    /// path — no override, the policy keeps the pump — rather than
    /// panicking or each inventing its own behaviour.
    pub fn is_degenerate(&self) -> bool {
        match self {
            FlowSchedule::Policy | FlowSchedule::Fixed(_) => false,
            FlowSchedule::Cycle(steps) => steps.iter().map(|(s, _)| s).sum::<usize>() == 0,
            FlowSchedule::Sweep { period, .. } => *period == 0,
        }
    }

    /// The flow override for control interval `t`.
    ///
    /// # Contract
    ///
    /// `None` means "the policy's pump command stays in force". That is
    /// the answer for [`FlowSchedule::Policy`] always, and — deliberately,
    /// see [`FlowSchedule::is_degenerate`] — for degenerate `Cycle`/
    /// `Sweep` specs that slipped past validation: policy fallback on a
    /// malformed schedule is the defined behaviour, not an accident of
    /// the arithmetic.
    pub fn flow_at(&self, t: usize) -> Option<VolumetricFlow> {
        match self {
            FlowSchedule::Policy => None,
            FlowSchedule::Fixed(q) => Some(*q),
            FlowSchedule::Cycle(steps) => {
                let total: usize = steps.iter().map(|(s, _)| s).sum();
                if total == 0 {
                    // Degenerate (`is_degenerate`): no override.
                    return None;
                }
                let mut tt = t % total;
                for (secs, q) in steps {
                    if tt < *secs {
                        return Some(*q);
                    }
                    tt -= secs;
                }
                unreachable!("cycle walk is bounded by the total duration")
            }
            FlowSchedule::Sweep { lo, hi, period } => {
                if *period == 0 {
                    // Degenerate (`is_degenerate`): no override.
                    return None;
                }
                let frac = (t % period) as f64 / *period as f64;
                let tri = 1.0 - (2.0 * frac - 1.0).abs();
                Some(VolumetricFlow(lo.0 + (hi.0 - lo.0) * tri))
            }
        }
    }

    /// `true` when the schedule never overrides the policy.
    pub fn is_policy(&self) -> bool {
        matches!(self, FlowSchedule::Policy)
    }

    fn validate(&self) -> Result<(), CmosaicError> {
        let bad = |detail: String| Err(CmosaicError::Config { detail });
        let check_flow = |q: VolumetricFlow| -> Result<(), CmosaicError> {
            if q.0 > 0.0 && q.0.is_finite() {
                Ok(())
            } else {
                bad(format!("flow-schedule rate must be positive, got {q}"))
            }
        };
        // The degeneracy test is shared with `flow_at`, so validation and
        // the unvalidated-call fallback can never drift apart.
        if self.is_degenerate() {
            return bad(format!(
                "degenerate flow schedule (zero total duration): {self:?}"
            ));
        }
        match self {
            FlowSchedule::Policy => Ok(()),
            FlowSchedule::Fixed(q) => check_flow(*q),
            FlowSchedule::Cycle(steps) => steps.iter().try_for_each(|&(_, q)| check_flow(q)),
            FlowSchedule::Sweep { lo, hi, period } => {
                check_flow(*lo)?;
                check_flow(*hi)?;
                if hi.0 < lo.0 {
                    return bad(format!("flow sweep needs lo <= hi, got {lo} > {hi}"));
                }
                if *period < 2 {
                    return bad(format!("flow sweep period must be >= 2 s, got {period}"));
                }
                Ok(())
            }
        }
    }
}

/// A complete, not-yet-validated description of one co-simulation.
///
/// Construct with [`ScenarioSpec::new`], refine with the chainable
/// setters, then [`build`](ScenarioSpec::build) to validate. The default
/// spec reproduces the paper's baseline experiment: a 2-tier water-cooled
/// stack under `LC_FUZZY` on the web-server workload, 12×12 grid, 120 s,
/// seed 42.
#[derive(Clone, PartialEq)]
pub struct ScenarioSpec {
    label: Option<String>,
    stack: StackChoice,
    coolant: CoolantChoice,
    grid: GridSpec,
    workload: WorkloadSource,
    policy: PolicyKind,
    flow_schedule: FlowSchedule,
    solver: SolverBackend,
    seconds: usize,
    seed: u64,
    thermal_dt: f64,
    control_interval: f64,
    threshold: Celsius,
    sensor_noise_std: f64,
    sensor_seed: u64,
    fault_plan: FaultPlan,
    allocator: AllocatorPreset,
}

/// Fingerprint-stability contract: [`ScenarioSpec::fingerprint`] hashes
/// this rendering, and fingerprints are cross-process cache keys and
/// checkpoint identities. The impl therefore replicates the *derived*
/// rendering for the original fields in declared order, and appends later
/// additions (`allocator`) **only when they differ from their default** —
/// so every spec expressible before an addition keeps its exact
/// fingerprint, while specs exercising the new axis get distinct ones.
/// Extend the same way: append new fields conditionally, at the end.
impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("ScenarioSpec");
        d.field("label", &self.label)
            .field("stack", &self.stack)
            .field("coolant", &self.coolant)
            .field("grid", &self.grid)
            .field("workload", &self.workload)
            .field("policy", &self.policy)
            .field("flow_schedule", &self.flow_schedule)
            .field("solver", &self.solver)
            .field("seconds", &self.seconds)
            .field("seed", &self.seed)
            .field("thermal_dt", &self.thermal_dt)
            .field("control_interval", &self.control_interval)
            .field("threshold", &self.threshold)
            .field("sensor_noise_std", &self.sensor_noise_std)
            .field("sensor_seed", &self.sensor_seed)
            .field("fault_plan", &self.fault_plan);
        if self.allocator != AllocatorPreset::default() {
            d.field("allocator", &self.allocator);
        }
        d.finish()
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        let sim = SimConfig::default();
        ScenarioSpec {
            label: None,
            stack: StackChoice::Preset { tiers: 2 },
            coolant: CoolantChoice::Water,
            grid: sim.grid,
            workload: WorkloadSource::Synthetic(WorkloadKind::WebServer),
            policy: PolicyKind::LcFuzzy,
            flow_schedule: FlowSchedule::Policy,
            solver: SolverBackend::DirectLu,
            seconds: 120,
            seed: 42,
            thermal_dt: sim.thermal_dt,
            control_interval: sim.control_interval,
            threshold: sim.threshold,
            sensor_noise_std: sim.sensor_noise_std,
            sensor_seed: sim.sensor_seed,
            fault_plan: FaultPlan::default(),
            allocator: AllocatorPreset::default(),
        }
    }
}

/// Incremental FNV-1a — the one hashing primitive behind spec
/// fingerprints, operator-pattern fingerprints and the checkpoint
/// journal's study binding, so every identity in the system derives from
/// the same bytes-in/u64-out function.
#[derive(Debug, Clone)]
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

impl ScenarioSpec {
    /// The paper-baseline spec (see the type docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the auto-derived label.
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Uses the alternating core/cache Niagara preset with `tiers` tiers.
    pub fn tiers(mut self, tiers: usize) -> Self {
        self.stack = StackChoice::Preset { tiers };
        self
    }

    /// Uses an explicit custom stack.
    pub fn stack(mut self, stack: Stack3d) -> Self {
        self.stack = StackChoice::Custom(stack);
        self
    }

    /// Selects the cooling medium.
    pub fn coolant(mut self, coolant: CoolantChoice) -> Self {
        self.coolant = coolant;
        self
    }

    /// Shorthand for [`CoolantChoice::Air`].
    pub fn air(self) -> Self {
        self.coolant(CoolantChoice::Air)
    }

    /// Shorthand for [`CoolantChoice::Water`].
    pub fn water(self) -> Self {
        self.coolant(CoolantChoice::Water)
    }

    /// Shorthand for [`CoolantChoice::TwoPhase`].
    pub fn two_phase(self, op: TwoPhaseCoolant) -> Self {
        self.coolant(CoolantChoice::TwoPhase(op))
    }

    /// Sets the thermal grid.
    pub fn grid(mut self, grid: GridSpec) -> Self {
        self.grid = grid;
        self
    }

    /// Uses a synthetic benchmark-class workload.
    pub fn workload(mut self, kind: WorkloadKind) -> Self {
        self.workload = WorkloadSource::Synthetic(kind);
        self
    }

    /// Uses a recorded per-core utilization trace.
    pub fn trace(mut self, trace: WorkloadTrace) -> Self {
        self.workload = WorkloadSource::Trace(trace);
        self
    }

    /// Selects the run-time policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a coolant-flow override schedule.
    pub fn flow_schedule(mut self, schedule: FlowSchedule) -> Self {
        self.flow_schedule = schedule;
        self
    }

    /// Selects the thermal linear-solver backend (default
    /// [`SolverBackend::DirectLu`]; see the [`SolverBackend`] docs for
    /// when the ILU(0)-BiCGSTAB backend wins and its automatic direct
    /// fallback).
    pub fn solver(mut self, backend: SolverBackend) -> Self {
        self.solver = backend;
        self
    }

    /// Sets the simulated duration in seconds.
    pub fn seconds(mut self, seconds: usize) -> Self {
        self.seconds = seconds;
        self
    }

    /// Sets the trace seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the thermal integration step (default 0.25 s).
    pub fn thermal_dt(mut self, dt: f64) -> Self {
        self.thermal_dt = dt;
        self
    }

    /// Sets the control/trace interval (default 1 s).
    pub fn control_interval(mut self, interval: f64) -> Self {
        self.control_interval = interval;
        self
    }

    /// Sets the hot-spot threshold (default 85 °C).
    pub fn threshold(mut self, threshold: Celsius) -> Self {
        self.threshold = threshold;
        self
    }

    /// Adds Gaussian sensor noise of the given σ (kelvin) to the readings
    /// the policy sees, from an independent seed.
    pub fn sensor_noise(mut self, std: f64, seed: u64) -> Self {
        self.sensor_noise_std = std;
        self.sensor_seed = seed;
        self
    }

    /// Schedules deterministic injected faults (test harness; see
    /// [`FaultPlan`]). The default plan is empty and injects nothing.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Selects the per-block power allocator preset (default
    /// [`AllocatorPreset::Niagara`]) — the calibration that prices every
    /// block kind, including heterogeneous DRAM/accelerator tiers.
    pub fn allocator(mut self, preset: AllocatorPreset) -> Self {
        self.allocator = preset;
        self
    }

    // ---- Inspection (what Study axes and aggregators match on).

    /// The preset tier count, or `None` for a custom stack.
    pub fn preset_tiers(&self) -> Option<usize> {
        match self.stack {
            StackChoice::Preset { tiers } => Some(tiers),
            StackChoice::Custom(_) => None,
        }
    }

    /// The stack choice.
    pub fn stack_choice(&self) -> &StackChoice {
        &self.stack
    }

    /// The cooling medium.
    pub fn coolant_choice(&self) -> &CoolantChoice {
        &self.coolant
    }

    /// The thermal grid.
    pub fn grid_spec(&self) -> GridSpec {
        self.grid
    }

    /// The workload class (the recorded trace's tag for custom traces).
    pub fn workload_kind(&self) -> WorkloadKind {
        match &self.workload {
            WorkloadSource::Synthetic(kind) => *kind,
            WorkloadSource::Trace(trace) => trace.kind(),
        }
    }

    /// The policy under test.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy
    }

    /// The flow-override schedule.
    pub fn flow_schedule_spec(&self) -> &FlowSchedule {
        &self.flow_schedule
    }

    /// The thermal solver backend.
    pub fn solver_backend(&self) -> SolverBackend {
        self.solver
    }

    /// The per-block power allocator preset.
    pub fn allocator_preset(&self) -> AllocatorPreset {
        self.allocator
    }

    /// Simulated seconds.
    pub fn duration(&self) -> usize {
        self.seconds
    }

    /// Trace seed.
    pub fn trace_seed(&self) -> u64 {
        self.seed
    }

    /// The label the scenario will report: the explicit one if set,
    /// otherwise derived from the axes.
    pub fn display_label(&self) -> String {
        if let Some(l) = &self.label {
            return l.clone();
        }
        let stack = match &self.stack {
            StackChoice::Preset { tiers } => format!("{tiers}-tier"),
            StackChoice::Custom(s) => s.name().to_string(),
        };
        let mut label = format!(
            "{stack}/{}/{}/{}",
            self.coolant,
            self.policy,
            self.workload_kind()
        );
        if !self.flow_schedule.is_policy() {
            label.push_str(match self.flow_schedule {
                FlowSchedule::Fixed(_) => "/fixed-flow",
                FlowSchedule::Cycle(_) => "/cycled-flow",
                FlowSchedule::Sweep { .. } => "/swept-flow",
                FlowSchedule::Policy => unreachable!("guarded by is_policy"),
            });
        }
        match self.solver {
            SolverBackend::DirectLu => {}
            SolverBackend::IterativeIlu0 { .. } => label.push_str("/bicgstab"),
            SolverBackend::IterativeMg { .. } => label.push_str("/bicgstab-mg"),
        }
        label
    }

    /// A stable 64-bit fingerprint of the spec: FNV-1a over its debug
    /// rendering, so any field change — axes, seeds, duration, fault
    /// plans — yields a different value. This is the single identity used
    /// both by the checkpoint journal (see
    /// [`checkpoint::fingerprint`](crate::checkpoint::fingerprint), which
    /// folds the per-spec values) and as the cache/memoization key for
    /// services executing specs: after a run, the outcome is a pure
    /// bitwise function of the spec, so equal fingerprints of honest
    /// specs mean interchangeable results.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.eat(format!("{self:?}").as_bytes());
        h.finish()
    }

    /// Validates the spec and resolves it into a runnable [`Scenario`].
    ///
    /// # Errors
    ///
    /// [`CmosaicError::Config`] for every cross-field inconsistency:
    /// policy/coolant cooling-mode mismatch, a custom stack whose
    /// cavity/sink structure contradicts the coolant, a custom trace with
    /// the wrong core count, a flow schedule on a stack whose flow is not
    /// adjustable, non-positive timing parameters, or a zero-length run.
    /// Stack-construction errors are forwarded.
    pub fn build(&self) -> Result<Scenario, CmosaicError> {
        let config = |detail: String| CmosaicError::Config { detail };
        if self.seconds == 0 {
            return Err(config("scenario duration must be at least 1 s".into()));
        }
        if !(self.thermal_dt > 0.0 && self.thermal_dt.is_finite()) {
            return Err(config(format!(
                "thermal step must be positive, got {}",
                self.thermal_dt
            )));
        }
        if !(self.control_interval > 0.0 && self.control_interval.is_finite()) {
            return Err(config(format!(
                "control interval must be positive, got {}",
                self.control_interval
            )));
        }
        if self.sensor_noise_std < 0.0 || !self.sensor_noise_std.is_finite() {
            return Err(config(format!(
                "sensor-noise sigma must be finite and non-negative, got {}",
                self.sensor_noise_std
            )));
        }
        if self.policy.is_liquid_cooled() != self.coolant.is_liquid() {
            return Err(config(format!(
                "policy {} does not match {} cooling",
                self.policy, self.coolant
            )));
        }
        self.flow_schedule.validate()?;
        if !self.flow_schedule.is_policy() {
            match &self.coolant {
                CoolantChoice::Air => {
                    return Err(config(
                        "a flow schedule needs cavities; the scenario is air-cooled".into(),
                    ));
                }
                CoolantChoice::TwoPhase(_) => {
                    return Err(config(
                        "two-phase operation fixes the mass flux; a flow schedule cannot \
                         modulate it"
                            .into(),
                    ));
                }
                CoolantChoice::Water => {}
            }
        }

        let stack = match &self.stack {
            StackChoice::Preset { tiers } => {
                if self.coolant.is_liquid() {
                    presets::liquid_cooled_mpsoc(*tiers)?
                } else {
                    presets::air_cooled_mpsoc(*tiers)?
                }
            }
            StackChoice::Custom(stack) => {
                if stack.is_liquid_cooled() != self.coolant.is_liquid() {
                    return Err(config(format!(
                        "custom stack `{}` is {}, but the scenario selects {} cooling",
                        stack.name(),
                        if stack.is_liquid_cooled() {
                            "liquid-cooled"
                        } else {
                            "air-cooled"
                        },
                        self.coolant
                    )));
                }
                stack.clone()
            }
        };

        let n_cores: usize = stack
            .tiers()
            .iter()
            .map(|p| p.indices_of_kind(ElementKind::Core).len())
            .sum();
        if n_cores == 0 {
            return Err(config(format!(
                "stack `{}` has no cores to schedule work on",
                stack.name()
            )));
        }
        let trace = match &self.workload {
            WorkloadSource::Synthetic(kind) => kind.generate(n_cores, self.seconds, self.seed),
            WorkloadSource::Trace(trace) => {
                if trace.cores() != n_cores {
                    return Err(config(format!(
                        "trace has {} cores, stack `{}` has {n_cores}",
                        trace.cores(),
                        stack.name()
                    )));
                }
                // Belt-and-braces: the trace constructor rejects samples
                // outside [0, 1], but a non-finite utilization would NaN
                // the whole power map, so re-check before freezing.
                for t in 0..trace.seconds() {
                    if let Some(&u) = trace.row(t).iter().find(|u| !u.is_finite()) {
                        return Err(config(format!(
                            "trace sample at second {t} is non-finite ({u})"
                        )));
                    }
                }
                trace.clone()
            }
        };

        let coolant = match &self.coolant {
            CoolantChoice::TwoPhase(op) => Coolant::TwoPhase(*op),
            _ => Coolant::Water,
        };
        let sim_config = SimConfig {
            grid: self.grid,
            thermal_dt: self.thermal_dt,
            control_interval: self.control_interval,
            threshold: self.threshold,
            thermal: ThermalParams {
                coolant,
                solver: self.solver,
                ..Default::default()
            },
            sensor_noise_std: self.sensor_noise_std,
            sensor_seed: self.sensor_seed,
            fault_plan: self.fault_plan.clone(),
        };
        Ok(Scenario {
            spec: self.clone(),
            stack,
            trace,
            sim_config,
            n_cores,
        })
    }
}

/// A validated, fully-resolved scenario: stack built, trace generated,
/// simulation config frozen. Produced by [`ScenarioSpec::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    spec: ScenarioSpec,
    stack: Stack3d,
    trace: WorkloadTrace,
    sim_config: SimConfig,
    n_cores: usize,
}

impl Scenario {
    /// The spec this scenario was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Scenario label (for reports).
    pub fn label(&self) -> String {
        self.spec.display_label()
    }

    /// The resolved stack.
    pub fn stack(&self) -> &Stack3d {
        &self.stack
    }

    /// The resolved workload trace.
    pub fn trace(&self) -> &WorkloadTrace {
        &self.trace
    }

    /// Number of cores across the stack.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Simulated seconds.
    pub fn seconds(&self) -> usize {
        self.spec.seconds
    }

    /// `true` when `other` shares this scenario's thermal-operator
    /// sparsity pattern — same stack, grid and thermal parameters — so a
    /// [`SharedAnalysis`](cmosaic_thermal::SharedAnalysis) donated by one
    /// is adoptable by the other.
    pub fn same_operator_pattern(&self, other: &Scenario) -> bool {
        self.stack == other.stack
            && self.sim_config.grid == other.sim_config.grid
            && self.sim_config.thermal == other.sim_config.thermal
    }

    /// FNV-1a fingerprint of exactly the fields
    /// [`same_operator_pattern`](Self::same_operator_pattern) compares —
    /// stack, grid and thermal parameters — usable as a map key for
    /// caches of donated analyses. Equal patterns hash equal; a hash
    /// collision between different patterns is harmless because adoption
    /// itself re-checks the operator signature and falls back.
    pub fn pattern_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.eat(format!("{:?}", self.stack).as_bytes());
        h.eat(b"\n");
        h.eat(format!("{:?}", self.sim_config.grid).as_bytes());
        h.eat(b"\n");
        h.eat(format!("{:?}", self.sim_config.thermal).as_bytes());
        h.finish()
    }

    /// A copy with the solver demoted one rung down the backend ladder:
    /// multigrid → ILU(0) at the same operating point (a breakdown of the
    /// V-cycle does not implicate the Krylov iteration itself) → direct
    /// LU. `None` when the backend is already direct. Demotion changes
    /// the operator pattern, so demoted retries never adopt or donate a
    /// shared analysis.
    pub(crate) fn demoted_backend(&self) -> Option<Scenario> {
        let next = match self.sim_config.thermal.solver {
            SolverBackend::DirectLu => return None,
            SolverBackend::IterativeIlu0 { .. } => SolverBackend::DirectLu,
            SolverBackend::IterativeMg {
                tolerance,
                max_iterations,
            } => SolverBackend::IterativeIlu0 {
                tolerance,
                max_iterations,
            },
        };
        let mut s = self.clone();
        s.spec.solver = next;
        s.sim_config.thermal.solver = next;
        Some(s)
    }

    /// A copy with the thermal timestep halved — the retry ladder's
    /// Δt rung for marginal operating points.
    pub(crate) fn halved_dt(&self) -> Scenario {
        let mut s = self.clone();
        s.spec.thermal_dt /= 2.0;
        s.sim_config.thermal_dt /= 2.0;
        s
    }

    /// Builds the simulator without running it — the entry point the batch
    /// engine uses so it can donate a shared thermal analysis before
    /// initialisation.
    ///
    /// # Errors
    ///
    /// Forwards model-construction errors.
    pub fn build_simulator(&self) -> Result<Simulator, CmosaicError> {
        let mut sim = Simulator::new(
            &self.stack,
            make_policy(self.spec.policy, self.n_cores),
            self.trace.clone(),
            self.spec.allocator.build(),
            self.sim_config.clone(),
        )?;
        sim.set_flow_schedule(self.spec.flow_schedule.clone());
        Ok(sim)
    }

    /// Runs the scenario end to end (steady-state init, then the closed
    /// loop for the configured duration).
    ///
    /// # Errors
    ///
    /// Forwards simulation errors.
    pub fn run(&self) -> Result<RunMetrics, CmosaicError> {
        self.run_observed(&mut ())
    }

    /// Runs the scenario with an [`Observer`] hooked into every control
    /// interval.
    ///
    /// # Errors
    ///
    /// Forwards simulation errors.
    pub fn run_observed<O: Observer + ?Sized>(
        &self,
        observer: &mut O,
    ) -> Result<RunMetrics, CmosaicError> {
        let mut sim = self.build_simulator()?;
        sim.initialize()?;
        sim.run_observed(self.spec.seconds, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Kelvin;

    #[test]
    fn default_spec_builds_and_matches_the_paper_baseline() {
        let scenario = ScenarioSpec::new().seconds(3).build().unwrap();
        assert_eq!(scenario.n_cores(), 8);
        assert_eq!(scenario.stack().tiers().len(), 2);
        assert!(scenario.stack().is_liquid_cooled());
        assert_eq!(scenario.trace().seconds(), 3);
        assert_eq!(scenario.spec().policy_kind(), PolicyKind::LcFuzzy);
    }

    const GOLDEN_DEFAULT_FP: u64 = 0xaddd_ec23_b3d3_6bb4;

    #[test]
    fn fingerprint_is_stable_and_distinguishes_every_axis() {
        // Stability: independently constructed equal specs agree, and the
        // default spec's value is pinned. The golden constant is the
        // cross-process stability contract — if it moves, cache keys and
        // checkpoint journals from earlier builds are invalidated, which
        // is exactly what a reviewer should be forced to notice.
        assert_eq!(
            ScenarioSpec::new().fingerprint(),
            ScenarioSpec::default().fingerprint()
        );
        assert_eq!(ScenarioSpec::new().fingerprint(), GOLDEN_DEFAULT_FP);
        // Distinctness: nudging any axis moves the fingerprint.
        let base = ScenarioSpec::new();
        let variants = [
            base.clone().label("renamed"),
            base.clone().tiers(4),
            base.clone().grid(GridSpec::new(6, 6).unwrap()),
            base.clone().workload(WorkloadKind::Database),
            base.clone().seconds(121),
            base.clone().seed(43),
            base.clone().thermal_dt(0.005),
            base.clone().sensor_noise(0.1, 9),
        ];
        let mut fps: Vec<u64> = variants.iter().map(ScenarioSpec::fingerprint).collect();
        fps.push(base.fingerprint());
        let distinct: std::collections::HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "{fps:?}");
    }

    #[test]
    fn fingerprint_distinguishes_actuation_axes_without_moving_the_golden() {
        // New per-block actuation axes must move the fingerprint — while
        // the default-spec golden (checked above) stays put because the
        // manual Debug impl appends `allocator` only when non-default.
        let base = ScenarioSpec::new();
        assert!(
            !format!("{base:?}").contains("allocator"),
            "default rendering must not mention the allocator axis"
        );
        let variants = [
            base.clone().allocator(AllocatorPreset::MemoryOnLogic),
            base.clone().allocator(AllocatorPreset::MixedAccelerator),
            base.clone().policy(PolicyKind::LcMigration { seed: 42 }),
            base.clone().policy(PolicyKind::LcMigration { seed: 43 }),
            base.clone()
                .policy(PolicyKind::LcMigrationFuzzy { seed: 42 }),
            base.clone().policy(PolicyKind::LcTierDvfs),
            base.clone()
                .stack(presets::memory_on_logic(4).unwrap())
                .allocator(AllocatorPreset::MemoryOnLogic),
            base.clone().stack(presets::accelerated_mpsoc(4).unwrap()),
        ];
        let mut fps: Vec<u64> = variants.iter().map(ScenarioSpec::fingerprint).collect();
        fps.push(base.fingerprint());
        let distinct: std::collections::HashSet<u64> = fps.iter().copied().collect();
        assert_eq!(distinct.len(), fps.len(), "{fps:?}");
        assert_eq!(base.fingerprint(), GOLDEN_DEFAULT_FP);
    }

    #[test]
    fn heterogeneous_preset_scenarios_build_and_run() {
        let m = ScenarioSpec::new()
            .stack(presets::memory_on_logic(4).unwrap())
            .allocator(AllocatorPreset::MemoryOnLogic)
            .policy(PolicyKind::LcLb)
            .grid(GridSpec::new(6, 6).unwrap())
            .thermal_dt(0.5)
            .seconds(3)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.seconds, 3);
        assert!(m.chip_energy > 0.0);
    }

    #[test]
    fn fingerprint_distinguishes_swapped_block_placements() {
        // Placement axes install custom stacks that differ only in where
        // two blocks sit; memoization keys (and checkpoint journals) must
        // see those as distinct scenarios.
        use cmosaic_floorplan::transform::swap_in_tier;
        let base = presets::liquid_cooled_mpsoc(2).unwrap();
        let swapped = swap_in_tier(&base, 0, "core0", "core7").unwrap();
        let a = ScenarioSpec::new().stack(base);
        let b = ScenarioSpec::new().stack(swapped);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn pattern_fingerprint_matches_same_operator_pattern() {
        let build = |spec: ScenarioSpec| spec.seconds(2).build().unwrap();
        let a = build(ScenarioSpec::new());
        // Same pattern through different seeds/policies: equal hashes.
        let twin = build(ScenarioSpec::new().seed(99).policy(PolicyKind::LcLb));
        assert!(a.same_operator_pattern(&twin));
        assert_eq!(a.pattern_fingerprint(), twin.pattern_fingerprint());
        // Different grid or stack: different hashes.
        let other_grid = build(ScenarioSpec::new().grid(GridSpec::new(6, 6).unwrap()));
        assert!(!a.same_operator_pattern(&other_grid));
        assert_ne!(a.pattern_fingerprint(), other_grid.pattern_fingerprint());
        let other_stack = build(ScenarioSpec::new().tiers(4));
        assert_ne!(a.pattern_fingerprint(), other_stack.pattern_fingerprint());
    }

    #[test]
    fn mismatched_policy_and_coolant_fail_at_build_time() {
        let r = ScenarioSpec::new().policy(PolicyKind::AcLb).build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })), "{r:?}");
        let r = ScenarioSpec::new()
            .air()
            .policy(PolicyKind::LcFuzzy)
            .build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        // The matching pairs build.
        assert!(ScenarioSpec::new()
            .air()
            .policy(PolicyKind::AcLb)
            .build()
            .is_ok());
    }

    #[test]
    fn custom_stack_must_match_the_coolant() {
        let air_stack = presets::air_cooled_mpsoc(2).unwrap();
        let r = ScenarioSpec::new().stack(air_stack.clone()).water().build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        assert!(ScenarioSpec::new()
            .stack(air_stack)
            .air()
            .policy(PolicyKind::AcLb)
            .build()
            .is_ok());
    }

    #[test]
    fn custom_traces_are_core_count_checked() {
        let short =
            WorkloadTrace::from_samples(WorkloadKind::Database, vec![vec![0.5; 4]; 3]).unwrap();
        let r = ScenarioSpec::new().trace(short).seconds(3).build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        let right =
            WorkloadTrace::from_samples(WorkloadKind::Database, vec![vec![0.5; 8]; 3]).unwrap();
        assert!(ScenarioSpec::new().trace(right).seconds(3).build().is_ok());
    }

    #[test]
    fn flow_schedules_validate_against_the_coolant() {
        let q = VolumetricFlow::from_ml_per_min(20.0);
        // Air cooling has no pump to schedule.
        let r = ScenarioSpec::new()
            .air()
            .policy(PolicyKind::AcLb)
            .flow_schedule(FlowSchedule::Fixed(q))
            .build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        // Two-phase fixes the mass flux.
        let r = ScenarioSpec::new()
            .two_phase(TwoPhaseCoolant::r134a_30c(300.0))
            .flow_schedule(FlowSchedule::Fixed(q))
            .build();
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
        // Degenerate schedules are rejected outright.
        for bad in [
            FlowSchedule::Fixed(VolumetricFlow(0.0)),
            FlowSchedule::Cycle(vec![]),
            FlowSchedule::Cycle(vec![(0, q)]),
            FlowSchedule::Sweep {
                lo: q,
                hi: VolumetricFlow(q.0 / 2.0),
                period: 8,
            },
            FlowSchedule::Sweep {
                lo: q,
                hi: q,
                period: 1,
            },
        ] {
            let r = ScenarioSpec::new().flow_schedule(bad.clone()).build();
            assert!(matches!(r, Err(CmosaicError::Config { .. })), "{bad:?}");
        }
        // A sane water schedule builds.
        assert!(ScenarioSpec::new()
            .flow_schedule(FlowSchedule::Cycle(vec![
                (5, q),
                (5, VolumetricFlow(q.0 / 2.0))
            ]))
            .build()
            .is_ok());
    }

    #[test]
    fn bad_timing_parameters_fail_at_build_time() {
        assert!(ScenarioSpec::new().seconds(0).build().is_err());
        assert!(ScenarioSpec::new().thermal_dt(0.0).build().is_err());
        assert!(ScenarioSpec::new().control_interval(-1.0).build().is_err());
        assert!(ScenarioSpec::new().sensor_noise(-2.0, 0).build().is_err());
    }

    #[test]
    fn schedule_waveforms() {
        let q1 = VolumetricFlow(1.0);
        let q2 = VolumetricFlow(2.0);
        assert_eq!(FlowSchedule::Policy.flow_at(5), None);
        assert_eq!(FlowSchedule::Fixed(q1).flow_at(7), Some(q1));
        let cycle = FlowSchedule::Cycle(vec![(2, q1), (1, q2)]);
        let flows: Vec<f64> = (0..6).map(|t| cycle.flow_at(t).unwrap().0).collect();
        assert_eq!(flows, vec![1.0, 1.0, 2.0, 1.0, 1.0, 2.0]);
        let sweep = FlowSchedule::Sweep {
            lo: q1,
            hi: q2,
            period: 4,
        };
        assert_eq!(sweep.flow_at(0).unwrap().0, 1.0);
        assert_eq!(sweep.flow_at(2).unwrap().0, 2.0);
        assert_eq!(sweep.flow_at(1).unwrap(), sweep.flow_at(3).unwrap());
        assert_eq!(sweep.flow_at(4).unwrap().0, 1.0);
        // Degenerate unvalidated schedules never panic: both shapes take
        // the same documented path — no override, the policy keeps the
        // pump — and `is_degenerate` is the shared test behind it.
        let degenerate_sweep = FlowSchedule::Sweep {
            lo: q1,
            hi: q2,
            period: 0,
        };
        for t in [0usize, 3, 17] {
            assert_eq!(degenerate_sweep.flow_at(t), None);
            assert_eq!(FlowSchedule::Cycle(vec![(0, q1)]).flow_at(t), None);
            assert_eq!(FlowSchedule::Cycle(vec![(0, q1), (0, q2)]).flow_at(t), None);
            assert_eq!(FlowSchedule::Cycle(vec![]).flow_at(t), None);
        }
        assert!(degenerate_sweep.is_degenerate());
        assert!(FlowSchedule::Cycle(vec![]).is_degenerate());
        assert!(FlowSchedule::Cycle(vec![(0, q1)]).is_degenerate());
        assert!(!FlowSchedule::Policy.is_degenerate());
        assert!(!FlowSchedule::Fixed(q1).is_degenerate());
        assert!(!cycle.is_degenerate());
        // Validation rejects exactly what flow_at declines to evaluate
        // (plus the stricter period >= 2 bound on sweeps).
        assert!(degenerate_sweep.validate().is_err());
        assert!(FlowSchedule::Cycle(vec![]).validate().is_err());
    }

    #[test]
    fn degenerate_schedule_on_a_simulator_falls_back_to_the_policy() {
        // A Simulator handed an unvalidated degenerate schedule directly
        // must behave exactly like the policy-owned run.
        let with_schedule = |schedule: Option<FlowSchedule>| {
            let scenario = ScenarioSpec::new()
                .grid(GridSpec::new(6, 6).expect("static"))
                .seconds(3)
                .build()
                .unwrap();
            let mut sim = scenario.build_simulator().unwrap();
            if let Some(s) = schedule {
                sim.set_flow_schedule(s);
            }
            sim.initialize().unwrap();
            sim.run(3).unwrap()
        };
        let baseline = with_schedule(None);
        let degenerate = with_schedule(Some(FlowSchedule::Cycle(vec![])));
        assert_eq!(baseline, degenerate, "policy fallback must be exact");
    }

    #[test]
    fn solver_backend_rides_the_spec() {
        use cmosaic_materials::units::Kelvin;
        let spec = ScenarioSpec::new().solver(SolverBackend::iterative());
        assert!(spec.solver_backend().is_iterative());
        assert!(spec.display_label().ends_with("/bicgstab"));
        assert_eq!(
            ScenarioSpec::new().solver_backend(),
            SolverBackend::DirectLu,
            "direct LU is the default"
        );
        // An iterative-backend scenario runs end to end.
        let m = spec
            .grid(GridSpec::new(6, 6).expect("static"))
            .seconds(3)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.seconds, 3);
        assert!(m.peak_temperature > Kelvin(0.0));
        // The multigrid backend gets its own label suffix and also runs
        // end to end (6×6 coarsens once, to a 3×3 assembled level).
        let mg = ScenarioSpec::new().solver(SolverBackend::multigrid());
        assert!(mg.solver_backend().is_iterative());
        assert!(mg.display_label().ends_with("/bicgstab-mg"));
        let m = mg
            .grid(GridSpec::new(6, 6).expect("static"))
            .seconds(3)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.seconds, 3);
        assert!(m.peak_temperature > Kelvin(0.0));
    }

    #[test]
    fn backend_demotion_steps_one_rung_at_a_time() {
        let tol = 1e-8;
        let cap = 500;
        let s = ScenarioSpec::new()
            .seconds(2)
            .solver(SolverBackend::IterativeMg {
                tolerance: tol,
                max_iterations: cap,
            })
            .build()
            .unwrap();
        // Multigrid demotes to ILU(0) at the *same* operating point...
        let ilu = s.demoted_backend().expect("mg has a rung below");
        assert_eq!(
            ilu.spec().solver_backend(),
            SolverBackend::IterativeIlu0 {
                tolerance: tol,
                max_iterations: cap,
            }
        );
        // ...which demotes to direct LU, which is the bottom of the ladder.
        let direct = ilu.demoted_backend().expect("ilu0 has a rung below");
        assert_eq!(direct.spec().solver_backend(), SolverBackend::DirectLu);
        assert!(direct.demoted_backend().is_none());
        // Each demotion changes the operator pattern, so demoted retries
        // never share a symbolic analysis with their original group.
        assert!(!s.same_operator_pattern(&ilu));
        assert!(!ilu.same_operator_pattern(&direct));
    }

    #[test]
    fn pattern_grouping_follows_stack_grid_and_coolant() {
        let a = ScenarioSpec::new().seconds(2).build().unwrap();
        let b = ScenarioSpec::new()
            .seconds(2)
            .policy(PolicyKind::LcLb)
            .workload(WorkloadKind::Database)
            .seed(9)
            .build()
            .unwrap();
        assert!(
            a.same_operator_pattern(&b),
            "policy/workload/seed are pattern-neutral"
        );
        let four = ScenarioSpec::new().tiers(4).seconds(2).build().unwrap();
        assert!(!a.same_operator_pattern(&four));
        let tp = ScenarioSpec::new()
            .two_phase(TwoPhaseCoolant::r134a_30c(300.0))
            .seconds(2)
            .build()
            .unwrap();
        assert!(!a.same_operator_pattern(&tp), "two-phase operators differ");
    }

    #[test]
    fn labels_summarise_the_axes() {
        let spec = ScenarioSpec::new().tiers(4).policy(PolicyKind::LcLb);
        assert_eq!(spec.display_label(), "4-tier/water/LC_LB/web-server");
        let named = spec.clone().label("my-run");
        assert_eq!(named.display_label(), "my-run");
        let swept = spec.flow_schedule(FlowSchedule::Sweep {
            lo: VolumetricFlow(1e-8),
            hi: VolumetricFlow(2e-8),
            period: 16,
        });
        assert!(swept.display_label().ends_with("/swept-flow"));
    }

    #[test]
    fn two_phase_scenarios_run_end_to_end() {
        // Two-phase stacks were previously unreachable through the
        // co-simulation (initialize() unconditionally set a flow rate).
        let m = ScenarioSpec::new()
            .two_phase(TwoPhaseCoolant::r134a_30c(2800.0))
            .policy(PolicyKind::LcLb)
            .workload(WorkloadKind::Multimedia)
            .grid(GridSpec::new(6, 6).unwrap())
            .thermal_dt(0.5)
            .seconds(4)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.seconds, 4);
        assert!(m.chip_energy > 0.0);
        assert_eq!(m.pump_energy, 0.0, "no single-phase pump in the loop");
        assert!(m.mean_flow.is_none());
        assert!(m.peak_temperature > Kelvin(0.0));
    }
}
