//! Seeded fault injection for exercising the fault-tolerance machinery.
//!
//! A [`FaultPlan`] is a deterministic list of faults fired inside
//! [`Simulator::run_observed`](crate::Simulator) at chosen control
//! intervals: a worker panic, a NaN poisoned into the temperature field
//! (tripping the per-epoch divergence guard), or an iterative-solver
//! breakdown (exercising the retry ladder's backend demotion). The plan
//! rides [`ScenarioSpec::fault_plan`](crate::ScenarioSpec::fault_plan)
//! into the frozen [`SimConfig`](crate::SimConfig), so a faulty scenario
//! is an ordinary batch citizen — same grouping, same determinism — which
//! is exactly what the failure-path integration suite needs: failures at
//! known indices and epochs, reproducible at any thread count.
//!
//! Production scenarios simply leave the plan empty (the default); an
//! empty plan is checked per epoch with two integer comparisons and never
//! allocates.

use cmosaic_thermal::SolverBackend;

/// One injected fault, anchored to a control interval.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Panic at the start of the epoch — models a bug in policy/observer
    /// code. Panics are non-retryable: the batch isolates them and
    /// reports [`ScenarioError::Panicked`](crate::ScenarioError).
    Panic,
    /// Poison one temperature cell with NaN at the end of the epoch's
    /// sub-steps, immediately before the divergence guard runs. Fires on
    /// every attempt regardless of solver backend or timestep, so a
    /// scenario carrying it exhausts the whole retry ladder.
    Nan {
        /// Cell (layer-major) to poison.
        cell: usize,
    },
    /// Like [`FaultKind::Nan`], but only while the thermal timestep is
    /// strictly above `dt_above` — cleared by the retry ladder's
    /// Δt-halving rung, the stand-in for a genuinely marginal operating
    /// point that converges under a finer step.
    NanAboveDt {
        /// Cell (layer-major) to poison.
        cell: usize,
        /// The fault fires only while `thermal_dt > dt_above`.
        dt_above: f64,
    },
    /// Surface an iterative-solver breakdown at the start of the epoch,
    /// but only while the configured backend is iterative
    /// ([`SolverBackend::IterativeIlu0`] or [`SolverBackend::IterativeMg`])
    /// — cleared once the retry ladder's stepwise demotion reaches the
    /// direct backend. On an ILU(0) scenario that takes one demotion; on a
    /// multigrid scenario the fault persists through the multigrid→ILU(0)
    /// rung (still iterative) and exercises the full two-rung ladder.
    IterativeBreakdown,
}

/// A deterministic schedule of injected faults (test harness; see the
/// [module docs](self)).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    faults: Vec<(usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing; the default everywhere).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at control interval `epoch`.
    pub fn at(mut self, epoch: usize, kind: FaultKind) -> Self {
        self.faults.push((epoch, kind));
        self
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// `true` if a [`FaultKind::Panic`] is scheduled at `epoch`.
    pub(crate) fn panics_at(&self, epoch: usize) -> bool {
        self.faults
            .iter()
            .any(|(e, k)| *e == epoch && matches!(k, FaultKind::Panic))
    }

    /// `true` if an [`FaultKind::IterativeBreakdown`] is scheduled at
    /// `epoch` and the backend is currently iterative.
    pub(crate) fn breaks_down_at(&self, epoch: usize, backend: &SolverBackend) -> bool {
        backend.is_iterative()
            && self
                .faults
                .iter()
                .any(|(e, k)| *e == epoch && matches!(k, FaultKind::IterativeBreakdown))
    }

    /// The cell to poison with NaN at `epoch` under the current thermal
    /// timestep, if any NaN-class fault is armed.
    pub(crate) fn nan_cell_at(&self, epoch: usize, thermal_dt: f64) -> Option<usize> {
        self.faults.iter().find_map(|(e, k)| {
            if *e != epoch {
                return None;
            }
            match k {
                FaultKind::Nan { cell } => Some(*cell),
                FaultKind::NanAboveDt { cell, dt_above } if thermal_dt > *dt_above => Some(*cell),
                _ => None,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_fires_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.panics_at(0));
        assert!(!p.breaks_down_at(0, &SolverBackend::iterative()));
        assert_eq!(p.nan_cell_at(0, 0.25), None);
    }

    #[test]
    fn faults_fire_only_under_their_arming_conditions() {
        let p = FaultPlan::none()
            .at(1, FaultKind::Panic)
            .at(2, FaultKind::IterativeBreakdown)
            .at(3, FaultKind::Nan { cell: 9 })
            .at(
                4,
                FaultKind::NanAboveDt {
                    cell: 5,
                    dt_above: 0.3,
                },
            );
        assert!(!p.is_empty());
        assert!(p.panics_at(1) && !p.panics_at(2));
        // Breakdown fires only under an iterative backend (either one).
        assert!(p.breaks_down_at(2, &SolverBackend::iterative()));
        assert!(p.breaks_down_at(2, &SolverBackend::multigrid()));
        assert!(!p.breaks_down_at(2, &SolverBackend::DirectLu));
        assert!(!p.breaks_down_at(1, &SolverBackend::iterative()));
        // Plain NaN ignores the timestep; the dt-gated one clears when
        // the step is halved below its bound.
        assert_eq!(p.nan_cell_at(3, 0.5), Some(9));
        assert_eq!(p.nan_cell_at(3, 0.125), Some(9));
        assert_eq!(p.nan_cell_at(4, 0.5), Some(5));
        assert_eq!(p.nan_cell_at(4, 0.25), None);
    }
}
