//! The fuzzy flow-rate controller (paper ref. \[15], Sabry et al.
//! ICCAD 2010).
//!
//! A Mamdani controller with triangular/shouldered membership functions:
//!
//! * **Inputs**: the maximum junction temperature across the stack and the
//!   mean core utilization.
//! * **Output**: a flow *fraction* in `[0, 1]`, mapped onto the Table I
//!   range (10–32.3 ml/min per cavity) and snapped to a small number of
//!   discrete pump levels so the thermal model can cache one factorisation
//!   per level.
//!
//! The rule base encodes the paper's intent: never let the stack approach
//! the 85 °C threshold (temperature dominates), and otherwise track the
//! load so an under-utilised system is not over-cooled ("intelligent
//! control of the coolant flow rate is needed to avoid wasted energy
//! consumption for over-cooling the system when the system is
//! under-utilized").

use cmosaic_materials::units::{Kelvin, VolumetricFlow};

/// A triangular membership function with shoulder saturation at the ends.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Triangle {
    left: f64,
    peak: f64,
    right: f64,
    /// Saturate to 1 for inputs below `left` (left-shoulder set).
    left_shoulder: bool,
    /// Saturate to 1 for inputs above `right`.
    right_shoulder: bool,
}

impl Triangle {
    fn interior(left: f64, peak: f64, right: f64) -> Self {
        Triangle {
            left,
            peak,
            right,
            left_shoulder: false,
            right_shoulder: false,
        }
    }

    fn left_shoulder(peak: f64, right: f64) -> Self {
        Triangle {
            left: peak,
            peak,
            right,
            left_shoulder: true,
            right_shoulder: false,
        }
    }

    fn right_shoulder(left: f64, peak: f64) -> Self {
        Triangle {
            left,
            peak,
            right: peak,
            left_shoulder: false,
            right_shoulder: true,
        }
    }

    fn degree(&self, x: f64) -> f64 {
        if x <= self.left {
            return if self.left_shoulder { 1.0 } else { 0.0 };
        }
        if x >= self.right {
            return if self.right_shoulder { 1.0 } else { 0.0 };
        }
        if x <= self.peak {
            if self.peak == self.left {
                1.0
            } else {
                (x - self.left) / (self.peak - self.left)
            }
        } else if self.peak == self.right {
            1.0
        } else {
            (self.right - x) / (self.right - self.peak)
        }
    }
}

/// Output singleton positions (flow fraction) for the five linguistic flow
/// levels.
const FLOW_SINGLETONS: [f64; 5] = [0.0, 0.25, 0.55, 0.8, 1.0];

/// Indices into [`FLOW_SINGLETONS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlowTerm {
    VeryLow = 0,
    Low = 1,
    Medium = 2,
    High = 3,
    Max = 4,
}

/// The fuzzy coolant-flow controller.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzyController {
    q_min: VolumetricFlow,
    q_max: VolumetricFlow,
    levels: usize,
    temp_sets: [Triangle; 4],
    util_sets: [Triangle; 3],
}

impl FuzzyController {
    /// Builds the controller for the Table I flow range with `levels`
    /// discrete pump settings (the paper's pump is continuously tunable;
    /// discretisation is a solver-caching optimisation, 8 levels keeps the
    /// quantisation error below 3 % of the range).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or the flow range is empty.
    pub fn new(q_min: VolumetricFlow, q_max: VolumetricFlow, levels: usize) -> Self {
        assert!(levels >= 2, "need at least two pump levels");
        assert!(q_max.0 > q_min.0, "empty flow range");
        FuzzyController {
            q_min,
            q_max,
            levels,
            // Temperature (°C): Cold / Warm / Hot / Critical.
            temp_sets: [
                Triangle::left_shoulder(45.0, 60.0),
                Triangle::interior(50.0, 63.0, 74.0),
                Triangle::interior(66.0, 75.0, 82.0),
                Triangle::right_shoulder(76.0, 83.0),
            ],
            // Mean utilization: Low / Medium / High.
            util_sets: [
                Triangle::left_shoulder(0.2, 0.45),
                Triangle::interior(0.3, 0.5, 0.75),
                Triangle::right_shoulder(0.55, 0.8),
            ],
        }
    }

    /// The Table I controller: 10–32.3 ml/min, 8 pump levels.
    pub fn table1() -> Self {
        FuzzyController::new(
            VolumetricFlow::from_ml_per_min(10.0),
            VolumetricFlow::from_ml_per_min(32.3),
            8,
        )
    }

    /// Number of discrete pump levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The flow rate of a discrete level (0 = minimum).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels`.
    pub fn level_flow(&self, level: usize) -> VolumetricFlow {
        assert!(level < self.levels);
        let frac = level as f64 / (self.levels - 1) as f64;
        VolumetricFlow(self.q_min.0 + frac * (self.q_max.0 - self.q_min.0))
    }

    /// Evaluates the rule base: maximum junction temperature and mean
    /// utilization in, defuzzified flow fraction out.
    pub fn flow_fraction(&self, max_temp: Kelvin, mean_util: f64) -> f64 {
        let t = max_temp.to_celsius().0;
        let u = mean_util.clamp(0.0, 1.0);
        let [cold, warm, hot, critical] = self.temp_sets.map(|s| s.degree(t));
        let [low_u, med_u, high_u] = self.util_sets.map(|s| s.degree(u));

        // Rule base (min for AND, max-accumulation over rules).
        let mut strength = [0.0f64; 5];
        let mut fire = |term: FlowTerm, w: f64| {
            let i = term as usize;
            strength[i] = strength[i].max(w);
        };
        fire(FlowTerm::Max, critical);
        fire(FlowTerm::High, hot.min(high_u));
        fire(FlowTerm::High, hot.min(med_u));
        fire(FlowTerm::Medium, hot.min(low_u));
        fire(FlowTerm::Medium, warm.min(high_u));
        fire(FlowTerm::Low, warm.min(med_u));
        fire(FlowTerm::Low, warm.min(low_u));
        fire(FlowTerm::Low, cold.min(high_u));
        fire(FlowTerm::VeryLow, cold.min(med_u));
        fire(FlowTerm::VeryLow, cold.min(low_u));

        let total: f64 = strength.iter().sum();
        if total <= 1e-12 {
            // Out-of-envelope input: fail safe to maximum cooling.
            return 1.0;
        }
        strength
            .iter()
            .zip(FLOW_SINGLETONS)
            .map(|(w, s)| w * s)
            .sum::<f64>()
            / total
    }

    /// The discrete pump level for the given observation.
    pub fn flow_level(&self, max_temp: Kelvin, mean_util: f64) -> usize {
        let frac = self.flow_fraction(max_temp, mean_util);
        ((frac * (self.levels - 1) as f64).round() as usize).min(self.levels - 1)
    }

    /// Convenience: the snapped flow rate for the given observation.
    pub fn flow_rate(&self, max_temp: Kelvin, mean_util: f64) -> VolumetricFlow {
        self.level_flow(self.flow_level(max_temp, mean_util))
    }
}

impl Default for FuzzyController {
    fn default() -> Self {
        FuzzyController::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Celsius;

    fn at(t_c: f64, u: f64) -> f64 {
        FuzzyController::table1().flow_fraction(Celsius(t_c).to_kelvin(), u)
    }

    #[test]
    fn cold_idle_system_gets_minimum_cooling() {
        assert!(at(40.0, 0.1) < 0.1);
    }

    #[test]
    fn critical_temperature_forces_maximum_flow() {
        assert!(at(84.0, 0.1) > 0.9);
        assert!(at(90.0, 0.9) > 0.95);
    }

    #[test]
    fn flow_is_monotone_in_temperature() {
        for u in [0.1, 0.5, 0.9] {
            let mut last = -1.0;
            for t in (40..=90).step_by(2) {
                let f = at(t as f64, u);
                assert!(
                    f >= last - 1e-9,
                    "flow fraction must not fall with temperature (u={u}, t={t})"
                );
                last = f;
            }
        }
    }

    #[test]
    fn flow_is_monotone_in_utilization() {
        for t in [50.0, 65.0, 75.0] {
            let mut last = -1.0;
            for u in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
                let f = at(t, u);
                assert!(f >= last - 1e-9, "t={t}, u={u}");
                last = f;
            }
        }
    }

    #[test]
    fn output_is_bounded() {
        for t in (30..=120).step_by(5) {
            for u in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let f = at(t as f64, u);
                assert!((0.0..=1.0).contains(&f), "t={t}, u={u}, f={f}");
            }
        }
    }

    #[test]
    fn discrete_levels_span_the_table1_range() {
        let c = FuzzyController::table1();
        assert_eq!(c.levels(), 8);
        assert!((c.level_flow(0).to_ml_per_min() - 10.0).abs() < 1e-9);
        assert!((c.level_flow(7).to_ml_per_min() - 32.3).abs() < 1e-9);
        // Levels increase strictly.
        for l in 1..8 {
            assert!(c.level_flow(l).0 > c.level_flow(l - 1).0);
        }
    }

    #[test]
    fn snapped_level_matches_fraction() {
        let c = FuzzyController::table1();
        let lvl = c.flow_level(Celsius(95.0).to_kelvin(), 1.0);
        assert_eq!(lvl, 7, "critical temperature snaps to max level");
        let low = c.flow_level(Celsius(40.0).to_kelvin(), 0.0);
        assert_eq!(low, 0);
    }

    #[test]
    fn membership_degrees_are_valid() {
        let tri = Triangle::interior(0.0, 1.0, 2.0);
        assert_eq!(tri.degree(-0.5), 0.0);
        assert_eq!(tri.degree(1.0), 1.0);
        assert!((tri.degree(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(tri.degree(2.5), 0.0);
        let sh = Triangle::left_shoulder(1.0, 2.0);
        assert_eq!(sh.degree(0.0), 1.0);
        assert!((sh.degree(1.5) - 0.5).abs() < 1e-12);
        assert_eq!(sh.degree(3.0), 0.0);
    }
}
