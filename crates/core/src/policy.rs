//! Run-time thermal-management policies (§IV.A), generalized to per-block
//! actuation: per-core DVFS levels, task migration as demand reassignment
//! across cores (and therefore across tiers), and coolant flow.
//!
//! The DVFS mathematics (level selection, occupancy, dynamic scaling) live
//! in `cmosaic_power::VfTable` — policies only pick levels through
//! [`VfTable::level_for_demand`], so the power model and the policies can
//! never disagree about what a level means.

use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_power::dvfs::VfTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fuzzy::FuzzyController;

/// The thermal threshold of the paper: 85 °C.
pub const THRESHOLD: f64 = 85.0;
/// The DVFS release threshold: scale back up below 82 °C.
pub const RELEASE: f64 = 82.0;
/// Queue-imbalance threshold of the load balancer (fraction of nominal
/// throughput).
pub const LB_THRESHOLD: f64 = 0.1;
/// Minimum donor/recipient temperature gap (K) that still justifies a
/// migration; below it the migration policies leave the assignment alone.
pub const MIGRATION_DELTA: f64 = 2.0;
/// DVFS head-room: demand margin added before choosing the slowest
/// adequate V/f point, shared by every utilization-guided policy.
pub const VF_MARGIN: f64 = 0.05;

/// The policy configurations evaluated in Figs. 6–7, the flow-only
/// ablation, and the per-block actuation policies (task migration,
/// tier-granular DVFS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// `AC_LB`: air-cooled, load balancing only.
    AcLb,
    /// `AC_TDVFS_LB`: air-cooled, load balancing + temperature-triggered
    /// DVFS.
    AcTdvfsLb,
    /// `LC_LB`: liquid-cooled at maximum flow, load balancing.
    LcLb,
    /// `LC_FUZZY`: liquid-cooled with fuzzy flow + utilization-guided DVFS
    /// — the paper's proposal.
    LcFuzzy,
    /// Ablation: the fuzzy flow controller *without* DVFS. §IV.A
    /// attributes LC_FUZZY's win to "the joint control of flow rate and
    /// DVFS"; this variant quantifies that claim.
    LcFuzzyFlowOnly,
    /// `LC_MIG`: liquid-cooled at maximum flow, temperature-driven task
    /// migration (hot cores shed work to the coolest cores, across
    /// tiers). The seed drives the randomized migration fraction and
    /// makes runs reproducible.
    LcMigration {
        /// Seed of the migration-fraction RNG.
        seed: u64,
    },
    /// `LC_MIG_FUZZY`: task migration combined with the fuzzy flow
    /// controller — migration flattens the hotspots, the fuzzy rule base
    /// then lowers the flow they no longer require.
    LcMigrationFuzzy {
        /// Seed of the migration-fraction RNG.
        seed: u64,
    },
    /// `LC_TDVFS`: liquid-cooled at maximum flow with *tier-granular*
    /// temperature-triggered DVFS — every core of a tier shares one V/f
    /// level, stepped on the tier's hottest core.
    LcTierDvfs,
}

impl PolicyKind {
    /// `true` for the liquid-cooled configurations.
    pub fn is_liquid_cooled(self) -> bool {
        !matches!(self, PolicyKind::AcLb | PolicyKind::AcTdvfsLb)
    }

    /// The four policies of the paper's figures, in plot order.
    pub fn paper_policies() -> [PolicyKind; 4] {
        [
            PolicyKind::AcLb,
            PolicyKind::AcTdvfsLb,
            PolicyKind::LcLb,
            PolicyKind::LcFuzzy,
        ]
    }

    /// Every implemented policy, including ablations and the per-block
    /// actuation policies (migration variants at the default seed).
    pub fn all() -> [PolicyKind; 8] {
        [
            PolicyKind::AcLb,
            PolicyKind::AcTdvfsLb,
            PolicyKind::LcLb,
            PolicyKind::LcFuzzy,
            PolicyKind::LcFuzzyFlowOnly,
            PolicyKind::LcMigration { seed: 42 },
            PolicyKind::LcMigrationFuzzy { seed: 42 },
            PolicyKind::LcTierDvfs,
        ]
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyKind::AcLb => "AC_LB",
            PolicyKind::AcTdvfsLb => "AC_TDVFS_LB",
            PolicyKind::LcLb => "LC_LB",
            PolicyKind::LcFuzzy => "LC_FUZZY",
            PolicyKind::LcFuzzyFlowOnly => "LC_FUZZY_FLOW",
            PolicyKind::LcMigration { .. } => "LC_MIG",
            PolicyKind::LcMigrationFuzzy { .. } => "LC_MIG_FUZZY",
            PolicyKind::LcTierDvfs => "LC_TDVFS",
        })
    }
}

/// What the policy observes at a control step.
#[derive(Debug, Clone, Default)]
pub struct Observation {
    /// Offered per-core demand from the workload trace (fraction of
    /// nominal throughput).
    pub demands: Vec<f64>,
    /// Per-core junction temperatures (sensor readings).
    pub core_temps: Vec<Kelvin>,
    /// Maximum junction temperature anywhere in the stack.
    pub max_temp: Kelvin,
    /// Tier index of each core (same order as `demands`), so policies can
    /// act at tier granularity and migrations can cross tiers knowingly.
    /// Empty means "topology unknown" — single-tier behaviour.
    pub tier_of: Vec<usize>,
}

/// What the policy decides for the next interval: the per-block actuation
/// state the simulator re-prices the power map from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Action {
    /// Per-core demand after migration/balancing.
    pub assigned: Vec<f64>,
    /// Per-core DVFS level (0 = nominal).
    pub vf_levels: Vec<usize>,
    /// Per-cavity coolant flow, for liquid-cooled stacks.
    pub flow: Option<VolumetricFlow>,
}

/// Dynamic load balancing in place: move work from the longest queue to
/// the shortest until the spread falls below [`LB_THRESHOLD`].
///
/// This is the `LB` building block ("moves threads from a core's queue to
/// another if the difference in queue lengths is over a threshold").
/// Ties break on the index through the iteration order, and `total_cmp`
/// keeps the ordering total, so the result is deterministic.
pub fn load_balance_in_place(q: &mut [f64]) {
    if q.is_empty() {
        return;
    }
    for _ in 0..q.len() * 4 {
        let (imax, &dmax) = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        let (imin, &dmin) = q
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        if dmax - dmin <= LB_THRESHOLD {
            break;
        }
        let transfer = (dmax - dmin) / 2.0;
        q[imax] -= transfer;
        q[imin] += transfer;
    }
}

/// Allocating convenience wrapper over [`load_balance_in_place`].
pub fn load_balance(demands: &[f64]) -> Vec<f64> {
    let mut q = demands.to_vec();
    load_balance_in_place(&mut q);
    q
}

/// Thermal guard shared by the DVFS-capable policies: any core over
/// [`THRESHOLD`] is forced down one more level regardless of its load.
fn thermal_guard(vf: &VfTable, levels: &mut [usize], temps: &[Kelvin]) {
    for (lvl, t) in levels.iter_mut().zip(temps) {
        if t.to_celsius().0 > THRESHOLD {
            *lvl = (*lvl + 1).min(vf.slowest());
        }
    }
}

/// A run-time thermal management policy: one decision per control
/// interval.
pub trait Policy {
    /// Policy name for reports.
    fn kind(&self) -> PolicyKind;

    /// Computes the action for the next interval into a reused buffer.
    /// Implementations `clear()` and refill the action's vectors, so the
    /// warm path allocates nothing once the buffers have grown.
    fn decide_into(&mut self, obs: &Observation, action: &mut Action);

    /// Allocating convenience wrapper over
    /// [`Policy::decide_into`].
    fn decide(&mut self, obs: &Observation) -> Action {
        let mut action = Action::default();
        self.decide_into(obs, &mut action);
        action
    }
}

/// Resets an action's buffers and copies the balanced demands in.
fn fill_balanced(obs: &Observation, action: &mut Action) {
    action.assigned.clear();
    action.assigned.extend_from_slice(&obs.demands);
    load_balance_in_place(&mut action.assigned);
    action.vf_levels.clear();
    action.flow = None;
}

/// `AC_LB` — load balancing only, nominal V/f, no coolant.
#[derive(Debug, Clone, Default)]
pub struct AcLbPolicy;

impl Policy for AcLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AcLb
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        fill_balanced(obs, action);
        action.vf_levels.resize(obs.demands.len(), 0);
    }
}

/// `AC_TDVFS_LB` — load balancing plus temperature-triggered DVFS with the
/// paper's 85 °C trigger and 82 °C release, one level per scaling
/// interval.
#[derive(Debug, Clone)]
pub struct AcTdvfsLbPolicy {
    vf: VfTable,
    levels: Vec<usize>,
}

impl AcTdvfsLbPolicy {
    /// Creates the policy for `cores` cores with the Niagara VF table.
    pub fn new(cores: usize) -> Self {
        AcTdvfsLbPolicy {
            vf: VfTable::niagara(),
            levels: vec![0; cores],
        }
    }
}

impl Policy for AcTdvfsLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AcTdvfsLb
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        debug_assert_eq!(obs.core_temps.len(), self.levels.len());
        for (lvl, t) in self.levels.iter_mut().zip(&obs.core_temps) {
            let t_c = t.to_celsius().0;
            if t_c > THRESHOLD {
                *lvl = (*lvl + 1).min(self.vf.slowest());
            } else if t_c < RELEASE && *lvl > 0 {
                *lvl -= 1;
            }
        }
        fill_balanced(obs, action);
        action.vf_levels.extend_from_slice(&self.levels);
    }
}

/// `LC_LB` — liquid cooling at the worst-case maximum flow rate
/// (Table I: 32.3 ml/min per cavity), load balancing, nominal V/f.
#[derive(Debug, Clone)]
pub struct LcLbPolicy {
    flow: VolumetricFlow,
}

impl LcLbPolicy {
    /// Creates the policy at the Table I maximum flow.
    pub fn new() -> Self {
        LcLbPolicy {
            flow: VolumetricFlow::from_ml_per_min(32.3),
        }
    }
}

impl Default for LcLbPolicy {
    fn default() -> Self {
        LcLbPolicy::new()
    }
}

impl Policy for LcLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LcLb
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        fill_balanced(obs, action);
        action.vf_levels.resize(obs.demands.len(), 0);
        action.flow = Some(self.flow);
    }
}

/// `LC_FUZZY` — the proposed controller: fuzzy flow-rate selection from
/// (max temperature, mean utilization) combined with utilization-tracking
/// per-core DVFS and a thermal guard.
#[derive(Debug, Clone)]
pub struct LcFuzzyPolicy {
    fuzzy: FuzzyController,
    vf: VfTable,
    /// When `false`, cores stay at nominal V/f (the flow-only ablation).
    use_dvfs: bool,
}

impl LcFuzzyPolicy {
    /// Creates the policy with the Table I fuzzy controller.
    pub fn new() -> Self {
        LcFuzzyPolicy {
            fuzzy: FuzzyController::table1(),
            vf: VfTable::niagara(),
            use_dvfs: true,
        }
    }

    /// The flow-only ablation: fuzzy flow control with DVFS disabled.
    pub fn flow_only() -> Self {
        LcFuzzyPolicy {
            use_dvfs: false,
            ..LcFuzzyPolicy::new()
        }
    }
}

impl Default for LcFuzzyPolicy {
    fn default() -> Self {
        LcFuzzyPolicy::new()
    }
}

impl Policy for LcFuzzyPolicy {
    fn kind(&self) -> PolicyKind {
        if self.use_dvfs {
            PolicyKind::LcFuzzy
        } else {
            PolicyKind::LcFuzzyFlowOnly
        }
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        fill_balanced(obs, action);
        let assigned = &action.assigned;
        let mean_util = if assigned.is_empty() {
            0.0
        } else {
            assigned.iter().sum::<f64>() / assigned.len() as f64
        };
        if self.use_dvfs {
            for i in 0..action.assigned.len() {
                let lvl = self.vf.level_for_demand(action.assigned[i], VF_MARGIN);
                action.vf_levels.push(lvl);
            }
        } else {
            action.vf_levels.resize(action.assigned.len(), 0);
        }
        // The thermal safety net applies even in the flow-only ablation.
        thermal_guard(&self.vf, &mut action.vf_levels, &obs.core_temps);
        action.flow = Some(self.fuzzy.flow_rate(obs.max_temp, mean_util));
    }
}

/// `LC_MIG` / `LC_MIG_FUZZY` — temperature-driven task migration.
///
/// Each interval the cores are sorted hottest-first (`total_cmp`, index
/// tie-break) and paired hottest-with-coolest; every pair whose gap
/// exceeds [`MIGRATION_DELTA`] migrates a randomized fraction
/// (≈ 37–63 %) of the transferable demand from the hot donor to the cool
/// recipient. The randomization de-synchronizes the policy from periodic
/// workloads (a fixed fraction can lock onto a ping-pong oscillation);
/// seeding the RNG keeps every run bit-reproducible.
///
/// The combined variant routes the post-migration state through the fuzzy
/// flow controller: migration flattens the hotspots, the rule base then
/// lowers the flow they no longer require. The plain variant pumps at the
/// Table I maximum, isolating migration's effect.
#[derive(Debug, Clone)]
pub struct TaskMigrationPolicy {
    seed: u64,
    rng: StdRng,
    fuzzy: Option<FuzzyController>,
    max_flow: VolumetricFlow,
    /// Scratch: core indices sorted hottest-first.
    order: Vec<usize>,
}

impl TaskMigrationPolicy {
    /// Migration at the fixed Table I maximum flow.
    pub fn new(seed: u64) -> Self {
        TaskMigrationPolicy {
            seed,
            rng: StdRng::seed_from_u64(seed),
            fuzzy: None,
            max_flow: VolumetricFlow::from_ml_per_min(32.3),
            order: Vec::new(),
        }
    }

    /// Migration combined with the fuzzy flow controller.
    pub fn with_fuzzy(seed: u64) -> Self {
        TaskMigrationPolicy {
            fuzzy: Some(FuzzyController::table1()),
            ..TaskMigrationPolicy::new(seed)
        }
    }
}

impl Policy for TaskMigrationPolicy {
    fn kind(&self) -> PolicyKind {
        match self.fuzzy {
            None => PolicyKind::LcMigration { seed: self.seed },
            Some(_) => PolicyKind::LcMigrationFuzzy { seed: self.seed },
        }
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        let n = obs.demands.len();
        action.assigned.clear();
        action.assigned.extend_from_slice(&obs.demands);
        action.vf_levels.clear();
        action.vf_levels.resize(n, 0);

        debug_assert_eq!(obs.core_temps.len(), n);
        self.order.clear();
        self.order.extend(0..n);
        let temps = &obs.core_temps;
        self.order
            .sort_unstable_by(|&a, &b| temps[b].0.total_cmp(&temps[a].0).then(a.cmp(&b)));

        let (mut hot, mut cool) = (0usize, n.saturating_sub(1));
        while hot < cool {
            let donor = self.order[hot];
            let recip = self.order[cool];
            if temps[donor].0 - temps[recip].0 < MIGRATION_DELTA {
                break;
            }
            // Randomized migration fraction in [0.375, 0.625].
            let frac = 0.5 * (0.75 + 0.5 * self.rng.random::<f64>());
            let room = (1.0 - action.assigned[recip]).max(0.0);
            let transfer = frac * action.assigned[donor].min(room);
            action.assigned[donor] -= transfer;
            action.assigned[recip] += transfer;
            hot += 1;
            cool -= 1;
        }

        action.flow = Some(match &self.fuzzy {
            Some(fuzzy) => {
                let mean_util = if n == 0 {
                    0.0
                } else {
                    action.assigned.iter().sum::<f64>() / n as f64
                };
                fuzzy.flow_rate(obs.max_temp, mean_util)
            }
            None => self.max_flow,
        });
    }
}

/// `LC_TDVFS` — tier-granular temperature-triggered DVFS: every core of a
/// tier shares one V/f level, stepped up/down on the tier's hottest core
/// with the paper's 85 °C / 82 °C hysteresis, at the fixed maximum flow.
/// The shared level models a per-tier voltage rail — the common
/// constraint in TSV-stacked designs where each die has its own supply.
#[derive(Debug, Clone)]
pub struct TierDvfsPolicy {
    vf: VfTable,
    /// One V/f level per tier (grown on demand from `tier_of`).
    levels: Vec<usize>,
    /// Scratch: per-tier hottest core temperature, °C.
    tier_max_c: Vec<f64>,
    flow: VolumetricFlow,
}

impl TierDvfsPolicy {
    /// Creates the policy with the Niagara VF table.
    pub fn new() -> Self {
        TierDvfsPolicy {
            vf: VfTable::niagara(),
            levels: Vec::new(),
            tier_max_c: Vec::new(),
            flow: VolumetricFlow::from_ml_per_min(32.3),
        }
    }
}

impl Default for TierDvfsPolicy {
    fn default() -> Self {
        TierDvfsPolicy::new()
    }
}

impl Policy for TierDvfsPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LcTierDvfs
    }

    fn decide_into(&mut self, obs: &Observation, action: &mut Action) {
        fill_balanced(obs, action);
        let n = obs.demands.len();
        let n_tiers = obs.tier_of.iter().copied().max().map_or(1, |m| m + 1);
        if self.levels.len() < n_tiers {
            self.levels.resize(n_tiers, 0);
        }
        self.tier_max_c.clear();
        self.tier_max_c.resize(n_tiers, f64::NEG_INFINITY);
        for (i, t) in obs.core_temps.iter().enumerate() {
            let tier = obs.tier_of.get(i).copied().unwrap_or(0);
            let t_c = t.to_celsius().0;
            if t_c > self.tier_max_c[tier] {
                self.tier_max_c[tier] = t_c;
            }
        }
        for (lvl, &t_c) in self.levels.iter_mut().zip(&self.tier_max_c) {
            if t_c > THRESHOLD {
                *lvl = (*lvl + 1).min(self.vf.slowest());
            } else if t_c < RELEASE && *lvl > 0 {
                *lvl -= 1;
            }
        }
        for i in 0..n {
            let tier = obs.tier_of.get(i).copied().unwrap_or(0);
            action.vf_levels.push(self.levels[tier]);
        }
        action.flow = Some(self.flow);
    }
}

/// Instantiates the policy implementation for a configuration with
/// `cores` cores. This is the only construction path the simulator and
/// the scenario layer use.
pub fn make_policy(kind: PolicyKind, cores: usize) -> Box<dyn Policy> {
    match kind {
        PolicyKind::AcLb => Box::new(AcLbPolicy),
        PolicyKind::AcTdvfsLb => Box::new(AcTdvfsLbPolicy::new(cores)),
        PolicyKind::LcLb => Box::new(LcLbPolicy::new()),
        PolicyKind::LcFuzzy => Box::new(LcFuzzyPolicy::new()),
        PolicyKind::LcFuzzyFlowOnly => Box::new(LcFuzzyPolicy::flow_only()),
        PolicyKind::LcMigration { seed } => Box::new(TaskMigrationPolicy::new(seed)),
        PolicyKind::LcMigrationFuzzy { seed } => Box::new(TaskMigrationPolicy::with_fuzzy(seed)),
        PolicyKind::LcTierDvfs => Box::new(TierDvfsPolicy::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Celsius;

    fn obs(demands: &[f64], temps_c: &[f64]) -> Observation {
        Observation {
            demands: demands.to_vec(),
            core_temps: temps_c.iter().map(|&t| Celsius(t).to_kelvin()).collect(),
            max_temp: Celsius(temps_c.iter().copied().fold(0.0, f64::max)).to_kelvin(),
            tier_of: vec![0; demands.len()],
        }
    }

    #[test]
    fn load_balancer_evens_out_queues() {
        let balanced = load_balance(&[1.0, 0.0, 0.5, 0.1]);
        let total: f64 = balanced.iter().sum();
        assert!((total - 1.6).abs() < 1e-9, "work is conserved");
        let max = balanced.iter().copied().fold(0.0f64, f64::max);
        let min = balanced.iter().copied().fold(1.0f64, f64::min);
        assert!(max - min <= LB_THRESHOLD + 1e-9);
    }

    #[test]
    fn load_balancer_leaves_balanced_queues_alone() {
        let q = [0.5, 0.45, 0.52, 0.48];
        assert_eq!(load_balance(&q), q.to_vec());
    }

    #[test]
    fn tdvfs_scales_down_when_hot_and_recovers() {
        let mut p = AcTdvfsLbPolicy::new(2);
        // Hot: both cores over 85.
        let a = p.decide(&obs(&[0.5, 0.5], &[90.0, 88.0]));
        assert_eq!(a.vf_levels, vec![1, 1]);
        // Still hot: keep scaling.
        let a = p.decide(&obs(&[0.5, 0.5], &[88.0, 86.0]));
        assert_eq!(a.vf_levels, vec![2, 2]);
        // Between release and trigger: hold.
        let a = p.decide(&obs(&[0.5, 0.5], &[83.0, 84.0]));
        assert_eq!(a.vf_levels, vec![2, 2]);
        // Cooled: release one level per interval.
        let a = p.decide(&obs(&[0.5, 0.5], &[70.0, 60.0]));
        assert_eq!(a.vf_levels, vec![1, 1]);
    }

    #[test]
    fn tdvfs_saturates_at_slowest_level() {
        let mut p = AcTdvfsLbPolicy::new(1);
        for _ in 0..10 {
            p.decide(&obs(&[1.0], &[120.0]));
        }
        let a = p.decide(&obs(&[1.0], &[120.0]));
        assert_eq!(a.vf_levels, vec![VfTable::niagara().slowest()]);
    }

    #[test]
    fn lc_lb_always_uses_max_flow() {
        let mut p = LcLbPolicy::new();
        let a = p.decide(&obs(&[0.1, 0.1], &[40.0, 41.0]));
        let q = a.flow.expect("liquid cooled");
        assert!((q.to_ml_per_min() - 32.3).abs() < 1e-9);
    }

    #[test]
    fn fuzzy_tracks_utilization_with_dvfs() {
        let mut p = LcFuzzyPolicy::new();
        // Low demand, cool chip: cores drop to a slow level and flow is low.
        let a = p.decide(&obs(&[0.2, 0.2], &[50.0, 52.0]));
        assert!(a.vf_levels.iter().all(|&l| l > 0));
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!(q < 15.0, "cool+idle should use low flow, got {q}");
        // High demand: nominal V/f; hot: high flow.
        let a = p.decide(&obs(&[0.95, 0.95], &[80.0, 81.0]));
        assert_eq!(a.vf_levels, vec![0, 0]);
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!(q > 25.0, "hot+busy should use high flow, got {q}");
    }

    #[test]
    fn fuzzy_thermal_guard_overrides_utilization() {
        let mut p = LcFuzzyPolicy::new();
        let a = p.decide(&obs(&[0.95, 0.95], &[90.0, 50.0]));
        assert!(a.vf_levels[0] > 0, "hot core forced down");
        assert_eq!(a.vf_levels[1], 0, "cool busy core stays nominal");
    }

    #[test]
    fn flow_only_ablation_never_scales_vf_when_cool() {
        let mut p = LcFuzzyPolicy::flow_only();
        assert_eq!(p.kind(), PolicyKind::LcFuzzyFlowOnly);
        let a = p.decide(&obs(&[0.1, 0.1], &[45.0, 46.0]));
        assert_eq!(a.vf_levels, vec![0, 0], "flow-only keeps nominal V/f");
        // The thermal safety guard still applies.
        let a = p.decide(&obs(&[0.1, 0.1], &[90.0, 46.0]));
        assert_eq!(a.vf_levels, vec![1, 0]);
    }

    #[test]
    fn migration_moves_work_from_hot_to_cool() {
        let mut p = TaskMigrationPolicy::new(7);
        // Core 0 hot and loaded, core 3 cool and idle.
        let a = p.decide(&obs(&[0.9, 0.5, 0.5, 0.1], &[92.0, 70.0, 71.0, 50.0]));
        assert!(a.assigned[0] < 0.9, "hot donor sheds work");
        assert!(a.assigned[3] > 0.1, "cool recipient gains work");
        let total: f64 = a.assigned.iter().sum();
        assert!((total - 2.0).abs() < 1e-9, "work is conserved");
        assert_eq!(a.vf_levels, vec![0; 4], "migration keeps nominal V/f");
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!((q - 32.3).abs() < 1e-9, "plain variant pumps at max");
    }

    #[test]
    fn migration_respects_the_temperature_gap() {
        let mut p = TaskMigrationPolicy::new(7);
        // All cores within MIGRATION_DELTA: nothing moves.
        let a = p.decide(&obs(&[0.9, 0.1], &[60.0, 59.5]));
        assert_eq!(a.assigned, vec![0.9, 0.1]);
    }

    #[test]
    fn migration_is_deterministic_per_seed() {
        let o = obs(&[0.9, 0.8, 0.2, 0.1], &[92.0, 90.0, 55.0, 50.0]);
        let run = |seed: u64| {
            let mut p = TaskMigrationPolicy::new(seed);
            (0..5).map(|_| p.decide(&o).assigned).collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same trajectory");
        assert_ne!(run(42), run(43), "different seed, different fractions");
    }

    #[test]
    fn combined_variant_lowers_flow_when_cool() {
        let mut p = TaskMigrationPolicy::with_fuzzy(42);
        assert_eq!(p.kind(), PolicyKind::LcMigrationFuzzy { seed: 42 });
        let a = p.decide(&obs(&[0.2, 0.2], &[50.0, 51.0]));
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!(q < 15.0, "cool chip should not pump at max, got {q}");
    }

    #[test]
    fn tier_dvfs_steps_the_hot_tier_only() {
        let mut p = TierDvfsPolicy::new();
        let mut o = obs(&[0.5; 4], &[90.0, 88.0, 60.0, 61.0]);
        o.tier_of = vec![0, 0, 1, 1];
        let a = p.decide(&o);
        assert_eq!(a.vf_levels, vec![1, 1, 0, 0], "only tier 0 scales down");
        // Tier 0 cools below release: it steps back up.
        let mut o2 = obs(&[0.5; 4], &[70.0, 71.0, 60.0, 61.0]);
        o2.tier_of = vec![0, 0, 1, 1];
        let a = p.decide(&o2);
        assert_eq!(a.vf_levels, vec![0, 0, 0, 0]);
    }

    #[test]
    fn decide_into_reuses_buffers() {
        let mut p = LcFuzzyPolicy::new();
        let o = obs(&[0.5, 0.6], &[60.0, 61.0]);
        let mut action = Action::default();
        p.decide_into(&o, &mut action);
        let first = action.clone();
        p.decide_into(&o, &mut action);
        assert_eq!(action, first, "refilling the buffer is idempotent");
    }

    #[test]
    fn policy_kind_helpers() {
        assert!(PolicyKind::LcFuzzy.is_liquid_cooled());
        assert!(PolicyKind::LcFuzzyFlowOnly.is_liquid_cooled());
        assert!(PolicyKind::LcMigration { seed: 1 }.is_liquid_cooled());
        assert!(PolicyKind::LcTierDvfs.is_liquid_cooled());
        assert!(!PolicyKind::AcLb.is_liquid_cooled());
        assert_eq!(PolicyKind::AcTdvfsLb.to_string(), "AC_TDVFS_LB");
        assert_eq!(PolicyKind::LcMigration { seed: 9 }.to_string(), "LC_MIG");
        assert_eq!(PolicyKind::paper_policies().len(), 4);
        assert_eq!(PolicyKind::all().len(), 8);
        for kind in PolicyKind::all() {
            let mut p = make_policy(kind, 4);
            assert_eq!(p.kind(), kind);
            let a = p.decide(&obs(&[0.5; 4], &[60.0; 4]));
            assert_eq!(a.assigned.len(), 4);
            assert_eq!(a.vf_levels.len(), 4);
            assert_eq!(a.flow.is_some(), kind.is_liquid_cooled());
        }
    }
}
