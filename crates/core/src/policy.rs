//! Run-time thermal-management policies (§IV.A).

use cmosaic_materials::units::{Kelvin, VolumetricFlow};
use cmosaic_power::dvfs::VfTable;

use crate::fuzzy::FuzzyController;

/// The thermal threshold of the paper: 85 °C.
pub const THRESHOLD: f64 = 85.0;
/// The DVFS release threshold: scale back up below 82 °C.
pub const RELEASE: f64 = 82.0;
/// Queue-imbalance threshold of the load balancer (fraction of nominal
/// throughput).
pub const LB_THRESHOLD: f64 = 0.1;

/// The policy configurations evaluated in Figs. 6–7, plus the
/// flow-only ablation used to isolate the benefit of joint control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// `AC_LB`: air-cooled, load balancing only.
    AcLb,
    /// `AC_TDVFS_LB`: air-cooled, load balancing + temperature-triggered
    /// DVFS.
    AcTdvfsLb,
    /// `LC_LB`: liquid-cooled at maximum flow, load balancing.
    LcLb,
    /// `LC_FUZZY`: liquid-cooled with fuzzy flow + utilization-guided DVFS
    /// — the paper's proposal.
    LcFuzzy,
    /// Ablation: the fuzzy flow controller *without* DVFS. §IV.A
    /// attributes LC_FUZZY's win to "the joint control of flow rate and
    /// DVFS"; this variant quantifies that claim.
    LcFuzzyFlowOnly,
}

impl PolicyKind {
    /// `true` for the liquid-cooled configurations.
    pub fn is_liquid_cooled(self) -> bool {
        matches!(
            self,
            PolicyKind::LcLb | PolicyKind::LcFuzzy | PolicyKind::LcFuzzyFlowOnly
        )
    }

    /// The four policies of the paper's figures, in plot order.
    pub fn paper_policies() -> [PolicyKind; 4] {
        [
            PolicyKind::AcLb,
            PolicyKind::AcTdvfsLb,
            PolicyKind::LcLb,
            PolicyKind::LcFuzzy,
        ]
    }

    /// Every implemented policy, including ablations.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::AcLb,
            PolicyKind::AcTdvfsLb,
            PolicyKind::LcLb,
            PolicyKind::LcFuzzy,
            PolicyKind::LcFuzzyFlowOnly,
        ]
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PolicyKind::AcLb => "AC_LB",
            PolicyKind::AcTdvfsLb => "AC_TDVFS_LB",
            PolicyKind::LcLb => "LC_LB",
            PolicyKind::LcFuzzy => "LC_FUZZY",
            PolicyKind::LcFuzzyFlowOnly => "LC_FUZZY_FLOW",
        })
    }
}

/// What the policy observes at a control step.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Offered per-core demand from the workload trace (fraction of
    /// nominal throughput).
    pub demands: Vec<f64>,
    /// Per-core junction temperatures (sensor readings).
    pub core_temps: Vec<Kelvin>,
    /// Maximum junction temperature anywhere in the stack.
    pub max_temp: Kelvin,
}

/// What the policy decides for the next interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Action {
    /// Per-core demand after migration/balancing.
    pub assigned: Vec<f64>,
    /// Per-core DVFS level (0 = nominal).
    pub vf_levels: Vec<usize>,
    /// Per-cavity coolant flow, for liquid-cooled stacks.
    pub flow: Option<VolumetricFlow>,
}

/// Dynamic load balancing: move work from the longest queue to the
/// shortest until the spread falls below [`LB_THRESHOLD`].
///
/// This is the `LB` building block every evaluated policy uses ("moves
/// threads from a core's queue to another if the difference in queue
/// lengths is over a threshold").
pub fn load_balance(demands: &[f64]) -> Vec<f64> {
    let mut q = demands.to_vec();
    if q.is_empty() {
        return q;
    }
    for _ in 0..q.len() * 4 {
        let (imax, &dmax) = q
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        let (imin, &dmin) = q
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        if dmax - dmin <= LB_THRESHOLD {
            break;
        }
        let transfer = (dmax - dmin) / 2.0;
        q[imax] -= transfer;
        q[imin] += transfer;
    }
    q
}

/// A run-time thermal management policy: one `decide` call per control
/// interval.
pub trait Policy {
    /// Policy name for reports.
    fn kind(&self) -> PolicyKind;

    /// Computes the action for the next interval.
    fn decide(&mut self, obs: &Observation) -> Action;
}

/// `AC_LB` — load balancing only, nominal V/f, no coolant.
#[derive(Debug, Clone, Default)]
pub struct AcLbPolicy;

impl Policy for AcLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AcLb
    }

    fn decide(&mut self, obs: &Observation) -> Action {
        Action {
            assigned: load_balance(&obs.demands),
            vf_levels: vec![0; obs.demands.len()],
            flow: None,
        }
    }
}

/// `AC_TDVFS_LB` — load balancing plus temperature-triggered DVFS with the
/// paper's 85 °C trigger and 82 °C release, one level per scaling
/// interval.
#[derive(Debug, Clone)]
pub struct AcTdvfsLbPolicy {
    vf: VfTable,
    levels: Vec<usize>,
}

impl AcTdvfsLbPolicy {
    /// Creates the policy for `cores` cores with the Niagara VF table.
    pub fn new(cores: usize) -> Self {
        AcTdvfsLbPolicy {
            vf: VfTable::niagara(),
            levels: vec![0; cores],
        }
    }
}

impl Policy for AcTdvfsLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::AcTdvfsLb
    }

    fn decide(&mut self, obs: &Observation) -> Action {
        debug_assert_eq!(obs.core_temps.len(), self.levels.len());
        for (lvl, t) in self.levels.iter_mut().zip(&obs.core_temps) {
            let t_c = t.to_celsius().0;
            if t_c > THRESHOLD {
                *lvl = (*lvl + 1).min(self.vf.slowest());
            } else if t_c < RELEASE && *lvl > 0 {
                *lvl -= 1;
            }
        }
        Action {
            assigned: load_balance(&obs.demands),
            vf_levels: self.levels.clone(),
            flow: None,
        }
    }
}

/// `LC_LB` — liquid cooling at the worst-case maximum flow rate
/// (Table I: 32.3 ml/min per cavity), load balancing, nominal V/f.
#[derive(Debug, Clone)]
pub struct LcLbPolicy {
    flow: VolumetricFlow,
}

impl LcLbPolicy {
    /// Creates the policy at the Table I maximum flow.
    pub fn new() -> Self {
        LcLbPolicy {
            flow: VolumetricFlow::from_ml_per_min(32.3),
        }
    }
}

impl Default for LcLbPolicy {
    fn default() -> Self {
        LcLbPolicy::new()
    }
}

impl Policy for LcLbPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::LcLb
    }

    fn decide(&mut self, obs: &Observation) -> Action {
        Action {
            assigned: load_balance(&obs.demands),
            vf_levels: vec![0; obs.demands.len()],
            flow: Some(self.flow),
        }
    }
}

/// `LC_FUZZY` — the proposed controller: fuzzy flow-rate selection from
/// (max temperature, mean utilization) combined with utilization-tracking
/// per-core DVFS and a thermal guard.
#[derive(Debug, Clone)]
pub struct LcFuzzyPolicy {
    fuzzy: FuzzyController,
    vf: VfTable,
    /// Head-room added to the demand before choosing the slowest adequate
    /// V/f point, so utilization tracking stays performance-neutral.
    margin: f64,
    /// When `false`, cores stay at nominal V/f (the flow-only ablation).
    use_dvfs: bool,
}

impl LcFuzzyPolicy {
    /// Creates the policy with the Table I fuzzy controller.
    pub fn new() -> Self {
        LcFuzzyPolicy {
            fuzzy: FuzzyController::table1(),
            vf: VfTable::niagara(),
            margin: 0.05,
            use_dvfs: true,
        }
    }

    /// The flow-only ablation: fuzzy flow control with DVFS disabled.
    pub fn flow_only() -> Self {
        LcFuzzyPolicy {
            use_dvfs: false,
            ..LcFuzzyPolicy::new()
        }
    }

    /// The slowest V/f level that still serves `demand` with margin.
    fn vf_for_demand(&self, demand: f64) -> usize {
        let need = (demand + self.margin).min(1.0);
        let mut best = 0;
        for lvl in (0..=self.vf.slowest()).rev() {
            if self.vf.speed(lvl) >= need {
                best = lvl;
                break;
            }
        }
        best
    }
}

impl Default for LcFuzzyPolicy {
    fn default() -> Self {
        LcFuzzyPolicy::new()
    }
}

impl Policy for LcFuzzyPolicy {
    fn kind(&self) -> PolicyKind {
        if self.use_dvfs {
            PolicyKind::LcFuzzy
        } else {
            PolicyKind::LcFuzzyFlowOnly
        }
    }

    fn decide(&mut self, obs: &Observation) -> Action {
        let assigned = load_balance(&obs.demands);
        let mean_util = if assigned.is_empty() {
            0.0
        } else {
            assigned.iter().sum::<f64>() / assigned.len() as f64
        };
        let flow = self.fuzzy.flow_rate(obs.max_temp, mean_util);
        let mut vf_levels: Vec<usize> = if self.use_dvfs {
            assigned.iter().map(|&d| self.vf_for_demand(d)).collect()
        } else {
            vec![0; assigned.len()]
        };
        // Thermal guard: a core over the threshold is forced down one more
        // level regardless of its load (kept even in the flow-only
        // ablation — it is a safety net, not an energy feature).
        for (lvl, t) in vf_levels.iter_mut().zip(&obs.core_temps) {
            if t.to_celsius().0 > THRESHOLD {
                *lvl = (*lvl + 1).min(self.vf.slowest());
            }
        }
        Action {
            assigned,
            vf_levels,
            flow: Some(flow),
        }
    }
}

/// Instantiates the policy implementation for a configuration with
/// `cores` cores.
pub fn make_policy(kind: PolicyKind, cores: usize) -> Box<dyn Policy> {
    match kind {
        PolicyKind::AcLb => Box::new(AcLbPolicy),
        PolicyKind::AcTdvfsLb => Box::new(AcTdvfsLbPolicy::new(cores)),
        PolicyKind::LcLb => Box::new(LcLbPolicy::new()),
        PolicyKind::LcFuzzy => Box::new(LcFuzzyPolicy::new()),
        PolicyKind::LcFuzzyFlowOnly => Box::new(LcFuzzyPolicy::flow_only()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Celsius;

    fn obs(demands: &[f64], temps_c: &[f64]) -> Observation {
        Observation {
            demands: demands.to_vec(),
            core_temps: temps_c.iter().map(|&t| Celsius(t).to_kelvin()).collect(),
            max_temp: Celsius(temps_c.iter().copied().fold(0.0, f64::max)).to_kelvin(),
        }
    }

    #[test]
    fn load_balancer_evens_out_queues() {
        let balanced = load_balance(&[1.0, 0.0, 0.5, 0.1]);
        let total: f64 = balanced.iter().sum();
        assert!((total - 1.6).abs() < 1e-9, "work is conserved");
        let max = balanced.iter().copied().fold(0.0f64, f64::max);
        let min = balanced.iter().copied().fold(1.0f64, f64::min);
        assert!(max - min <= LB_THRESHOLD + 1e-9);
    }

    #[test]
    fn load_balancer_leaves_balanced_queues_alone() {
        let q = [0.5, 0.45, 0.52, 0.48];
        assert_eq!(load_balance(&q), q.to_vec());
    }

    #[test]
    fn tdvfs_scales_down_when_hot_and_recovers() {
        let mut p = AcTdvfsLbPolicy::new(2);
        // Hot: both cores over 85.
        let a = p.decide(&obs(&[0.5, 0.5], &[90.0, 88.0]));
        assert_eq!(a.vf_levels, vec![1, 1]);
        // Still hot: keep scaling.
        let a = p.decide(&obs(&[0.5, 0.5], &[88.0, 86.0]));
        assert_eq!(a.vf_levels, vec![2, 2]);
        // Between release and trigger: hold.
        let a = p.decide(&obs(&[0.5, 0.5], &[83.0, 84.0]));
        assert_eq!(a.vf_levels, vec![2, 2]);
        // Cooled: release one level per interval.
        let a = p.decide(&obs(&[0.5, 0.5], &[70.0, 60.0]));
        assert_eq!(a.vf_levels, vec![1, 1]);
    }

    #[test]
    fn tdvfs_saturates_at_slowest_level() {
        let mut p = AcTdvfsLbPolicy::new(1);
        for _ in 0..10 {
            p.decide(&obs(&[1.0], &[120.0]));
        }
        let a = p.decide(&obs(&[1.0], &[120.0]));
        assert_eq!(a.vf_levels, vec![VfTable::niagara().slowest()]);
    }

    #[test]
    fn lc_lb_always_uses_max_flow() {
        let mut p = LcLbPolicy::new();
        let a = p.decide(&obs(&[0.1, 0.1], &[40.0, 41.0]));
        let q = a.flow.expect("liquid cooled");
        assert!((q.to_ml_per_min() - 32.3).abs() < 1e-9);
    }

    #[test]
    fn fuzzy_tracks_utilization_with_dvfs() {
        let mut p = LcFuzzyPolicy::new();
        // Low demand, cool chip: cores drop to a slow level and flow is low.
        let a = p.decide(&obs(&[0.2, 0.2], &[50.0, 52.0]));
        assert!(a.vf_levels.iter().all(|&l| l > 0));
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!(q < 15.0, "cool+idle should use low flow, got {q}");
        // High demand: nominal V/f; hot: high flow.
        let a = p.decide(&obs(&[0.95, 0.95], &[80.0, 81.0]));
        assert_eq!(a.vf_levels, vec![0, 0]);
        let q = a.flow.expect("liquid cooled").to_ml_per_min();
        assert!(q > 25.0, "hot+busy should use high flow, got {q}");
    }

    #[test]
    fn fuzzy_thermal_guard_overrides_utilization() {
        let mut p = LcFuzzyPolicy::new();
        let a = p.decide(&obs(&[0.95, 0.95], &[90.0, 50.0]));
        assert!(a.vf_levels[0] > 0, "hot core forced down");
        assert_eq!(a.vf_levels[1], 0, "cool busy core stays nominal");
    }

    #[test]
    fn flow_only_ablation_never_scales_vf_when_cool() {
        let mut p = LcFuzzyPolicy::flow_only();
        assert_eq!(p.kind(), PolicyKind::LcFuzzyFlowOnly);
        let a = p.decide(&obs(&[0.1, 0.1], &[45.0, 46.0]));
        assert_eq!(a.vf_levels, vec![0, 0], "flow-only keeps nominal V/f");
        // The thermal safety guard still applies.
        let a = p.decide(&obs(&[0.1, 0.1], &[90.0, 46.0]));
        assert_eq!(a.vf_levels, vec![1, 0]);
    }

    #[test]
    fn policy_kind_helpers() {
        assert!(PolicyKind::LcFuzzy.is_liquid_cooled());
        assert!(PolicyKind::LcFuzzyFlowOnly.is_liquid_cooled());
        assert!(!PolicyKind::AcLb.is_liquid_cooled());
        assert_eq!(PolicyKind::AcTdvfsLb.to_string(), "AC_TDVFS_LB");
        assert_eq!(PolicyKind::paper_policies().len(), 4);
        assert_eq!(PolicyKind::all().len(), 5);
        for kind in PolicyKind::all() {
            let mut p = make_policy(kind, 4);
            assert_eq!(p.kind(), kind);
            let a = p.decide(&obs(&[0.5; 4], &[60.0; 4]));
            assert_eq!(a.assigned.len(), 4);
            assert_eq!(a.vf_levels.len(), 4);
            assert_eq!(a.flow.is_some(), kind.is_liquid_cooled());
        }
    }
}
