//! `cmosaic` — thermally-aware design and run-time thermal management of 3D
//! MPSoCs with inter-tier liquid cooling.
//!
//! This crate is the top of the CMOSAIC (DATE 2011) reproduction stack. It
//! couples the workload, power, thermal and hydraulic substrates into the
//! co-simulation the paper's §IV evaluates, and implements its run-time
//! thermal-management policies:
//!
//! | Policy | Paper name | What it does |
//! |---|---|---|
//! | [`PolicyKind::AcLb`] | `AC_LB` | air-cooled, dynamic load balancing |
//! | [`PolicyKind::AcTdvfsLb`] | `AC_TDVFS_LB` | + temperature-triggered DVFS (down at 85 °C, up at 82 °C) |
//! | [`PolicyKind::LcLb`] | `LC_LB` | liquid-cooled at the maximum flow rate, load balancing |
//! | [`PolicyKind::LcFuzzy`] | `LC_FUZZY` | liquid-cooled, fuzzy joint control of coolant flow rate and per-core DVFS |
//!
//! The headline result: `LC_FUZZY` keeps every junction below the 85 °C
//! threshold while cutting cooling energy by up to ~67 % and system energy
//! by up to ~30 % against running the pump at the worst-case maximum flow.
//!
//! # The scenario API
//!
//! Every experiment is a [`scenario::ScenarioSpec`]: a typed, validated
//! description of stack geometry (preset tier counts or a custom
//! [`floorplan::stack::Stack3d`]), cooling medium (air, single-phase
//! water, two-phase refrigerant), thermal grid, workload (synthetic
//! benchmark classes or recorded traces), policy, an optional
//! [`scenario::FlowSchedule`] overriding the pump, duration and seed.
//! Cross-field mistakes fail at [`scenario::ScenarioSpec::build`] with a
//! [`CmosaicError::Config`], not deep inside the simulator.
//!
//! Scenario *families* are [`study::Study`] values: axis products over
//! policies, tier counts, workloads, coolants, flow schedules, solver
//! backends, seeds, grids or custom stacks, pruned with `retain` and
//! executed as one batch. The thermal linear solver itself is selectable
//! per scenario ([`scenario::ScenarioSpec::solver`]): direct sparse LU
//! (default) or ILU(0)-preconditioned BiCGSTAB with automatic direct
//! fallback — the iterative backend keeps operator setup O(nnz) on fine
//! grids where LU fill bites (see `BENCH_iterative.json` for the
//! measured crossover).
//! [`observe::Observer`] hooks ride along: per-epoch callbacks receiving
//! an [`observe::EpochCtx`] (temperature field, powers, flow, the policy's
//! action) without forking the simulation loop — built-ins cover peak
//! tracking ([`observe::PeakTemperature`]), energy breakdowns
//! ([`observe::EnergyBreakdown`]) and field snapshots
//! ([`observe::ThermalMap`]).
//!
//! On top of studies sits the [`optimize`] module — the paper's actual
//! point, thermally-aware *design*: a [`optimize::DesignSpace`] of
//! indexable axes (including placement axes built from the deterministic
//! floorplan/stack transformations of `cmosaic_floorplan::transform` via
//! [`optimize::DesignAxis::stack_transforms`]), [`optimize::Constraints`]
//! enforced in-loop by the early-abort [`optimize::ConstraintMonitor`],
//! and seeded deterministic [`optimize::SearchStrategy`]s
//! ([`optimize::GridSearch`], [`optimize::CoordinateDescent`], and the
//! neighbor-move-driven [`optimize::SimulatedAnnealing`]) returning the
//! minimum-cooling-energy design plus the [`optimize::ParetoFront`] of
//! (energy, peak-T, silicon-area) trade-offs.
//!
//! # Batch sweeps and the workspace-reuse contract
//!
//! Design-space exploration runs the same stack family at many operating
//! points. Two layers make that cheap:
//!
//! * **Zero-allocation hot path.** Every [`Simulator`] owns persistent
//!   scratch (a reused [`thermal::TemperatureField`] and sensor buffer)
//!   and drives the thermal model's in-place solve path
//!   ([`thermal::ThermalModel::step_into`]): once an operating point's
//!   operator is cached and the buffers have warmed up, a transient
//!   sub-step performs **no heap allocation** — RHS assembly, triangular
//!   solve and the state ping-pong all happen inside storage allocated at
//!   warm-up. The contract is observable:
//!   [`thermal::SolverStats::workspace_grows`] stays flat on a warm path
//!   (asserted by the test suites) and
//!   [`thermal::SolverStats::in_place_solves`] counts the solves served
//!   that way. Per control interval, only the policy observation and
//!   power-map assembly allocate (small, constant).
//! * **Parallel batch engine.** [`batch::BatchRunner`] fans a scenario
//!   matrix (e.g. [`experiments::fig6_study`]) across a scoped thread
//!   pool. Scenarios are grouped by operator pattern; the first of each
//!   group donates its frozen symbolic LU analysis
//!   ([`thermal::SharedAnalysis`], `Arc`-shared) to the rest, so the
//!   expensive pivoting factorisation runs exactly once per (stack, grid)
//!   pattern across the whole batch. Outcomes are aggregated by scenario
//!   index and are bit-identical at any thread count.
//!
//! # Fault tolerance and resumable studies
//!
//! Long sweeps must survive their worst cell. The batch engine makes
//! three promises:
//!
//! * **Partial reports.** [`batch::BatchReport`] (and
//!   [`study::StudyReport`]) always covers the whole matrix: each slot
//!   is a `Result`, so one scenario panicking (isolated per attempt via
//!   `catch_unwind`), tripping the per-epoch divergence guard
//!   ([`CmosaicError::Diverged`]) or otherwise failing leaves a
//!   structured [`batch::SlotError`] in its own slot while every healthy
//!   scenario completes and aggregates normally. A failed donor releases
//!   its adopters (they run unshared) — no deadlocks, no poisoned-lock
//!   cascades.
//! * **A deterministic degradation ladder.** Retryable failures
//!   (divergence, linear-solver breakdown) re-run the scenario down a
//!   fixed ladder — stepwise backend demotion (multigrid → ILU(0) →
//!   direct LU, each rung sticky), then up to two thermal-timestep
//!   halvings — recorded per slot in
//!   [`batch::RecoveryRecord`]. The ladder depends only on the scenario,
//!   never on thread scheduling, so reports (including the errors) stay
//!   bit-identical across thread counts.
//! * **Checkpoint/resume.** [`study::Study::run_checkpointed`] journals
//!   every finished slot to an append-only, fingerprint-validated file
//!   ([`checkpoint::StudyJournal`]); a killed study resumes where it
//!   left off and the merged report is bit-identical to an uninterrupted
//!   run at any thread count. Deterministic fault *injection* for
//!   exercising all of this lives in [`fault::FaultPlan`].
//!
//! # Quick start
//!
//! ```
//! use cmosaic::scenario::ScenarioSpec;
//! use cmosaic::policy::PolicyKind;
//! use cmosaic_power::trace::WorkloadKind;
//!
//! # fn main() -> Result<(), cmosaic::CmosaicError> {
//! let metrics = ScenarioSpec::new()
//!     .tiers(2)
//!     .policy(PolicyKind::LcFuzzy)
//!     .workload(WorkloadKind::WebServer)
//!     .seconds(30)
//!     .seed(1)
//!     .build()?
//!     .run()?;
//! assert!(metrics.peak_temperature.to_celsius().0 < 85.0);
//! # Ok(())
//! # }
//! ```
//!
//! A family of scenarios — and a custom per-epoch observer — is a
//! [`study::Study`]:
//!
//! ```
//! use cmosaic::{BatchRunner, ScenarioSpec, Study};
//! use cmosaic::observe::PeakTemperature;
//! use cmosaic::policy::PolicyKind;
//! use cmosaic_floorplan::GridSpec;
//!
//! # fn main() -> Result<(), cmosaic::CmosaicError> {
//! let base = ScenarioSpec::new()
//!     .grid(GridSpec::new(6, 6).expect("static"))
//!     .seconds(2);
//! let (report, peaks) = Study::new(base)
//!     .over_tiers([2, 4])
//!     .over_policies([PolicyKind::LcLb, PolicyKind::LcFuzzy])
//!     .run_observed(&BatchRunner::new(2), |_, _| PeakTemperature::new())?;
//! assert_eq!(report.len(), 4);
//! assert_eq!(report.total_full_factorizations(), 2); // one per tier count
//! // Healthy slots keep their observers (`None` marks failed slots).
//! assert!(peaks.iter().all(|p| p.as_ref().is_some_and(|p| p.peak().is_some())));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod experiments;
pub mod fault;
pub mod fuzzy;
pub mod metrics;
pub mod observe;
pub mod optimize;
pub mod policy;
pub mod scenario;
pub mod sim;
pub mod study;

pub use batch::{
    BatchReport, BatchRunner, RecoveryRecord, ScenarioError, ScenarioOutcome, SlotError,
};
pub use checkpoint::StudyJournal;
pub use fault::{FaultKind, FaultPlan};
pub use fuzzy::FuzzyController;
pub use metrics::RunMetrics;
pub use observe::{EpochCtx, Observer};
pub use optimize::{
    ConstraintMonitor, Constraints, CoordinateDescent, DesignAxis, DesignSpace, GridSearch,
    NeighborMove, OptimizeReport, Optimizer, ParetoFront, SimulatedAnnealing,
};
pub use policy::PolicyKind;
pub use scenario::{CoolantChoice, FlowSchedule, Scenario, ScenarioSpec};
pub use sim::{SimConfig, Simulator};
pub use study::{Study, StudyReport};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use cmosaic_floorplan as floorplan;
pub use cmosaic_hydraulics as hydraulics;
pub use cmosaic_materials as materials;
pub use cmosaic_power as power;
pub use cmosaic_sparse as sparse;
pub use cmosaic_thermal as thermal;
pub use cmosaic_twophase as twophase;

use std::error::Error;
use std::fmt;

/// Top-level error type: wraps the substrate errors plus configuration
/// problems specific to the co-simulation.
#[derive(Debug)]
pub enum CmosaicError {
    /// Inconsistent simulation configuration.
    Config {
        /// Explanation.
        detail: String,
    },
    /// The simulation produced a non-finite or physically implausible
    /// temperature — the per-epoch divergence guard tripped (a NaN/Inf
    /// from a numerically broken solve, or a cell outside the plausible
    /// band). The field is reported at the first offending epoch, so the
    /// bad values never reach observers, metrics or Pareto fronts.
    Diverged {
        /// Control interval at which the guard tripped.
        epoch: usize,
        /// Lowest offending cell index (layer-major).
        cell: usize,
        /// The offending temperature, kelvin (may be NaN/Inf).
        value: f64,
    },
    /// A scenario inside a batch failed — the strict wrappers of the
    /// fault-tolerant batch API ([`Study::run`](study::Study::run))
    /// surface the lowest-indexed slot
    /// error this way. The fault-tolerant path itself
    /// ([`BatchRunner::run_scenarios`](batch::BatchRunner::run_scenarios))
    /// never returns this: it reports per-slot
    /// [`SlotError`]s instead.
    Scenario {
        /// Position of the failing scenario in the batch.
        index: usize,
        /// Rendered slot error.
        detail: String,
    },
    /// Reading or writing a study checkpoint journal failed, or an
    /// existing journal does not belong to the study being resumed
    /// (version, fingerprint or scenario-count mismatch).
    Journal {
        /// Explanation.
        detail: String,
    },
    /// Floorplan/stack construction failed.
    Floorplan(cmosaic_floorplan::FloorplanError),
    /// Power-model failure.
    Power(cmosaic_power::PowerError),
    /// Thermal-model failure.
    Thermal(cmosaic_thermal::ThermalError),
    /// Hydraulic-model failure.
    Hydraulics(cmosaic_hydraulics::HydraulicsError),
}

impl fmt::Display for CmosaicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmosaicError::Config { detail } => write!(f, "configuration error: {detail}"),
            CmosaicError::Diverged { epoch, cell, value } => write!(
                f,
                "simulation diverged at epoch {epoch}: cell {cell} reached {value} K"
            ),
            CmosaicError::Scenario { index, detail } => {
                write!(f, "scenario {index} failed: {detail}")
            }
            CmosaicError::Journal { detail } => write!(f, "journal error: {detail}"),
            CmosaicError::Floorplan(e) => write!(f, "floorplan error: {e}"),
            CmosaicError::Power(e) => write!(f, "power model error: {e}"),
            CmosaicError::Thermal(e) => write!(f, "thermal model error: {e}"),
            CmosaicError::Hydraulics(e) => write!(f, "hydraulics error: {e}"),
        }
    }
}

impl Error for CmosaicError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CmosaicError::Config { .. } => None,
            CmosaicError::Diverged { .. } => None,
            CmosaicError::Scenario { .. } => None,
            CmosaicError::Journal { .. } => None,
            CmosaicError::Floorplan(e) => Some(e),
            CmosaicError::Power(e) => Some(e),
            CmosaicError::Thermal(e) => Some(e),
            CmosaicError::Hydraulics(e) => Some(e),
        }
    }
}

impl From<cmosaic_floorplan::FloorplanError> for CmosaicError {
    fn from(e: cmosaic_floorplan::FloorplanError) -> Self {
        CmosaicError::Floorplan(e)
    }
}

impl From<cmosaic_power::PowerError> for CmosaicError {
    fn from(e: cmosaic_power::PowerError) -> Self {
        CmosaicError::Power(e)
    }
}

impl From<cmosaic_thermal::ThermalError> for CmosaicError {
    fn from(e: cmosaic_thermal::ThermalError) -> Self {
        CmosaicError::Thermal(e)
    }
}

impl From<cmosaic_hydraulics::HydraulicsError> for CmosaicError {
    fn from(e: cmosaic_hydraulics::HydraulicsError) -> Self {
        CmosaicError::Hydraulics(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wrapping() {
        let e: CmosaicError = cmosaic_power::PowerError::InvalidUtilization { value: 2.0 }.into();
        assert!(e.to_string().contains("power model"));
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CmosaicError>();
    }
}
