//! Scenario-family studies: expand axes into a matrix, execute it as one
//! batch.
//!
//! A [`Study`] starts from one base [`ScenarioSpec`] and grows a scenario
//! matrix by cartesian products: each `over_*` call multiplies the current
//! scenario list by one axis (policies, tier counts, workloads, coolants,
//! flow schedules, seeds, grids — or any custom transformation through
//! [`Study::over_with`]). [`Study::retain`] prunes cells the experiment
//! does not define (e.g. the paper's figures omit `AC_TDVFS_LB` at 4
//! tiers), and [`Study::chain`] concatenates independently-built families.
//!
//! [`Study::run`] executes the matrix through a
//! [`BatchRunner`], inheriting its guarantees:
//! scenarios sharing a thermal-operator pattern pay **one** full pivoting
//! factorisation between them (donated
//! [`SharedAnalysis`](cmosaic_thermal::SharedAnalysis)), the report is
//! bit-identical at any thread count, and run-time failures (panics,
//! divergence, exhausted retry ladders) stay in their own slots
//! ([`StudyReport::slots`]) instead of discarding the family's healthy
//! results. [`Study::run_observed`] additionally hooks one [`Observer`]
//! per scenario into the loop, and [`Study::run_checkpointed`] journals
//! every finished slot to disk so a killed study resumes where it left
//! off — bit-identical to the uninterrupted run.
//!
//! ```
//! use cmosaic::scenario::ScenarioSpec;
//! use cmosaic::study::Study;
//! use cmosaic::batch::BatchRunner;
//! use cmosaic::policy::PolicyKind;
//! use cmosaic_power::trace::WorkloadKind;
//! use cmosaic_floorplan::GridSpec;
//!
//! # fn main() -> Result<(), cmosaic::CmosaicError> {
//! let base = ScenarioSpec::new()
//!     .grid(GridSpec::new(6, 6).expect("static"))
//!     .seconds(2);
//! let report = Study::new(base)
//!     .over_tiers([2, 4])
//!     .over_policies([PolicyKind::LcLb, PolicyKind::LcFuzzy])
//!     .over_workloads([WorkloadKind::WebServer])
//!     .run(&BatchRunner::new(2))?;
//! assert_eq!(report.len(), 4);
//! assert_eq!(report.pattern_groups(), 2); // one per tier count
//! # Ok(())
//! # }
//! ```

use cmosaic_floorplan::stack::Stack3d;
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_power::AllocatorPreset;
use cmosaic_thermal::SolverBackend;

use std::path::Path;

use crate::batch::{BatchRunner, ScenarioOutcome, SlotError};
use crate::checkpoint::{self, StudyJournal};
use crate::metrics::RunMetrics;
use crate::observe::Observer;
use crate::policy::PolicyKind;
use crate::scenario::{CoolantChoice, FlowSchedule, Scenario, ScenarioSpec};
use crate::CmosaicError;

/// A family of scenarios built by axis expansion from one base spec.
#[derive(Debug, Clone, PartialEq)]
pub struct Study {
    specs: Vec<ScenarioSpec>,
}

impl Study {
    /// A study containing just the base scenario.
    pub fn new(base: ScenarioSpec) -> Self {
        Study { specs: vec![base] }
    }

    /// A study over an explicit list of specs (for families no cartesian
    /// product expresses).
    pub fn from_specs(specs: Vec<ScenarioSpec>) -> Self {
        Study { specs }
    }

    /// Multiplies the matrix by a policy axis. For each existing scenario
    /// and each policy, the air/water coolant choice follows the policy's
    /// cooling mode (a two-phase coolant is preserved as-is and left to
    /// build-time validation).
    pub fn over_policies(self, policies: impl IntoIterator<Item = PolicyKind> + Clone) -> Self {
        self.over_with(|spec| {
            policies
                .clone()
                .into_iter()
                .map(|p| {
                    let s = spec.clone().policy(p);
                    match (p.is_liquid_cooled(), s.coolant_choice()) {
                        (false, CoolantChoice::Water) => s.air(),
                        (true, CoolantChoice::Air) => s.water(),
                        _ => s,
                    }
                })
                .collect()
        })
    }

    /// Multiplies the matrix by a power-allocator preset axis
    /// (homogeneous Niagara vs. the heterogeneous pricing presets).
    /// Usually paired with [`Study::over_stacks`] over the matching
    /// heterogeneous floorplans — the allocator prices whatever block
    /// kinds the stack declares.
    pub fn over_allocators(
        self,
        presets: impl IntoIterator<Item = AllocatorPreset> + Clone,
    ) -> Self {
        self.over_with(|spec| {
            presets
                .clone()
                .into_iter()
                .map(|a| spec.clone().allocator(a))
                .collect()
        })
    }

    /// Multiplies the matrix by a preset tier-count axis.
    pub fn over_tiers(self, tiers: impl IntoIterator<Item = usize> + Clone) -> Self {
        self.over_with(|spec| {
            tiers
                .clone()
                .into_iter()
                .map(|t| spec.clone().tiers(t))
                .collect()
        })
    }

    /// Multiplies the matrix by a workload axis.
    pub fn over_workloads(self, workloads: impl IntoIterator<Item = WorkloadKind> + Clone) -> Self {
        self.over_with(|spec| {
            workloads
                .clone()
                .into_iter()
                .map(|w| spec.clone().workload(w))
                .collect()
        })
    }

    /// Multiplies the matrix by a coolant axis (pair with
    /// [`Study::over_policies`] or a fixed policy of the matching cooling
    /// mode).
    pub fn over_coolants(self, coolants: impl IntoIterator<Item = CoolantChoice> + Clone) -> Self {
        self.over_with(|spec| {
            coolants
                .clone()
                .into_iter()
                .map(|c| spec.clone().coolant(c))
                .collect()
        })
    }

    /// Multiplies the matrix by a flow-schedule axis.
    pub fn over_flow_schedules(
        self,
        schedules: impl IntoIterator<Item = FlowSchedule> + Clone,
    ) -> Self {
        self.over_with(|spec| {
            schedules
                .clone()
                .into_iter()
                .map(|f| spec.clone().flow_schedule(f))
                .collect()
        })
    }

    /// Multiplies the matrix by a fixed per-cavity flow-rate axis
    /// (shorthand for [`FlowSchedule::Fixed`] schedules).
    pub fn over_flow_rates(
        self,
        rates: impl IntoIterator<Item = cmosaic_materials::units::VolumetricFlow> + Clone,
    ) -> Self {
        self.over_with(|spec| {
            rates
                .clone()
                .into_iter()
                .map(|q| spec.clone().flow_schedule(FlowSchedule::Fixed(q)))
                .collect()
        })
    }

    /// Multiplies the matrix by a thermal solver-backend axis
    /// (direct-vs-iterative comparison studies). Scenarios differing only
    /// in backend form separate operator-pattern groups, so each backend
    /// keeps its own bit-reproducibility guarantee.
    pub fn over_solvers(self, backends: impl IntoIterator<Item = SolverBackend> + Clone) -> Self {
        self.over_with(|spec| {
            backends
                .clone()
                .into_iter()
                .map(|b| spec.clone().solver(b))
                .collect()
        })
    }

    /// Multiplies the matrix by a seed axis (statistical replication).
    pub fn over_seeds(self, seeds: impl IntoIterator<Item = u64> + Clone) -> Self {
        self.over_with(|spec| {
            seeds
                .clone()
                .into_iter()
                .map(|s| spec.clone().seed(s))
                .collect()
        })
    }

    /// Multiplies the matrix by a thermal-grid axis (resolution studies).
    pub fn over_grids(self, grids: impl IntoIterator<Item = GridSpec> + Clone) -> Self {
        self.over_with(|spec| {
            grids
                .clone()
                .into_iter()
                .map(|g| spec.clone().grid(g))
                .collect()
        })
    }

    /// Multiplies the matrix by a custom-stack axis (e.g. a cavity-width
    /// sweep over hand-built stacks).
    pub fn over_stacks(self, stacks: impl IntoIterator<Item = Stack3d> + Clone) -> Self {
        self.over_with(|spec| {
            stacks
                .clone()
                .into_iter()
                .map(|st| spec.clone().stack(st))
                .collect()
        })
    }

    /// The general axis: replaces every scenario by `f(scenario)`,
    /// preserving order (scenario-major, axis-minor). Returning an empty
    /// vector drops the scenario.
    pub fn over_with<F>(mut self, f: F) -> Self
    where
        F: Fn(&ScenarioSpec) -> Vec<ScenarioSpec>,
    {
        self.specs = self.specs.iter().flat_map(&f).collect();
        self
    }

    /// Keeps only the scenarios the predicate accepts.
    pub fn retain<F>(mut self, f: F) -> Self
    where
        F: Fn(&ScenarioSpec) -> bool,
    {
        self.specs.retain(|s| f(s));
        self
    }

    /// Appends another study's scenarios after this one's.
    pub fn chain(mut self, other: Study) -> Self {
        self.specs.extend(other.specs);
        self
    }

    /// The scenario specs, in execution order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Number of scenarios in the matrix.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Validates and resolves every spec (the all-or-nothing step: the
    /// first invalid cell aborts with its error before anything runs).
    ///
    /// # Errors
    ///
    /// The build error of the first invalid scenario.
    pub fn build(&self) -> Result<Vec<Scenario>, CmosaicError> {
        self.specs.iter().map(ScenarioSpec::build).collect()
    }

    /// Builds and executes the whole matrix on `runner`.
    ///
    /// # Errors
    ///
    /// Only build errors abort (the first invalid cell, before anything
    /// runs). Run-time failures are isolated per slot: the report always
    /// covers the whole matrix, with [`StudyReport::slots`] carrying a
    /// structured [`SlotError`] for each failed scenario — deterministic
    /// regardless of thread count.
    pub fn run(&self, runner: &BatchRunner) -> Result<StudyReport, CmosaicError> {
        let scenarios = self.build()?;
        let batch = runner.run_scenarios(&scenarios);
        Ok(StudyReport {
            specs: self.specs.clone(),
            slots: batch.slots,
            pattern_groups: batch.pattern_groups,
            threads: batch.threads,
        })
    }

    /// Like [`Study::run`], with one observer per scenario created by
    /// `factory` (called with the scenario index and the resolved
    /// scenario) and returned in scenario order alongside the report
    /// (`None` for failed slots).
    ///
    /// # Errors
    ///
    /// Same as [`Study::run`].
    pub fn run_observed<O, F>(
        &self,
        runner: &BatchRunner,
        factory: F,
    ) -> Result<(StudyReport, Vec<Option<O>>), CmosaicError>
    where
        O: Observer + Send,
        F: Fn(usize, &Scenario) -> O + Sync,
    {
        let scenarios = self.build()?;
        let (batch, observers) = runner.run_scenarios_observed(&scenarios, factory);
        Ok((
            StudyReport {
                specs: self.specs.clone(),
                slots: batch.slots,
                pattern_groups: batch.pattern_groups,
                threads: batch.threads,
            },
            observers,
        ))
    }

    /// Like [`Study::run`], journaling every finished slot to
    /// `journal_path` (created on first use, validated against this
    /// study's fingerprint thereafter — see
    /// [`checkpoint`]). Slots already in the journal
    /// are not re-run; their recorded results merge into the report
    /// verbatim, so a study killed partway resumes where it left off and
    /// the final report is bit-identical to an uninterrupted run at any
    /// thread count. Returns the report plus how many slots were resumed
    /// from the journal.
    ///
    /// # Errors
    ///
    /// Build errors, or [`CmosaicError::Journal`] when the journal
    /// cannot be opened or belongs to a different study.
    pub fn run_checkpointed(
        &self,
        runner: &BatchRunner,
        journal_path: &Path,
    ) -> Result<(StudyReport, usize), CmosaicError> {
        let scenarios = self.build()?;
        let journal = StudyJournal::open(
            journal_path,
            checkpoint::fingerprint(&self.specs),
            scenarios.len(),
        )?;
        let resumed = journal.completed_count();
        let (batch, _) = runner.run_scenarios_resumed(
            &scenarios,
            journal.completed(),
            |_, _| (),
            |i, slot| journal.record(i, slot),
        );
        Ok((
            StudyReport {
                specs: self.specs.clone(),
                slots: batch.slots,
                pattern_groups: batch.pattern_groups,
                threads: batch.threads,
            },
            resumed,
        ))
    }
}

/// Results of one study, index-aligned with [`Study::specs`]. Always
/// complete: failed scenarios occupy their slots as [`SlotError`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    specs: Vec<ScenarioSpec>,
    slots: Vec<Result<ScenarioOutcome, SlotError>>,
    pattern_groups: usize,
    threads: usize,
}

impl StudyReport {
    /// Scenario specs, in execution order.
    pub fn specs(&self) -> &[ScenarioSpec] {
        &self.specs
    }

    /// Per-scenario results, index-aligned with the specs.
    pub fn slots(&self) -> &[Result<ScenarioOutcome, SlotError>] {
        &self.slots
    }

    /// The successful outcomes, in execution order (failed slots are
    /// skipped; their indices live in [`ScenarioOutcome::index`]).
    pub fn outcomes(&self) -> Vec<&ScenarioOutcome> {
        self.slots.iter().filter_map(|s| s.as_ref().ok()).collect()
    }

    /// The lowest-indexed failure, if any.
    pub fn first_error(&self) -> Option<(usize, &SlotError)> {
        self.slots
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.as_ref().err().map(|e| (i, e)))
    }

    /// `true` when every scenario succeeded.
    pub fn all_ok(&self) -> bool {
        self.slots.iter().all(Result::is_ok)
    }

    /// Number of scenarios (successful or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the study was empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `(spec, outcome)` pairs of the successful slots, in execution
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&ScenarioSpec, &ScenarioOutcome)> {
        self.specs
            .iter()
            .zip(&self.slots)
            .filter_map(|(s, slot)| slot.as_ref().ok().map(|o| (s, o)))
    }

    /// Metrics of the first successful scenario the predicate accepts.
    pub fn metrics_matching<F>(&self, pred: F) -> Option<&RunMetrics>
    where
        F: Fn(&ScenarioSpec) -> bool,
    {
        self.iter().find(|(s, _)| pred(s)).map(|(_, o)| &o.metrics)
    }

    /// Distinct thermal-operator pattern groups the study spanned.
    pub fn pattern_groups(&self) -> usize {
        self.pattern_groups
    }

    /// Worker threads used.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Total full pivoting factorisations across every successful
    /// scenario — with analysis sharing and no failures this equals
    /// [`StudyReport::pattern_groups`].
    pub fn total_full_factorizations(&self) -> u64 {
        self.outcomes()
            .iter()
            .map(|o| o.solver.full_factorizations)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::PeakTemperature;
    use cmosaic_materials::units::VolumetricFlow;

    fn tiny_base() -> ScenarioSpec {
        ScenarioSpec::new()
            .grid(GridSpec::new(6, 6).expect("static"))
            .thermal_dt(0.5)
            .seconds(2)
            .seed(7)
    }

    #[test]
    fn axes_expand_scenario_major() {
        let study = Study::new(tiny_base())
            .over_tiers([2, 4])
            .over_policies([PolicyKind::AcLb, PolicyKind::LcFuzzy]);
        let axes: Vec<(Option<usize>, PolicyKind)> = study
            .specs()
            .iter()
            .map(|s| (s.preset_tiers(), s.policy_kind()))
            .collect();
        assert_eq!(
            axes,
            vec![
                (Some(2), PolicyKind::AcLb),
                (Some(2), PolicyKind::LcFuzzy),
                (Some(4), PolicyKind::AcLb),
                (Some(4), PolicyKind::LcFuzzy),
            ]
        );
        // The coolant followed each policy's cooling mode.
        assert!(study.specs()[0].coolant_choice() == &CoolantChoice::Air);
        assert!(study.specs()[1].coolant_choice() == &CoolantChoice::Water);
    }

    #[test]
    fn allocator_axis_expands_and_runs_in_one_pattern_group() {
        let study = Study::new(tiny_base())
            .over_allocators(AllocatorPreset::all())
            .over_policies([PolicyKind::LcLb]);
        assert_eq!(study.len(), 3);
        let presets: Vec<AllocatorPreset> =
            study.specs().iter().map(|s| s.allocator_preset()).collect();
        assert_eq!(
            presets,
            vec![
                AllocatorPreset::Niagara,
                AllocatorPreset::MemoryOnLogic,
                AllocatorPreset::MixedAccelerator,
            ]
        );
        // Same stack and thermal params: the allocator axis re-prices
        // power but shares the one factorisation.
        let report = study.run(&BatchRunner::new(2)).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.pattern_groups(), 1);
        assert_eq!(report.total_full_factorizations(), 1);
        // On the homogeneous Niagara preset stack the three allocators
        // price core tiers identically and only differ on memory /
        // accelerator blocks — which this stack does not have — so the
        // physics agrees; the axis still fingerprints distinctly.
        let peaks: Vec<f64> = report
            .outcomes()
            .iter()
            .map(|o| o.metrics.peak_temperature.0)
            .collect();
        assert!((peaks[0] - peaks[1]).abs() < 1e-9);
    }

    #[test]
    fn solver_axis_expands_and_splits_pattern_groups() {
        let study = Study::new(tiny_base()).over_solvers([
            SolverBackend::DirectLu,
            SolverBackend::iterative(),
            SolverBackend::multigrid(),
        ]);
        assert_eq!(study.len(), 3);
        assert!(!study.specs()[0].solver_backend().is_iterative());
        assert!(study.specs()[1].solver_backend().is_iterative());
        assert!(study.specs()[2].solver_backend().is_iterative());
        let report = study.run(&BatchRunner::new(2)).unwrap();
        assert_eq!(report.len(), 3);
        // Same stack/grid but different thermal params: three groups, and
        // only the direct cell pays a full factorisation.
        assert_eq!(report.pattern_groups(), 3);
        let direct = &report.outcomes()[0].solver;
        let iterative = &report.outcomes()[1].solver;
        let mg = &report.outcomes()[2].solver;
        assert!(direct.full_factorizations >= 1);
        assert_eq!(direct.iterative_solves, 0);
        assert!(iterative.iterative_solves >= 1, "{iterative:?}");
        assert_eq!(iterative.iterative_fallbacks, 0, "{iterative:?}");
        assert!(mg.iterative_solves >= 1, "{mg:?}");
        assert_eq!(mg.iterative_fallbacks, 0, "{mg:?}");
        assert!(mg.mg_cycles >= 1, "{mg:?}");
        // The backends agree on the physics to solver tolerance.
        let pd = report.outcomes()[0].metrics.peak_temperature.0;
        let pi = report.outcomes()[1].metrics.peak_temperature.0;
        let pm = report.outcomes()[2].metrics.peak_temperature.0;
        assert!((pd - pi).abs() < 1e-4, "{pd} vs {pi}");
        assert!((pd - pm).abs() < 1e-4, "{pd} vs {pm}");
    }

    #[test]
    fn retain_prunes_and_chain_concatenates() {
        let study = Study::new(tiny_base())
            .over_tiers([2, 4])
            .over_policies(PolicyKind::paper_policies())
            .retain(|s| !(s.preset_tiers() == Some(4) && s.policy_kind() == PolicyKind::AcTdvfsLb));
        assert_eq!(study.len(), 7, "the paper's seven configurations");
        let extra = Study::new(tiny_base().policy(PolicyKind::LcFuzzyFlowOnly));
        assert_eq!(study.chain(extra).len(), 8);
    }

    #[test]
    fn study_runs_and_shares_analysis_per_pattern_group() {
        let report = Study::new(tiny_base())
            .over_policies([PolicyKind::LcLb, PolicyKind::LcFuzzy])
            .over_workloads([WorkloadKind::WebServer, WorkloadKind::Database])
            .run(&BatchRunner::new(2))
            .unwrap();
        assert_eq!(report.len(), 4);
        assert_eq!(report.pattern_groups(), 1);
        assert_eq!(report.total_full_factorizations(), 1);
        let m = report
            .metrics_matching(|s| {
                s.policy_kind() == PolicyKind::LcLb && s.workload_kind() == WorkloadKind::Database
            })
            .expect("cell exists");
        assert_eq!(m.seconds, 2);
    }

    #[test]
    fn empty_axis_products_yield_empty_studies_that_still_run() {
        // An empty axis annihilates the whole matrix...
        let none = Study::new(tiny_base()).over_tiers([]);
        assert!(none.is_empty());
        assert_eq!(none.len(), 0);
        // ...and so does an `over_with` that drops every scenario.
        let dropped = Study::new(tiny_base())
            .over_policies([PolicyKind::LcLb, PolicyKind::LcFuzzy])
            .over_with(|_| vec![]);
        assert!(dropped.is_empty());
        // Empty studies execute as empty reports, not errors.
        let report = none.run(&BatchRunner::new(2)).expect("empty batch is fine");
        assert!(report.is_empty());
        assert_eq!(report.pattern_groups(), 0);
        assert_eq!(report.total_full_factorizations(), 0);
        assert!(report.iter().next().is_none());
        assert!(report.metrics_matching(|_| true).is_none());
        // Axes applied to an already-empty study keep it empty.
        let still_empty = dropped.over_tiers([2, 4]).over_seeds([1, 2, 3]);
        assert!(still_empty.is_empty());
    }

    #[test]
    fn retain_all_filtered_composes_with_chain() {
        let emptied = Study::new(tiny_base())
            .over_policies(PolicyKind::paper_policies())
            .retain(|_| false);
        assert!(emptied.is_empty());
        let (report, observers) = emptied
            .run_observed(&BatchRunner::new(2), |_, _| PeakTemperature::new())
            .expect("empty observed run is fine");
        assert!(report.is_empty() && observers.is_empty());
        // Chaining onto a fully-filtered study is just the other study...
        let survivor = Study::new(tiny_base());
        let chained = Study::new(tiny_base()).retain(|_| false).chain(survivor);
        assert_eq!(chained.len(), 1);
        // ...and chaining an emptied study onto a live one is a no-op.
        let unchanged = Study::new(tiny_base()).chain(Study::new(tiny_base()).retain(|_| false));
        assert_eq!(unchanged.len(), 1);
    }

    #[test]
    fn chained_studies_with_mismatched_grids_span_their_own_pattern_groups() {
        // Two independently-built families on different thermal grids:
        // chaining concatenates them in order, and the batch engine keeps
        // one pattern group (one full factorisation) per grid.
        let coarse = Study::new(tiny_base()).over_seeds([1, 2]);
        let fine =
            Study::new(tiny_base().grid(GridSpec::new(8, 8).expect("static"))).over_seeds([3, 4]);
        let chained = coarse.chain(fine);
        assert_eq!(chained.len(), 4);
        let grids: Vec<GridSpec> = chained.specs().iter().map(|s| s.grid_spec()).collect();
        assert_eq!(grids[0], grids[1]);
        assert_eq!(grids[2], grids[3]);
        assert_ne!(grids[1], grids[2], "chain preserves each family's grid");
        let report = chained.run(&BatchRunner::new(2)).expect("chained run");
        assert_eq!(report.pattern_groups(), 2);
        assert_eq!(report.total_full_factorizations(), 2);
        // Outcomes stay index-aligned with the concatenated spec order.
        for (spec, outcome) in report.iter() {
            assert_eq!(spec.duration(), outcome.metrics.seconds);
        }
    }

    #[test]
    fn invalid_cells_abort_before_anything_runs() {
        let study = Study::new(tiny_base())
            .over_with(|s| vec![s.clone(), s.clone().policy(PolicyKind::AcLb).water()]);
        let r = study.run(&BatchRunner::new(1));
        assert!(matches!(r, Err(CmosaicError::Config { .. })));
    }

    #[test]
    fn runtime_failures_stay_in_their_slots() {
        use crate::fault::{FaultKind, FaultPlan};
        let study = Study::from_specs(vec![
            tiny_base(),
            tiny_base().fault_plan(FaultPlan::none().at(0, FaultKind::Panic)),
            tiny_base().seed(9),
        ]);
        let report = study.run(&BatchRunner::new(2)).expect("builds fine");
        assert_eq!(report.len(), 3);
        assert!(!report.all_ok());
        let (index, e) = report.first_error().expect("the panic is captured");
        assert_eq!(index, 1);
        assert!(e.to_string().contains("panicked"));
        assert_eq!(report.outcomes().len(), 2);
        // The healthy slots still share one factorisation and the
        // Ok-only iterator skips the hole.
        assert_eq!(report.iter().count(), 2);
        assert!(report.metrics_matching(|s| s.trace_seed() == 9).is_some());
    }

    fn temp_journal_path(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "cmosaic-study-{}-{tag}-{}.log",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn interrupted_study_resumes_bit_identically() {
        let study = Study::new(tiny_base()).over_seeds([1, 2, 3, 4]);
        let baseline = study.run(&BatchRunner::new(2)).unwrap();
        assert!(baseline.all_ok());

        let path = temp_journal_path("resume");
        // "Kill" the first run after two jobs (donor + one adopter)...
        let (partial, resumed_first) = study
            .run_checkpointed(&BatchRunner::new(2).with_job_limit(2), &path)
            .unwrap();
        assert_eq!(resumed_first, 0);
        assert_eq!(partial.outcomes().len(), 2);
        // ...then resume with a different thread count.
        let (full, resumed) = study.run_checkpointed(&BatchRunner::new(1), &path).unwrap();
        assert_eq!(resumed, 2, "journaled slots are skipped");
        assert!(full.all_ok());
        assert_eq!(
            full.slots(),
            baseline.slots(),
            "resumed report is bit-identical to the uninterrupted run"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journals_from_other_studies_are_refused() {
        let path = temp_journal_path("mismatch");
        let study = Study::new(tiny_base()).over_seeds([1, 2]);
        study.run_checkpointed(&BatchRunner::new(1), &path).unwrap();
        let other = Study::new(tiny_base()).over_seeds([1, 3]);
        assert!(matches!(
            other.run_checkpointed(&BatchRunner::new(1), &path),
            Err(CmosaicError::Journal { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn observers_ride_the_batch() {
        let (report, peaks) = Study::new(tiny_base())
            .over_flow_rates([
                VolumetricFlow::from_ml_per_min(12.0),
                VolumetricFlow::from_ml_per_min(32.3),
            ])
            .run_observed(&BatchRunner::new(2), |_, _| PeakTemperature::new())
            .unwrap();
        let peaks: Vec<PeakTemperature> = peaks
            .into_iter()
            .map(|p| p.expect("healthy scenarios keep their observers"))
            .collect();
        assert_eq!(peaks.len(), 2);
        for (o, p) in report.outcomes().iter().zip(&peaks) {
            // `EpochCtx::peak` max-accumulates over each interval's
            // sub-steps — the same sampling as the metrics — so the
            // observed peak matches the aggregate exactly.
            let seen = p.peak().expect("epochs observed");
            assert!(seen.0 > 300.0 && seen == o.metrics.peak_temperature);
        }
        // More coolant, cooler stack.
        assert!(peaks[0].peak().unwrap().0 > peaks[1].peak().unwrap().0);
    }
}
