//! Pre-packaged experiment runners matching §IV.A of the paper, expressed
//! on the [`ScenarioSpec`]/[`Study`] API.
//!
//! [`figure_study`] is the canonical definition of the seven stack/policy
//! configurations of Figs. 6 and 7; [`fig6_study`] crosses it with the
//! four workloads. [`fig6_dataset`] and [`fig7_dataset`] execute those
//! studies on a [`BatchRunner`] and assemble exactly the rows the paper's
//! figures plot; [`headline_savings`] computes the abstract's "up to 67 %
//! cooling / 30 % system energy" comparison of `LC_FUZZY` against
//! worst-case maximum flow.
//!
//! (The flat `PolicyRunConfig` plumbing these runners were originally
//! built on has been removed; every entry point is expressed directly on
//! [`ScenarioSpec`]/[`Study`].)

use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;

use crate::batch::BatchRunner;
use crate::metrics::RunMetrics;
use crate::policy::PolicyKind;
use crate::scenario::ScenarioSpec;
use crate::study::{Study, StudyReport};
use crate::CmosaicError;

/// Number of cores in an n-tier stack (8 per core tier, core tiers on even
/// indices).
pub fn cores_for_tiers(tiers: usize) -> usize {
    tiers.div_ceil(2) * 8
}

/// The canonical study of the paper's figures: tier counts {2, 4} crossed
/// with the four evaluated policies, minus the one cell the paper does not
/// plot (`AC_TDVFS_LB` at 4 tiers) — seven configurations in plot order.
/// Extend it like any other study: new policies or tier counts are one
/// more axis value, not a hand-maintained array edit.
pub fn figure_study(seconds: usize, seed: u64, grid: GridSpec) -> Study {
    Study::new(ScenarioSpec::new().seconds(seconds).seed(seed).grid(grid))
        .over_tiers([2, 4])
        .over_policies(PolicyKind::paper_policies())
        .retain(|s| !(s.preset_tiers() == Some(4) && s.policy_kind() == PolicyKind::AcTdvfsLb))
}

/// The stack/policy configurations of Figs. 6 and 7, in plot order —
/// derived from [`figure_study`], so it grows with the study instead of
/// being a fixed-length array.
pub fn figure_configurations() -> Vec<(usize, PolicyKind)> {
    figure_study(1, 0, GridSpec::new(12, 12).expect("static dims"))
        .specs()
        .iter()
        .map(|s| (s.preset_tiers().expect("preset stacks"), s.policy_kind()))
        .collect()
}

/// The full fig6 study: every [`figure_study`] configuration crossed with
/// the three application workloads plus the maximum-utilization benchmark
/// — 28 independent co-simulations.
pub fn fig6_study(seconds: usize, seed: u64, grid: GridSpec) -> Study {
    figure_study(seconds, seed, grid).over_workloads(
        WorkloadKind::applications()
            .into_iter()
            .chain([WorkloadKind::MaxUtilization]),
    )
}

/// One bar group of Fig. 6: hot-spot residency for a configuration, for
/// the average workload and the maximum-utilization benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Number of tiers.
    pub tiers: usize,
    /// Policy.
    pub policy: PolicyKind,
    /// `%Hot spots avg` at average utilization (mean over the three
    /// application traces), percent.
    pub hotspot_avg_workload_per_core: f64,
    /// `%Hot spots max` at average utilization, percent.
    pub hotspot_avg_workload_any: f64,
    /// `%Hot spots avg` under the maximum-utilization benchmark, percent.
    pub hotspot_max_util_per_core: f64,
    /// `%Hot spots max` under the maximum-utilization benchmark, percent.
    pub hotspot_max_util_any: f64,
    /// Peak junction temperature over all runs, °C.
    pub peak_celsius: f64,
}

/// Figure datasets are all-or-nothing: a single failed cell invalidates
/// the derived table (normalisations, averages), so surface the
/// lowest-indexed slot failure as a hard [`CmosaicError::Scenario`]
/// instead of letting it resurface as a confusing missing-cell error.
fn strict(report: StudyReport) -> Result<StudyReport, CmosaicError> {
    if let Some((index, e)) = report.first_error() {
        return Err(CmosaicError::Scenario {
            index,
            detail: e.to_string(),
        });
    }
    Ok(report)
}

/// Pulls the metrics of one (tiers, policy, workload) cell out of a
/// figure-study report.
fn cell(
    report: &StudyReport,
    tiers: usize,
    policy: PolicyKind,
    workload: WorkloadKind,
) -> Result<&RunMetrics, CmosaicError> {
    report
        .metrics_matching(|s| {
            s.preset_tiers() == Some(tiers)
                && s.policy_kind() == policy
                && s.workload_kind() == workload
        })
        .ok_or_else(|| CmosaicError::Config {
            detail: format!("study is missing the ({tiers}-tier, {policy}, {workload}) cell"),
        })
}

/// Computes the Fig. 6 dataset by running [`fig6_study`] on `runner`.
///
/// # Errors
///
/// Forwards run errors.
pub fn fig6_dataset(
    runner: &BatchRunner,
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<Vec<Fig6Row>, CmosaicError> {
    let report = strict(fig6_study(seconds, seed, grid).run(runner)?)?;
    let mut rows = Vec::new();
    for (tiers, policy) in figure_configurations() {
        let mut avg_core = 0.0;
        let mut avg_any = 0.0;
        let mut peak: f64 = 0.0;
        let apps = WorkloadKind::applications();
        for wk in apps {
            let m = cell(&report, tiers, policy, wk)?;
            avg_core += m.hotspot_time_per_core * 100.0 / apps.len() as f64;
            avg_any += m.hotspot_time_any * 100.0 / apps.len() as f64;
            peak = peak.max(m.peak_temperature.to_celsius().0);
        }
        let mx = cell(&report, tiers, policy, WorkloadKind::MaxUtilization)?;
        peak = peak.max(mx.peak_temperature.to_celsius().0);
        rows.push(Fig6Row {
            tiers,
            policy,
            hotspot_avg_workload_per_core: avg_core,
            hotspot_avg_workload_any: avg_any,
            hotspot_max_util_per_core: mx.hotspot_time_per_core * 100.0,
            hotspot_max_util_any: mx.hotspot_time_any * 100.0,
            peak_celsius: peak,
        });
    }
    Ok(rows)
}

/// One bar group of Fig. 7: energy (normalised to 2-tier `AC_LB`) and
/// performance loss for the average workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Number of tiers.
    pub tiers: usize,
    /// Policy.
    pub policy: PolicyKind,
    /// System (chip + pump) energy normalised to the 2-tier `AC_LB` run.
    pub system_energy_norm: f64,
    /// Pump energy normalised to the same baseline.
    pub pump_energy_norm: f64,
    /// Mean performance loss, percent.
    pub perf_loss_mean_pct: f64,
    /// Max per-core performance loss, percent.
    pub perf_loss_max_pct: f64,
}

/// Computes the Fig. 7 dataset: energy per configuration averaged over the
/// three application workloads, normalised to 2-tier `AC_LB`. Runs the
/// application slice of [`fig6_study`] on `runner`.
///
/// # Errors
///
/// Forwards run errors.
pub fn fig7_dataset(
    runner: &BatchRunner,
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<Vec<Fig7Row>, CmosaicError> {
    let apps = WorkloadKind::applications();
    let report = strict(
        figure_study(seconds, seed, grid)
            .over_workloads(apps)
            .run(runner)?,
    )?;
    let mut raw: Vec<(usize, PolicyKind, f64, f64, f64, f64)> = Vec::new();
    for (tiers, policy) in figure_configurations() {
        let mut system = 0.0;
        let mut pump = 0.0;
        let mut perf_mean = 0.0;
        let mut perf_max: f64 = 0.0;
        for wk in apps {
            let m = cell(&report, tiers, policy, wk)?;
            system += m.total_energy() / apps.len() as f64;
            pump += m.pump_energy / apps.len() as f64;
            perf_mean += m.perf_loss_mean * 100.0 / apps.len() as f64;
            perf_max = perf_max.max(m.perf_loss_max * 100.0);
        }
        raw.push((tiers, policy, system, pump, perf_mean, perf_max));
    }
    let baseline = raw
        .iter()
        .find(|r| r.0 == 2 && r.1 == PolicyKind::AcLb)
        .map(|r| r.2)
        .expect("baseline present");
    Ok(raw
        .into_iter()
        .map(
            |(tiers, policy, system, pump, perf_mean, perf_max)| Fig7Row {
                tiers,
                policy,
                system_energy_norm: system / baseline,
                pump_energy_norm: pump / baseline,
                perf_loss_mean_pct: perf_mean,
                perf_loss_max_pct: perf_max,
            },
        )
        .collect())
}

/// The abstract's headline comparison: `LC_FUZZY` vs. `LC_LB`
/// (worst-case maximum flow) on the same stack and workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineSavings {
    /// Number of tiers.
    pub tiers: usize,
    /// Cooling (pump) energy saving, percent.
    pub cooling_saving_pct: f64,
    /// Whole-system energy saving, percent.
    pub system_saving_pct: f64,
    /// Peak temperature under the fuzzy controller, °C.
    pub fuzzy_peak_celsius: f64,
    /// Peak temperature under max flow, °C.
    pub max_flow_peak_celsius: f64,
}

/// Computes the headline `LC_FUZZY` savings for an n-tier stack, averaged
/// over the three application workloads, as a six-scenario study on
/// `runner`.
///
/// # Errors
///
/// Forwards run errors.
pub fn headline_savings(
    runner: &BatchRunner,
    tiers: usize,
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<HeadlineSavings, CmosaicError> {
    let apps = WorkloadKind::applications();
    let report = strict(
        Study::new(
            ScenarioSpec::new()
                .tiers(tiers)
                .seconds(seconds)
                .seed(seed)
                .grid(grid),
        )
        .over_policies([PolicyKind::LcLb, PolicyKind::LcFuzzy])
        .over_workloads(apps)
        .run(runner)?,
    )?;
    let mut lb_pump = 0.0;
    let mut lb_total = 0.0;
    let mut fz_pump = 0.0;
    let mut fz_total = 0.0;
    let mut fz_peak: f64 = 0.0;
    let mut lb_peak: f64 = 0.0;
    for wk in apps {
        let lb = cell(&report, tiers, PolicyKind::LcLb, wk)?;
        let fz = cell(&report, tiers, PolicyKind::LcFuzzy, wk)?;
        lb_pump += lb.pump_energy;
        lb_total += lb.total_energy();
        fz_pump += fz.pump_energy;
        fz_total += fz.total_energy();
        fz_peak = fz_peak.max(fz.peak_temperature.to_celsius().0);
        lb_peak = lb_peak.max(lb.peak_temperature.to_celsius().0);
    }
    Ok(HeadlineSavings {
        tiers,
        cooling_saving_pct: (1.0 - fz_pump / lb_pump) * 100.0,
        system_saving_pct: (1.0 - fz_total / lb_total) * 100.0,
        fuzzy_peak_celsius: fz_peak,
        max_flow_peak_celsius: lb_peak,
    })
}

/// The three actuation strategies the per-block power layer compares on
/// identical traces, in plot order: flow modulation only
/// (`LC_FUZZY_FLOW`), task migration only at maximum flow (`LC_MIG`),
/// and the combination (`LC_MIG_FUZZY`) — migration flattens the
/// hotspots, the fuzzy rule base then lowers the flow they no longer
/// require. The migration policies draw their randomized transfer
/// fractions from `seed`, so the whole comparison is reproducible.
pub fn actuation_policies(seed: u64) -> [PolicyKind; 3] {
    [
        PolicyKind::LcFuzzyFlowOnly,
        PolicyKind::LcMigration { seed },
        PolicyKind::LcMigrationFuzzy { seed },
    ]
}

/// The pinned reference study of the actuation layer: a 4-tier
/// liquid-cooled stack under the bursty `WebServer` workload, the three
/// [`actuation_policies`] on the *same* trace (same `seed`). The report
/// is bit-identical at any thread count and across reruns. On this
/// operating point migration measurably flattens the inter-tier
/// asymmetry, so the combined controller's fuzzy rule base settles on a
/// strictly lower flow level than flow modulation alone.
pub fn actuation_study(seconds: usize, seed: u64, grid: GridSpec) -> Study {
    Study::new(
        ScenarioSpec::new()
            .tiers(4)
            .workload(WorkloadKind::WebServer)
            .seconds(seconds)
            .seed(seed)
            .grid(grid),
    )
    .over_policies(actuation_policies(seed))
}

/// One row of the actuation comparison: how a strategy spends pump
/// energy to hold the thermal constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuationRow {
    /// The actuation strategy.
    pub policy: PolicyKind,
    /// Pump energy over the run, joules.
    pub pump_energy: f64,
    /// Chip + pump energy over the run, joules.
    pub system_energy: f64,
    /// Peak junction temperature, °C.
    pub peak_celsius: f64,
    /// Fraction of time any core sat above the hot-spot threshold,
    /// percent.
    pub hotspot_pct_any: f64,
    /// Mean performance loss from deferred work, percent.
    pub perf_loss_mean_pct: f64,
}

/// Executes [`actuation_study`] on `runner` and assembles one
/// [`ActuationRow`] per strategy, in [`actuation_policies`] order.
///
/// # Errors
///
/// Forwards run errors (all-or-nothing, like the figure datasets).
pub fn actuation_dataset(
    runner: &BatchRunner,
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<Vec<ActuationRow>, CmosaicError> {
    let report = strict(actuation_study(seconds, seed, grid).run(runner)?)?;
    Ok(report
        .iter()
        .map(|(spec, o)| ActuationRow {
            policy: spec.policy_kind(),
            pump_energy: o.metrics.pump_energy,
            system_energy: o.metrics.total_energy(),
            peak_celsius: o.metrics.peak_temperature.to_celsius().0,
            hotspot_pct_any: o.metrics.hotspot_time_any * 100.0,
            perf_loss_mean_pct: o.metrics.perf_loss_mean * 100.0,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> GridSpec {
        GridSpec::new(6, 6).expect("static")
    }

    #[test]
    fn scenario_run_smoke() {
        let m = ScenarioSpec::new()
            .seconds(5)
            .grid(tiny_grid())
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(m.seconds, 5);
        assert!(m.chip_energy > 0.0);
    }

    #[test]
    fn cores_scale_with_tiers() {
        assert_eq!(cores_for_tiers(1), 8);
        assert_eq!(cores_for_tiers(2), 8);
        assert_eq!(cores_for_tiers(3), 16);
        assert_eq!(cores_for_tiers(4), 16);
    }

    #[test]
    fn headline_savings_are_positive() {
        let s = headline_savings(&BatchRunner::new(2), 2, 12, 3, tiny_grid()).unwrap();
        assert!(
            s.cooling_saving_pct > 10.0,
            "fuzzy must save pump energy, got {:.1} %",
            s.cooling_saving_pct
        );
        assert!(s.system_saving_pct > 0.0);
        assert!(s.fuzzy_peak_celsius < 85.0);
    }

    #[test]
    fn actuation_dataset_ranks_combined_control_cheapest() {
        let rows = actuation_dataset(&BatchRunner::new(2), 20, 42, tiny_grid()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].policy, PolicyKind::LcFuzzyFlowOnly);
        assert_eq!(rows[1].policy, PolicyKind::LcMigration { seed: 42 });
        assert_eq!(rows[2].policy, PolicyKind::LcMigrationFuzzy { seed: 42 });
        // Every strategy holds the constraint on this workload...
        for r in &rows {
            assert!(
                r.peak_celsius < 85.0,
                "{}: peak {:.1} °C",
                r.policy,
                r.peak_celsius
            );
        }
        // ...migration-only pays worst-case pump energy (max flow), and
        // the combined controller strictly undercuts both single-actuator
        // strategies: migration flattens the hotspots, the fuzzy rule
        // base then drops a flow level they no longer require.
        assert!(
            rows[2].pump_energy < rows[1].pump_energy,
            "combined ({:.1} J) must beat max-flow migration ({:.1} J)",
            rows[2].pump_energy,
            rows[1].pump_energy
        );
        assert!(
            rows[2].pump_energy < rows[0].pump_energy,
            "combined ({:.1} J) must beat flow-only ({:.1} J)",
            rows[2].pump_energy,
            rows[0].pump_energy
        );
    }

    #[test]
    fn figure_configuration_order_matches_paper() {
        let configs = figure_configurations();
        assert_eq!(configs.len(), 7);
        assert_eq!(configs[0], (2, PolicyKind::AcLb));
        assert_eq!(configs[6], (4, PolicyKind::LcFuzzy));
        // The study is the source of truth: its axes and the derived
        // configuration list agree.
        assert_eq!(figure_study(1, 0, tiny_grid()).len(), configs.len());
        assert_eq!(fig6_study(1, 0, tiny_grid()).len(), configs.len() * 4);
    }
}
