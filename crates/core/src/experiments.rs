//! Pre-packaged experiment runners matching §IV.A of the paper.
//!
//! [`run_policy`] executes one (stack, policy, workload) co-simulation;
//! [`fig6_dataset`] and [`fig7_dataset`] assemble exactly the rows the
//! paper's Fig. 6 and Fig. 7 plot; [`headline_savings`] computes the
//! abstract's "up to 67 % cooling / 30 % system energy" comparison of
//! `LC_FUZZY` against worst-case maximum flow.

use cmosaic_floorplan::stack::presets;
use cmosaic_floorplan::GridSpec;
use cmosaic_power::trace::WorkloadKind;
use cmosaic_power::PowerModel;

use crate::metrics::RunMetrics;
use crate::policy::{make_policy, PolicyKind};
use crate::sim::{SimConfig, Simulator};
use crate::CmosaicError;

/// Configuration of one policy experiment.
#[derive(Debug, Clone)]
pub struct PolicyRunConfig {
    /// Number of tiers (2 or 4 in the paper).
    pub tiers: usize,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Workload class.
    pub workload: WorkloadKind,
    /// Simulated seconds ("several minutes" in the paper).
    pub seconds: usize,
    /// Trace seed.
    pub seed: u64,
    /// Thermal grid (default 12×12).
    pub grid: GridSpec,
}

impl Default for PolicyRunConfig {
    fn default() -> Self {
        PolicyRunConfig {
            tiers: 2,
            policy: PolicyKind::LcFuzzy,
            workload: WorkloadKind::WebServer,
            seconds: 120,
            seed: 42,
            grid: GridSpec::new(12, 12).expect("static dims"),
        }
    }
}

/// Number of cores in an n-tier stack (8 per core tier, core tiers on even
/// indices).
pub fn cores_for_tiers(tiers: usize) -> usize {
    tiers.div_ceil(2) * 8
}

/// Builds the simulator for one policy experiment (stack preset, trace
/// generation, policy construction) without running it — the shared
/// entry point of [`run_policy`] and the batch engine
/// ([`crate::batch::BatchRunner`]), which needs the simulator itself to
/// adopt a shared thermal analysis before initialisation.
///
/// # Errors
///
/// Forwards configuration and model errors.
pub fn build_simulator(config: &PolicyRunConfig) -> Result<Simulator, CmosaicError> {
    let stack = if config.policy.is_liquid_cooled() {
        presets::liquid_cooled_mpsoc(config.tiers)?
    } else {
        presets::air_cooled_mpsoc(config.tiers)?
    };
    let n_cores = cores_for_tiers(config.tiers);
    let trace = config
        .workload
        .generate(n_cores, config.seconds.max(1), config.seed);
    let sim_config = SimConfig {
        grid: config.grid,
        ..Default::default()
    };
    Simulator::new(
        &stack,
        make_policy(config.policy, n_cores),
        trace,
        PowerModel::niagara(),
        sim_config,
    )
}

/// Runs one policy experiment end to end (build stack, generate trace,
/// steady-state init, simulate).
///
/// # Errors
///
/// Forwards configuration and model errors.
pub fn run_policy(config: &PolicyRunConfig) -> Result<RunMetrics, CmosaicError> {
    let mut sim = build_simulator(config)?;
    sim.initialize()?;
    sim.run(config.seconds)
}

/// The seven stack/policy configurations of Figs. 6 and 7, in plot order.
pub fn figure_configurations() -> [(usize, PolicyKind); 7] {
    [
        (2, PolicyKind::AcLb),
        (2, PolicyKind::AcTdvfsLb),
        (2, PolicyKind::LcLb),
        (2, PolicyKind::LcFuzzy),
        (4, PolicyKind::AcLb),
        (4, PolicyKind::LcLb),
        (4, PolicyKind::LcFuzzy),
    ]
}

/// The flat fig6 scenario matrix: every (stack, policy) configuration of
/// [`figure_configurations`] crossed with the three application workloads
/// plus the maximum-utilization benchmark — 28 independent co-simulations,
/// the unit of work the batch engine ([`crate::batch::BatchRunner`])
/// spreads across threads.
pub fn fig6_scenario_matrix(seconds: usize, seed: u64, grid: GridSpec) -> Vec<PolicyRunConfig> {
    let mut scenarios = Vec::new();
    for (tiers, policy) in figure_configurations() {
        for workload in WorkloadKind::applications()
            .iter()
            .copied()
            .chain([WorkloadKind::MaxUtilization])
        {
            scenarios.push(PolicyRunConfig {
                tiers,
                policy,
                workload,
                seconds,
                seed,
                grid,
            });
        }
    }
    scenarios
}

/// One bar group of Fig. 6: hot-spot residency for a configuration, for
/// the average workload and the maximum-utilization benchmark.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Number of tiers.
    pub tiers: usize,
    /// Policy.
    pub policy: PolicyKind,
    /// `%Hot spots avg` at average utilization (mean over the three
    /// application traces), percent.
    pub hotspot_avg_workload_per_core: f64,
    /// `%Hot spots max` at average utilization, percent.
    pub hotspot_avg_workload_any: f64,
    /// `%Hot spots avg` under the maximum-utilization benchmark, percent.
    pub hotspot_max_util_per_core: f64,
    /// `%Hot spots max` under the maximum-utilization benchmark, percent.
    pub hotspot_max_util_any: f64,
    /// Peak junction temperature over all runs, °C.
    pub peak_celsius: f64,
}

/// Computes the Fig. 6 dataset.
///
/// # Errors
///
/// Forwards run errors.
pub fn fig6_dataset(
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<Vec<Fig6Row>, CmosaicError> {
    let mut rows = Vec::new();
    for (tiers, policy) in figure_configurations() {
        let mut avg_core = 0.0;
        let mut avg_any = 0.0;
        let mut peak: f64 = 0.0;
        let apps = WorkloadKind::applications();
        for wk in apps {
            let m = run_policy(&PolicyRunConfig {
                tiers,
                policy,
                workload: wk,
                seconds,
                seed,
                grid,
            })?;
            avg_core += m.hotspot_time_per_core * 100.0 / apps.len() as f64;
            avg_any += m.hotspot_time_any * 100.0 / apps.len() as f64;
            peak = peak.max(m.peak_temperature.to_celsius().0);
        }
        let mx = run_policy(&PolicyRunConfig {
            tiers,
            policy,
            workload: WorkloadKind::MaxUtilization,
            seconds,
            seed,
            grid,
        })?;
        peak = peak.max(mx.peak_temperature.to_celsius().0);
        rows.push(Fig6Row {
            tiers,
            policy,
            hotspot_avg_workload_per_core: avg_core,
            hotspot_avg_workload_any: avg_any,
            hotspot_max_util_per_core: mx.hotspot_time_per_core * 100.0,
            hotspot_max_util_any: mx.hotspot_time_any * 100.0,
            peak_celsius: peak,
        });
    }
    Ok(rows)
}

/// One bar group of Fig. 7: energy (normalised to 2-tier `AC_LB`) and
/// performance loss for the average workload.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Number of tiers.
    pub tiers: usize,
    /// Policy.
    pub policy: PolicyKind,
    /// System (chip + pump) energy normalised to the 2-tier `AC_LB` run.
    pub system_energy_norm: f64,
    /// Pump energy normalised to the same baseline.
    pub pump_energy_norm: f64,
    /// Mean performance loss, percent.
    pub perf_loss_mean_pct: f64,
    /// Max per-core performance loss, percent.
    pub perf_loss_max_pct: f64,
}

/// Computes the Fig. 7 dataset: energy per configuration averaged over the
/// three application workloads, normalised to 2-tier `AC_LB`.
///
/// # Errors
///
/// Forwards run errors.
pub fn fig7_dataset(
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<Vec<Fig7Row>, CmosaicError> {
    let apps = WorkloadKind::applications();
    let mut raw: Vec<(usize, PolicyKind, f64, f64, f64, f64)> = Vec::new();
    for (tiers, policy) in figure_configurations() {
        let mut system = 0.0;
        let mut pump = 0.0;
        let mut perf_mean = 0.0;
        let mut perf_max: f64 = 0.0;
        for wk in apps {
            let m = run_policy(&PolicyRunConfig {
                tiers,
                policy,
                workload: wk,
                seconds,
                seed,
                grid,
            })?;
            system += m.total_energy() / apps.len() as f64;
            pump += m.pump_energy / apps.len() as f64;
            perf_mean += m.perf_loss_mean * 100.0 / apps.len() as f64;
            perf_max = perf_max.max(m.perf_loss_max * 100.0);
        }
        raw.push((tiers, policy, system, pump, perf_mean, perf_max));
    }
    let baseline = raw
        .iter()
        .find(|r| r.0 == 2 && r.1 == PolicyKind::AcLb)
        .map(|r| r.2)
        .expect("baseline present");
    Ok(raw
        .into_iter()
        .map(
            |(tiers, policy, system, pump, perf_mean, perf_max)| Fig7Row {
                tiers,
                policy,
                system_energy_norm: system / baseline,
                pump_energy_norm: pump / baseline,
                perf_loss_mean_pct: perf_mean,
                perf_loss_max_pct: perf_max,
            },
        )
        .collect())
}

/// The abstract's headline comparison: `LC_FUZZY` vs. `LC_LB`
/// (worst-case maximum flow) on the same stack and workloads.
#[derive(Debug, Clone)]
pub struct HeadlineSavings {
    /// Number of tiers.
    pub tiers: usize,
    /// Cooling (pump) energy saving, percent.
    pub cooling_saving_pct: f64,
    /// Whole-system energy saving, percent.
    pub system_saving_pct: f64,
    /// Peak temperature under the fuzzy controller, °C.
    pub fuzzy_peak_celsius: f64,
    /// Peak temperature under max flow, °C.
    pub max_flow_peak_celsius: f64,
}

/// Computes the headline `LC_FUZZY` savings for an n-tier stack, averaged
/// over the three application workloads.
///
/// # Errors
///
/// Forwards run errors.
pub fn headline_savings(
    tiers: usize,
    seconds: usize,
    seed: u64,
    grid: GridSpec,
) -> Result<HeadlineSavings, CmosaicError> {
    let apps = WorkloadKind::applications();
    let mut lb_pump = 0.0;
    let mut lb_total = 0.0;
    let mut fz_pump = 0.0;
    let mut fz_total = 0.0;
    let mut fz_peak: f64 = 0.0;
    let mut lb_peak: f64 = 0.0;
    for wk in apps {
        let lb = run_policy(&PolicyRunConfig {
            tiers,
            policy: PolicyKind::LcLb,
            workload: wk,
            seconds,
            seed,
            grid,
        })?;
        let fz = run_policy(&PolicyRunConfig {
            tiers,
            policy: PolicyKind::LcFuzzy,
            workload: wk,
            seconds,
            seed,
            grid,
        })?;
        lb_pump += lb.pump_energy;
        lb_total += lb.total_energy();
        fz_pump += fz.pump_energy;
        fz_total += fz.total_energy();
        fz_peak = fz_peak.max(fz.peak_temperature.to_celsius().0);
        lb_peak = lb_peak.max(lb.peak_temperature.to_celsius().0);
    }
    Ok(HeadlineSavings {
        tiers,
        cooling_saving_pct: (1.0 - fz_pump / lb_pump) * 100.0,
        system_saving_pct: (1.0 - fz_total / lb_total) * 100.0,
        fuzzy_peak_celsius: fz_peak,
        max_flow_peak_celsius: lb_peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> GridSpec {
        GridSpec::new(6, 6).expect("static")
    }

    #[test]
    fn run_policy_smoke() {
        let m = run_policy(&PolicyRunConfig {
            seconds: 5,
            grid: tiny_grid(),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(m.seconds, 5);
        assert!(m.chip_energy > 0.0);
    }

    #[test]
    fn cores_scale_with_tiers() {
        assert_eq!(cores_for_tiers(1), 8);
        assert_eq!(cores_for_tiers(2), 8);
        assert_eq!(cores_for_tiers(3), 16);
        assert_eq!(cores_for_tiers(4), 16);
    }

    #[test]
    fn headline_savings_are_positive() {
        let s = headline_savings(2, 12, 3, tiny_grid()).unwrap();
        assert!(
            s.cooling_saving_pct > 10.0,
            "fuzzy must save pump energy, got {:.1} %",
            s.cooling_saving_pct
        );
        assert!(s.system_saving_pct > 0.0);
        assert!(s.fuzzy_peak_celsius < 85.0);
    }

    #[test]
    fn figure_configuration_order_matches_paper() {
        let configs = figure_configurations();
        assert_eq!(configs[0], (2, PolicyKind::AcLb));
        assert_eq!(configs[6], (4, PolicyKind::LcFuzzy));
    }
}
