//! Material, coolant and refrigerant properties for the `cmosaic` toolkit.
//!
//! This crate is the bottom-most substrate of the CMOSAIC (DATE 2011)
//! reproduction. It provides:
//!
//! * [`units`] — light-weight typed physical quantities ([`Kelvin`],
//!   [`Celsius`], [`VolumetricFlow`], [`Pressure`], …) so that interfaces in
//!   the higher-level crates cannot confuse a temperature with a pressure or
//!   a flow rate in ml/min with one in m³/s.
//! * [`solids`] — thermal conductivity and volumetric heat capacity of the
//!   stack materials of Table I of the paper (silicon, the wiring/BEOL
//!   layer, copper TSVs, pyrex covers).
//! * [`water`] — temperature-dependent single-phase coolant properties used
//!   by the inter-tier micro-channel model of §II.
//! * [`refrigerant`] — saturation-property correlations for the low-pressure
//!   refrigerants used in §III (R134a, R236fa, R245fa) driving the
//!   flow-boiling model.
//!
//! # Example
//!
//! ```
//! use cmosaic_materials::units::{Celsius, Kelvin};
//! use cmosaic_materials::refrigerant::Refrigerant;
//!
//! # fn main() -> Result<(), cmosaic_materials::MaterialError> {
//! let r245fa = Refrigerant::R245fa.properties();
//! let p_sat = r245fa.saturation_pressure(Celsius(30.0).to_kelvin())?;
//! // ~1.8 bar at 30 degC: a low-pressure refrigerant suitable for 3D stacks.
//! assert!(p_sat.to_bar() > 1.0 && p_sat.to_bar() < 3.0);
//! let t_back = r245fa.saturation_temperature(p_sat)?;
//! assert!((t_back.0 - Kelvin::from_celsius(30.0).0).abs() < 0.05);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod refrigerant;
pub mod solids;
pub mod units;
pub mod water;

pub use refrigerant::{Refrigerant, RefrigerantProperties, SaturationState};
pub use solids::SolidMaterial;
pub use units::{Celsius, HeatFlux, Kelvin, MassFlow, Power, Pressure, VolumetricFlow};
pub use water::Water;

use std::error::Error;
use std::fmt;

/// Errors produced when querying material properties outside their validity
/// range.
#[derive(Debug, Clone, PartialEq)]
pub enum MaterialError {
    /// A temperature query fell outside the correlation's validity range.
    TemperatureOutOfRange {
        /// Requested temperature.
        requested: Kelvin,
        /// Lowest valid temperature.
        min: Kelvin,
        /// Highest valid temperature.
        max: Kelvin,
    },
    /// A pressure query fell outside the correlation's validity range.
    PressureOutOfRange {
        /// Requested pressure.
        requested: Pressure,
        /// Lowest valid pressure.
        min: Pressure,
        /// Highest valid pressure.
        max: Pressure,
    },
    /// A quantity that must be strictly positive was zero or negative.
    NonPositiveQuantity {
        /// Human-readable name of the offending quantity.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for MaterialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterialError::TemperatureOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "temperature {requested} outside validity range [{min}, {max}]"
            ),
            MaterialError::PressureOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "pressure {requested} outside validity range [{min}, {max}]"
            ),
            MaterialError::NonPositiveQuantity { name, value } => {
                write!(f, "quantity `{name}` must be positive, got {value}")
            }
        }
    }
}

impl Error for MaterialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = MaterialError::TemperatureOutOfRange {
            requested: Kelvin(500.0),
            min: Kelvin(200.0),
            max: Kelvin(400.0),
        };
        let text = err.to_string();
        assert!(text.contains("500"));
        assert!(text.contains("validity range"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MaterialError>();
    }
}
