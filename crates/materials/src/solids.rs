//! Solid material properties of the 3D stack.
//!
//! The baseline values are exactly Table I of the paper ("Thermal and
//! floorplan parameters deployed in the 3D MPSoC model"):
//!
//! | Material | k (W/m·K) | c_v (J/m³·K) |
//! |---|---|---|
//! | Silicon | 130 | 1 635 660 |
//! | Wiring (BEOL) layer | 2.25 | 2 174 502 |
//!
//! Copper (TSV fill) and pyrex (the anodic-bonding cover of the two-phase
//! test vehicles, §III) use standard literature values since Table I does
//! not list them.

use crate::MaterialError;

/// An isotropic solid with constant thermal properties.
///
/// ```
/// use cmosaic_materials::solids::SolidMaterial;
/// let si = SolidMaterial::silicon();
/// assert_eq!(si.thermal_conductivity(), 130.0);
/// // Thermal diffusivity of silicon is ~8e-5 m²/s.
/// assert!((si.diffusivity() - 7.95e-5).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SolidMaterial {
    name: &'static str,
    conductivity: f64,
    volumetric_heat_capacity: f64,
}

impl SolidMaterial {
    /// Creates a material from its thermal conductivity (W/m·K) and
    /// volumetric heat capacity (J/m³·K).
    ///
    /// # Errors
    ///
    /// Returns [`MaterialError::NonPositiveQuantity`] if either property is
    /// not strictly positive.
    pub fn new(
        name: &'static str,
        conductivity: f64,
        volumetric_heat_capacity: f64,
    ) -> Result<Self, MaterialError> {
        if !(conductivity > 0.0 && conductivity.is_finite()) {
            return Err(MaterialError::NonPositiveQuantity {
                name: "thermal conductivity",
                value: conductivity,
            });
        }
        if !(volumetric_heat_capacity > 0.0 && volumetric_heat_capacity.is_finite()) {
            return Err(MaterialError::NonPositiveQuantity {
                name: "volumetric heat capacity",
                value: volumetric_heat_capacity,
            });
        }
        Ok(SolidMaterial {
            name,
            conductivity,
            volumetric_heat_capacity,
        })
    }

    /// Bulk silicon (Table I).
    pub fn silicon() -> Self {
        SolidMaterial {
            name: "silicon",
            conductivity: 130.0,
            volumetric_heat_capacity: 1_635_660.0,
        }
    }

    /// The wiring (back-end-of-line) layer (Table I).
    pub fn wiring() -> Self {
        SolidMaterial {
            name: "wiring",
            conductivity: 2.25,
            volumetric_heat_capacity: 2_174_502.0,
        }
    }

    /// Copper, for fully-filled TSVs (§II.B).
    pub fn copper() -> Self {
        SolidMaterial {
            name: "copper",
            conductivity: 390.0,
            volumetric_heat_capacity: 3_440_000.0,
        }
    }

    /// Pyrex, the anodically-bonded channel cover of the test vehicles
    /// (§II.B/§III).
    pub fn pyrex() -> Self {
        SolidMaterial {
            name: "pyrex",
            conductivity: 1.13,
            volumetric_heat_capacity: 1_670_000.0,
        }
    }

    /// Thermal interface / die-attach material joining the top die to the
    /// air-cooled heat sink. Not in Table I; a high-end TIM value, the
    /// single calibrated parameter of the air-cooled anchor (see DESIGN.md
    /// §5).
    pub fn thermal_interface() -> Self {
        SolidMaterial {
            name: "thermal-interface",
            conductivity: 3.0,
            volumetric_heat_capacity: 2_000_000.0,
        }
    }

    /// Human-readable material name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Thermal conductivity in W/(m·K).
    pub fn thermal_conductivity(&self) -> f64 {
        self.conductivity
    }

    /// Volumetric heat capacity in J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.volumetric_heat_capacity
    }

    /// Thermal diffusivity `k / c_v` in m²/s.
    pub fn diffusivity(&self) -> f64 {
        self.conductivity / self.volumetric_heat_capacity
    }

    /// Conductance in W/K of a slab of this material with the given
    /// cross-section area (m²) and thickness (m).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `thickness_m` is not strictly positive.
    pub fn slab_conductance(&self, area_m2: f64, thickness_m: f64) -> f64 {
        debug_assert!(thickness_m > 0.0, "slab thickness must be positive");
        self.conductivity * area_m2 / thickness_m
    }

    /// Heat capacity in J/K of a volume (m³) of this material.
    pub fn heat_capacity(&self, volume_m3: f64) -> f64 {
        self.volumetric_heat_capacity * volume_m3
    }
}

/// Effective vertical conductivity of a silicon slab populated with copper
/// TSVs occupying `tsv_area_fraction` of the footprint (rule of mixtures,
/// parallel paths — valid because TSVs run normal to the die plane).
///
/// # Errors
///
/// Returns [`MaterialError::NonPositiveQuantity`] if the fraction is outside
/// `[0, 1)`.
pub fn silicon_with_tsvs(tsv_area_fraction: f64) -> Result<SolidMaterial, MaterialError> {
    if !(0.0..1.0).contains(&tsv_area_fraction) {
        return Err(MaterialError::NonPositiveQuantity {
            name: "tsv area fraction",
            value: tsv_area_fraction,
        });
    }
    let si = SolidMaterial::silicon();
    let cu = SolidMaterial::copper();
    let k = si.conductivity * (1.0 - tsv_area_fraction) + cu.conductivity * tsv_area_fraction;
    let c = si.volumetric_heat_capacity * (1.0 - tsv_area_fraction)
        + cu.volumetric_heat_capacity * tsv_area_fraction;
    SolidMaterial::new("silicon+TSV", k, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_are_exact() {
        assert_eq!(SolidMaterial::silicon().thermal_conductivity(), 130.0);
        assert_eq!(
            SolidMaterial::silicon().volumetric_heat_capacity(),
            1_635_660.0
        );
        assert_eq!(SolidMaterial::wiring().thermal_conductivity(), 2.25);
        assert_eq!(
            SolidMaterial::wiring().volumetric_heat_capacity(),
            2_174_502.0
        );
    }

    #[test]
    fn slab_conductance_of_a_die() {
        // A 10 mm² core footprint through the 0.15 mm die of Table I:
        // G = 130 * 1e-5 / 1.5e-4 = 8.67 W/K.
        let g = SolidMaterial::silicon().slab_conductance(10.0e-6, 0.15e-3);
        assert!((g - 8.666_666).abs() < 1e-3);
    }

    #[test]
    fn invalid_materials_are_rejected() {
        assert!(SolidMaterial::new("bad", 0.0, 1.0).is_err());
        assert!(SolidMaterial::new("bad", -3.0, 1.0).is_err());
        assert!(SolidMaterial::new("bad", 1.0, f64::NAN).is_err());
    }

    #[test]
    fn tsv_mixture_interpolates_between_silicon_and_copper() {
        let none = silicon_with_tsvs(0.0).unwrap();
        assert!((none.thermal_conductivity() - 130.0).abs() < 1e-9);
        let some = silicon_with_tsvs(0.1).unwrap();
        assert!(some.thermal_conductivity() > 130.0);
        assert!(some.thermal_conductivity() < 390.0);
        assert!(silicon_with_tsvs(1.5).is_err());
        assert!(silicon_with_tsvs(-0.1).is_err());
    }

    #[test]
    fn heat_capacity_scales_with_volume() {
        let si = SolidMaterial::silicon();
        let c1 = si.heat_capacity(1e-9);
        let c2 = si.heat_capacity(2e-9);
        assert!((c2 / c1 - 2.0).abs() < 1e-12);
    }
}
