//! Typed physical quantities.
//!
//! These are deliberately thin `f64` newtypes (the pattern recommended by the
//! Rust API guidelines, C-NEWTYPE): they cost nothing at runtime but make the
//! public interfaces of the thermal, hydraulic and control crates
//! self-documenting and mistake-resistant. Fields are public because the
//! types are passive data carriers; all *unit conversions* go through named
//! methods so the unit of the stored value is always unambiguous:
//!
//! | Type | Stored unit |
//! |---|---|
//! | [`Kelvin`] | K |
//! | [`Celsius`] | °C |
//! | [`Pressure`] | Pa |
//! | [`VolumetricFlow`] | m³/s |
//! | [`MassFlow`] | kg/s |
//! | [`Power`] | W |
//! | [`HeatFlux`] | W/m² |

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Conversion offset between the Kelvin and Celsius scales.
pub const CELSIUS_OFFSET: f64 = 273.15;

/// Absolute temperature in kelvin.
///
/// All internal solver state is kept in kelvin; [`Celsius`] exists for
/// human-facing configuration (thermal thresholds, inlet temperatures) and
/// reporting.
///
/// ```
/// use cmosaic_materials::units::{Celsius, Kelvin};
/// let threshold = Kelvin::from_celsius(85.0);
/// assert_eq!(threshold.to_celsius(), Celsius(85.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(pub f64);

impl Kelvin {
    /// Creates a temperature from a value on the Celsius scale.
    pub fn from_celsius(deg_c: f64) -> Self {
        Kelvin(deg_c + CELSIUS_OFFSET)
    }

    /// Converts to the Celsius scale.
    pub fn to_celsius(self) -> Celsius {
        Celsius(self.0 - CELSIUS_OFFSET)
    }

    /// Returns the larger of two temperatures (NaN-propagating max).
    pub fn max(self, other: Kelvin) -> Kelvin {
        Kelvin(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    pub fn min(self, other: Kelvin) -> Kelvin {
        Kelvin(self.0.min(other.0))
    }

    /// `true` when the value is finite and above absolute zero.
    pub fn is_physical(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} K", self.0)
    }
}

impl Add<f64> for Kelvin {
    type Output = Kelvin;
    fn add(self, rhs: f64) -> Kelvin {
        Kelvin(self.0 + rhs)
    }
}

impl Sub for Kelvin {
    /// Temperature difference in kelvin.
    type Output = f64;
    fn sub(self, rhs: Kelvin) -> f64 {
        self.0 - rhs.0
    }
}

/// Temperature on the Celsius scale.
///
/// See [`Kelvin`] for the relationship between the two types.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(pub f64);

impl Celsius {
    /// Converts to an absolute temperature.
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin(self.0 + CELSIUS_OFFSET)
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} °C", self.0)
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Kelvin {
        c.to_kelvin()
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Celsius {
        k.to_celsius()
    }
}

/// Absolute pressure in pascal.
///
/// ```
/// use cmosaic_materials::units::Pressure;
/// let p = Pressure::from_bar(1.013);
/// assert!((p.0 - 101_300.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Pressure(pub f64);

impl Pressure {
    /// Pascals per bar.
    pub const PA_PER_BAR: f64 = 1.0e5;

    /// Creates a pressure from a value in bar.
    pub fn from_bar(bar: f64) -> Self {
        Pressure(bar * Self::PA_PER_BAR)
    }

    /// Converts to bar.
    pub fn to_bar(self) -> f64 {
        self.0 / Self::PA_PER_BAR
    }
}

impl fmt::Display for Pressure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} bar", self.to_bar())
    }
}

impl Add for Pressure {
    type Output = Pressure;
    fn add(self, rhs: Pressure) -> Pressure {
        Pressure(self.0 + rhs.0)
    }
}

impl Sub for Pressure {
    type Output = Pressure;
    fn sub(self, rhs: Pressure) -> Pressure {
        Pressure(self.0 - rhs.0)
    }
}

impl Neg for Pressure {
    type Output = Pressure;
    fn neg(self) -> Pressure {
        Pressure(-self.0)
    }
}

/// Volumetric flow rate in m³/s.
///
/// The paper quotes flow rates in ml/min per cavity (Table I:
/// 10–32.3 ml/min); [`VolumetricFlow::from_ml_per_min`] performs that
/// conversion.
///
/// ```
/// use cmosaic_materials::units::VolumetricFlow;
/// let q = VolumetricFlow::from_ml_per_min(32.3);
/// assert!((q.to_ml_per_min() - 32.3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct VolumetricFlow(pub f64);

impl VolumetricFlow {
    /// m³/s per (ml/min).
    const M3S_PER_ML_MIN: f64 = 1.0e-6 / 60.0;

    /// Creates a flow rate from millilitres per minute.
    pub fn from_ml_per_min(ml_min: f64) -> Self {
        VolumetricFlow(ml_min * Self::M3S_PER_ML_MIN)
    }

    /// Creates a flow rate from litres per minute.
    pub fn from_l_per_min(l_min: f64) -> Self {
        Self::from_ml_per_min(l_min * 1000.0)
    }

    /// Converts to millilitres per minute.
    pub fn to_ml_per_min(self) -> f64 {
        self.0 / Self::M3S_PER_ML_MIN
    }

    /// Mass flow through this volumetric flow at the given fluid density.
    pub fn to_mass_flow(self, density_kg_m3: f64) -> MassFlow {
        MassFlow(self.0 * density_kg_m3)
    }
}

impl fmt::Display for VolumetricFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ml/min", self.to_ml_per_min())
    }
}

impl Add for VolumetricFlow {
    type Output = VolumetricFlow;
    fn add(self, rhs: VolumetricFlow) -> VolumetricFlow {
        VolumetricFlow(self.0 + rhs.0)
    }
}

impl Sub for VolumetricFlow {
    type Output = VolumetricFlow;
    fn sub(self, rhs: VolumetricFlow) -> VolumetricFlow {
        VolumetricFlow(self.0 - rhs.0)
    }
}

impl Mul<f64> for VolumetricFlow {
    type Output = VolumetricFlow;
    fn mul(self, rhs: f64) -> VolumetricFlow {
        VolumetricFlow(self.0 * rhs)
    }
}

impl Div<f64> for VolumetricFlow {
    type Output = VolumetricFlow;
    fn div(self, rhs: f64) -> VolumetricFlow {
        VolumetricFlow(self.0 / rhs)
    }
}

/// Mass flow rate in kg/s.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct MassFlow(pub f64);

impl MassFlow {
    /// Converts back to a volumetric flow at the given density.
    pub fn to_volumetric(self, density_kg_m3: f64) -> VolumetricFlow {
        VolumetricFlow(self.0 / density_kg_m3)
    }
}

impl fmt::Display for MassFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} kg/s", self.0)
    }
}

/// Power in watts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(pub f64);

impl Power {
    /// Energy dissipated over a duration, in joules.
    pub fn energy_over(self, seconds: f64) -> f64 {
        self.0 * seconds
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

/// Heat flux in W/m².
///
/// The paper quotes hot-spot fluxes in W/cm² (up to 250 W/cm² in §I);
/// [`HeatFlux::from_w_per_cm2`] performs that conversion.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct HeatFlux(pub f64);

impl HeatFlux {
    /// W/m² per W/cm².
    pub const W_M2_PER_W_CM2: f64 = 1.0e4;

    /// Creates a heat flux from a value in W/cm².
    pub fn from_w_per_cm2(w_cm2: f64) -> Self {
        HeatFlux(w_cm2 * Self::W_M2_PER_W_CM2)
    }

    /// Converts to W/cm².
    pub fn to_w_per_cm2(self) -> f64 {
        self.0 / Self::W_M2_PER_W_CM2
    }

    /// Total power over an area, in watts.
    pub fn over_area(self, area_m2: f64) -> Power {
        Power(self.0 * area_m2)
    }
}

impl fmt::Display for HeatFlux {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W/cm²", self.to_w_per_cm2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kelvin_celsius_round_trip() {
        let k = Kelvin(358.15);
        assert!((k.to_celsius().0 - 85.0).abs() < 1e-12);
        assert!((Celsius(85.0).to_kelvin().0 - 358.15).abs() < 1e-12);
    }

    #[test]
    fn kelvin_difference_is_plain_f64() {
        let dt = Kelvin(350.0) - Kelvin(300.0);
        assert!((dt - 50.0).abs() < 1e-12);
    }

    #[test]
    fn flow_rate_conversions() {
        // Table I maximum flow rate: 0.0323 l/min == 32.3 ml/min.
        let q = VolumetricFlow::from_l_per_min(0.0323);
        assert!((q.to_ml_per_min() - 32.3).abs() < 1e-9);
        assert!((q.0 - 32.3e-6 / 60.0).abs() < 1e-15);
    }

    #[test]
    fn mass_flow_round_trip_through_density() {
        let q = VolumetricFlow::from_ml_per_min(20.0);
        let m = q.to_mass_flow(998.0);
        let back = m.to_volumetric(998.0);
        assert!((back.0 - q.0).abs() < 1e-18);
    }

    #[test]
    fn heat_flux_conversion_matches_paper_figures() {
        // 250 W/cm² (the hot-spot flux of §I) over a 1 cm² area is 250 W.
        let hf = HeatFlux::from_w_per_cm2(250.0);
        assert!((hf.over_area(1.0e-4).0 - 250.0).abs() < 1e-9);
    }

    #[test]
    fn pressure_bar_round_trip() {
        let p = Pressure::from_bar(0.9);
        assert!((p.to_bar() - 0.9).abs() < 1e-12);
        assert!((p.0 - 90_000.0).abs() < 1e-9);
    }

    #[test]
    fn displays_are_nonempty_and_unit_tagged() {
        assert!(Kelvin(300.0).to_string().contains('K'));
        assert!(Celsius(30.0).to_string().contains("°C"));
        assert!(Pressure::from_bar(1.0).to_string().contains("bar"));
        assert!(VolumetricFlow::from_ml_per_min(1.0)
            .to_string()
            .contains("ml/min"));
        assert!(Power(1.0).to_string().contains('W'));
        assert!(HeatFlux(1.0).to_string().contains("W/cm²"));
        assert!(MassFlow(1.0).to_string().contains("kg/s"));
    }

    #[test]
    fn physicality_check() {
        assert!(Kelvin(300.0).is_physical());
        assert!(!Kelvin(-1.0).is_physical());
        assert!(!Kelvin(f64::NAN).is_physical());
    }
}
