//! Single-phase coolant (water) properties.
//!
//! Table I of the paper fixes the values the compact model uses:
//! conductivity 0.6 W/(m·K) and specific heat 4183 J/(kg·K). Density and
//! viscosity are needed by the hydraulic model (§II.C) for Reynolds numbers,
//! pressure drops and pump power; they use standard correlations with mild
//! temperature dependence.

use crate::units::Kelvin;
use crate::MaterialError;

/// Liquid water property set.
///
/// ```
/// use cmosaic_materials::water::Water;
/// use cmosaic_materials::units::Kelvin;
///
/// # fn main() -> Result<(), cmosaic_materials::MaterialError> {
/// let w = Water::table1();
/// let mu = w.dynamic_viscosity(Kelvin::from_celsius(27.0))?;
/// assert!(mu > 7.0e-4 && mu < 9.5e-4); // ~0.85 mPa·s at room temperature
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Water {
    conductivity: f64,
    specific_heat: f64,
    density: f64,
}

impl Water {
    /// Lower validity bound of the property correlations (liquid water only).
    pub const T_MIN: Kelvin = Kelvin(274.0);
    /// Upper validity bound of the property correlations (sub-boiling).
    pub const T_MAX: Kelvin = Kelvin(370.0);

    /// The property set of Table I (k = 0.6 W/m·K, c_p = 4183 J/kg·K) with a
    /// nominal density of 998 kg/m³.
    pub fn table1() -> Self {
        Water {
            conductivity: 0.6,
            specific_heat: 4183.0,
            density: 998.0,
        }
    }

    /// Thermal conductivity in W/(m·K).
    pub fn thermal_conductivity(&self) -> f64 {
        self.conductivity
    }

    /// Specific heat capacity in J/(kg·K).
    pub fn specific_heat(&self) -> f64 {
        self.specific_heat
    }

    /// Density in kg/m³.
    pub fn density(&self) -> f64 {
        self.density
    }

    /// Volumetric heat capacity ρ·c_p in J/(m³·K).
    ///
    /// For Table I water this is ≈ 4.17 MJ/(m³·K) — the value the compact
    /// thermal model uses for fluid cell capacitances.
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.density * self.specific_heat
    }

    /// Dynamic viscosity in Pa·s (Vogel–Fulcher correlation
    /// `μ = 2.414e-5 · 10^(247.8 / (T − 140))`, accurate to ~2.5 % between
    /// 0 and 100 °C).
    ///
    /// # Errors
    ///
    /// Returns [`MaterialError::TemperatureOutOfRange`] outside
    /// [`Water::T_MIN`]..[`Water::T_MAX`].
    pub fn dynamic_viscosity(&self, t: Kelvin) -> Result<f64, MaterialError> {
        self.check_range(t)?;
        Ok(2.414e-5 * 10f64.powf(247.8 / (t.0 - 140.0)))
    }

    /// Kinematic viscosity ν = μ/ρ in m²/s.
    ///
    /// # Errors
    ///
    /// Same as [`Water::dynamic_viscosity`].
    pub fn kinematic_viscosity(&self, t: Kelvin) -> Result<f64, MaterialError> {
        Ok(self.dynamic_viscosity(t)? / self.density)
    }

    /// Prandtl number μ·c_p/k (dimensionless).
    ///
    /// # Errors
    ///
    /// Same as [`Water::dynamic_viscosity`].
    pub fn prandtl(&self, t: Kelvin) -> Result<f64, MaterialError> {
        Ok(self.dynamic_viscosity(t)? * self.specific_heat / self.conductivity)
    }

    fn check_range(&self, t: Kelvin) -> Result<(), MaterialError> {
        if t.0 < Self::T_MIN.0 || t.0 > Self::T_MAX.0 {
            return Err(MaterialError::TemperatureOutOfRange {
                requested: t,
                min: Self::T_MIN,
                max: Self::T_MAX,
            });
        }
        Ok(())
    }
}

impl Default for Water {
    fn default() -> Self {
        Water::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let w = Water::table1();
        assert_eq!(w.thermal_conductivity(), 0.6);
        assert_eq!(w.specific_heat(), 4183.0);
        // Volumetric heat capacity close to the canonical 4.18 MJ/m³K.
        assert!((w.volumetric_heat_capacity() - 4.174e6).abs() < 5e3);
    }

    #[test]
    fn viscosity_matches_handbook_values() {
        let w = Water::table1();
        // ~1.00 mPa·s at 20 °C, ~0.65 mPa·s at 40 °C.
        let mu20 = w.dynamic_viscosity(Kelvin::from_celsius(20.0)).unwrap();
        let mu40 = w.dynamic_viscosity(Kelvin::from_celsius(40.0)).unwrap();
        assert!((mu20 - 1.0e-3).abs() < 5e-5, "mu20 = {mu20}");
        assert!((mu40 - 0.653e-3).abs() < 5e-5, "mu40 = {mu40}");
        assert!(mu40 < mu20, "viscosity must fall with temperature");
    }

    #[test]
    fn prandtl_is_about_seven_at_room_temperature() {
        let pr = Water::table1().prandtl(Kelvin::from_celsius(20.0)).unwrap();
        assert!(pr > 6.0 && pr < 8.0, "Pr = {pr}");
    }

    #[test]
    fn out_of_range_temperatures_error() {
        let w = Water::table1();
        assert!(w.dynamic_viscosity(Kelvin(250.0)).is_err());
        assert!(w.dynamic_viscosity(Kelvin(400.0)).is_err());
    }
}
