//! Saturation-property correlations for the refrigerants of §III.
//!
//! The flow-boiling model needs, along each micro-channel: the local
//! saturation temperature as a function of local pressure (this is what makes
//! the refrigerant *cool down* from inlet to outlet, the distinguishing
//! behaviour the paper highlights), the latent heat of vaporisation, phase
//! densities, and transport properties.
//!
//! Three fluids are provided, matching the papers cited in §III:
//! [`Refrigerant::R134a`] (the `~150 kJ/kg` example of §III),
//! [`Refrigerant::R236fa`] (Agostini et al., ref. \[1]) and
//! [`Refrigerant::R245fa`] (Costa-Patry et al., ref. \[10] — the Fig. 8
//! experiment).
//!
//! # Correlation forms
//!
//! * Saturation line: two-parameter Clausius–Clapeyron fit
//!   `ln p = A − B/T`, anchored at the normal boiling point and the 25 °C
//!   saturation pressure. Within the 10–60 °C operating window of a chip
//!   stack the fit is accurate to ≈1 % (verified in tests against the 30 °C
//!   literature values).
//! * Latent heat: Watson relation
//!   `h_fg(T) = h_fg(T_ref) · ((T_c − T)/(T_c − T_ref))^0.38`.
//! * Vapour density: real-gas `ρ_v = pM/(Z·R·T)` with a fixed
//!   near-saturation compressibility `Z = 0.92`.
//! * Liquid density / surface tension: linear decline towards the critical
//!   point.

use crate::units::{Kelvin, Pressure};
use crate::MaterialError;

/// Universal gas constant, J/(mol·K).
const R_GAS: f64 = 8.314_462;
/// Fixed near-saturation vapour compressibility factor.
const Z_VAPOR: f64 = 0.92;
/// Watson exponent for the latent-heat temperature dependence.
const WATSON_EXPONENT: f64 = 0.38;

/// The refrigerants evaluated by the CMOSAIC two-phase experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Refrigerant {
    /// R-134a: the air-conditioning workhorse quoted in §III
    /// ("about 150 kJ/kg" latent heat).
    R134a,
    /// R-236fa: tested by Agostini et al. in 67 µm-wide silicon
    /// multi-microchannels (ref. \[1]).
    R236fa,
    /// R-245fa: the low-pressure fluid of the 85 µm hot-spot experiment
    /// reproduced in Fig. 8 (ref. \[10]).
    R245fa,
}

impl Refrigerant {
    /// Returns the property bundle for this fluid.
    pub fn properties(self) -> RefrigerantProperties {
        match self {
            Refrigerant::R134a => RefrigerantProperties::fit(
                "R134a",
                Kelvin(374.21),
                Pressure::from_bar(40.59),
                0.102_03,
                // Normal boiling point and 25 °C anchor.
                (Kelvin::from_celsius(-26.07), Pressure::from_bar(1.013)),
                (Kelvin::from_celsius(25.0), Pressure::from_bar(6.65)),
                177.8e3,
                1206.7,
                1425.0,
                0.0811,
                1.95e-4,
                1.18e-5,
                8.1e-3,
            ),
            Refrigerant::R236fa => RefrigerantProperties::fit(
                "R236fa",
                Kelvin(398.07),
                Pressure::from_bar(32.0),
                0.152_05,
                (Kelvin::from_celsius(-1.44), Pressure::from_bar(1.013)),
                (Kelvin::from_celsius(25.0), Pressure::from_bar(2.72)),
                144.2e3,
                1360.0,
                1265.0,
                0.0721,
                2.93e-4,
                1.09e-5,
                10.5e-3,
            ),
            Refrigerant::R245fa => RefrigerantProperties::fit(
                "R245fa",
                Kelvin(427.16),
                Pressure::from_bar(36.51),
                0.134_05,
                (Kelvin::from_celsius(15.14), Pressure::from_bar(1.013)),
                (Kelvin::from_celsius(25.0), Pressure::from_bar(1.49)),
                190.3e3,
                1338.5,
                1322.0,
                0.0810,
                4.02e-4,
                1.02e-5,
                13.6e-3,
            ),
        }
    }

    /// All refrigerants known to the library, in declaration order.
    pub fn all() -> [Refrigerant; 3] {
        [Refrigerant::R134a, Refrigerant::R236fa, Refrigerant::R245fa]
    }
}

impl std::fmt::Display for Refrigerant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.properties().name())
    }
}

/// Thermophysical property bundle of a refrigerant.
///
/// Constructed via [`Refrigerant::properties`]; see the module docs for the
/// correlation forms.
#[derive(Debug, Clone, PartialEq)]
pub struct RefrigerantProperties {
    name: &'static str,
    critical_temperature: Kelvin,
    critical_pressure: Pressure,
    molar_mass: f64,
    /// `ln p[Pa] = ln_a − b / T[K]`.
    ln_a: f64,
    b: f64,
    t_ref: Kelvin,
    h_fg_ref: f64,
    rho_liquid_ref: f64,
    cp_liquid: f64,
    k_liquid: f64,
    mu_liquid: f64,
    mu_vapor: f64,
    sigma_ref: f64,
}

impl RefrigerantProperties {
    /// Lower validity bound of the saturation correlations.
    pub const T_MIN: Kelvin = Kelvin(230.0);

    #[allow(clippy::too_many_arguments)]
    fn fit(
        name: &'static str,
        critical_temperature: Kelvin,
        critical_pressure: Pressure,
        molar_mass: f64,
        anchor_low: (Kelvin, Pressure),
        anchor_ref: (Kelvin, Pressure),
        h_fg_ref: f64,
        rho_liquid_ref: f64,
        cp_liquid: f64,
        k_liquid: f64,
        mu_liquid: f64,
        mu_vapor: f64,
        sigma_ref: f64,
    ) -> Self {
        let (t1, p1) = anchor_low;
        let (t2, p2) = anchor_ref;
        let b = (p2.0 / p1.0).ln() / (1.0 / t1.0 - 1.0 / t2.0);
        let ln_a = p2.0.ln() + b / t2.0;
        RefrigerantProperties {
            name,
            critical_temperature,
            critical_pressure,
            molar_mass,
            ln_a,
            b,
            t_ref: t2,
            h_fg_ref,
            rho_liquid_ref,
            cp_liquid,
            k_liquid,
            mu_liquid,
            mu_vapor,
            sigma_ref,
        }
    }

    /// Fluid name (e.g. `"R245fa"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Critical temperature.
    pub fn critical_temperature(&self) -> Kelvin {
        self.critical_temperature
    }

    /// Critical pressure.
    pub fn critical_pressure(&self) -> Pressure {
        self.critical_pressure
    }

    /// Molar mass in kg/mol.
    pub fn molar_mass(&self) -> f64 {
        self.molar_mass
    }

    /// Highest temperature at which the saturation correlations are used
    /// (10 K below critical).
    pub fn t_max(&self) -> Kelvin {
        Kelvin(self.critical_temperature.0 - 10.0)
    }

    /// Saturation pressure at temperature `t`.
    ///
    /// # Errors
    ///
    /// Returns [`MaterialError::TemperatureOutOfRange`] outside
    /// [`RefrigerantProperties::T_MIN`]..[`RefrigerantProperties::t_max`].
    pub fn saturation_pressure(&self, t: Kelvin) -> Result<Pressure, MaterialError> {
        self.check_t(t)?;
        Ok(Pressure((self.ln_a - self.b / t.0).exp()))
    }

    /// Saturation temperature at pressure `p` (inverse of
    /// [`RefrigerantProperties::saturation_pressure`], analytic).
    ///
    /// # Errors
    ///
    /// Returns [`MaterialError::PressureOutOfRange`] if `p` maps outside the
    /// valid temperature window.
    pub fn saturation_temperature(&self, p: Pressure) -> Result<Kelvin, MaterialError> {
        if !(p.0 > 0.0 && p.0.is_finite()) {
            return Err(MaterialError::PressureOutOfRange {
                requested: p,
                min: Pressure(1.0),
                max: self.critical_pressure,
            });
        }
        let t = Kelvin(self.b / (self.ln_a - p.0.ln()));
        if self.check_t(t).is_err() {
            let min = self
                .saturation_pressure(Self::T_MIN)
                .unwrap_or(Pressure(1.0));
            let max = self
                .saturation_pressure(self.t_max())
                .unwrap_or(self.critical_pressure);
            return Err(MaterialError::PressureOutOfRange {
                requested: p,
                min,
                max,
            });
        }
        Ok(t)
    }

    /// Slope of the saturation line, dT_sat/dp in K/Pa, at temperature `t`.
    ///
    /// This is what converts a channel pressure *drop* into the saturation
    /// temperature *decline* along the evaporator (§III: "the refrigerant's
    /// temperature falls rather than increases").
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn dtsat_dp(&self, t: Kelvin) -> Result<f64, MaterialError> {
        let p = self.saturation_pressure(t)?;
        // From ln p = A − B/T: dp/dT = p·B/T², so dT/dp = T²/(B·p).
        Ok(t.0 * t.0 / (self.b * p.0))
    }

    /// Latent heat of vaporisation in J/kg at temperature `t` (Watson).
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn latent_heat(&self, t: Kelvin) -> Result<f64, MaterialError> {
        self.check_t(t)?;
        let tc = self.critical_temperature.0;
        let ratio = (tc - t.0) / (tc - self.t_ref.0);
        Ok(self.h_fg_ref * ratio.powf(WATSON_EXPONENT))
    }

    /// Saturated liquid density in kg/m³ at temperature `t`.
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn liquid_density(&self, t: Kelvin) -> Result<f64, MaterialError> {
        self.check_t(t)?;
        // ~0.25 %/K decline typical of saturated HFC liquids near 25 °C.
        Ok(self.rho_liquid_ref * (1.0 - 2.5e-3 * (t.0 - self.t_ref.0)))
    }

    /// Saturated vapour density in kg/m³ at temperature `t`.
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn vapor_density(&self, t: Kelvin) -> Result<f64, MaterialError> {
        let p = self.saturation_pressure(t)?;
        Ok(p.0 * self.molar_mass / (Z_VAPOR * R_GAS * t.0))
    }

    /// Saturated-liquid specific heat in J/(kg·K).
    pub fn cp_liquid(&self) -> f64 {
        self.cp_liquid
    }

    /// Saturated-liquid thermal conductivity in W/(m·K).
    pub fn k_liquid(&self) -> f64 {
        self.k_liquid
    }

    /// Saturated-liquid dynamic viscosity in Pa·s.
    pub fn mu_liquid(&self) -> f64 {
        self.mu_liquid
    }

    /// Saturated-vapour dynamic viscosity in Pa·s.
    pub fn mu_vapor(&self) -> f64 {
        self.mu_vapor
    }

    /// Surface tension in N/m at temperature `t` (linear decline to zero at
    /// the critical point).
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn surface_tension(&self, t: Kelvin) -> Result<f64, MaterialError> {
        self.check_t(t)?;
        let tc = self.critical_temperature.0;
        Ok(self.sigma_ref * ((tc - t.0) / (tc - self.t_ref.0)).max(0.0))
    }

    /// Complete saturation state at temperature `t` — the bundle consumed by
    /// the flow-boiling march in `cmosaic-twophase`.
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_pressure`].
    pub fn saturation_state(&self, t: Kelvin) -> Result<SaturationState, MaterialError> {
        Ok(SaturationState {
            temperature: t,
            pressure: self.saturation_pressure(t)?,
            h_fg: self.latent_heat(t)?,
            rho_liquid: self.liquid_density(t)?,
            rho_vapor: self.vapor_density(t)?,
            cp_liquid: self.cp_liquid,
            k_liquid: self.k_liquid,
            mu_liquid: self.mu_liquid,
            mu_vapor: self.mu_vapor,
            sigma: self.surface_tension(t)?,
        })
    }

    /// Complete saturation state at pressure `p`.
    ///
    /// # Errors
    ///
    /// Same range check as [`RefrigerantProperties::saturation_temperature`].
    pub fn saturation_state_at_pressure(
        &self,
        p: Pressure,
    ) -> Result<SaturationState, MaterialError> {
        let t = self.saturation_temperature(p)?;
        self.saturation_state(t)
    }

    fn check_t(&self, t: Kelvin) -> Result<(), MaterialError> {
        if !t.is_physical() || t.0 < Self::T_MIN.0 || t.0 > self.t_max().0 {
            return Err(MaterialError::TemperatureOutOfRange {
                requested: t,
                min: Self::T_MIN,
                max: self.t_max(),
            });
        }
        Ok(())
    }
}

/// Thermodynamic state on the saturation line, as consumed by the
/// flow-boiling model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationState {
    /// Saturation temperature.
    pub temperature: Kelvin,
    /// Saturation pressure.
    pub pressure: Pressure,
    /// Latent heat of vaporisation, J/kg.
    pub h_fg: f64,
    /// Saturated liquid density, kg/m³.
    pub rho_liquid: f64,
    /// Saturated vapour density, kg/m³.
    pub rho_vapor: f64,
    /// Saturated liquid specific heat, J/(kg·K).
    pub cp_liquid: f64,
    /// Saturated liquid thermal conductivity, W/(m·K).
    pub k_liquid: f64,
    /// Saturated liquid dynamic viscosity, Pa·s.
    pub mu_liquid: f64,
    /// Saturated vapour dynamic viscosity, Pa·s.
    pub mu_vapor: f64,
    /// Surface tension, N/m.
    pub sigma: f64,
}

impl SaturationState {
    /// Homogeneous two-phase density at vapour quality `x` (mass-averaged
    /// specific volume).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x` is outside `[0, 1]`.
    pub fn homogeneous_density(&self, x: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&x), "quality must be in [0,1]");
        1.0 / (x / self.rho_vapor + (1.0 - x) / self.rho_liquid)
    }

    /// Homogeneous (McAdams) two-phase viscosity at vapour quality `x`.
    pub fn homogeneous_viscosity(&self, x: f64) -> f64 {
        1.0 / (x / self.mu_vapor + (1.0 - x) / self.mu_liquid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Celsius;

    #[test]
    fn anchors_reproduce_by_construction() {
        for fluid in Refrigerant::all() {
            let p = fluid.properties();
            let p25 = p.saturation_pressure(Celsius(25.0).to_kelvin()).unwrap();
            let expected = match fluid {
                Refrigerant::R134a => 6.65,
                Refrigerant::R236fa => 2.72,
                Refrigerant::R245fa => 1.49,
            };
            assert!(
                (p25.to_bar() - expected).abs() < 1e-9,
                "{fluid}: {p25} != {expected} bar"
            );
        }
    }

    #[test]
    fn r245fa_at_30c_matches_literature() {
        // NIST: P_sat(R245fa, 30 °C) ≈ 1.784 bar. Fig. 8 inlet condition.
        let p = Refrigerant::R245fa
            .properties()
            .saturation_pressure(Celsius(30.0).to_kelvin())
            .unwrap();
        assert!(
            (p.to_bar() - 1.784).abs() < 0.05,
            "P_sat(30°C) = {p} should be ~1.78 bar"
        );
    }

    #[test]
    fn saturation_inverse_round_trips() {
        for fluid in Refrigerant::all() {
            let props = fluid.properties();
            for t_c in [0.0, 10.0, 25.0, 30.0, 45.0, 60.0, 85.0] {
                let t = Celsius(t_c).to_kelvin();
                let p = props.saturation_pressure(t).unwrap();
                let back = props.saturation_temperature(p).unwrap();
                assert!(
                    (back.0 - t.0).abs() < 1e-6,
                    "{fluid} round trip at {t_c} °C: {back} vs {t}"
                );
            }
        }
    }

    #[test]
    fn saturation_pressure_is_monotonic() {
        let props = Refrigerant::R134a.properties();
        let mut last = 0.0;
        for t in (240..360).step_by(5) {
            let p = props.saturation_pressure(Kelvin(t as f64)).unwrap();
            assert!(p.0 > last, "P_sat must increase with T");
            last = p.0;
        }
    }

    #[test]
    fn latent_heat_near_the_papers_150_kj_per_kg() {
        // §III: "about 150 kJ/kg of R-134a" at typical chip conditions.
        let h = Refrigerant::R134a
            .properties()
            .latent_heat(Celsius(60.0).to_kelvin())
            .unwrap();
        assert!(
            h > 130.0e3 && h < 180.0e3,
            "h_fg(R134a, 60°C) = {h} should be near 150 kJ/kg"
        );
    }

    #[test]
    fn latent_heat_decreases_towards_critical() {
        let props = Refrigerant::R245fa.properties();
        let h30 = props.latent_heat(Celsius(30.0).to_kelvin()).unwrap();
        let h80 = props.latent_heat(Celsius(80.0).to_kelvin()).unwrap();
        assert!(h80 < h30);
    }

    #[test]
    fn vapor_is_much_lighter_than_liquid() {
        for fluid in Refrigerant::all() {
            let s = fluid
                .properties()
                .saturation_state(Celsius(30.0).to_kelvin())
                .unwrap();
            assert!(s.rho_vapor < s.rho_liquid / 10.0, "{fluid}");
            assert!(s.rho_vapor > 0.5, "{fluid}: vapour density too small");
        }
    }

    #[test]
    fn dtsat_dp_is_positive_and_sane() {
        // R245fa near 30 °C: ~5e-5..3e-4 K/Pa (0.9 bar drop ⇒ a few K).
        let slope = Refrigerant::R245fa
            .properties()
            .dtsat_dp(Celsius(30.0).to_kelvin())
            .unwrap();
        assert!(slope > 1e-5 && slope < 1e-3, "dTsat/dp = {slope}");
    }

    #[test]
    fn homogeneous_density_interpolates_between_phases() {
        let s = Refrigerant::R236fa
            .properties()
            .saturation_state(Celsius(30.0).to_kelvin())
            .unwrap();
        assert!((s.homogeneous_density(0.0) - s.rho_liquid).abs() < 1e-9);
        assert!((s.homogeneous_density(1.0) - s.rho_vapor).abs() < 1e-9);
        let mid = s.homogeneous_density(0.2);
        assert!(mid < s.rho_liquid && mid > s.rho_vapor);
    }

    #[test]
    fn out_of_range_queries_error() {
        let props = Refrigerant::R134a.properties();
        assert!(props.saturation_pressure(Kelvin(100.0)).is_err());
        assert!(props.saturation_pressure(Kelvin(400.0)).is_err());
        assert!(props.saturation_temperature(Pressure(0.0)).is_err());
        assert!(props
            .saturation_temperature(Pressure::from_bar(60.0))
            .is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(Refrigerant::R245fa.to_string(), "R245fa");
    }
}
