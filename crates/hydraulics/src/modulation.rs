//! Heat-transfer-structure modulation (§II.C).
//!
//! "The effective convective resistance of heat transfer geometries can be
//! adjusted spatially, by **width** or **density** modulation, in case of
//! micro-channels or pin fin arrays respectively. … the maximal channel
//! width … should only be reduced at locations where the maximal junction
//! temperature would be exceeded. Thus, we have been able to report
//! pressure drop and pumping power improvements by a factor of **2** and
//! **5**."
//!
//! * [`design_width_modulated`] picks, independently per zone along the
//!   channel, the *widest* candidate width whose fully-developed HTC still
//!   holds the wall superheat budget; [`design_uniform`] must use the
//!   hot-spot width everywhere (the worst-case design the paper compares
//!   against). Their pressure-drop ratio is the "factor of 2".
//! * [`pin_density_gains`] performs the same comparison for pin-fin
//!   density modulation, where the resistance contrast is steeper — the
//!   "factor of 5" on pumping power.

use crate::duct::{f_re, nusselt_h1};
use crate::pinfin::PinFinArray;
use crate::{HydraulicsError, LiquidProperties};
use cmosaic_materials::units::Pressure;

/// One axial zone of a channel with its local wall heat flux.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeatZone {
    /// Zone length along the channel (m).
    pub length: f64,
    /// Local wall heat flux to be absorbed (W/m², at the channel level,
    /// i.e. after fin-area enhancement and silicon spreading).
    pub heat_flux: f64,
}

/// A per-zone channel-width assignment with its hydraulic cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDesign {
    /// Chosen channel width per zone (m).
    pub widths: Vec<f64>,
    /// Total channel pressure drop at the design flow (Pa).
    pub pressure_drop: Pressure,
    /// Fully-developed HTC per zone (W/m²K).
    pub htc: Vec<f64>,
}

/// Fully-developed HTC of a `width × height` channel (no flow dependence —
/// laminar fully developed).
fn htc_fd(width: f64, height: f64, fluid: &LiquidProperties) -> f64 {
    let alpha = if width <= height {
        width / height
    } else {
        height / width
    };
    let dh = 2.0 * width * height / (width + height);
    nusselt_h1(alpha) * fluid.conductivity / dh
}

/// Fully-developed pressure gradient (Pa/m) at per-channel flow `q`.
fn dp_per_length(width: f64, height: f64, q: f64, fluid: &LiquidProperties) -> f64 {
    let alpha = if width <= height {
        width / height
    } else {
        height / width
    };
    let dh = 2.0 * width * height / (width + height);
    let u = q / (width * height);
    2.0 * f_re(alpha) * fluid.viscosity * u / (dh * dh)
}

fn validate_inputs(
    zones: &[HeatZone],
    candidate_widths: &[f64],
    height: f64,
    q: f64,
    superheat_budget: f64,
) -> Result<(), HydraulicsError> {
    if zones.is_empty() {
        return Err(HydraulicsError::NonPositive {
            what: "zone count",
            value: 0.0,
        });
    }
    if candidate_widths.is_empty() {
        return Err(HydraulicsError::NonPositive {
            what: "candidate width count",
            value: 0.0,
        });
    }
    for (what, v) in [
        ("channel height", height),
        ("per-channel flow", q),
        ("superheat budget", superheat_budget),
    ] {
        if !(v > 0.0 && v.is_finite()) {
            return Err(HydraulicsError::NonPositive { what, value: v });
        }
    }
    for z in zones {
        if !(z.length > 0.0 && z.heat_flux >= 0.0) {
            return Err(HydraulicsError::NonPositive {
                what: "zone length / heat flux",
                value: z.length.min(z.heat_flux),
            });
        }
    }
    Ok(())
}

/// Width-modulated design: each zone independently gets the widest
/// candidate width whose HTC satisfies `h ≥ q″/ΔT_budget`.
///
/// # Errors
///
/// [`HydraulicsError::Infeasible`] if even the narrowest candidate cannot
/// hold the budget in some zone; [`HydraulicsError::NonPositive`] for
/// invalid inputs.
pub fn design_width_modulated(
    zones: &[HeatZone],
    candidate_widths: &[f64],
    height: f64,
    q_per_channel: f64,
    fluid: &LiquidProperties,
    superheat_budget: f64,
) -> Result<ChannelDesign, HydraulicsError> {
    validate_inputs(
        zones,
        candidate_widths,
        height,
        q_per_channel,
        superheat_budget,
    )?;
    let mut widths = Vec::with_capacity(zones.len());
    let mut htcs = Vec::with_capacity(zones.len());
    let mut dp = 0.0;
    let mut sorted: Vec<f64> = candidate_widths.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite widths"));
    for (i, z) in zones.iter().enumerate() {
        let need = z.heat_flux / superheat_budget;
        let Some(&w) = sorted.iter().find(|&&w| htc_fd(w, height, fluid) >= need) else {
            return Err(HydraulicsError::Infeasible {
                detail: format!(
                    "zone {i}: flux {:.1} W/cm² needs h ≥ {need:.0} W/m²K, narrowest candidate gives {:.0}",
                    z.heat_flux / 1e4,
                    htc_fd(*sorted.last().expect("non-empty"), height, fluid)
                ),
            });
        };
        widths.push(w);
        htcs.push(htc_fd(w, height, fluid));
        dp += dp_per_length(w, height, q_per_channel, fluid) * z.length;
    }
    Ok(ChannelDesign {
        widths,
        pressure_drop: Pressure(dp),
        htc: htcs,
    })
}

/// Uniform worst-case design: the whole channel uses the width the most
/// demanding zone requires.
///
/// # Errors
///
/// Same as [`design_width_modulated`].
pub fn design_uniform(
    zones: &[HeatZone],
    candidate_widths: &[f64],
    height: f64,
    q_per_channel: f64,
    fluid: &LiquidProperties,
    superheat_budget: f64,
) -> Result<ChannelDesign, HydraulicsError> {
    let modulated = design_width_modulated(
        zones,
        candidate_widths,
        height,
        q_per_channel,
        fluid,
        superheat_budget,
    )?;
    let w_hot = modulated
        .widths
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let mut dp = 0.0;
    for z in zones {
        dp += dp_per_length(w_hot, height, q_per_channel, fluid) * z.length;
    }
    let h = htc_fd(w_hot, height, fluid);
    Ok(ChannelDesign {
        widths: vec![w_hot; zones.len()],
        pressure_drop: Pressure(dp),
        htc: vec![h; zones.len()],
    })
}

/// Relative gains of a modulated design over the uniform worst-case one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModulationGains {
    /// `ΔP_uniform / ΔP_modulated` at equal flow.
    pub pressure_ratio: f64,
    /// `P_pump,uniform / P_pump,modulated` at equal flow (equals the
    /// pressure ratio for a fixed-flow comparison).
    pub pump_ratio: f64,
}

/// Gains of width modulation for a zone/flux profile.
///
/// # Errors
///
/// Same as [`design_width_modulated`].
pub fn width_modulation_gains(
    zones: &[HeatZone],
    candidate_widths: &[f64],
    height: f64,
    q_per_channel: f64,
    fluid: &LiquidProperties,
    superheat_budget: f64,
) -> Result<ModulationGains, HydraulicsError> {
    let modulated = design_width_modulated(
        zones,
        candidate_widths,
        height,
        q_per_channel,
        fluid,
        superheat_budget,
    )?;
    let uniform = design_uniform(
        zones,
        candidate_widths,
        height,
        q_per_channel,
        fluid,
        superheat_budget,
    )?;
    let ratio = uniform.pressure_drop.0 / modulated.pressure_drop.0;
    Ok(ModulationGains {
        pressure_ratio: ratio,
        pump_ratio: ratio,
    })
}

/// Gains of pin-fin **density** modulation: a dense array is kept only
/// over the hot fraction of the cavity; the rest uses the sparse array.
/// The uniform design is dense everywhere.
///
/// # Errors
///
/// * [`HydraulicsError::NonPositive`] — `hot_fraction` outside `(0, 1)` or
///   non-positive inputs.
/// * Validity errors forwarded from [`PinFinArray::pressure_drop`].
pub fn pin_density_gains(
    hot_fraction: f64,
    dense: &PinFinArray,
    sparse: &PinFinArray,
    approach_velocity: f64,
    cavity_length: f64,
    fluid: &LiquidProperties,
) -> Result<ModulationGains, HydraulicsError> {
    if !(hot_fraction > 0.0 && hot_fraction < 1.0) {
        return Err(HydraulicsError::NonPositive {
            what: "hot fraction in (0,1)",
            value: hot_fraction,
        });
    }
    let dp_uniform = dense
        .pressure_drop(approach_velocity, cavity_length, fluid)?
        .0;
    let dp_modulated = dense
        .pressure_drop(approach_velocity, cavity_length * hot_fraction, fluid)?
        .0
        + sparse
            .pressure_drop(
                approach_velocity,
                cavity_length * (1.0 - hot_fraction),
                fluid,
            )?
            .0;
    let ratio = dp_uniform / dp_modulated;
    Ok(ModulationGains {
        pressure_ratio: ratio,
        pump_ratio: ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pinfin::Arrangement;
    use cmosaic_materials::units::Kelvin;

    fn water() -> LiquidProperties {
        LiquidProperties::water_at(Kelvin::from_celsius(27.0)).unwrap()
    }

    /// The paper's scenario: a hot-spot stripe over ~30 % of the channel.
    fn zones() -> Vec<HeatZone> {
        vec![
            HeatZone {
                length: 4.0e-3,
                heat_flux: 15.0e4, // 15 W/cm²
            },
            HeatZone {
                length: 3.5e-3,
                heat_flux: 35.0e4, // 35 W/cm² hot spot
            },
            HeatZone {
                length: 4.0e-3,
                heat_flux: 15.0e4,
            },
        ]
    }

    const WIDTHS: [f64; 3] = [40e-6, 55e-6, 70e-6];

    #[test]
    fn modulated_design_narrows_only_the_hot_zone() {
        let d = design_width_modulated(&zones(), &WIDTHS, 100e-6, 8e-9, &water(), 10.0).unwrap();
        assert!(d.widths[1] < d.widths[0], "hot zone must be narrower");
        assert_eq!(d.widths[0], d.widths[2]);
        // Every zone meets its superheat budget.
        for (z, h) in zones().iter().zip(&d.htc) {
            assert!(h * 10.0 >= z.heat_flux, "h={h} q={}", z.heat_flux);
        }
    }

    #[test]
    fn width_modulation_gains_about_factor_two() {
        // §II.C reports a pressure-drop improvement "by a factor of 2".
        let g = width_modulation_gains(&zones(), &WIDTHS, 100e-6, 8e-9, &water(), 10.0).unwrap();
        assert!(
            g.pressure_ratio > 1.6 && g.pressure_ratio < 3.0,
            "pressure ratio = {}",
            g.pressure_ratio
        );
    }

    #[test]
    fn uniform_design_is_never_cheaper() {
        let m = design_width_modulated(&zones(), &WIDTHS, 100e-6, 8e-9, &water(), 10.0).unwrap();
        let u = design_uniform(&zones(), &WIDTHS, 100e-6, 8e-9, &water(), 10.0).unwrap();
        assert!(u.pressure_drop.0 >= m.pressure_drop.0);
    }

    #[test]
    fn infeasible_budget_reported() {
        let r = design_width_modulated(&zones(), &WIDTHS, 100e-6, 8e-9, &water(), 0.5);
        assert!(matches!(r, Err(HydraulicsError::Infeasible { .. })));
    }

    #[test]
    fn pin_density_gains_about_factor_five() {
        // §II.C reports a pumping-power improvement "by a factor of 5" for
        // density modulation with a small hot spot (~10 % of the cavity).
        let w = water();
        let dense = PinFinArray::new(50e-6, 90e-6, 90e-6, 100e-6, Arrangement::InLine).unwrap();
        let sparse = PinFinArray::new(50e-6, 300e-6, 300e-6, 100e-6, Arrangement::InLine).unwrap();
        let g = pin_density_gains(0.1, &dense, &sparse, 0.5, 1.0e-2, &w).unwrap();
        assert!(
            g.pump_ratio > 3.5 && g.pump_ratio < 7.0,
            "pump ratio = {}",
            g.pump_ratio
        );
    }

    #[test]
    fn pin_density_input_validation() {
        let w = water();
        let a = PinFinArray::new(50e-6, 90e-6, 90e-6, 100e-6, Arrangement::InLine).unwrap();
        assert!(pin_density_gains(0.0, &a, &a, 0.5, 1e-2, &w).is_err());
        assert!(pin_density_gains(1.0, &a, &a, 0.5, 1e-2, &w).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(design_width_modulated(&[], &WIDTHS, 1e-4, 1e-9, &water(), 10.0).is_err());
        assert!(design_width_modulated(&zones(), &[], 1e-4, 1e-9, &water(), 10.0).is_err());
    }
}
