//! Circular pin-fin heat-transfer cavities.
//!
//! §II.C considers pin-fin arrays as an alternative to straight channels
//! and reports that **in-line** circular pins give "low pressure drop at
//! acceptable convective heat transfer" compared to **staggered**
//! arrangements. The correlations below are bank-of-tubes laws of the
//! Žukauskas form, with staggered banks trading ≈35 % more heat transfer
//! for roughly twice the flow resistance — the trade the paper's
//! exploration found unfavourable for 3D stacks.

use crate::{HydraulicsError, LiquidProperties};
use cmosaic_materials::units::Pressure;

/// Pin arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arrangement {
    /// Pins aligned in both directions (low ΔP — the paper's choice).
    InLine,
    /// Alternate rows offset by half a pitch (higher heat transfer and
    /// much higher ΔP).
    Staggered,
}

impl std::fmt::Display for Arrangement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arrangement::InLine => "in-line",
            Arrangement::Staggered => "staggered",
        })
    }
}

/// Geometry of a pin-fin cavity section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinFinArray {
    /// Pin diameter (m).
    pub diameter: f64,
    /// Transverse pitch, centre-to-centre across the flow (m).
    pub transverse_pitch: f64,
    /// Longitudinal pitch, centre-to-centre along the flow (m).
    pub longitudinal_pitch: f64,
    /// Pin (cavity) height (m).
    pub height: f64,
    /// Arrangement.
    pub arrangement: Arrangement,
}

impl PinFinArray {
    /// Creates a pin-fin array description.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] unless
    /// `diameter < transverse_pitch`, `diameter < longitudinal_pitch` and
    /// all dimensions are positive.
    pub fn new(
        diameter: f64,
        transverse_pitch: f64,
        longitudinal_pitch: f64,
        height: f64,
        arrangement: Arrangement,
    ) -> Result<Self, HydraulicsError> {
        for (what, v) in [
            ("pin diameter", diameter),
            ("transverse pitch", transverse_pitch),
            ("longitudinal pitch", longitudinal_pitch),
            ("pin height", height),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(HydraulicsError::NonPositive { what, value: v });
            }
        }
        if transverse_pitch <= diameter || longitudinal_pitch <= diameter {
            return Err(HydraulicsError::NonPositive {
                what: "pitch minus diameter",
                value: (transverse_pitch - diameter).min(longitudinal_pitch - diameter),
            });
        }
        Ok(PinFinArray {
            diameter,
            transverse_pitch,
            longitudinal_pitch,
            height,
            arrangement,
        })
    }

    /// Number of pin rows over a cavity of length `l` (m).
    pub fn rows(&self, l: f64) -> usize {
        (l / self.longitudinal_pitch).floor() as usize
    }

    /// Maximum (minimum-gap) velocity for an approach velocity `u` (m/s).
    pub fn max_velocity(&self, u: f64) -> f64 {
        u * self.transverse_pitch / (self.transverse_pitch - self.diameter)
    }

    /// Pin Reynolds number at approach velocity `u`.
    pub fn reynolds(&self, u: f64, fluid: &LiquidProperties) -> f64 {
        fluid.density * self.max_velocity(u) * self.diameter / fluid.viscosity
    }

    /// Mean pin Nusselt number at approach velocity `u` (Žukauskas-form:
    /// `Nu = C·Re^0.5·Pr^0.36`, `C = 0.52` in-line / `0.71` staggered).
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::OutOfValidityRange`] outside
    /// `1 < Re < 1e4`.
    pub fn nusselt(&self, u: f64, fluid: &LiquidProperties) -> Result<f64, HydraulicsError> {
        let re = self.reynolds(u, fluid);
        if !(1.0..1.0e4).contains(&re) {
            return Err(HydraulicsError::OutOfValidityRange {
                detail: format!("pin Re = {re:.1} outside (1, 1e4)"),
            });
        }
        let c = match self.arrangement {
            Arrangement::InLine => 0.52,
            Arrangement::Staggered => 0.71,
        };
        Ok(c * re.sqrt() * fluid.prandtl().powf(0.36))
    }

    /// Heat-transfer coefficient on the pin surface (W/m²K).
    ///
    /// # Errors
    ///
    /// Same as [`PinFinArray::nusselt`].
    pub fn heat_transfer_coefficient(
        &self,
        u: f64,
        fluid: &LiquidProperties,
    ) -> Result<f64, HydraulicsError> {
        Ok(self.nusselt(u, fluid)? * fluid.conductivity / self.diameter)
    }

    /// Pressure drop across a cavity of length `l` at approach velocity
    /// `u`: `ΔP = N_rows · Eu · ρ·u_max²/2` with the Euler number
    /// `Eu = C_f·(Re/100)^(-0.35)` (`C_f = 0.9` in-line, `1.8` staggered).
    ///
    /// # Errors
    ///
    /// Same validity window as [`PinFinArray::nusselt`].
    pub fn pressure_drop(
        &self,
        u: f64,
        l: f64,
        fluid: &LiquidProperties,
    ) -> Result<Pressure, HydraulicsError> {
        let re = self.reynolds(u, fluid);
        if !(1.0..1.0e4).contains(&re) {
            return Err(HydraulicsError::OutOfValidityRange {
                detail: format!("pin Re = {re:.1} outside (1, 1e4)"),
            });
        }
        let cf = match self.arrangement {
            Arrangement::InLine => 0.9,
            Arrangement::Staggered => 1.8,
        };
        let eu = cf * (re / 100.0).powf(-0.35);
        let umax = self.max_velocity(u);
        let rows = self.rows(l) as f64;
        Ok(Pressure(rows * eu * fluid.density * umax * umax / 2.0))
    }

    /// Wetted pin surface area per unit footprint area (the fin-area
    /// multiplier): `π·d·h / (s_t·s_l)` plus the base plate.
    pub fn area_enhancement(&self) -> f64 {
        1.0 + std::f64::consts::PI * self.diameter * self.height
            / (self.transverse_pitch * self.longitudinal_pitch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Kelvin;

    fn water() -> LiquidProperties {
        LiquidProperties::water_at(Kelvin::from_celsius(27.0)).unwrap()
    }

    fn array(arrangement: Arrangement) -> PinFinArray {
        // 50 µm pins on 150 µm pitches, 100 µm tall: TSV-compatible.
        PinFinArray::new(50e-6, 150e-6, 150e-6, 100e-6, arrangement).unwrap()
    }

    #[test]
    fn staggered_transfers_more_heat_but_drops_more_pressure() {
        let w = water();
        let u = 1.0;
        let inline = array(Arrangement::InLine);
        let stag = array(Arrangement::Staggered);
        let nu_i = inline.nusselt(u, &w).unwrap();
        let nu_s = stag.nusselt(u, &w).unwrap();
        let dp_i = inline.pressure_drop(u, 1e-2, &w).unwrap().0;
        let dp_s = stag.pressure_drop(u, 1e-2, &w).unwrap().0;
        assert!(nu_s > nu_i, "staggered must transfer more heat");
        assert!(dp_s > 1.7 * dp_i, "staggered must cost much more ΔP");
        // The paper's conclusion: in-line wins on ΔP per unit heat
        // transfer.
        assert!(dp_i / nu_i < dp_s / nu_s);
    }

    #[test]
    fn velocity_concentration_at_min_gap() {
        let a = array(Arrangement::InLine);
        // 150/(150-50) = 1.5x.
        assert!((a.max_velocity(2.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rows_count() {
        let a = array(Arrangement::InLine);
        assert_eq!(a.rows(11.5e-3), 76);
    }

    #[test]
    fn area_enhancement_above_one() {
        let a = array(Arrangement::Staggered);
        assert!(a.area_enhancement() > 1.5);
    }

    #[test]
    fn validity_limits_enforced() {
        let a = array(Arrangement::InLine);
        let w = water();
        assert!(a.nusselt(1e-6, &w).is_err(), "creeping flow rejected");
        assert!(a.pressure_drop(250.0, 1e-2, &w).is_err(), "Re too high");
    }

    #[test]
    fn geometry_validation() {
        assert!(PinFinArray::new(0.0, 1e-4, 1e-4, 1e-4, Arrangement::InLine).is_err());
        // Pitch must exceed diameter.
        assert!(PinFinArray::new(2e-4, 1e-4, 3e-4, 1e-4, Arrangement::InLine).is_err());
        assert_eq!(Arrangement::InLine.to_string(), "in-line");
    }
}
