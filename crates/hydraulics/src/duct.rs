//! Laminar flow and heat transfer in rectangular micro-channels.
//!
//! Correlations (all standard, see Shah & London, *Laminar Flow Forced
//! Convection in Ducts*, 1978):
//!
//! * Fully-developed Fanning friction factor:
//!   `f·Re = 24·(1 − 1.3553α + 1.9467α² − 1.7012α³ + 0.9564α⁴ − 0.2537α⁵)`
//!   where `α` is the aspect ratio (short/long side).
//! * Fully-developed Nusselt number for the H1 boundary condition:
//!   `Nu = 8.235·(1 − 2.0421α + 3.0853α² − 2.4765α³ + 1.0578α⁴ − 0.1861α⁵)`.
//! * Thermal entrance enhancement (Hausen):
//!   `Nu_m = Nu_fd + 0.0668·Gz / (1 + 0.04·Gz^{2/3})`, `Gz = (D_h/L)·Re·Pr`.
//! * Developing-flow (Hagenbach) pressure excess `K_∞·ρu²/2` with
//!   `K_∞ ≈ 1.2 + 0.6·α`.
//!
//! Validity is laminar flow; the functions reject `Re > 2300`.

use crate::{HydraulicsError, LiquidProperties};
use cmosaic_materials::units::Pressure;

/// Upper Reynolds bound for the laminar correlations.
pub const RE_LAMINAR_MAX: f64 = 2300.0;

/// Geometry of one rectangular channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelGeometry {
    width: f64,
    height: f64,
    length: f64,
}

impl ChannelGeometry {
    /// Creates a channel from width, height and length in metres.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] for non-positive dimensions.
    pub fn new(width: f64, height: f64, length: f64) -> Result<Self, HydraulicsError> {
        for (what, v) in [
            ("channel width", width),
            ("channel height", height),
            ("channel length", length),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(HydraulicsError::NonPositive { what, value: v });
            }
        }
        Ok(ChannelGeometry {
            width,
            height,
            length,
        })
    }

    /// The Table I channel: 50 µm × 100 µm over an 11.5 mm die.
    pub fn table1() -> Self {
        ChannelGeometry {
            width: 50e-6,
            height: 100e-6,
            length: 11.5e-3,
        }
    }

    /// Channel width (m).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Channel height (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Channel length (m).
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Flow cross-section area (m²).
    pub fn cross_area(&self) -> f64 {
        self.width * self.height
    }

    /// Aspect ratio `short/long ∈ (0, 1]`.
    pub fn aspect_ratio(&self) -> f64 {
        let (a, b) = if self.width <= self.height {
            (self.width, self.height)
        } else {
            (self.height, self.width)
        };
        a / b
    }

    /// Hydraulic diameter `2wh/(w+h)` (m).
    pub fn hydraulic_diameter(&self) -> f64 {
        2.0 * self.width * self.height / (self.width + self.height)
    }

    /// Mean velocity for a volumetric flow `q` (m³/s) through this channel.
    pub fn velocity(&self, q: f64) -> f64 {
        q / self.cross_area()
    }

    /// Reynolds number at flow `q`.
    pub fn reynolds(&self, q: f64, fluid: &LiquidProperties) -> f64 {
        fluid.density * self.velocity(q) * self.hydraulic_diameter() / fluid.viscosity
    }

    /// Pressure drop across the channel at flow `q` (m³/s), laminar.
    ///
    /// # Errors
    ///
    /// * [`HydraulicsError::NonPositive`] — non-positive flow.
    /// * [`HydraulicsError::OutOfValidityRange`] — turbulent flow.
    pub fn pressure_drop(
        &self,
        q: f64,
        fluid: &LiquidProperties,
    ) -> Result<Pressure, HydraulicsError> {
        if !(q > 0.0 && q.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "volumetric flow",
                value: q,
            });
        }
        let re = self.reynolds(q, fluid);
        if re > RE_LAMINAR_MAX {
            return Err(HydraulicsError::OutOfValidityRange {
                detail: format!("Re = {re:.0} > {RE_LAMINAR_MAX} (turbulent)"),
            });
        }
        let u = self.velocity(q);
        let dh = self.hydraulic_diameter();
        let fd = 2.0 * f_re(self.aspect_ratio()) * fluid.viscosity * u * self.length / (dh * dh);
        let k_inf = 1.2 + 0.6 * self.aspect_ratio();
        let developing = k_inf * fluid.density * u * u / 2.0;
        Ok(Pressure(fd + developing))
    }

    /// Mean heat-transfer coefficient (W/m²K) at flow `q`, including the
    /// thermal-entrance enhancement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ChannelGeometry::pressure_drop`].
    pub fn heat_transfer_coefficient(
        &self,
        q: f64,
        fluid: &LiquidProperties,
    ) -> Result<f64, HydraulicsError> {
        if !(q > 0.0 && q.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "volumetric flow",
                value: q,
            });
        }
        let re = self.reynolds(q, fluid);
        if re > RE_LAMINAR_MAX {
            return Err(HydraulicsError::OutOfValidityRange {
                detail: format!("Re = {re:.0} > {RE_LAMINAR_MAX} (turbulent)"),
            });
        }
        let dh = self.hydraulic_diameter();
        let gz = dh / self.length * re * fluid.prandtl();
        let nu = nusselt_h1(self.aspect_ratio()) + 0.0668 * gz / (1.0 + 0.04 * gz.powf(2.0 / 3.0));
        Ok(nu * fluid.conductivity / dh)
    }

    /// Caloric (bulk fluid) temperature rise for heat `power` (W) absorbed
    /// by flow `q`: `ΔT = P / (ρ·c_p·q)`.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] if `q <= 0`.
    pub fn caloric_rise(
        &self,
        power: f64,
        q: f64,
        fluid: &LiquidProperties,
    ) -> Result<f64, HydraulicsError> {
        if !(q > 0.0 && q.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "volumetric flow",
                value: q,
            });
        }
        Ok(power / (fluid.volumetric_heat_capacity() * q))
    }
}

/// Fully-developed Fanning friction factor–Reynolds product for a
/// rectangular duct of aspect ratio `alpha ∈ (0, 1]`.
///
/// Limits: parallel plates (`α→0`) → 24, square duct (`α=1`) → 14.23.
pub fn f_re(alpha: f64) -> f64 {
    let a = alpha.clamp(0.0, 1.0);
    24.0 * (1.0 - 1.3553 * a + 1.9467 * a * a - 1.7012 * a.powi(3) + 0.9564 * a.powi(4)
        - 0.2537 * a.powi(5))
}

/// Fully-developed Nusselt number (H1: axially constant heat flux,
/// circumferentially constant temperature) for aspect ratio
/// `alpha ∈ (0, 1]`.
///
/// Limits: parallel plates → 8.235, square duct → 3.61.
pub fn nusselt_h1(alpha: f64) -> f64 {
    let a = alpha.clamp(0.0, 1.0);
    8.235
        * (1.0 - 2.0421 * a + 3.0853 * a * a - 2.4765 * a.powi(3) + 1.0578 * a.powi(4)
            - 0.1861 * a.powi(5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmosaic_materials::units::Kelvin;

    fn water() -> LiquidProperties {
        LiquidProperties::water_at(Kelvin::from_celsius(27.0)).unwrap()
    }

    #[test]
    fn f_re_matches_handbook_limits() {
        assert!((f_re(1.0) - 14.23).abs() < 0.1, "square: {}", f_re(1.0));
        assert!((f_re(0.0) - 24.0).abs() < 1e-9, "plates: {}", f_re(0.0));
        // Monotonically decreasing with aspect ratio.
        assert!(f_re(0.2) > f_re(0.5));
        assert!(f_re(0.5) > f_re(0.9));
    }

    #[test]
    fn nusselt_matches_handbook_limits() {
        assert!(
            (nusselt_h1(1.0) - 3.61).abs() < 0.1,
            "square: {}",
            nusselt_h1(1.0)
        );
        assert!((nusselt_h1(0.0) - 8.235).abs() < 1e-9);
    }

    #[test]
    fn table1_channel_operating_point() {
        // Table I max flow (32.3 ml/min) over 66 channels.
        let g = ChannelGeometry::table1();
        let q = 32.3e-6 / 60.0 / 66.0;
        let w = water();
        let re = g.reynolds(q, &w);
        assert!(
            re > 50.0 && re < 300.0,
            "Re = {re} should be deeply laminar"
        );
        let dp = g.pressure_drop(q, &w).unwrap();
        // Micro-channel pressure drops are O(1 bar) at this operating point.
        assert!(dp.to_bar() > 0.3 && dp.to_bar() < 3.0, "dp = {dp}");
        let h = g.heat_transfer_coefficient(q, &w).unwrap();
        assert!(h > 2.0e4 && h < 1.0e5, "h = {h} W/m²K");
    }

    #[test]
    fn pressure_drop_increases_with_flow() {
        let g = ChannelGeometry::table1();
        let w = water();
        let dp1 = g.pressure_drop(5e-9, &w).unwrap();
        let dp2 = g.pressure_drop(1e-8, &w).unwrap();
        assert!(dp2.0 > dp1.0 * 1.9, "laminar dp is ~linear in q");
    }

    #[test]
    fn htc_increases_with_flow() {
        let g = ChannelGeometry::table1();
        let w = water();
        let h1 = g.heat_transfer_coefficient(2e-9, &w).unwrap();
        let h2 = g.heat_transfer_coefficient(1e-8, &w).unwrap();
        assert!(h2 > h1, "entrance effect grows with Re");
    }

    #[test]
    fn narrower_channels_have_higher_htc_and_dp() {
        // §II.C: "The smaller the hydraulic diameter at a given mass flow
        // rate, the higher the heat transfer and the associated pressure
        // gradient."
        let w = water();
        let q = 6e-9;
        let narrow = ChannelGeometry::new(30e-6, 100e-6, 11.5e-3).unwrap();
        let wide = ChannelGeometry::new(100e-6, 100e-6, 11.5e-3).unwrap();
        assert!(
            narrow.heat_transfer_coefficient(q, &w).unwrap()
                > wide.heat_transfer_coefficient(q, &w).unwrap()
        );
        assert!(narrow.pressure_drop(q, &w).unwrap().0 > wide.pressure_drop(q, &w).unwrap().0);
    }

    #[test]
    fn caloric_rise_matches_paper_example() {
        // §II.C: ~40 K fluid rise at 130 W per tier with water. With
        // ρc_p·Q = 130/40 => Q ≈ 46.7 ml/min; check the formula inverts.
        let g = ChannelGeometry::table1();
        let w = water();
        let q_total = 130.0 / (w.volumetric_heat_capacity() * 40.0);
        let dt = g.caloric_rise(130.0, q_total, &w).unwrap();
        assert!((dt - 40.0).abs() < 1e-9);
        let ml_min = q_total * 60.0 * 1e6;
        assert!(ml_min > 30.0 && ml_min < 60.0, "{ml_min} ml/min");
    }

    #[test]
    fn turbulent_flow_rejected() {
        let g = ChannelGeometry::table1();
        let w = water();
        assert!(matches!(
            g.pressure_drop(1e-5, &w),
            Err(HydraulicsError::OutOfValidityRange { .. })
        ));
        assert!(g.heat_transfer_coefficient(1e-5, &w).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ChannelGeometry::new(0.0, 1e-4, 1e-2).is_err());
        let g = ChannelGeometry::table1();
        assert!(g.pressure_drop(0.0, &water()).is_err());
        assert!(g.caloric_rise(10.0, -1.0, &water()).is_err());
    }
}
