//! Pumping power models.
//!
//! Two views of the same quantity:
//!
//! * [`PumpMap::table1`] — the paper's empirical pumping-*network* power
//!   (Table I: 3.5 W at 10 ml/min, 11.176 W at 32.3 ml/min per cavity).
//!   This includes the pump, heat exchanger and tubing of the cluster
//!   cooling loop, which is why it is two orders of magnitude above the
//!   pure hydraulic power. The two Table I endpoints are collinear with the
//!   origin (0.35 vs 0.346 W per ml/min), so the map is affine and nearly
//!   proportional.
//! * [`hydraulic_power`] — the physical `ΔP·Q/η` power, used by the
//!   cavity-design benches where only relative factors matter.

use crate::HydraulicsError;
use cmosaic_materials::units::{Power, Pressure, VolumetricFlow};

/// Affine flow→power map for the pumping network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PumpMap {
    q_low: VolumetricFlow,
    p_low: Power,
    q_high: VolumetricFlow,
    p_high: Power,
}

impl PumpMap {
    /// The Table I pumping network: 3.5 W at 10 ml/min, 11.176 W at
    /// 32.3 ml/min (per cavity).
    pub fn table1() -> Self {
        PumpMap {
            q_low: VolumetricFlow::from_ml_per_min(10.0),
            p_low: Power(3.5),
            q_high: VolumetricFlow::from_ml_per_min(32.3),
            p_high: Power(11.176),
        }
    }

    /// Creates a custom map from two `(flow, power)` anchor points.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] unless
    /// `0 <= q_low < q_high` and powers are non-negative.
    pub fn new(
        q_low: VolumetricFlow,
        p_low: Power,
        q_high: VolumetricFlow,
        p_high: Power,
    ) -> Result<Self, HydraulicsError> {
        if !(q_high.0 > q_low.0 && q_low.0 >= 0.0) {
            return Err(HydraulicsError::NonPositive {
                what: "pump map flow interval",
                value: q_high.0 - q_low.0,
            });
        }
        if p_low.0 < 0.0 || p_high.0 < p_low.0 {
            return Err(HydraulicsError::NonPositive {
                what: "pump map power interval",
                value: p_high.0 - p_low.0,
            });
        }
        Ok(PumpMap {
            q_low,
            p_low,
            q_high,
            p_high,
        })
    }

    /// Lowest mapped flow.
    pub fn q_min(&self) -> VolumetricFlow {
        self.q_low
    }

    /// Highest mapped flow.
    pub fn q_max(&self) -> VolumetricFlow {
        self.q_high
    }

    /// Pumping power at flow `q` (clamped to the mapped range — the pump
    /// cannot run outside its operating envelope).
    pub fn power(&self, q: VolumetricFlow) -> Power {
        let q = q.0.clamp(self.q_low.0, self.q_high.0);
        let frac = (q - self.q_low.0) / (self.q_high.0 - self.q_low.0);
        Power(self.p_low.0 + frac * (self.p_high.0 - self.p_low.0))
    }
}

impl Default for PumpMap {
    fn default() -> Self {
        PumpMap::table1()
    }
}

/// Physical pumping power `ΔP·Q/η`.
///
/// # Errors
///
/// Returns [`HydraulicsError::NonPositive`] if `efficiency` is not in
/// `(0, 1]` or the flow is negative.
pub fn hydraulic_power(
    dp: Pressure,
    q: VolumetricFlow,
    efficiency: f64,
) -> Result<Power, HydraulicsError> {
    if !(efficiency > 0.0 && efficiency <= 1.0) {
        return Err(HydraulicsError::NonPositive {
            what: "pump efficiency",
            value: efficiency,
        });
    }
    if q.0 < 0.0 {
        return Err(HydraulicsError::NonPositive {
            what: "volumetric flow",
            value: q.0,
        });
    }
    Ok(Power(dp.0 * q.0 / efficiency))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_endpoints_reproduce() {
        let m = PumpMap::table1();
        assert!((m.power(VolumetricFlow::from_ml_per_min(10.0)).0 - 3.5).abs() < 1e-12);
        assert!((m.power(VolumetricFlow::from_ml_per_min(32.3)).0 - 11.176).abs() < 1e-12);
    }

    #[test]
    fn map_is_monotone_and_clamped() {
        let m = PumpMap::table1();
        let p_mid = m.power(VolumetricFlow::from_ml_per_min(20.0)).0;
        assert!(p_mid > 3.5 && p_mid < 11.176);
        // Clamping below/above the envelope.
        assert_eq!(m.power(VolumetricFlow::from_ml_per_min(1.0)).0, 3.5);
        assert_eq!(m.power(VolumetricFlow::from_ml_per_min(99.0)).0, 11.176);
    }

    #[test]
    fn nearly_proportional() {
        // The Table I anchors lie on a ~0.346 W/(ml/min) line through the
        // origin; interpolated values stay within 5 % of proportionality.
        let m = PumpMap::table1();
        for ml in [12.0, 18.0, 25.0, 30.0] {
            let p = m.power(VolumetricFlow::from_ml_per_min(ml)).0;
            let prop = 0.346 * ml;
            assert!((p - prop).abs() / prop < 0.05, "{ml} ml/min: {p} vs {prop}");
        }
    }

    #[test]
    fn hydraulic_power_formula() {
        let p = hydraulic_power(
            Pressure::from_bar(1.0),
            VolumetricFlow::from_ml_per_min(32.3),
            0.3,
        )
        .unwrap();
        // 1e5 Pa · 5.38e-7 m³/s / 0.3 ≈ 0.18 W.
        assert!((p.0 - 0.179).abs() < 0.01, "{p}");
        assert!(hydraulic_power(Pressure(1.0), VolumetricFlow(1.0), 0.0).is_err());
        assert!(hydraulic_power(Pressure(1.0), VolumetricFlow(-1.0), 0.5).is_err());
    }

    #[test]
    fn invalid_maps_rejected() {
        let q = VolumetricFlow::from_ml_per_min;
        assert!(PumpMap::new(q(10.0), Power(3.0), q(5.0), Power(5.0)).is_err());
        assert!(PumpMap::new(q(5.0), Power(5.0), q(10.0), Power(3.0)).is_err());
    }
}
