//! Hydrodynamic resistor networks for *fluid focusing* (§II.C, Fig. 4).
//!
//! In the laminar regime a channel segment behaves as a linear hydraulic
//! resistor (`q = g·Δp`). A cavity with guiding structures is then a 2D
//! resistor lattice: widened segments on the inlet→hot-spot→outlet path
//! raise the local conductance, while the guiding walls choke the
//! peripheral paths. Solving the Kirchhoff system (with the inlet manifold
//! at the pump pressure and the outlet at zero) gives per-segment flows —
//! the quantity Fig. 4 visualises.

use crate::HydraulicsError;
use cmosaic_materials::units::Pressure;
use cmosaic_sparse::{lu, TripletMatrix};

/// A 2D lattice of hydraulic conductances. Nodes form an `nx × ny` grid;
/// flow enters the whole `ix = 0` column (inlet manifold) and leaves the
/// `ix = nx−1` column (outlet manifold).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowNetwork {
    nx: usize,
    ny: usize,
    /// Horizontal edge conductances, `(nx-1) × ny`, in m³/(s·Pa).
    gh: Vec<f64>,
    /// Vertical edge conductances, `nx × (ny-1)`.
    gv: Vec<f64>,
}

impl FlowNetwork {
    /// Creates a uniform lattice with all edges at conductance `g`.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] if `nx < 2`, `ny < 1` or
    /// `g <= 0`.
    pub fn uniform(nx: usize, ny: usize, g: f64) -> Result<Self, HydraulicsError> {
        if nx < 2 || ny < 1 {
            return Err(HydraulicsError::NonPositive {
                what: "network dimensions (nx >= 2, ny >= 1)",
                value: nx.min(ny) as f64,
            });
        }
        if !(g > 0.0 && g.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "edge conductance",
                value: g,
            });
        }
        Ok(FlowNetwork {
            nx,
            ny,
            gh: vec![g; (nx - 1) * ny],
            gv: vec![g; nx * (ny - 1)],
        })
    }

    /// Grid width (number of node columns).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (number of node rows).
    pub fn ny(&self) -> usize {
        self.ny
    }

    fn node(&self, ix: usize, iy: usize) -> usize {
        iy * self.nx + ix
    }

    /// Scales the horizontal edge from `(ix, iy)` to `(ix+1, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range or the factor is not positive.
    pub fn scale_horizontal(&mut self, ix: usize, iy: usize, factor: f64) {
        assert!(ix + 1 < self.nx && iy < self.ny, "edge out of range");
        assert!(factor > 0.0, "scale factor must be positive");
        self.gh[iy * (self.nx - 1) + ix] *= factor;
    }

    /// Scales the vertical edge from `(ix, iy)` to `(ix, iy+1)`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range or the factor is not positive.
    pub fn scale_vertical(&mut self, ix: usize, iy: usize, factor: f64) {
        assert!(ix < self.nx && iy + 1 < self.ny, "edge out of range");
        assert!(factor > 0.0, "scale factor must be positive");
        self.gv[ix * (self.ny - 1) + iy] *= factor;
    }

    /// Applies a guiding-structure pattern: horizontal edges in rows
    /// `hot_rows` are widened by `boost`, all other horizontal edges are
    /// choked by `choke` (the guiding walls).
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of range or factors are not positive.
    pub fn apply_focusing(&mut self, hot_rows: &[usize], boost: f64, choke: f64) {
        assert!(boost > 0.0 && choke > 0.0);
        for iy in 0..self.ny {
            let factor = if hot_rows.contains(&iy) { boost } else { choke };
            for ix in 0..self.nx - 1 {
                self.scale_horizontal(ix, iy, factor);
            }
        }
    }

    /// Solves the network with the inlet column at `p_in` and the outlet
    /// column at zero gauge pressure.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::Solver`] if the linear system is singular
    /// (cannot happen for positive conductances) and
    /// [`HydraulicsError::NonPositive`] for a non-positive drive pressure.
    pub fn solve(&self, p_in: Pressure) -> Result<NetworkSolution, HydraulicsError> {
        if !(p_in.0 > 0.0 && p_in.0.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "inlet pressure",
                value: p_in.0,
            });
        }
        let n = self.nx * self.ny;
        let mut t = TripletMatrix::new(n, n);
        let mut rhs = vec![0.0; n];
        let dirichlet = |ix: usize| ix == 0 || ix == self.nx - 1;

        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let i = self.node(ix, iy);
                if dirichlet(ix) {
                    t.push(i, i, 1.0);
                    rhs[i] = if ix == 0 { p_in.0 } else { 0.0 };
                }
            }
        }
        // Kirchhoff current law at free nodes; edges to Dirichlet nodes
        // contribute to the RHS.
        let stamp = |t: &mut TripletMatrix,
                         rhs: &mut Vec<f64>,
                         (ia, dir_a): (usize, bool),
                         (ib, dir_b): (usize, bool),
                         g: f64| {
            if !dir_a {
                t.push(ia, ia, g);
                if dir_b {
                    // p_b known: move to RHS later via rhs adjustment below.
                } else {
                    t.push(ia, ib, -g);
                }
            }
            if !dir_b {
                t.push(ib, ib, g);
                if !dir_a {
                    t.push(ib, ia, -g);
                }
            }
            // RHS contributions for edges touching Dirichlet nodes.
            if dir_b && !dir_a {
                rhs[ia] += g * rhs[ib];
            }
            if dir_a && !dir_b {
                rhs[ib] += g * rhs[ia];
            }
        };

        for iy in 0..self.ny {
            for ix in 0..self.nx - 1 {
                let a = self.node(ix, iy);
                let b = self.node(ix + 1, iy);
                let g = self.gh[iy * (self.nx - 1) + ix];
                stamp(&mut t, &mut rhs, (a, dirichlet(ix)), (b, dirichlet(ix + 1)), g);
            }
        }
        for ix in 0..self.nx {
            for iy in 0..self.ny - 1 {
                let a = self.node(ix, iy);
                let b = self.node(ix, iy + 1);
                let g = self.gv[ix * (self.ny - 1) + iy];
                stamp(&mut t, &mut rhs, (a, dirichlet(ix)), (b, dirichlet(ix)), g);
            }
        }

        let factors = lu::factor(&t.to_csc())
            .map_err(|e| HydraulicsError::Solver(e.to_string()))?;
        let pressures = factors
            .solve(&rhs)
            .map_err(|e| HydraulicsError::Solver(e.to_string()))?;
        Ok(NetworkSolution {
            network: self.clone(),
            pressures,
        })
    }
}

/// Solved pressures and derived flows of a [`FlowNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSolution {
    network: FlowNetwork,
    pressures: Vec<f64>,
}

impl NetworkSolution {
    /// Node pressure at `(ix, iy)` in Pa.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn pressure(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.network.nx && iy < self.network.ny);
        self.pressures[self.network.node(ix, iy)]
    }

    /// Flow (m³/s) through the horizontal edge from `(ix, iy)` to
    /// `(ix+1, iy)` (positive towards the outlet).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn horizontal_flow(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix + 1 < self.network.nx && iy < self.network.ny);
        let g = self.network.gh[iy * (self.network.nx - 1) + ix];
        g * (self.pressure(ix, iy) - self.pressure(ix + 1, iy))
    }

    /// Total aggregate flow from inlet to outlet (sum over the first edge
    /// column).
    pub fn total_flow(&self) -> f64 {
        (0..self.network.ny)
            .map(|iy| self.horizontal_flow(0, iy))
            .sum()
    }

    /// Flow passing through row `iy` at the mid-length of the cavity — the
    /// "hot-spot flow" when the hot spot sits mid-cavity on that row.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn row_flow_at_mid(&self, iy: usize) -> f64 {
        let ix = (self.network.nx - 1) / 2;
        self.horizontal_flow(ix, iy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_network_splits_flow_evenly() {
        let net = FlowNetwork::uniform(6, 4, 1e-12).unwrap();
        let sol = net.solve(Pressure::from_bar(1.0)).unwrap();
        let flows: Vec<f64> = (0..4).map(|iy| sol.row_flow_at_mid(iy)).collect();
        for f in &flows {
            assert!((f - flows[0]).abs() < 1e-9 * flows[0].abs());
        }
        // Series of 5 edges at g: per-row flow = g/5 · Δp.
        let expected = 1e-12 / 5.0 * 1e5;
        assert!((flows[0] - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn mass_is_conserved_column_to_column() {
        let mut net = FlowNetwork::uniform(8, 5, 2e-12).unwrap();
        net.scale_vertical(3, 1, 0.2);
        net.scale_horizontal(2, 2, 4.0);
        let sol = net.solve(Pressure::from_bar(0.5)).unwrap();
        let col_flow = |ix: usize| -> f64 { (0..5).map(|iy| sol.horizontal_flow(ix, iy)).sum() };
        let first = col_flow(0);
        for ix in 1..7 {
            assert!(
                (col_flow(ix) - first).abs() < 1e-9 * first.abs(),
                "column {ix} violates continuity"
            );
        }
    }

    #[test]
    fn focusing_raises_hot_row_flow_and_cuts_aggregate_flow() {
        // Fig. 4: fluid-focused cavity vs uniform cavity.
        let uniform = FlowNetwork::uniform(10, 8, 1e-12).unwrap();
        let base = uniform.solve(Pressure::from_bar(1.0)).unwrap();

        let mut focused = FlowNetwork::uniform(10, 8, 1e-12).unwrap();
        focused.apply_focusing(&[3, 4], 2.5, 0.4);
        let sol = focused.solve(Pressure::from_bar(1.0)).unwrap();

        let hot_gain = sol.row_flow_at_mid(3) / base.row_flow_at_mid(3);
        let aggregate = sol.total_flow() / base.total_flow();
        assert!(hot_gain > 1.5, "hot-spot flow gain = {hot_gain}");
        assert!(aggregate < 1.0, "aggregate flow ratio = {aggregate}");
    }

    #[test]
    fn pressures_fall_monotonically_along_uniform_rows() {
        let net = FlowNetwork::uniform(7, 3, 1e-12).unwrap();
        let sol = net.solve(Pressure::from_bar(1.0)).unwrap();
        for iy in 0..3 {
            for ix in 0..6 {
                assert!(sol.pressure(ix, iy) > sol.pressure(ix + 1, iy));
            }
        }
        // Boundary conditions hold exactly.
        assert!((sol.pressure(0, 1) - 1e5).abs() < 1e-9);
        assert!(sol.pressure(6, 1).abs() < 1e-9);
    }

    #[test]
    fn invalid_networks_rejected() {
        assert!(FlowNetwork::uniform(1, 4, 1.0).is_err());
        assert!(FlowNetwork::uniform(4, 0, 1.0).is_err());
        assert!(FlowNetwork::uniform(4, 4, 0.0).is_err());
        let net = FlowNetwork::uniform(4, 4, 1.0).unwrap();
        assert!(net.solve(Pressure(0.0)).is_err());
    }
}
