//! Hydrodynamic resistor networks for *fluid focusing* (§II.C, Fig. 4).
//!
//! In the laminar regime a channel segment behaves as a linear hydraulic
//! resistor (`q = g·Δp`). A cavity with guiding structures is then a 2D
//! resistor lattice: widened segments on the inlet→hot-spot→outlet path
//! raise the local conductance, while the guiding walls choke the
//! peripheral paths. Solving the Kirchhoff system (with the inlet manifold
//! at the pump pressure and the outlet at zero) gives per-segment flows —
//! the quantity Fig. 4 visualises.

use crate::HydraulicsError;
use cmosaic_materials::units::Pressure;
use cmosaic_sparse::{lu, CscMatrix, LuFactors, SparseError, SymbolicLu, TripletMatrix};

/// A 2D lattice of hydraulic conductances. Nodes form an `nx × ny` grid;
/// flow enters the whole `ix = 0` column (inlet manifold) and leaves the
/// `ix = nx−1` column (outlet manifold).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowNetwork {
    nx: usize,
    ny: usize,
    /// Horizontal edge conductances, `(nx-1) × ny`, in m³/(s·Pa).
    gh: Vec<f64>,
    /// Vertical edge conductances, `nx × (ny-1)`.
    gv: Vec<f64>,
}

impl FlowNetwork {
    /// Creates a uniform lattice with all edges at conductance `g`.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::NonPositive`] if `nx < 2`, `ny < 1` or
    /// `g <= 0`.
    pub fn uniform(nx: usize, ny: usize, g: f64) -> Result<Self, HydraulicsError> {
        if nx < 2 || ny < 1 {
            return Err(HydraulicsError::NonPositive {
                what: "network dimensions (nx >= 2, ny >= 1)",
                value: nx.min(ny) as f64,
            });
        }
        if !(g > 0.0 && g.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "edge conductance",
                value: g,
            });
        }
        Ok(FlowNetwork {
            nx,
            ny,
            gh: vec![g; (nx - 1) * ny],
            gv: vec![g; nx * (ny - 1)],
        })
    }

    /// Grid width (number of node columns).
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height (number of node rows).
    pub fn ny(&self) -> usize {
        self.ny
    }

    fn node(&self, ix: usize, iy: usize) -> usize {
        iy * self.nx + ix
    }

    /// Scales the horizontal edge from `(ix, iy)` to `(ix+1, iy)`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range or the factor is not positive.
    pub fn scale_horizontal(&mut self, ix: usize, iy: usize, factor: f64) {
        assert!(ix + 1 < self.nx && iy < self.ny, "edge out of range");
        assert!(factor > 0.0, "scale factor must be positive");
        self.gh[iy * (self.nx - 1) + ix] *= factor;
    }

    /// Scales the vertical edge from `(ix, iy)` to `(ix, iy+1)`.
    ///
    /// # Panics
    ///
    /// Panics if the edge is out of range or the factor is not positive.
    pub fn scale_vertical(&mut self, ix: usize, iy: usize, factor: f64) {
        assert!(ix < self.nx && iy + 1 < self.ny, "edge out of range");
        assert!(factor > 0.0, "scale factor must be positive");
        self.gv[ix * (self.ny - 1) + iy] *= factor;
    }

    /// Applies a guiding-structure pattern: horizontal edges in rows
    /// `hot_rows` are widened by `boost`, all other horizontal edges are
    /// choked by `choke` (the guiding walls).
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of range or factors are not positive.
    pub fn apply_focusing(&mut self, hot_rows: &[usize], boost: f64, choke: f64) {
        assert!(boost > 0.0 && choke > 0.0);
        for iy in 0..self.ny {
            let factor = if hot_rows.contains(&iy) { boost } else { choke };
            for ix in 0..self.nx - 1 {
                self.scale_horizontal(ix, iy, factor);
            }
        }
    }

    /// Solves the network with the inlet column at `p_in` and the outlet
    /// column at zero gauge pressure.
    ///
    /// One-shot convenience: builds a throwaway [`NetworkSolver`] and pays
    /// a full factorisation. Controllers re-solving the same lattice with
    /// evolving conductances (valve sweeps, guiding-structure search)
    /// should hold a [`NetworkSolver`] instead, which factors the pattern
    /// once and numerically refactors every later solve.
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::Solver`] if the linear system is singular
    /// (cannot happen for positive conductances) and
    /// [`HydraulicsError::NonPositive`] for a non-positive drive pressure.
    pub fn solve(&self, p_in: Pressure) -> Result<NetworkSolution, HydraulicsError> {
        self.solver().solve(self, p_in)
    }

    /// Creates a reusable solver for this network's lattice topology: the
    /// sparsity pattern and (after the first solve) the symbolic LU
    /// analysis are shared by every subsequent solve of any `nx × ny`
    /// network, whatever its edge conductances.
    pub fn solver(&self) -> NetworkSolver {
        NetworkSolver::for_lattice(self.nx, self.ny)
    }

    /// Visits the Kirchhoff stamp of every edge, in the canonical order
    /// shared by the pattern and value-fill passes: free-node diagonal and
    /// off-diagonal contributions through `entry`, Dirichlet-neighbour
    /// pressure loads through `load`.
    fn for_each_stamp(
        nx: usize,
        ny: usize,
        gh: &[f64],
        gv: &[f64],
        mut entry: impl FnMut(usize, usize, f64),
        mut load: impl FnMut(usize, usize, f64),
    ) {
        let node = |ix: usize, iy: usize| iy * nx + ix;
        let dirichlet = |ix: usize| ix == 0 || ix == nx - 1;
        let mut stamp = |(ia, dir_a): (usize, bool), (ib, dir_b): (usize, bool), g: f64| {
            if !dir_a {
                entry(ia, ia, g);
                if !dir_b {
                    entry(ia, ib, -g);
                }
            }
            if !dir_b {
                entry(ib, ib, g);
                if !dir_a {
                    entry(ib, ia, -g);
                }
            }
            // Edges touching Dirichlet nodes load the free side's RHS.
            if dir_b && !dir_a {
                load(ia, ib, g);
            }
            if dir_a && !dir_b {
                load(ib, ia, g);
            }
        };
        for iy in 0..ny {
            for ix in 0..nx - 1 {
                let g = gh[iy * (nx - 1) + ix];
                stamp(
                    (node(ix, iy), dirichlet(ix)),
                    (node(ix + 1, iy), dirichlet(ix + 1)),
                    g,
                );
            }
        }
        for ix in 0..nx {
            for iy in 0..ny - 1 {
                let g = gv[ix * (ny - 1) + iy];
                stamp(
                    (node(ix, iy), dirichlet(ix)),
                    (node(ix, iy + 1), dirichlet(ix)),
                    g,
                );
            }
        }
    }
}

/// Reusable Kirchhoff solver for one lattice topology (`nx × ny` with
/// inlet/outlet manifold columns).
///
/// The sparsity pattern of the lattice is fixed by its dimensions, so the
/// solver assembles the CSC operator once, runs one full pivoting
/// factorisation on the first solve, and serves every later solve — for
/// any edge conductances — with an O(nnz) value rewrite plus a numeric
/// refactorisation over the frozen [`SymbolicLu`] pattern (falling back to
/// a fresh factorisation on the pivot-growth guard, which positive
/// conductances never trigger in practice).
#[derive(Debug, Clone)]
pub struct NetworkSolver {
    nx: usize,
    ny: usize,
    csc: CscMatrix,
    map: Vec<usize>,
    /// Triplet values: Dirichlet unit diagonals followed by the dynamic
    /// edge tail.
    base_vals: Vec<f64>,
    dyn_start: usize,
    symbolic: Option<SymbolicLu>,
    factors: Option<LuFactors>,
    full_factorizations: u64,
    refactorizations: u64,
}

impl NetworkSolver {
    fn for_lattice(nx: usize, ny: usize) -> Self {
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for iy in 0..ny {
            t.push(iy * nx, iy * nx, 1.0);
            t.push(iy * nx + nx - 1, iy * nx + nx - 1, 1.0);
        }
        let dyn_start = t.nnz();
        // Unit conductances for the pattern pass; values are irrelevant.
        let gh = vec![1.0; (nx - 1) * ny];
        let gv = vec![1.0; nx * (ny - 1)];
        FlowNetwork::for_each_stamp(nx, ny, &gh, &gv, |r, c, _| t.push(r, c, 0.0), |_, _, _| {});
        let (csc, map) = t.to_csc_with_map();
        NetworkSolver {
            nx,
            ny,
            csc,
            map,
            base_vals: t.values().to_vec(),
            dyn_start,
            symbolic: None,
            factors: None,
            full_factorizations: 0,
            refactorizations: 0,
        }
    }

    /// Full pivoting factorisations performed (one, plus any pivot-growth
    /// fallbacks).
    pub fn full_factorizations(&self) -> u64 {
        self.full_factorizations
    }

    /// Numeric-only refactorisations served from the frozen pattern.
    pub fn refactorizations(&self) -> u64 {
        self.refactorizations
    }

    /// Solves `net` with the inlet column at `p_in` and the outlet column
    /// at zero gauge pressure.
    ///
    /// # Errors
    ///
    /// [`HydraulicsError::NonPositive`] for a non-positive drive pressure
    /// or mismatched lattice dimensions, [`HydraulicsError::Solver`] on
    /// factorisation failure.
    pub fn solve(
        &mut self,
        net: &FlowNetwork,
        p_in: Pressure,
    ) -> Result<NetworkSolution, HydraulicsError> {
        if !(p_in.0 > 0.0 && p_in.0.is_finite()) {
            return Err(HydraulicsError::NonPositive {
                what: "inlet pressure",
                value: p_in.0,
            });
        }
        if net.nx != self.nx || net.ny != self.ny {
            return Err(HydraulicsError::Solver(format!(
                "solver built for a {}x{} lattice, network is {}x{}",
                self.nx, self.ny, net.nx, net.ny
            )));
        }
        let n = self.nx * self.ny;
        let mut vals = self.base_vals.clone();
        let mut rhs = vec![0.0; n];
        for iy in 0..self.ny {
            rhs[iy * self.nx] = p_in.0;
        }
        let dirichlet_pressure = |i: usize| {
            if i.is_multiple_of(self.nx) {
                p_in.0
            } else {
                0.0
            }
        };
        let mut k = self.dyn_start;
        FlowNetwork::for_each_stamp(
            self.nx,
            self.ny,
            &net.gh,
            &net.gv,
            |_, _, g| {
                vals[k] = g;
                k += 1;
            },
            |free, dir, g| rhs[free] += g * dirichlet_pressure(dir),
        );
        debug_assert_eq!(k, vals.len(), "edge fill must cover the whole tail");
        self.csc.update_values(&self.map, &vals);

        let mut factors = None;
        if let Some(sym) = &self.symbolic {
            let mut f = self
                .factors
                .take()
                .unwrap_or_else(|| sym.allocate_factors());
            match sym.refactor_into(&self.csc, &mut f) {
                Ok(()) => {
                    self.refactorizations += 1;
                    factors = Some(f);
                }
                Err(SparseError::UnstablePivot { .. }) => {}
                Err(e) => return Err(HydraulicsError::Solver(e.to_string())),
            }
        }
        let factors = match factors {
            Some(f) => f,
            None => self
                .factor_fresh()
                .map_err(|e| HydraulicsError::Solver(e.to_string()))?,
        };
        let pressures = factors
            .solve(&rhs)
            .map_err(|e| HydraulicsError::Solver(e.to_string()))?;
        self.factors = Some(factors);
        Ok(NetworkSolution {
            network: net.clone(),
            pressures,
        })
    }

    fn factor_fresh(&mut self) -> Result<LuFactors, SparseError> {
        let (factors, symbolic) = lu::factor_with_symbolic(&self.csc, lu::ColumnOrdering::Rcm)?;
        self.full_factorizations += 1;
        self.symbolic = Some(symbolic);
        Ok(factors)
    }
}

/// Solved pressures and derived flows of a [`FlowNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSolution {
    network: FlowNetwork,
    pressures: Vec<f64>,
}

impl NetworkSolution {
    /// Node pressure at `(ix, iy)` in Pa.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn pressure(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix < self.network.nx && iy < self.network.ny);
        self.pressures[self.network.node(ix, iy)]
    }

    /// Flow (m³/s) through the horizontal edge from `(ix, iy)` to
    /// `(ix+1, iy)` (positive towards the outlet).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn horizontal_flow(&self, ix: usize, iy: usize) -> f64 {
        assert!(ix + 1 < self.network.nx && iy < self.network.ny);
        let g = self.network.gh[iy * (self.network.nx - 1) + ix];
        g * (self.pressure(ix, iy) - self.pressure(ix + 1, iy))
    }

    /// Total aggregate flow from inlet to outlet (sum over the first edge
    /// column).
    pub fn total_flow(&self) -> f64 {
        (0..self.network.ny)
            .map(|iy| self.horizontal_flow(0, iy))
            .sum()
    }

    /// Flow passing through row `iy` at the mid-length of the cavity — the
    /// "hot-spot flow" when the hot spot sits mid-cavity on that row.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of range.
    pub fn row_flow_at_mid(&self, iy: usize) -> f64 {
        let ix = (self.network.nx - 1) / 2;
        self.horizontal_flow(ix, iy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_network_splits_flow_evenly() {
        let net = FlowNetwork::uniform(6, 4, 1e-12).unwrap();
        let sol = net.solve(Pressure::from_bar(1.0)).unwrap();
        let flows: Vec<f64> = (0..4).map(|iy| sol.row_flow_at_mid(iy)).collect();
        for f in &flows {
            assert!((f - flows[0]).abs() < 1e-9 * flows[0].abs());
        }
        // Series of 5 edges at g: per-row flow = g/5 · Δp.
        let expected = 1e-12 / 5.0 * 1e5;
        assert!((flows[0] - expected).abs() < 1e-6 * expected);
    }

    #[test]
    fn mass_is_conserved_column_to_column() {
        let mut net = FlowNetwork::uniform(8, 5, 2e-12).unwrap();
        net.scale_vertical(3, 1, 0.2);
        net.scale_horizontal(2, 2, 4.0);
        let sol = net.solve(Pressure::from_bar(0.5)).unwrap();
        let col_flow = |ix: usize| -> f64 { (0..5).map(|iy| sol.horizontal_flow(ix, iy)).sum() };
        let first = col_flow(0);
        for ix in 1..7 {
            assert!(
                (col_flow(ix) - first).abs() < 1e-9 * first.abs(),
                "column {ix} violates continuity"
            );
        }
    }

    #[test]
    fn focusing_raises_hot_row_flow_and_cuts_aggregate_flow() {
        // Fig. 4: fluid-focused cavity vs uniform cavity.
        let uniform = FlowNetwork::uniform(10, 8, 1e-12).unwrap();
        let base = uniform.solve(Pressure::from_bar(1.0)).unwrap();

        let mut focused = FlowNetwork::uniform(10, 8, 1e-12).unwrap();
        focused.apply_focusing(&[3, 4], 2.5, 0.4);
        let sol = focused.solve(Pressure::from_bar(1.0)).unwrap();

        let hot_gain = sol.row_flow_at_mid(3) / base.row_flow_at_mid(3);
        let aggregate = sol.total_flow() / base.total_flow();
        assert!(hot_gain > 1.5, "hot-spot flow gain = {hot_gain}");
        assert!(aggregate < 1.0, "aggregate flow ratio = {aggregate}");
    }

    #[test]
    fn pressures_fall_monotonically_along_uniform_rows() {
        let net = FlowNetwork::uniform(7, 3, 1e-12).unwrap();
        let sol = net.solve(Pressure::from_bar(1.0)).unwrap();
        for iy in 0..3 {
            for ix in 0..6 {
                assert!(sol.pressure(ix, iy) > sol.pressure(ix + 1, iy));
            }
        }
        // Boundary conditions hold exactly.
        assert!((sol.pressure(0, 1) - 1e5).abs() < 1e-9);
        assert!(sol.pressure(6, 1).abs() < 1e-9);
    }

    #[test]
    fn reusable_solver_matches_one_shot_solve() {
        let mut solver = FlowNetwork::uniform(9, 6, 1e-12).unwrap().solver();
        for (boost, choke) in [(1.0, 1.0), (2.5, 0.4), (4.0, 0.2), (1.5, 0.8)] {
            let mut net = FlowNetwork::uniform(9, 6, 1e-12).unwrap();
            net.apply_focusing(&[2, 3], boost, choke);
            let shared = solver.solve(&net, Pressure::from_bar(0.8)).unwrap();
            let fresh = net.solve(Pressure::from_bar(0.8)).unwrap();
            for iy in 0..6 {
                for ix in 0..9 {
                    let (a, b) = (shared.pressure(ix, iy), fresh.pressure(ix, iy));
                    assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
                }
            }
        }
        // One full pivoting factorisation; every later conductance state
        // went through the numeric refactor path.
        assert_eq!(solver.full_factorizations(), 1);
        assert_eq!(solver.refactorizations(), 3);
    }

    #[test]
    fn solver_rejects_mismatched_lattice() {
        let mut solver = FlowNetwork::uniform(6, 4, 1e-12).unwrap().solver();
        let other = FlowNetwork::uniform(7, 4, 1e-12).unwrap();
        assert!(solver.solve(&other, Pressure::from_bar(1.0)).is_err());
    }

    #[test]
    fn invalid_networks_rejected() {
        assert!(FlowNetwork::uniform(1, 4, 1.0).is_err());
        assert!(FlowNetwork::uniform(4, 0, 1.0).is_err());
        assert!(FlowNetwork::uniform(4, 4, 0.0).is_err());
        let net = FlowNetwork::uniform(4, 4, 1.0).unwrap();
        assert!(net.solve(Pressure(0.0)).is_err());
    }
}
