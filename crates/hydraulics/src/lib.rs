//! Single-phase micro-channel and pin-fin hydraulics.
//!
//! This crate implements the cavity-design side of §II.C of the paper:
//!
//! * [`duct`] — laminar rectangular-duct friction (Shah–London `f·Re`) and
//!   Nusselt correlations with a thermal-entrance correction; pressure drop
//!   and heat-transfer coefficient as functions of channel geometry and
//!   flow rate.
//! * [`pump`] — the Table I pumping-network power map (3.5–11.176 W over
//!   10–32.3 ml/min) and the physical `ΔP·Q/η` model.
//! * [`pinfin`] — in-line vs. staggered circular pin-fin arrays ("circular
//!   in-line pins result in low pressure drop at acceptable convective heat
//!   transfer").
//! * [`modulation`] — heat-transfer-structure modulation: channel *width*
//!   modulation and pin-fin *density* modulation against a uniform
//!   worst-case design (the "factor of 2 and 5" claim).
//! * [`network`] — hydrodynamic resistor-network solver for *fluid
//!   focusing* (Fig. 4): guiding structures raise hot-spot flow while
//!   reducing aggregate flow.
//!
//! # Example
//!
//! ```
//! use cmosaic_hydraulics::duct::ChannelGeometry;
//! use cmosaic_hydraulics::LiquidProperties;
//!
//! # fn main() -> Result<(), cmosaic_hydraulics::HydraulicsError> {
//! // A Table I channel: 50 µm x 100 µm x 11.5 mm.
//! let geom = ChannelGeometry::new(50e-6, 100e-6, 11.5e-3)?;
//! let water = LiquidProperties::water_at(cmosaic_materials::units::Kelvin::from_celsius(27.0))?;
//! let q_per_channel = 32.3e-6 / 60.0 / 66.0; // Table I max flow over 66 channels, m³/s
//! let dp = geom.pressure_drop(q_per_channel, &water)?;
//! assert!(dp.to_bar() > 0.3 && dp.to_bar() < 3.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod duct;
pub mod modulation;
pub mod network;
pub mod pinfin;
pub mod pump;

pub use duct::ChannelGeometry;
pub use network::FlowNetwork;

use cmosaic_materials::units::Kelvin;
use cmosaic_materials::water::Water;
use cmosaic_materials::MaterialError;

use std::error::Error;
use std::fmt;

/// Errors produced by the hydraulic models.
#[derive(Debug, Clone, PartialEq)]
pub enum HydraulicsError {
    /// A geometric or flow quantity was not strictly positive.
    NonPositive {
        /// What the quantity describes.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// The flow left the laminar validity range of the correlations.
    OutOfValidityRange {
        /// Explanation (e.g. Reynolds number too high).
        detail: String,
    },
    /// A design routine could not satisfy its thermal constraint.
    Infeasible {
        /// Explanation.
        detail: String,
    },
    /// An underlying material-property query failed.
    Material(MaterialError),
    /// An underlying linear solve failed.
    Solver(String),
}

impl fmt::Display for HydraulicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HydraulicsError::NonPositive { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            HydraulicsError::OutOfValidityRange { detail } => {
                write!(f, "outside correlation validity: {detail}")
            }
            HydraulicsError::Infeasible { detail } => write!(f, "design infeasible: {detail}"),
            HydraulicsError::Material(e) => write!(f, "material property error: {e}"),
            HydraulicsError::Solver(e) => write!(f, "flow-network solve failed: {e}"),
        }
    }
}

impl Error for HydraulicsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HydraulicsError::Material(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MaterialError> for HydraulicsError {
    fn from(e: MaterialError) -> Self {
        HydraulicsError::Material(e)
    }
}

/// Bulk liquid transport properties, the common currency of every
/// correlation in this crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiquidProperties {
    /// Density, kg/m³.
    pub density: f64,
    /// Dynamic viscosity, Pa·s.
    pub viscosity: f64,
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Specific heat, J/(kg·K).
    pub specific_heat: f64,
}

impl LiquidProperties {
    /// Water properties at temperature `t` (Table I values with
    /// temperature-dependent viscosity).
    ///
    /// # Errors
    ///
    /// Returns [`HydraulicsError::Material`] outside the liquid-water range.
    pub fn water_at(t: Kelvin) -> Result<Self, HydraulicsError> {
        let w = Water::table1();
        Ok(LiquidProperties {
            density: w.density(),
            viscosity: w.dynamic_viscosity(t)?,
            conductivity: w.thermal_conductivity(),
            specific_heat: w.specific_heat(),
        })
    }

    /// Prandtl number `μ·c_p/k`.
    pub fn prandtl(&self) -> f64 {
        self.viscosity * self.specific_heat / self.conductivity
    }

    /// Volumetric heat capacity `ρ·c_p`, J/(m³·K).
    pub fn volumetric_heat_capacity(&self) -> f64 {
        self.density * self.specific_heat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_properties_are_sane() {
        let w = LiquidProperties::water_at(Kelvin::from_celsius(27.0)).unwrap();
        assert!(w.prandtl() > 5.0 && w.prandtl() < 7.0);
        assert!((w.volumetric_heat_capacity() - 4.17e6).abs() < 0.1e6);
    }

    #[test]
    fn error_conversion_and_display() {
        let e: HydraulicsError = MaterialError::NonPositiveQuantity {
            name: "x",
            value: -1.0,
        }
        .into();
        assert!(e.to_string().contains("material property"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HydraulicsError>();
    }
}
