//! Named floorplan elements with validation.

use crate::geometry::Rect;
use crate::FloorplanError;

/// The architectural role of a floorplan element.
///
/// The power model assigns different active/idle power densities per kind,
/// and the thermal-management policies act on [`ElementKind::Core`] elements
/// (DVFS, migration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementKind {
    /// A processing core (UltraSPARC T1 in-order core with 4 threads).
    Core,
    /// A shared L2 cache bank.
    L2Cache,
    /// A stacked DRAM bank (memory-on-logic integration, Cherian et al.
    /// arXiv:1109.0708).
    Memory,
    /// A fixed-function / throughput accelerator (mixed core/accelerator
    /// budgets in the style of lumos's `MPSoC` model).
    Accelerator,
    /// The crossbar / on-chip interconnect.
    Crossbar,
    /// Anything else (I/O, memory controllers, pad ring…).
    Other,
}

impl std::fmt::Display for ElementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ElementKind::Core => "core",
            ElementKind::L2Cache => "l2-cache",
            ElementKind::Memory => "memory",
            ElementKind::Accelerator => "accelerator",
            ElementKind::Crossbar => "crossbar",
            ElementKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// The process node the Niagara tiers are manufactured at (§II.A), and the
/// default for every element that does not declare one.
pub const DEFAULT_TECH_NM: u32 = 90;

/// A named, placed floorplan element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    name: String,
    kind: ElementKind,
    rect: Rect,
    tech_nm: u32,
}

impl Element {
    /// Creates a new element at the default 90 nm node.
    pub fn new(name: impl Into<String>, kind: ElementKind, rect: Rect) -> Self {
        Element::with_tech(name, kind, rect, DEFAULT_TECH_NM)
    }

    /// Creates a new element manufactured at `tech_nm` (heterogeneous 3D
    /// integration stacks dies of different process nodes; the leakage
    /// density of the power allocator scales with the node).
    pub fn with_tech(name: impl Into<String>, kind: ElementKind, rect: Rect, tech_nm: u32) -> Self {
        Element {
            name: name.into(),
            kind,
            rect,
            tech_nm: tech_nm.max(1),
        }
    }

    /// Element name (unique within a floorplan).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Architectural role.
    pub fn kind(&self) -> ElementKind {
        self.kind
    }

    /// Process node in nanometres (90 for the Niagara dies).
    pub fn tech_nm(&self) -> u32 {
        self.tech_nm
    }

    /// Placement rectangle.
    pub fn rect(&self) -> &Rect {
        &self.rect
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.rect.area()
    }
}

/// A validated floorplan: an outline and a set of non-overlapping named
/// elements inside it.
///
/// ```
/// use cmosaic_floorplan::{Element, ElementKind, Floorplan, Rect};
/// # fn main() -> Result<(), cmosaic_floorplan::FloorplanError> {
/// let outline = Rect::from_mm(0.0, 0.0, 10.0, 10.0)?;
/// let plan = Floorplan::new("demo", outline, vec![
///     Element::new("core0", ElementKind::Core, Rect::from_mm(0.0, 0.0, 5.0, 5.0)?),
///     Element::new("core1", ElementKind::Core, Rect::from_mm(5.0, 0.0, 5.0, 5.0)?),
/// ])?;
/// assert_eq!(plan.elements().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    name: String,
    outline: Rect,
    elements: Vec<Element>,
}

impl Floorplan {
    /// Builds and validates a floorplan.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::OutOfBounds`] — an element leaves the outline.
    /// * [`FloorplanError::Overlap`] — two elements share interior area.
    /// * [`FloorplanError::DuplicateName`] — element names must be unique.
    pub fn new(
        name: impl Into<String>,
        outline: Rect,
        elements: Vec<Element>,
    ) -> Result<Self, FloorplanError> {
        for e in &elements {
            if !outline.contains(e.rect()) {
                return Err(FloorplanError::OutOfBounds {
                    element: e.name().to_string(),
                });
            }
        }
        for (i, a) in elements.iter().enumerate() {
            for b in &elements[i + 1..] {
                if a.name() == b.name() {
                    return Err(FloorplanError::DuplicateName {
                        name: a.name().to_string(),
                    });
                }
                if a.rect().intersects(b.rect()) {
                    return Err(FloorplanError::Overlap {
                        first: a.name().to_string(),
                        second: b.name().to_string(),
                    });
                }
            }
        }
        Ok(Floorplan {
            name: name.into(),
            outline,
            elements,
        })
    }

    /// Floorplan name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Die outline.
    pub fn outline(&self) -> &Rect {
        &self.outline
    }

    /// All elements, in insertion order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Index of the element with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.name() == name)
    }

    /// Indices of all elements of a given kind, in insertion order.
    pub fn indices_of_kind(&self, kind: ElementKind) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind() == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total element area in m².
    pub fn occupied_area(&self) -> f64 {
        self.elements.iter().map(Element::area).sum()
    }

    /// Fraction of the outline covered by elements.
    pub fn utilization(&self) -> f64 {
        self.occupied_area() / self.outline.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outline() -> Rect {
        Rect::from_mm(0.0, 0.0, 10.0, 10.0).unwrap()
    }

    #[test]
    fn rejects_out_of_bounds() {
        let err = Floorplan::new(
            "t",
            outline(),
            vec![Element::new(
                "big",
                ElementKind::Core,
                Rect::from_mm(5.0, 5.0, 6.0, 6.0).unwrap(),
            )],
        );
        assert!(matches!(err, Err(FloorplanError::OutOfBounds { .. })));
    }

    #[test]
    fn rejects_overlap() {
        let err = Floorplan::new(
            "t",
            outline(),
            vec![
                Element::new(
                    "a",
                    ElementKind::Core,
                    Rect::from_mm(0.0, 0.0, 5.0, 5.0).unwrap(),
                ),
                Element::new(
                    "b",
                    ElementKind::Core,
                    Rect::from_mm(4.0, 4.0, 5.0, 5.0).unwrap(),
                ),
            ],
        );
        assert!(matches!(err, Err(FloorplanError::Overlap { .. })));
    }

    #[test]
    fn allows_touching_elements() {
        let ok = Floorplan::new(
            "t",
            outline(),
            vec![
                Element::new(
                    "a",
                    ElementKind::Core,
                    Rect::from_mm(0.0, 0.0, 5.0, 10.0).unwrap(),
                ),
                Element::new(
                    "b",
                    ElementKind::L2Cache,
                    Rect::from_mm(5.0, 0.0, 5.0, 10.0).unwrap(),
                ),
            ],
        );
        assert!(ok.is_ok());
        let plan = ok.unwrap();
        assert!((plan.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Floorplan::new(
            "t",
            outline(),
            vec![
                Element::new(
                    "x",
                    ElementKind::Core,
                    Rect::from_mm(0.0, 0.0, 2.0, 2.0).unwrap(),
                ),
                Element::new(
                    "x",
                    ElementKind::Core,
                    Rect::from_mm(5.0, 5.0, 2.0, 2.0).unwrap(),
                ),
            ],
        );
        assert!(matches!(err, Err(FloorplanError::DuplicateName { .. })));
    }

    #[test]
    fn lookup_helpers() {
        let plan = Floorplan::new(
            "t",
            outline(),
            vec![
                Element::new(
                    "core0",
                    ElementKind::Core,
                    Rect::from_mm(0.0, 0.0, 2.0, 2.0).unwrap(),
                ),
                Element::new(
                    "l2_0",
                    ElementKind::L2Cache,
                    Rect::from_mm(3.0, 3.0, 2.0, 2.0).unwrap(),
                ),
            ],
        )
        .unwrap();
        assert_eq!(plan.index_of("l2_0"), Some(1));
        assert_eq!(plan.index_of("nope"), None);
        assert_eq!(plan.indices_of_kind(ElementKind::Core), vec![0]);
        assert_eq!(plan.elements()[0].kind(), ElementKind::Core);
        assert_eq!(ElementKind::L2Cache.to_string(), "l2-cache");
    }
}
