//! Area-weighted mapping between floorplan elements and the regular
//! thermal grid.
//!
//! The compact thermal model discretises each layer into `nx × ny` cells.
//! Power dissipated by a floorplan element is spread over the cells it
//! overlaps in proportion to the overlap area; conversely an element's
//! temperature reading is the area-weighted average of its cells. Both
//! directions conserve their integral quantity exactly (power in watts,
//! mean temperature), which the tests check.

use crate::geometry::Rect;
use crate::plan::Floorplan;
use crate::FloorplanError;

/// A regular 2D grid over a stack footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridSpec {
    nx: usize,
    ny: usize,
}

impl GridSpec {
    /// Creates a grid with `nx` cells along the channel (x) direction and
    /// `ny` across.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::NonPositiveDimension`] if either count is
    /// zero.
    pub fn new(nx: usize, ny: usize) -> Result<Self, FloorplanError> {
        if nx == 0 || ny == 0 {
            return Err(FloorplanError::NonPositiveDimension {
                what: "grid dimension",
                value: 0.0,
            });
        }
        Ok(GridSpec { nx, ny })
    }

    /// Cells along x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total cell count per layer.
    pub fn cell_count(&self) -> usize {
        self.nx * self.ny
    }

    /// Cell width for a footprint of width `w` (m).
    pub fn cell_width(&self, w: f64) -> f64 {
        w / self.nx as f64
    }

    /// Cell height for a footprint of height `h` (m).
    pub fn cell_height(&self, h: f64) -> f64 {
        h / self.ny as f64
    }

    /// Linear index of cell `(ix, iy)` (row-major, y outer).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        assert!(
            ix < self.nx && iy < self.ny,
            "cell ({ix},{iy}) out of range"
        );
        iy * self.nx + ix
    }

    /// Inverse of [`GridSpec::index`].
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        assert!(idx < self.cell_count(), "cell index {idx} out of range");
        (idx % self.nx, idx / self.nx)
    }

    /// Rectangle of cell `(ix, iy)` on a footprint `w × h`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn cell_rect(&self, ix: usize, iy: usize, w: f64, h: f64) -> Rect {
        assert!(ix < self.nx && iy < self.ny);
        let cw = self.cell_width(w);
        let ch = self.cell_height(h);
        // Construction cannot fail: cw, ch > 0 whenever w, h > 0.
        Rect::new(ix as f64 * cw, iy as f64 * ch, cw, ch).expect("valid cell rect")
    }

    /// Cells overlapped by `region` with normalised weights (fractions of
    /// the *region* area; the weights sum to 1 when the region lies inside
    /// the footprint).
    pub fn region_weights(&self, region: &Rect, w: f64, h: f64) -> Vec<(usize, f64)> {
        let cw = self.cell_width(w);
        let ch = self.cell_height(h);
        let ix_lo = ((region.x() / cw).floor().max(0.0)) as usize;
        let iy_lo = ((region.y() / ch).floor().max(0.0)) as usize;
        let ix_hi = (((region.x_max()) / cw).ceil() as usize).min(self.nx);
        let iy_hi = (((region.y_max()) / ch).ceil() as usize).min(self.ny);
        let mut out = Vec::new();
        let area = region.area();
        for iy in iy_lo..iy_hi {
            for ix in ix_lo..ix_hi {
                let cell = self.cell_rect(ix, iy, w, h);
                let ov = cell.overlap_area(region);
                if ov > 0.0 {
                    out.push((self.index(ix, iy), ov / area));
                }
            }
        }
        out
    }

    /// Distributes per-element powers (W) over the grid, conserving total
    /// power exactly.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidStack`] if `powers.len()` differs
    /// from the element count.
    pub fn power_map(
        &self,
        plan: &Floorplan,
        powers: &[f64],
        w: f64,
        h: f64,
    ) -> Result<Vec<f64>, FloorplanError> {
        if powers.len() != plan.elements().len() {
            return Err(FloorplanError::InvalidStack {
                detail: format!(
                    "power vector length {} != {} elements of `{}`",
                    powers.len(),
                    plan.elements().len(),
                    plan.name()
                ),
            });
        }
        let mut map = vec![0.0; self.cell_count()];
        for (e, &p) in plan.elements().iter().zip(powers) {
            if p == 0.0 {
                continue;
            }
            for (cell, frac) in self.region_weights(e.rect(), w, h) {
                map[cell] += p * frac;
            }
        }
        Ok(map)
    }

    /// Area-weighted average of a per-cell field over one element.
    ///
    /// # Panics
    ///
    /// Panics if `field.len() != cell_count()` or the element index is out
    /// of range.
    pub fn element_average(
        &self,
        plan: &Floorplan,
        element: usize,
        field: &[f64],
        w: f64,
        h: f64,
    ) -> f64 {
        assert_eq!(field.len(), self.cell_count(), "field length mismatch");
        let e = &plan.elements()[element];
        let weights = self.region_weights(e.rect(), w, h);
        weights.iter().map(|&(c, f)| field[c] * f).sum()
    }

    /// Maximum of a per-cell field over the cells an element overlaps.
    ///
    /// # Panics
    ///
    /// Panics if `field.len() != cell_count()` or the element index is out
    /// of range.
    pub fn element_max(
        &self,
        plan: &Floorplan,
        element: usize,
        field: &[f64],
        w: f64,
        h: f64,
    ) -> f64 {
        assert_eq!(field.len(), self.cell_count(), "field length mismatch");
        let e = &plan.elements()[element];
        self.region_weights(e.rect(), w, h)
            .iter()
            .map(|&(c, _)| field[c])
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::niagara;

    #[test]
    fn indexing_round_trips() {
        let g = GridSpec::new(7, 5).unwrap();
        for idx in 0..g.cell_count() {
            let (ix, iy) = g.coords(idx);
            assert_eq!(g.index(ix, iy), idx);
        }
    }

    #[test]
    fn zero_grid_rejected() {
        assert!(GridSpec::new(0, 4).is_err());
        assert!(GridSpec::new(4, 0).is_err());
    }

    #[test]
    fn power_map_conserves_total_power() {
        let plan = niagara::core_tier().unwrap();
        let g = GridSpec::new(16, 16).unwrap();
        let powers: Vec<f64> = (0..plan.elements().len())
            .map(|i| 1.0 + i as f64 * 0.5)
            .collect();
        let total: f64 = powers.iter().sum();
        let map = g
            .power_map(&plan, &powers, niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .unwrap();
        let mapped: f64 = map.iter().sum();
        assert!(
            (mapped - total).abs() < 1e-9 * total,
            "mapped {mapped} vs total {total}"
        );
    }

    #[test]
    fn power_map_is_localised() {
        // A single hot element in the lower-left corner: cells in the upper
        // half must receive nothing.
        let plan = crate::Floorplan::new(
            "one",
            Rect::new(0.0, 0.0, 1.0, 1.0).unwrap(),
            vec![crate::Element::new(
                "hot",
                crate::ElementKind::Core,
                Rect::new(0.0, 0.0, 0.25, 0.25).unwrap(),
            )],
        )
        .unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let map = g.power_map(&plan, &[8.0], 1.0, 1.0).unwrap();
        for iy in 4..8 {
            for ix in 0..8 {
                assert_eq!(map[g.index(ix, iy)], 0.0);
            }
        }
        assert!((map.iter().sum::<f64>() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn region_weights_sum_to_one_inside_footprint() {
        let g = GridSpec::new(13, 9).unwrap();
        // Region deliberately not aligned with the grid.
        let region = Rect::new(0.21, 0.13, 0.37, 0.49).unwrap();
        let weights = g.region_weights(&region, 1.0, 1.0);
        let sum: f64 = weights.iter().map(|&(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
    }

    #[test]
    fn element_average_of_constant_field_is_constant() {
        let plan = niagara::cache_tier().unwrap();
        let g = GridSpec::new(10, 10).unwrap();
        let field = vec![42.0; g.cell_count()];
        for i in 0..plan.elements().len() {
            let avg = g.element_average(&plan, i, &field, niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
            assert!((avg - 42.0).abs() < 1e-9);
        }
    }

    #[test]
    fn element_max_picks_the_hottest_cell() {
        let plan = niagara::core_tier().unwrap();
        let g = GridSpec::new(8, 8).unwrap();
        let mut field = vec![10.0; g.cell_count()];
        // Heat one cell inside core0 (lower-left corner).
        field[g.index(0, 0)] = 99.0;
        let mx = g.element_max(&plan, 0, &field, niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
        assert_eq!(mx, 99.0);
        // core7 (top-right) does not see it.
        let other = g.element_max(&plan, 7, &field, niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
        assert_eq!(other, 10.0);
    }

    #[test]
    fn wrong_power_length_rejected() {
        let plan = niagara::core_tier().unwrap();
        let g = GridSpec::new(4, 4).unwrap();
        assert!(g
            .power_map(&plan, &[1.0], niagara::DIE_WIDTH, niagara::DIE_HEIGHT)
            .is_err());
    }
}
