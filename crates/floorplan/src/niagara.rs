//! UltraSPARC T1 (Niagara-1) tier floorplans.
//!
//! §II.A: the 3D MPSoCs are built from the UltraSPARC T1 manufactured at the
//! 90 nm node (8 four-thread cores, one shared L2 cache per two cores), with
//! cores and caches placed on *separate tiers* — the preferred 3D design for
//! short core↔cache interconnect (paper ref. \[8]). Table I fixes the areas:
//! 10 mm² per core, 19 mm² per L2 cache, 115 mm² per layer.
//!
//! The exact intra-tier placement is not published in the paper; we use a
//! regular two-row arrangement (cores in 2×4, caches in 2×2) with the
//! remaining area assigned to the crossbar / L2 directory band in the die
//! centre, which reproduces the row structure of the real T1 die photo.

use crate::geometry::Rect;
use crate::plan::{Element, ElementKind, Floorplan};
use crate::FloorplanError;

/// Die width along the channel (x) direction, metres (11.5 mm).
pub const DIE_WIDTH: f64 = 11.5e-3;
/// Die height across the channels (y), metres (10.0 mm).
pub const DIE_HEIGHT: f64 = 10.0e-3;
/// Core area from Table I (10 mm²).
pub const CORE_AREA: f64 = 10.0e-6;
/// L2 cache area from Table I (19 mm²).
pub const L2_AREA: f64 = 19.0e-6;
/// Number of cores per core tier.
pub const CORES_PER_TIER: usize = 8;
/// Number of L2 banks per cache tier (one per two cores).
pub const L2_PER_TIER: usize = 4;

/// The core tier: 8 cores of 10 mm² in two rows of four, crossbar band in
/// the middle. Total area 8·10 + 35 = 115 mm² (Table I).
///
/// # Errors
///
/// Never fails in practice; the `Result` is forwarded from floorplan
/// validation.
pub fn core_tier() -> Result<Floorplan, FloorplanError> {
    let outline = Rect::new(0.0, 0.0, DIE_WIDTH, DIE_HEIGHT)?;
    let core_w = DIE_WIDTH / 4.0;
    let core_h = CORE_AREA / core_w;
    let top_y = DIE_HEIGHT - core_h;
    let mut elements = Vec::new();
    for i in 0..CORES_PER_TIER {
        let (row, col) = (i / 4, i % 4);
        let y = if row == 0 { 0.0 } else { top_y };
        elements.push(Element::new(
            format!("core{i}"),
            ElementKind::Core,
            Rect::new(col as f64 * core_w, y, core_w, core_h)?,
        ));
    }
    // Crossbar occupies the full central band.
    elements.push(Element::new(
        "xbar",
        ElementKind::Crossbar,
        Rect::new(0.0, core_h, DIE_WIDTH, DIE_HEIGHT - 2.0 * core_h)?,
    ));
    Floorplan::new("niagara-core-tier", outline, elements)
}

/// The cache tier: 4 L2 banks of 19 mm² in two rows of two, directory band
/// in the middle. Total area 4·19 + 39 = 115 mm² (Table I).
///
/// # Errors
///
/// Never fails in practice; the `Result` is forwarded from floorplan
/// validation.
pub fn cache_tier() -> Result<Floorplan, FloorplanError> {
    let outline = Rect::new(0.0, 0.0, DIE_WIDTH, DIE_HEIGHT)?;
    let l2_w = DIE_WIDTH / 2.0;
    let l2_h = L2_AREA / l2_w;
    let top_y = DIE_HEIGHT - l2_h;
    let mut elements = Vec::new();
    for i in 0..L2_PER_TIER {
        let (row, col) = (i / 2, i % 2);
        let y = if row == 0 { 0.0 } else { top_y };
        elements.push(Element::new(
            format!("l2_{i}"),
            ElementKind::L2Cache,
            Rect::new(col as f64 * l2_w, y, l2_w, l2_h)?,
        ));
    }
    elements.push(Element::new(
        "l2dir",
        ElementKind::Other,
        Rect::new(0.0, l2_h, DIE_WIDTH, DIE_HEIGHT - 2.0 * l2_h)?,
    ));
    Floorplan::new("niagara-cache-tier", outline, elements)
}

/// Stacked-DRAM bank area of the memory tier (19 mm², matching the L2
/// footprint so the memory tier drops into the cache tier's slot).
pub const MEM_AREA: f64 = L2_AREA;
/// Number of DRAM banks per memory tier.
pub const MEM_PER_TIER: usize = 4;
/// Process node of the stacked DRAM dies, nm (memory-on-logic stacks bond a
/// denser DRAM die onto the 90 nm logic die).
pub const MEM_TECH_NM: u32 = 45;
/// Accelerator area (20 mm², two cores' worth of silicon per engine).
pub const ACCEL_AREA: f64 = 20.0e-6;
/// Number of accelerators per mixed core/accelerator tier.
pub const ACCEL_PER_TIER: usize = 2;
/// Process node of the accelerator engines, nm.
pub const ACCEL_TECH_NM: u32 = 65;

/// The stacked-memory tier: 4 DRAM banks of 19 mm² in two rows of two
/// (mirroring the cache tier's bank grid) with the memory
/// controller/TSV-field band in the die centre. Total area 4·19 + 39 =
/// 115 mm², so the tier is interchangeable with the cache tier in any
/// stack preset. The DRAM dies are tagged with the 45 nm node
/// ([`MEM_TECH_NM`]) — the power allocator scales leakage density with the
/// node (memory-on-logic integration, Cherian et al. arXiv:1109.0708).
///
/// # Errors
///
/// Never fails in practice; the `Result` is forwarded from floorplan
/// validation.
pub fn memory_tier() -> Result<Floorplan, FloorplanError> {
    let outline = Rect::new(0.0, 0.0, DIE_WIDTH, DIE_HEIGHT)?;
    let mem_w = DIE_WIDTH / 2.0;
    let mem_h = MEM_AREA / mem_w;
    let top_y = DIE_HEIGHT - mem_h;
    let mut elements = Vec::new();
    for i in 0..MEM_PER_TIER {
        let (row, col) = (i / 2, i % 2);
        let y = if row == 0 { 0.0 } else { top_y };
        elements.push(Element::with_tech(
            format!("mem{i}"),
            ElementKind::Memory,
            Rect::new(col as f64 * mem_w, y, mem_w, mem_h)?,
            MEM_TECH_NM,
        ));
    }
    elements.push(Element::new(
        "memctl",
        ElementKind::Other,
        Rect::new(0.0, mem_h, DIE_WIDTH, DIE_HEIGHT - 2.0 * mem_h)?,
    ));
    Floorplan::new("niagara-memory-tier", outline, elements)
}

/// The mixed core/accelerator tier: 4 cores of 10 mm² in the bottom row,
/// 2 throughput accelerators of 20 mm² ([`ACCEL_AREA`], 65 nm) in the top
/// row, and the NoC band in the centre. Total area 4·10 + 2·20 + 35 =
/// 115 mm² — same die budget as the core tier, half the cores traded for
/// accelerator silicon (mixed budgets in the style of lumos's `MPSoC`).
///
/// # Errors
///
/// Never fails in practice; the `Result` is forwarded from floorplan
/// validation.
pub fn accelerator_tier() -> Result<Floorplan, FloorplanError> {
    let outline = Rect::new(0.0, 0.0, DIE_WIDTH, DIE_HEIGHT)?;
    let core_w = DIE_WIDTH / 4.0;
    let core_h = CORE_AREA / core_w;
    let accel_w = DIE_WIDTH / 2.0;
    let accel_h = ACCEL_AREA / accel_w;
    let top_y = DIE_HEIGHT - accel_h;
    let mut elements = Vec::new();
    for i in 0..4 {
        elements.push(Element::new(
            format!("core{i}"),
            ElementKind::Core,
            Rect::new(i as f64 * core_w, 0.0, core_w, core_h)?,
        ));
    }
    for i in 0..ACCEL_PER_TIER {
        elements.push(Element::with_tech(
            format!("acc{i}"),
            ElementKind::Accelerator,
            Rect::new(i as f64 * accel_w, top_y, accel_w, accel_h)?,
            ACCEL_TECH_NM,
        ));
    }
    elements.push(Element::new(
        "noc",
        ElementKind::Crossbar,
        Rect::new(0.0, core_h, DIE_WIDTH, DIE_HEIGHT - core_h - accel_h)?,
    ));
    Floorplan::new("niagara-accelerator-tier", outline, elements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_tier_matches_table1_areas() {
        let plan = core_tier().unwrap();
        assert!((plan.outline().area() - 115.0e-6).abs() < 1e-9);
        let cores = plan.indices_of_kind(ElementKind::Core);
        assert_eq!(cores.len(), 8);
        for &i in &cores {
            assert!((plan.elements()[i].area() - CORE_AREA).abs() < 1e-10);
        }
        // Crossbar fills the remainder.
        assert!((plan.occupied_area() - 115.0e-6).abs() < 1e-9);
    }

    #[test]
    fn cache_tier_matches_table1_areas() {
        let plan = cache_tier().unwrap();
        let l2 = plan.indices_of_kind(ElementKind::L2Cache);
        assert_eq!(l2.len(), 4);
        for &i in &l2 {
            assert!((plan.elements()[i].area() - L2_AREA).abs() < 1e-10);
        }
        assert!((plan.occupied_area() - 115.0e-6).abs() < 1e-9);
    }

    #[test]
    fn element_names_are_stable() {
        let plan = core_tier().unwrap();
        assert_eq!(plan.index_of("core0"), Some(0));
        assert_eq!(plan.index_of("core7"), Some(7));
        assert_eq!(plan.index_of("xbar"), Some(8));
        let cache = cache_tier().unwrap();
        assert_eq!(cache.index_of("l2_3"), Some(3));
        assert_eq!(cache.index_of("l2dir"), Some(4));
    }

    #[test]
    fn tiers_share_the_same_outline() {
        let c = core_tier().unwrap();
        let l = cache_tier().unwrap();
        assert_eq!(c.outline(), l.outline());
        assert_eq!(c.outline(), memory_tier().unwrap().outline());
        assert_eq!(c.outline(), accelerator_tier().unwrap().outline());
    }

    #[test]
    fn memory_tier_mirrors_cache_tier_budget() {
        let plan = memory_tier().unwrap();
        let banks = plan.indices_of_kind(ElementKind::Memory);
        assert_eq!(banks.len(), MEM_PER_TIER);
        for &i in &banks {
            let e = &plan.elements()[i];
            assert!((e.area() - MEM_AREA).abs() < 1e-10);
            assert_eq!(e.tech_nm(), MEM_TECH_NM);
        }
        // Same die budget as the cache tier it replaces.
        assert!((plan.occupied_area() - 115.0e-6).abs() < 1e-9);
        // The controller band stays on the logic node.
        let ctl = plan.index_of("memctl").unwrap();
        assert_eq!(plan.elements()[ctl].tech_nm(), crate::plan::DEFAULT_TECH_NM);
    }

    #[test]
    fn accelerator_tier_trades_cores_for_engines() {
        let plan = accelerator_tier().unwrap();
        assert_eq!(plan.indices_of_kind(ElementKind::Core).len(), 4);
        let accels = plan.indices_of_kind(ElementKind::Accelerator);
        assert_eq!(accels.len(), ACCEL_PER_TIER);
        for &i in &accels {
            let e = &plan.elements()[i];
            assert!((e.area() - ACCEL_AREA).abs() < 1e-10);
            assert_eq!(e.tech_nm(), ACCEL_TECH_NM);
        }
        assert!((plan.occupied_area() - 115.0e-6).abs() < 1e-9);
    }
}
