//! Deterministic placement transformations over floorplans and stacks.
//!
//! The optimizer treats physical design as a search axis: every function in
//! this module maps a valid [`Floorplan`] / [`Stack3d`] to a *new* valid one
//! (re-validated against overlap/bounds and stack-consistency rules) with a
//! stable, human-readable name suffix, so transformed designs have
//! distinguishable labels and `Debug`-based fingerprints.
//!
//! Three families of moves are provided, following the co-design space of
//! Cuesta et al. (arXiv:2402.14627):
//!
//! * **Block placement** — [`swap_elements`] / [`permute_kind`] rearrange
//!   which named block occupies which rectangle of a tier.
//! * **Hot-spot spreading** — [`spread_hotspots`] deterministically assigns
//!   the hottest blocks (by caller-supplied power weight) to the most
//!   peripheral rectangles, pushing power away from the die centre.
//! * **Channel topology** — [`set_gap_cavity`] switches an inter-tier gap
//!   between a micro-channel cavity and a conventional bonded (solid) gap of
//!   the same thickness.
//!
//! All transforms are pure functions of their inputs: no randomness, no
//! global state, bit-identical results across platforms and reruns.

use crate::plan::{Element, ElementKind, Floorplan};
use crate::stack::{CavitySpec, Layer, LayerKind, Stack3d};
use crate::FloorplanError;
use cmosaic_materials::solids::SolidMaterial;

/// Returns a copy of `plan` with the rectangles of elements `a` and `b`
/// swapped (names and kinds stay with their blocks), re-validated.
///
/// The result is renamed `"{plan}+swap(a,b)"` so that transformed plans are
/// distinguishable by name and fingerprint.
///
/// # Errors
///
/// * [`FloorplanError::UnknownElement`] — `a` or `b` is not in the plan.
/// * Any validation error from [`Floorplan::new`] if the swapped layout is
///   invalid (possible when the two rectangles differ in size).
pub fn swap_elements(plan: &Floorplan, a: &str, b: &str) -> Result<Floorplan, FloorplanError> {
    let ia = plan
        .index_of(a)
        .ok_or_else(|| FloorplanError::UnknownElement { name: a.into() })?;
    let ib = plan
        .index_of(b)
        .ok_or_else(|| FloorplanError::UnknownElement { name: b.into() })?;
    let mut elements: Vec<Element> = plan.elements().to_vec();
    let ra = elements[ia].rect().to_owned();
    let rb = elements[ib].rect().to_owned();
    elements[ia] = Element::with_tech(
        elements[ia].name(),
        elements[ia].kind(),
        rb,
        elements[ia].tech_nm(),
    );
    elements[ib] = Element::with_tech(
        elements[ib].name(),
        elements[ib].kind(),
        ra,
        elements[ib].tech_nm(),
    );
    Floorplan::new(
        format!("{}+swap({a},{b})", plan.name()),
        *plan.outline(),
        elements,
    )
}

/// Returns a copy of `plan` where the elements of `kind` are re-assigned to
/// each other's rectangles according to `perm`: the `i`-th element of that
/// kind (in insertion order) takes the rectangle currently held by the
/// `perm[i]`-th.
///
/// The result is renamed `"{plan}+perm(kind:p0-p1-…)"`.
///
/// # Errors
///
/// * [`FloorplanError::InvalidTransform`] — `perm` is not a permutation of
///   `0..n` where `n` is the number of elements of `kind`.
/// * Any validation error from [`Floorplan::new`].
pub fn permute_kind(
    plan: &Floorplan,
    kind: ElementKind,
    perm: &[usize],
) -> Result<Floorplan, FloorplanError> {
    let idx = plan.indices_of_kind(kind);
    if perm.len() != idx.len() {
        return Err(FloorplanError::InvalidTransform {
            detail: format!(
                "permutation length {} does not match {} `{kind}` elements",
                perm.len(),
                idx.len()
            ),
        });
    }
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return Err(FloorplanError::InvalidTransform {
                detail: format!("{perm:?} is not a permutation of 0..{}", perm.len()),
            });
        }
        seen[p] = true;
    }
    let mut elements: Vec<Element> = plan.elements().to_vec();
    for (i, &p) in perm.iter().enumerate() {
        let e = &plan.elements()[idx[i]];
        let target = plan.elements()[idx[p]].rect().to_owned();
        elements[idx[i]] = Element::with_tech(e.name(), e.kind(), target, e.tech_nm());
    }
    let tag: Vec<String> = perm.iter().map(usize::to_string).collect();
    Floorplan::new(
        format!("{}+perm({kind}:{})", plan.name(), tag.join("-")),
        *plan.outline(),
        elements,
    )
}

/// Hot-spot-aware shuffle: re-assigns the elements of `kind` to rectangles
/// so that the heaviest `weights[i]` (power proxy of the `i`-th element of
/// that kind, insertion order) land on the rectangles farthest from the die
/// centre. Spreading high-power blocks towards the periphery reduces the
/// central hot spot that stacking multiplies (§IV.A of the paper).
///
/// Fully deterministic: weight ties break towards the lower element index,
/// slot-distance ties towards the lower slot index. The result is renamed
/// `"{plan}+spread(kind)"`.
///
/// # Errors
///
/// * [`FloorplanError::InvalidTransform`] — `weights` length mismatch or a
///   non-finite weight.
/// * Any validation error from [`Floorplan::new`].
pub fn spread_hotspots(
    plan: &Floorplan,
    kind: ElementKind,
    weights: &[f64],
) -> Result<Floorplan, FloorplanError> {
    let idx = plan.indices_of_kind(kind);
    if weights.len() != idx.len() {
        return Err(FloorplanError::InvalidTransform {
            detail: format!(
                "{} weights supplied for {} `{kind}` elements",
                weights.len(),
                idx.len()
            ),
        });
    }
    if let Some(w) = weights.iter().find(|w| !w.is_finite()) {
        return Err(FloorplanError::InvalidTransform {
            detail: format!("non-finite power weight {w}"),
        });
    }
    let (cx, cy) = plan.outline().center();
    // Slots ranked most-peripheral first; elements ranked heaviest first.
    let mut slots: Vec<usize> = (0..idx.len()).collect();
    slots.sort_by(|&a, &b| {
        let d = |s: usize| {
            let (ex, ey) = plan.elements()[idx[s]].rect().center();
            (ex - cx).hypot(ey - cy)
        };
        d(b).total_cmp(&d(a)).then(a.cmp(&b))
    });
    let mut heavy: Vec<usize> = (0..weights.len()).collect();
    heavy.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
    // heaviest element -> most peripheral slot, i.e. perm[element] = slot.
    let mut perm = vec![0usize; idx.len()];
    for (rank, &e) in heavy.iter().enumerate() {
        perm[e] = slots[rank];
    }
    let permuted = permute_kind(plan, kind, &perm)?;
    Floorplan::new(
        format!("{}+spread({kind})", plan.name()),
        *plan.outline(),
        permuted.elements().to_vec(),
    )
}

/// Returns a copy of `stack` with tier `tier` replaced by `plan`
/// (re-validated: the plan outline must match the stack footprint).
///
/// The result is renamed `"{stack}/t{tier}={plan-name}"`.
///
/// # Errors
///
/// * [`FloorplanError::InvalidTransform`] — `tier` out of range.
/// * [`FloorplanError::InvalidStack`] — outline/footprint mismatch.
pub fn with_tier_plan(
    stack: &Stack3d,
    tier: usize,
    plan: Floorplan,
) -> Result<Stack3d, FloorplanError> {
    if tier >= stack.tiers().len() {
        return Err(FloorplanError::InvalidTransform {
            detail: format!(
                "tier {tier} out of range (stack has {})",
                stack.tiers().len()
            ),
        });
    }
    let mut tiers = stack.tiers().to_vec();
    let name = format!("{}/t{tier}={}", stack.name(), plan.name());
    tiers[tier] = plan;
    Stack3d::from_parts(
        name,
        stack.width(),
        stack.height(),
        tiers,
        stack.layers().to_vec(),
        stack.sink().cloned(),
    )
}

/// Convenience: [`swap_elements`] applied to tier `tier` of `stack`.
///
/// # Errors
///
/// Propagates errors from [`swap_elements`] and [`with_tier_plan`].
pub fn swap_in_tier(
    stack: &Stack3d,
    tier: usize,
    a: &str,
    b: &str,
) -> Result<Stack3d, FloorplanError> {
    let plan = stack
        .tiers()
        .get(tier)
        .ok_or_else(|| FloorplanError::InvalidTransform {
            detail: format!(
                "tier {tier} out of range (stack has {})",
                stack.tiers().len()
            ),
        })?;
    with_tier_plan(stack, tier, swap_elements(plan, a, b)?)
}

/// Convenience: [`spread_hotspots`] applied to tier `tier` of `stack`.
///
/// # Errors
///
/// Propagates errors from [`spread_hotspots`] and [`with_tier_plan`].
pub fn spread_hotspots_in_tier(
    stack: &Stack3d,
    tier: usize,
    kind: ElementKind,
    weights: &[f64],
) -> Result<Stack3d, FloorplanError> {
    let plan = stack
        .tiers()
        .get(tier)
        .ok_or_else(|| FloorplanError::InvalidTransform {
            detail: format!(
                "tier {tier} out of range (stack has {})",
                stack.tiers().len()
            ),
        })?;
    with_tier_plan(stack, tier, spread_hotspots(plan, kind, weights)?)
}

/// Switches inter-tier gap `gap` (between tiers `gap` and `gap + 1`) to a
/// micro-channel cavity (`Some(spec)`) or to a conventional bonded gap
/// (`None`: a solid thermal-interface layer of the same thickness, so total
/// stack height is preserved).
///
/// When the gap currently holds a cavity, `Some(spec)` replaces its channel
/// geometry in place; when it holds only solid layers, a cavity layer of
/// `spec.height()` is inserted just below tier `gap + 1`'s source layer.
/// The result is renamed `"{stack}/g{gap}=cavity"` or `"…=bond"`.
///
/// # Errors
///
/// * [`FloorplanError::InvalidTransform`] — `gap` out of range.
/// * [`FloorplanError::InvalidStack`] — the modified layer list fails stack
///   validation.
pub fn set_gap_cavity(
    stack: &Stack3d,
    gap: usize,
    cavity: Option<CavitySpec>,
) -> Result<Stack3d, FloorplanError> {
    let n_tiers = stack.tiers().len();
    if gap + 1 >= n_tiers {
        return Err(FloorplanError::InvalidTransform {
            detail: format!(
                "gap {gap} out of range (stack has {} inter-tier gaps)",
                n_tiers.saturating_sub(1)
            ),
        });
    }
    let src_pos: Vec<usize> = stack
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l.kind, LayerKind::Source { .. }).then_some(i))
        .collect();
    let lo = src_pos[gap];
    let hi = src_pos[gap + 1];
    let mut layers = stack.layers().to_vec();
    let existing = (lo + 1..hi).find(|&i| matches!(layers[i].kind, LayerKind::Cavity { .. }));
    let state = if cavity.is_some() { "cavity" } else { "bond" };
    match (existing, cavity) {
        (Some(i), Some(spec)) => {
            layers[i] = Layer {
                thickness: spec.height(),
                kind: LayerKind::Cavity { spec },
            };
        }
        (None, Some(spec)) => {
            // A bonded gap left behind by a previous `None` toggle shows up
            // as a thermal-interface solid between the tiers; reclaim it
            // rather than growing the stack.
            let bond = (lo + 1..hi).find(|&i| {
                matches!(
                    &layers[i].kind,
                    LayerKind::Solid { material } if *material == SolidMaterial::thermal_interface()
                )
            });
            let layer = Layer {
                thickness: spec.height(),
                kind: LayerKind::Cavity { spec },
            };
            match bond {
                Some(i) => layers[i] = layer,
                None => layers.insert(hi, layer),
            }
        }
        (Some(i), None) => {
            layers[i] = Layer {
                kind: LayerKind::Solid {
                    material: SolidMaterial::thermal_interface(),
                },
                thickness: layers[i].thickness,
            };
        }
        (None, None) => {} // already a conventional gap; keep layers, rename only
    }
    Stack3d::from_parts(
        format!("{}/g{gap}={state}", stack.name()),
        stack.width(),
        stack.height(),
        stack.tiers().to_vec(),
        layers,
        stack.sink().cloned(),
    )
}

/// Whether each inter-tier gap of `stack` currently holds a cavity, bottom
/// gap first (`gap_states(&s).len() == s.tiers().len() - 1`).
pub fn gap_states(stack: &Stack3d) -> Vec<bool> {
    let src_pos: Vec<usize> = stack
        .layers()
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l.kind, LayerKind::Source { .. }).then_some(i))
        .collect();
    src_pos
        .windows(2)
        .map(|w| {
            (w[0] + 1..w[1]).any(|i| matches!(stack.layers()[i].kind, LayerKind::Cavity { .. }))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::niagara;
    use crate::stack::presets;

    fn core_plan() -> Floorplan {
        niagara::core_tier().unwrap()
    }

    #[test]
    fn swap_preserves_validity_and_renames() {
        let plan = core_plan();
        let swapped = swap_elements(&plan, "core0", "core5").unwrap();
        assert!(swapped.name().ends_with("+swap(core0,core5)"));
        assert_eq!(swapped.elements().len(), plan.elements().len());
        // core0 now sits where core5 used to be, and vice versa.
        let i0 = swapped.index_of("core0").unwrap();
        let i5 = plan.index_of("core5").unwrap();
        assert_eq!(swapped.elements()[i0].rect(), plan.elements()[i5].rect());
        // Same total area, same utilization.
        assert!((swapped.occupied_area() - plan.occupied_area()).abs() < 1e-15);
    }

    #[test]
    fn swap_unknown_element_rejected() {
        assert!(matches!(
            swap_elements(&core_plan(), "core0", "nope"),
            Err(FloorplanError::UnknownElement { .. })
        ));
    }

    #[test]
    fn swap_is_involutive() {
        let plan = core_plan();
        let twice = swap_elements(
            &swap_elements(&plan, "core1", "core6").unwrap(),
            "core1",
            "core6",
        )
        .unwrap();
        assert_eq!(twice.elements(), plan.elements());
    }

    #[test]
    fn permute_validates_permutation() {
        let plan = core_plan();
        let n = plan.indices_of_kind(ElementKind::Core).len();
        assert!(matches!(
            permute_kind(&plan, ElementKind::Core, &[0, 0, 1, 2, 3, 4, 5, 6]),
            Err(FloorplanError::InvalidTransform { .. })
        ));
        assert!(matches!(
            permute_kind(&plan, ElementKind::Core, &[0]),
            Err(FloorplanError::InvalidTransform { .. })
        ));
        let identity: Vec<usize> = (0..n).collect();
        let same = permute_kind(&plan, ElementKind::Core, &identity).unwrap();
        assert_eq!(same.elements(), plan.elements());
        assert!(same.name().contains("+perm(core:"));
    }

    #[test]
    fn spread_puts_heaviest_core_on_periphery() {
        let plan = core_plan();
        let n = plan.indices_of_kind(ElementKind::Core).len();
        // Element 3 is by far the hottest.
        let mut weights = vec![1.0; n];
        weights[3] = 50.0;
        let spread = spread_hotspots(&plan, ElementKind::Core, &weights).unwrap();
        let (cx, cy) = plan.outline().center();
        let dist = |p: &Floorplan, name: &str| {
            let (x, y) = p.elements()[p.index_of(name).unwrap()].rect().center();
            (x - cx).hypot(y - cy)
        };
        // core3 is now at least as far from centre as every other core.
        let d3 = dist(&spread, "core3");
        for i in 0..n {
            assert!(d3 >= dist(&spread, &format!("core{i}")) - 1e-12);
        }
        assert!(spread.name().ends_with("+spread(core)"));
        // Deterministic: same inputs, identical output.
        let again = spread_hotspots(&plan, ElementKind::Core, &weights).unwrap();
        assert_eq!(again.elements(), spread.elements());
    }

    #[test]
    fn swap_in_tier_produces_valid_stack_with_new_label() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        let swapped = swap_in_tier(&stack, 0, "core0", "core7").unwrap();
        assert_eq!(swapped.tiers().len(), 2);
        assert!(swapped.name().contains("+swap(core0,core7)"));
        assert_ne!(swapped.tiers()[0], stack.tiers()[0]);
        assert_eq!(swapped.tiers()[1], stack.tiers()[1]);
        assert_eq!(swapped.cavity_count(), stack.cavity_count());
    }

    #[test]
    fn gap_cavity_toggle_round_trips() {
        let stack = presets::liquid_cooled_mpsoc(4).unwrap();
        assert_eq!(gap_states(&stack), vec![true, true, true]);
        let bonded = set_gap_cavity(&stack, 1, None).unwrap();
        assert_eq!(gap_states(&bonded), vec![true, false, true]);
        assert_eq!(bonded.cavity_count(), 2);
        // Total height unchanged: cavity replaced by an equal-thickness bond.
        assert!((bonded.total_thickness() - stack.total_thickness()).abs() < 1e-12);
        assert!(bonded.name().ends_with("/g1=bond"));
        let back = set_gap_cavity(&bonded, 1, Some(CavitySpec::table1())).unwrap();
        assert_eq!(gap_states(&back), vec![true, true, true]);
        assert_eq!(back.layers().len(), stack.layers().len());
    }

    #[test]
    fn gap_cavity_insertion_into_air_stack() {
        let stack = presets::air_cooled_mpsoc(2).unwrap();
        assert_eq!(gap_states(&stack), vec![false]);
        let wet = set_gap_cavity(&stack, 0, Some(CavitySpec::table1())).unwrap();
        assert_eq!(gap_states(&wet), vec![true]);
        assert!(wet.is_liquid_cooled());
        // The cavity adds its height to the stack.
        assert!(
            (wet.total_thickness() - stack.total_thickness() - CavitySpec::table1().height()).abs()
                < 1e-12
        );
        assert!(wet.sink().is_some(), "sink is preserved");
    }

    #[test]
    fn gap_out_of_range_rejected() {
        let stack = presets::liquid_cooled_mpsoc(2).unwrap();
        assert!(matches!(
            set_gap_cavity(&stack, 1, None),
            Err(FloorplanError::InvalidTransform { .. })
        ));
        assert!(matches!(
            with_tier_plan(&stack, 5, core_plan()),
            Err(FloorplanError::InvalidTransform { .. })
        ));
    }
}
