//! Floorplans, 3D stack composition and power-map gridding.
//!
//! This crate describes the *geometry* side of the paper's target systems
//! (§II.A, Fig. 1): UltraSPARC T1 (Niagara-1) floorplans with cores and L2
//! caches on separate tiers, stacked into 2- and 4-tier 3D MPSoCs with
//! either inter-tier micro-channel cavities (liquid cooling) or a
//! conventional back-side heat sink (air cooling).
//!
//! * [`geometry`] — axis-aligned rectangles in metres.
//! * [`plan`] — named floorplan elements with overlap/bounds validation.
//! * [`niagara`] — the UltraSPARC T1 core and cache tier floorplans built
//!   from Table I's areas (10 mm² per core, 19 mm² per L2, 115 mm² per
//!   layer).
//! * [`stack`] — layer-by-layer 3D stack description (dies, wiring/source
//!   layers, micro-channel cavities, heat-sink interface) plus the 2-/4-tier
//!   presets of §IV.
//! * [`grid`] — area-weighted mapping between floorplan elements and the
//!   regular thermal grid.
//! * [`transform`] — deterministic placement transformations (block
//!   swaps/permutations, hot-spot spreading, per-gap cavity on/off) that
//!   turn physical design into an optimizer axis, each re-validated and
//!   relabelled; [`Stack3d::silicon_area`] supplies the silicon-cost
//!   objective for multi-objective search.
//!
//! # Example
//!
//! ```
//! use cmosaic_floorplan::stack::presets;
//!
//! let stack = presets::liquid_cooled_mpsoc(2).expect("2-tier preset");
//! assert_eq!(stack.tiers().len(), 2);
//! // 2-tier stack: one inter-tier cavity.
//! assert_eq!(stack.cavity_count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod grid;
pub mod niagara;
pub mod plan;
pub mod stack;
pub mod transform;

pub use geometry::Rect;
pub use grid::GridSpec;
pub use plan::{Element, ElementKind, Floorplan};
pub use stack::{CavitySpec, HeatSinkSpec, Layer, LayerKind, Stack3d, StackBuilder};

use std::error::Error;
use std::fmt;

/// Errors produced while constructing floorplans and stacks.
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// An element extends outside the die outline.
    OutOfBounds {
        /// Name of the offending element.
        element: String,
    },
    /// Two elements overlap.
    Overlap {
        /// First element name.
        first: String,
        /// Second element name.
        second: String,
    },
    /// A duplicate element name was used.
    DuplicateName {
        /// The repeated name.
        name: String,
    },
    /// A geometric quantity was not strictly positive.
    NonPositiveDimension {
        /// What the dimension describes.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The stack description is inconsistent (e.g. a source layer refers to
    /// a missing tier, or no tiers were added).
    InvalidStack {
        /// Explanation.
        detail: String,
    },
    /// A placement transform referenced an element that does not exist.
    UnknownElement {
        /// The missing element name.
        name: String,
    },
    /// A placement transform was given inconsistent arguments (bad
    /// permutation, out-of-range tier/gap index, weight mismatch, …).
    InvalidTransform {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::OutOfBounds { element } => {
                write!(f, "element `{element}` extends outside the die outline")
            }
            FloorplanError::Overlap { first, second } => {
                write!(f, "elements `{first}` and `{second}` overlap")
            }
            FloorplanError::DuplicateName { name } => {
                write!(f, "duplicate element name `{name}`")
            }
            FloorplanError::NonPositiveDimension { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            FloorplanError::InvalidStack { detail } => write!(f, "invalid stack: {detail}"),
            FloorplanError::UnknownElement { name } => {
                write!(f, "no element named `{name}` in the floorplan")
            }
            FloorplanError::InvalidTransform { detail } => {
                write!(f, "invalid placement transform: {detail}")
            }
        }
    }
}

impl Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = FloorplanError::Overlap {
            first: "core0".into(),
            second: "core1".into(),
        };
        assert!(e.to_string().contains("core0"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FloorplanError>();
    }
}
