//! Axis-aligned rectangles in metres.

use crate::FloorplanError;

/// An axis-aligned rectangle with its origin at the lower-left corner.
///
/// All coordinates are in metres; the helper constructor
/// [`Rect::from_mm`] converts from millimetres, the unit Table I uses.
///
/// ```
/// use cmosaic_floorplan::Rect;
/// # fn main() -> Result<(), cmosaic_floorplan::FloorplanError> {
/// let core = Rect::from_mm(0.0, 0.0, 2.875, 3.478)?;
/// assert!((core.area() - 10.0e-6).abs() < 0.01e-6); // ~10 mm²
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    x: f64,
    y: f64,
    width: f64,
    height: f64,
}

impl Rect {
    /// Creates a rectangle from metre coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::NonPositiveDimension`] if width or height
    /// is not strictly positive, or any value is non-finite.
    pub fn new(x: f64, y: f64, width: f64, height: f64) -> Result<Self, FloorplanError> {
        if !(width > 0.0 && width.is_finite()) {
            return Err(FloorplanError::NonPositiveDimension {
                what: "rectangle width",
                value: width,
            });
        }
        if !(height > 0.0 && height.is_finite()) {
            return Err(FloorplanError::NonPositiveDimension {
                what: "rectangle height",
                value: height,
            });
        }
        if !x.is_finite() || !y.is_finite() {
            return Err(FloorplanError::NonPositiveDimension {
                what: "rectangle origin",
                value: if x.is_finite() { y } else { x },
            });
        }
        Ok(Rect {
            x,
            y,
            width,
            height,
        })
    }

    /// Creates a rectangle from millimetre coordinates.
    ///
    /// # Errors
    ///
    /// Same as [`Rect::new`].
    pub fn from_mm(x: f64, y: f64, width: f64, height: f64) -> Result<Self, FloorplanError> {
        Rect::new(x * 1e-3, y * 1e-3, width * 1e-3, height * 1e-3)
    }

    /// Lower-left x coordinate (m).
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Lower-left y coordinate (m).
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Width along x (m).
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height along y (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Upper-right x coordinate (m).
    pub fn x_max(&self) -> f64 {
        self.x + self.width
    }

    /// Upper-right y coordinate (m).
    pub fn y_max(&self) -> f64 {
        self.y + self.height
    }

    /// Area in m².
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Centre point `(x, y)` in metres.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// `true` if `other` lies entirely within `self` (touching edges
    /// allowed), up to a small tolerance for floating-point round-off.
    pub fn contains(&self, other: &Rect) -> bool {
        const EPS: f64 = 1e-12;
        other.x >= self.x - EPS
            && other.y >= self.y - EPS
            && other.x_max() <= self.x_max() + EPS
            && other.y_max() <= self.y_max() + EPS
    }

    /// Area of the intersection with `other`, in m² (zero if disjoint or
    /// merely touching).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = self.x_max().min(other.x_max()) - self.x.max(other.x);
        let h = self.y_max().min(other.y_max()) - self.y.max(other.y);
        if w > 0.0 && h > 0.0 {
            w * h
        } else {
            0.0
        }
    }

    /// `true` if the rectangles share interior area (not just an edge).
    pub fn intersects(&self, other: &Rect) -> bool {
        // Tolerate round-off on shared edges: an "overlap" thinner than a
        // nanometre is a touching boundary, not a floorplan violation.
        let w = self.x_max().min(other.x_max()) - self.x.max(other.x);
        let h = self.y_max().min(other.y_max()) - self.y.max(other.y);
        w > 1e-9 && h > 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0).unwrap();
        assert_eq!(r.x_max(), 4.0);
        assert_eq!(r.y_max(), 6.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.center(), (2.5, 4.0));
    }

    #[test]
    fn invalid_rects_rejected() {
        assert!(Rect::new(0.0, 0.0, 0.0, 1.0).is_err());
        assert!(Rect::new(0.0, 0.0, 1.0, -1.0).is_err());
        assert!(Rect::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let inner = Rect::new(2.0, 2.0, 3.0, 3.0).unwrap();
        let flush = Rect::new(0.0, 0.0, 10.0, 10.0).unwrap();
        let spill = Rect::new(8.0, 8.0, 3.0, 3.0).unwrap();
        assert!(outer.contains(&inner));
        assert!(outer.contains(&flush));
        assert!(!outer.contains(&spill));
    }

    #[test]
    fn overlap_area_and_intersection() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0).unwrap();
        let b = Rect::new(2.0, 2.0, 4.0, 4.0).unwrap();
        assert_eq!(a.overlap_area(&b), 4.0);
        assert!(a.intersects(&b));
        // Touching rectangles do not "intersect".
        let c = Rect::new(4.0, 0.0, 2.0, 4.0).unwrap();
        assert_eq!(a.overlap_area(&c), 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn mm_constructor_scales() {
        let r = Rect::from_mm(0.0, 0.0, 11.5, 10.0).unwrap();
        assert!((r.area() - 115.0e-6).abs() < 1e-12);
    }
}
