//! Layer-by-layer 3D stack description.
//!
//! A [`Stack3d`] is an ordered list of layers from the bottom of the stack
//! to the top. Each tier contributes a *source* layer (the active/wiring
//! layer where power is dissipated, Table I: 0.1 mm of BEOL material) and a
//! silicon *bulk* layer (Table I: 0.15 mm). Between tiers, liquid-cooled
//! stacks insert a micro-channel [`CavitySpec`] layer; air-cooled stacks end
//! with a thermal-interface layer and a lumped [`HeatSinkSpec`]
//! (Table I: 10 W/K, 140 J/K).

use crate::niagara;
use crate::plan::Floorplan;
use crate::FloorplanError;
use cmosaic_materials::solids::SolidMaterial;
use cmosaic_materials::units::Kelvin;

/// Geometry of an inter-tier micro-channel cavity (§II.C, Table I).
///
/// Channels run along the stack's x axis at a constant pitch across y;
/// between channels stand silicon walls which also carry the TSVs.
#[derive(Debug, Clone, PartialEq)]
pub struct CavitySpec {
    channel_width: f64,
    pitch: f64,
    height: f64,
    wall: SolidMaterial,
}

impl CavitySpec {
    /// The Table I cavity: 50 µm channels at 150 µm pitch, 100 µm tall,
    /// silicon walls.
    pub fn table1() -> Self {
        CavitySpec {
            channel_width: 0.05e-3,
            pitch: 0.15e-3,
            height: 0.1e-3,
            wall: SolidMaterial::silicon(),
        }
    }

    /// The Table I cavity with copper TSVs embedded in the channel walls
    /// (§II.C: "The only geometrical constraints are the implemented TSVs,
    /// which need to be embedded into the heat transfer structure").
    /// `tsv_area_fraction` is the fraction of the *wall* footprint filled
    /// by Cu vias; the wall conductivity follows the parallel-path rule of
    /// mixtures.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::NonPositiveDimension`] if the fraction is
    /// outside `[0, 1)`.
    pub fn table1_with_tsvs(tsv_area_fraction: f64) -> Result<Self, FloorplanError> {
        let wall =
            cmosaic_materials::solids::silicon_with_tsvs(tsv_area_fraction).map_err(|_| {
                FloorplanError::NonPositiveDimension {
                    what: "TSV area fraction in [0, 1)",
                    value: tsv_area_fraction,
                }
            })?;
        Ok(CavitySpec {
            wall,
            ..CavitySpec::table1()
        })
    }

    /// Creates a custom cavity.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::NonPositiveDimension`] unless
    /// `0 < channel_width < pitch` and `height > 0`.
    pub fn new(
        channel_width: f64,
        pitch: f64,
        height: f64,
        wall: SolidMaterial,
    ) -> Result<Self, FloorplanError> {
        if !(channel_width > 0.0 && channel_width.is_finite()) {
            return Err(FloorplanError::NonPositiveDimension {
                what: "channel width",
                value: channel_width,
            });
        }
        if !(pitch > channel_width && pitch.is_finite()) {
            return Err(FloorplanError::NonPositiveDimension {
                what: "channel pitch minus width",
                value: pitch - channel_width,
            });
        }
        if !(height > 0.0 && height.is_finite()) {
            return Err(FloorplanError::NonPositiveDimension {
                what: "channel height",
                value: height,
            });
        }
        Ok(CavitySpec {
            channel_width,
            pitch,
            height,
            wall,
        })
    }

    /// Channel width (m).
    pub fn channel_width(&self) -> f64 {
        self.channel_width
    }

    /// Channel pitch (m).
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Channel (cavity) height (m).
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Wall material between channels.
    pub fn wall(&self) -> &SolidMaterial {
        &self.wall
    }

    /// Number of parallel channels across a die of the given y extent.
    pub fn channel_count(&self, die_height: f64) -> usize {
        (die_height / self.pitch).floor() as usize
    }

    /// Fluid fraction of the cavity cross-section (channel width / pitch).
    pub fn porosity(&self) -> f64 {
        self.channel_width / self.pitch
    }

    /// Hydraulic diameter `2wh/(w+h)` of a single channel (m).
    pub fn hydraulic_diameter(&self) -> f64 {
        2.0 * self.channel_width * self.height / (self.channel_width + self.height)
    }
}

/// Lumped back-side heat sink (air cooling), Table I: 10 W/K to ambient with
/// 140 J/K thermal mass. Ambient is 45 °C, the standard assumption for
/// air-cooled HotSpot-style studies.
#[derive(Debug, Clone, PartialEq)]
pub struct HeatSinkSpec {
    /// Total sink-to-ambient conductance, W/K.
    pub conductance: f64,
    /// Sink thermal capacitance, J/K.
    pub capacitance: f64,
    /// Ambient air temperature.
    pub ambient: Kelvin,
}

impl HeatSinkSpec {
    /// The Table I sink.
    pub fn table1() -> Self {
        HeatSinkSpec {
            conductance: 10.0,
            capacitance: 140.0,
            ambient: Kelvin::from_celsius(45.0),
        }
    }
}

/// The physical role of one layer of the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Bulk solid (die silicon, TIM, …) with no heat sources.
    Solid {
        /// Layer material.
        material: SolidMaterial,
    },
    /// The active/wiring layer of tier `tier`: solid, plus the tier's power
    /// map is injected into its cells.
    Source {
        /// Layer material (BEOL stack).
        material: SolidMaterial,
        /// Index into [`Stack3d::tiers`].
        tier: usize,
    },
    /// An inter-tier micro-channel cavity.
    Cavity {
        /// Channel geometry.
        spec: CavitySpec,
    },
}

/// One layer of the stack: a kind plus its thickness in metres.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// What the layer is.
    pub kind: LayerKind,
    /// Thickness (m).
    pub thickness: f64,
}

/// A complete 3D stack: footprint, tier floorplans, ordered layers and the
/// optional air-cooled sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Stack3d {
    name: String,
    width: f64,
    height: f64,
    tiers: Vec<Floorplan>,
    layers: Vec<Layer>,
    sink: Option<HeatSinkSpec>,
}

impl Stack3d {
    /// Stack name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Footprint extent along the channel (x) direction, metres.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Footprint extent across the channels (y), metres.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Tier floorplans, bottom tier first.
    pub fn tiers(&self) -> &[Floorplan] {
        &self.tiers
    }

    /// Layers, bottom first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The lumped sink, if this is an air-cooled stack.
    pub fn sink(&self) -> Option<&HeatSinkSpec> {
        self.sink.as_ref()
    }

    /// Number of micro-channel cavities.
    pub fn cavity_count(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::Cavity { .. }))
            .count()
    }

    /// `true` if the stack uses inter-tier liquid cooling.
    pub fn is_liquid_cooled(&self) -> bool {
        self.cavity_count() > 0
    }

    /// Total stack thickness (m).
    pub fn total_thickness(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness).sum()
    }

    /// Silicon/stack area model for the cost objective of multi-objective
    /// placement search (the silicon-area angle of Menon & Pangracious,
    /// arXiv:1201.3332): every tier contributes one die footprint, and every
    /// micro-channel cavity contributes the silicon *walls* between its
    /// channels — `(1 − porosity) × footprint` — since the walls are etched
    /// from (and carry TSVs through) additional silicon. Units: m².
    ///
    /// Air-cooled stacks therefore cost `tiers × footprint`; each cavity
    /// adds a porosity-dependent surcharge, so wider channels (higher
    /// porosity) trade thermal capacity against silicon cost.
    pub fn silicon_area(&self) -> f64 {
        let footprint = self.width * self.height;
        let tier_area = self.tiers.len() as f64 * footprint;
        let wall_area: f64 = self
            .layers
            .iter()
            .map(|l| match &l.kind {
                LayerKind::Cavity { spec } => (1.0 - spec.porosity()) * footprint,
                _ => 0.0,
            })
            .sum();
        tier_area + wall_area
    }

    /// Reassembles a stack from explicit parts, running the same validation
    /// as [`StackBuilder::build`]. This is the re-validation entry point for
    /// the placement transforms in [`crate::transform`].
    ///
    /// # Errors
    ///
    /// Same as [`StackBuilder::build`].
    pub fn from_parts(
        name: impl Into<String>,
        width: f64,
        height: f64,
        tiers: Vec<Floorplan>,
        layers: Vec<Layer>,
        sink: Option<HeatSinkSpec>,
    ) -> Result<Stack3d, FloorplanError> {
        let builder = StackBuilder {
            name: name.into(),
            width,
            height,
            tiers,
            layers,
            sink,
        };
        builder.build()
    }
}

/// Incremental builder for [`Stack3d`] (layers are added bottom-up).
#[derive(Debug, Clone)]
pub struct StackBuilder {
    name: String,
    width: f64,
    height: f64,
    tiers: Vec<Floorplan>,
    layers: Vec<Layer>,
    sink: Option<HeatSinkSpec>,
}

impl StackBuilder {
    /// Starts a stack with the given footprint (metres).
    pub fn new(name: impl Into<String>, width: f64, height: f64) -> Self {
        StackBuilder {
            name: name.into(),
            width,
            height,
            tiers: Vec::new(),
            layers: Vec::new(),
            sink: None,
        }
    }

    /// Adds a tier: a source (wiring) layer carrying the floorplan's power,
    /// topped by bulk silicon.
    pub fn tier(
        &mut self,
        floorplan: Floorplan,
        wiring_thickness: f64,
        die_thickness: f64,
    ) -> &mut Self {
        let tier_idx = self.tiers.len();
        self.tiers.push(floorplan);
        self.layers.push(Layer {
            kind: LayerKind::Source {
                material: SolidMaterial::wiring(),
                tier: tier_idx,
            },
            thickness: wiring_thickness,
        });
        self.layers.push(Layer {
            kind: LayerKind::Solid {
                material: SolidMaterial::silicon(),
            },
            thickness: die_thickness,
        });
        self
    }

    /// Adds a micro-channel cavity layer on top of the current stack.
    pub fn cavity(&mut self, spec: CavitySpec) -> &mut Self {
        self.layers.push(Layer {
            thickness: spec.height(),
            kind: LayerKind::Cavity { spec },
        });
        self
    }

    /// Adds a plain solid layer (e.g. a thermal-interface layer).
    pub fn solid(&mut self, material: SolidMaterial, thickness: f64) -> &mut Self {
        self.layers.push(Layer {
            kind: LayerKind::Solid { material },
            thickness,
        });
        self
    }

    /// Attaches a lumped air-cooled sink above the topmost layer.
    pub fn sink(&mut self, spec: HeatSinkSpec) -> &mut Self {
        self.sink = Some(spec);
        self
    }

    /// Validates and builds the stack.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::InvalidStack`] — no tiers, a tier outline that
    ///   does not match the stack footprint, a sink over a cavity layer, or
    ///   non-positive layer thicknesses.
    pub fn build(&self) -> Result<Stack3d, FloorplanError> {
        if self.tiers.is_empty() {
            return Err(FloorplanError::InvalidStack {
                detail: "a stack needs at least one tier".into(),
            });
        }
        for t in &self.tiers {
            let o = t.outline();
            if (o.width() - self.width).abs() > 1e-9 || (o.height() - self.height).abs() > 1e-9 {
                return Err(FloorplanError::InvalidStack {
                    detail: format!(
                        "tier `{}` outline {:.4}x{:.4} mm does not match stack footprint {:.4}x{:.4} mm",
                        t.name(),
                        o.width() * 1e3,
                        o.height() * 1e3,
                        self.width * 1e3,
                        self.height * 1e3
                    ),
                });
            }
        }
        for (i, l) in self.layers.iter().enumerate() {
            if !(l.thickness > 0.0 && l.thickness.is_finite()) {
                return Err(FloorplanError::InvalidStack {
                    detail: format!("layer {i} has non-positive thickness {}", l.thickness),
                });
            }
            if let LayerKind::Source { tier, .. } = l.kind {
                if tier >= self.tiers.len() {
                    return Err(FloorplanError::InvalidStack {
                        detail: format!(
                            "source layer {i} refers to tier {tier} but the stack has {}",
                            self.tiers.len()
                        ),
                    });
                }
            }
        }
        if self.sink.is_some() {
            if let Some(last) = self.layers.last() {
                if matches!(last.kind, LayerKind::Cavity { .. }) {
                    return Err(FloorplanError::InvalidStack {
                        detail: "a heat sink cannot sit directly on a cavity layer".into(),
                    });
                }
            }
        }
        Ok(Stack3d {
            name: self.name.clone(),
            width: self.width,
            height: self.height,
            tiers: self.tiers.clone(),
            layers: self.layers.clone(),
            sink: self.sink.clone(),
        })
    }
}

/// Preset stacks matching the paper's experimental platforms (§IV.A).
pub mod presets {
    use super::*;

    /// Wiring (inter-tier material) thickness from Table I: 0.1 mm.
    pub const WIRING_THICKNESS: f64 = 0.1e-3;
    /// Die thickness from Table I: 0.15 mm.
    pub const DIE_THICKNESS: f64 = 0.15e-3;
    /// Thermal-interface thickness used under the air-cooled sink.
    pub const TIM_THICKNESS: f64 = 0.05e-3;

    fn alternating_tiers(n_tiers: usize) -> Result<Vec<Floorplan>, FloorplanError> {
        (0..n_tiers)
            .map(|i| {
                if i % 2 == 0 {
                    niagara::core_tier()
                } else {
                    niagara::cache_tier()
                }
            })
            .collect()
    }

    /// A liquid-cooled n-tier Niagara MPSoC: core and cache tiers alternate
    /// (cores at the bottom), with a Table I micro-channel cavity between
    /// consecutive tiers (the *inter-tier* arrangement of §II) — so a
    /// 2-tier stack has 1 cavity and a 4-tier stack has 3. Doubling the
    /// tier count raises the cavity-to-tier ratio from 1/2 to 3/4, which is
    /// why the 4-tier stack runs *cooler* than the 2-tier one in §IV.A
    /// ("due to the increased number of cooling tiers (cavities)").
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidStack`] if `n_tiers == 0`.
    pub fn liquid_cooled_mpsoc(n_tiers: usize) -> Result<Stack3d, FloorplanError> {
        if n_tiers == 0 {
            return Err(FloorplanError::InvalidStack {
                detail: "n_tiers must be at least 1".into(),
            });
        }
        let tiers = alternating_tiers(n_tiers)?;
        let mut b = StackBuilder::new(
            format!("{n_tiers}-tier-liquid-cooled"),
            niagara::DIE_WIDTH,
            niagara::DIE_HEIGHT,
        );
        for (i, t) in tiers.into_iter().enumerate() {
            if i > 0 {
                b.cavity(CavitySpec::table1());
            }
            b.tier(t, WIRING_THICKNESS, DIE_THICKNESS);
        }
        b.build()
    }

    /// An air-cooled n-tier Niagara MPSoC: tiers stacked directly, topped by
    /// a thermal-interface layer and the Table I lumped sink (10 W/K,
    /// 140 J/K, 45 °C ambient).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidStack`] if `n_tiers == 0`.
    pub fn air_cooled_mpsoc(n_tiers: usize) -> Result<Stack3d, FloorplanError> {
        if n_tiers == 0 {
            return Err(FloorplanError::InvalidStack {
                detail: "n_tiers must be at least 1".into(),
            });
        }
        let tiers = alternating_tiers(n_tiers)?;
        let mut b = StackBuilder::new(
            format!("{n_tiers}-tier-air-cooled"),
            niagara::DIE_WIDTH,
            niagara::DIE_HEIGHT,
        );
        for t in tiers {
            b.tier(t, WIRING_THICKNESS, DIE_THICKNESS);
        }
        b.solid(SolidMaterial::thermal_interface(), TIM_THICKNESS);
        b.sink(HeatSinkSpec::table1());
        b.build()
    }

    fn liquid_stack_of(name: String, tiers: Vec<Floorplan>) -> Result<Stack3d, FloorplanError> {
        let mut b = StackBuilder::new(name, niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
        for (i, t) in tiers.into_iter().enumerate() {
            if i > 0 {
                b.cavity(CavitySpec::table1());
            }
            b.tier(t, WIRING_THICKNESS, DIE_THICKNESS);
        }
        b.build()
    }

    /// A liquid-cooled memory-on-logic stack: core tiers alternate with
    /// stacked-DRAM tiers (45 nm banks, [`niagara::memory_tier`]) instead
    /// of cache tiers, with a Table I cavity between consecutive tiers —
    /// the 3D memory-integration arrangement of Cherian et al.
    /// (arXiv:1109.0708). Pair with the `MemoryOnLogic` power-allocator
    /// preset so the DRAM banks get refresh/activate power instead of SRAM
    /// power.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidStack`] if `n_tiers == 0`.
    pub fn memory_on_logic(n_tiers: usize) -> Result<Stack3d, FloorplanError> {
        if n_tiers == 0 {
            return Err(FloorplanError::InvalidStack {
                detail: "n_tiers must be at least 1".into(),
            });
        }
        let tiers = (0..n_tiers)
            .map(|i| {
                if i % 2 == 0 {
                    niagara::core_tier()
                } else {
                    niagara::memory_tier()
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        liquid_stack_of(format!("{n_tiers}-tier-memory-on-logic"), tiers)
    }

    /// A liquid-cooled mixed core/accelerator stack: accelerator tiers
    /// (4 cores + 2 throughput engines, [`niagara::accelerator_tier`])
    /// alternate with cache tiers, Table I cavities in between. Pair with
    /// the `MixedAccelerator` power-allocator preset for the
    /// accelerator-heavy power budget.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidStack`] if `n_tiers == 0`.
    pub fn accelerated_mpsoc(n_tiers: usize) -> Result<Stack3d, FloorplanError> {
        if n_tiers == 0 {
            return Err(FloorplanError::InvalidStack {
                detail: "n_tiers must be at least 1".into(),
            });
        }
        let tiers = (0..n_tiers)
            .map(|i| {
                if i % 2 == 0 {
                    niagara::accelerator_tier()
                } else {
                    niagara::cache_tier()
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        liquid_stack_of(format!("{n_tiers}-tier-accelerated"), tiers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cavity_geometry() {
        let c = CavitySpec::table1();
        assert_eq!(c.channel_width(), 0.05e-3);
        assert_eq!(c.pitch(), 0.15e-3);
        assert_eq!(c.height(), 0.1e-3);
        // 10 mm die / 0.15 mm pitch = 66 channels.
        assert_eq!(c.channel_count(niagara::DIE_HEIGHT), 66);
        assert!((c.porosity() - 1.0 / 3.0).abs() < 1e-12);
        // Dh = 2·50·100/(50+100) µm = 66.7 µm.
        assert!((c.hydraulic_diameter() - 66.67e-6).abs() < 0.1e-6);
    }

    #[test]
    fn tsv_embedded_walls_conduct_better() {
        let plain = CavitySpec::table1();
        let with_tsvs = CavitySpec::table1_with_tsvs(0.15).unwrap();
        assert!(with_tsvs.wall().thermal_conductivity() > plain.wall().thermal_conductivity());
        // Geometry is unchanged — TSVs live inside the walls.
        assert_eq!(with_tsvs.channel_width(), plain.channel_width());
        assert_eq!(with_tsvs.pitch(), plain.pitch());
        assert!(CavitySpec::table1_with_tsvs(1.2).is_err());
    }

    #[test]
    fn invalid_cavities_rejected() {
        let si = SolidMaterial::silicon;
        assert!(CavitySpec::new(0.0, 1e-4, 1e-4, si()).is_err());
        assert!(CavitySpec::new(2e-4, 1e-4, 1e-4, si()).is_err()); // width > pitch
        assert!(CavitySpec::new(5e-5, 1.5e-4, 0.0, si()).is_err());
    }

    #[test]
    fn two_tier_liquid_preset() {
        let s = presets::liquid_cooled_mpsoc(2).unwrap();
        assert_eq!(s.tiers().len(), 2);
        // One inter-tier cavity between the two tiers.
        assert_eq!(s.cavity_count(), 1);
        assert!(s.is_liquid_cooled());
        assert!(s.sink().is_none());
        // Layers: w,d | cav | w,d => 5 layers.
        assert_eq!(s.layers().len(), 5);
        // Tier order: cores below, caches above.
        assert_eq!(s.tiers()[0].name(), "niagara-core-tier");
        assert_eq!(s.tiers()[1].name(), "niagara-cache-tier");
    }

    #[test]
    fn four_tier_liquid_preset_has_three_cavities() {
        let s = presets::liquid_cooled_mpsoc(4).unwrap();
        assert_eq!(s.cavity_count(), 3);
        assert_eq!(s.tiers().len(), 4);
        // Thickness: 4·(0.1+0.15) + 3·0.1 = 1.3 mm.
        assert!((s.total_thickness() - 1.3e-3).abs() < 1e-9);
    }

    #[test]
    fn air_cooled_preset_has_sink_and_no_cavities() {
        let s = presets::air_cooled_mpsoc(2).unwrap();
        assert_eq!(s.cavity_count(), 0);
        assert!(!s.is_liquid_cooled());
        let sink = s.sink().expect("air-cooled stack has a sink");
        assert_eq!(sink.conductance, 10.0);
        assert_eq!(sink.capacitance, 140.0);
        assert!((sink.ambient.to_celsius().0 - 45.0).abs() < 1e-9);
    }

    #[test]
    fn source_layers_reference_tiers_in_order() {
        let s = presets::air_cooled_mpsoc(4).unwrap();
        let sources: Vec<usize> = s
            .layers()
            .iter()
            .filter_map(|l| match l.kind {
                LayerKind::Source { tier, .. } => Some(tier),
                _ => None,
            })
            .collect();
        assert_eq!(sources, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_tier_stacks_rejected() {
        assert!(presets::liquid_cooled_mpsoc(0).is_err());
        assert!(presets::air_cooled_mpsoc(0).is_err());
        assert!(StackBuilder::new("x", 1e-2, 1e-2).build().is_err());
    }

    #[test]
    fn sink_on_cavity_rejected() {
        let mut b = StackBuilder::new("bad", niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
        b.tier(
            niagara::core_tier().unwrap(),
            presets::WIRING_THICKNESS,
            presets::DIE_THICKNESS,
        );
        b.cavity(CavitySpec::table1());
        b.sink(HeatSinkSpec::table1());
        assert!(matches!(
            b.build(),
            Err(FloorplanError::InvalidStack { .. })
        ));
    }

    #[test]
    fn silicon_area_counts_tiers_and_cavity_walls() {
        let footprint = niagara::DIE_WIDTH * niagara::DIE_HEIGHT;
        let air = presets::air_cooled_mpsoc(2).unwrap();
        assert!((air.silicon_area() - 2.0 * footprint).abs() < 1e-12);
        // Liquid 2-tier: 2 dies + 1 cavity whose walls fill (1 - 1/3) of the
        // footprint.
        let wet = presets::liquid_cooled_mpsoc(2).unwrap();
        let expected = 2.0 * footprint + (1.0 - 1.0 / 3.0) * footprint;
        assert!((wet.silicon_area() - expected).abs() < 1e-12);
        // More cavities, more silicon.
        let wet4 = presets::liquid_cooled_mpsoc(4).unwrap();
        assert!(wet4.silicon_area() > wet.silicon_area());
    }

    #[test]
    fn from_parts_revalidates() {
        let s = presets::liquid_cooled_mpsoc(2).unwrap();
        let rebuilt = Stack3d::from_parts(
            "copy",
            s.width(),
            s.height(),
            s.tiers().to_vec(),
            s.layers().to_vec(),
            s.sink().cloned(),
        )
        .unwrap();
        assert_eq!(rebuilt.layers(), s.layers());
        // Dropping the tiers breaks the source-layer references.
        assert!(matches!(
            Stack3d::from_parts(
                "bad",
                s.width(),
                s.height(),
                vec![s.tiers()[0].clone()],
                s.layers().to_vec(),
                None,
            ),
            Err(FloorplanError::InvalidStack { .. })
        ));
    }

    #[test]
    fn mismatched_tier_outline_rejected() {
        let small = Floorplan::new(
            "small",
            crate::Rect::from_mm(0.0, 0.0, 5.0, 5.0).unwrap(),
            vec![],
        )
        .unwrap();
        let mut b = StackBuilder::new("bad", niagara::DIE_WIDTH, niagara::DIE_HEIGHT);
        b.tier(small, 1e-4, 1.5e-4);
        assert!(b.build().is_err());
    }
}
