//! Compressed sparse column storage.

use crate::SparseError;

/// A sparse matrix in compressed sparse column (CSC) format.
///
/// Entries within each column are sorted by row index and unique. CSC is the
/// natural layout for the left-looking LU factorisation in [`crate::lu`].
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// Column pointers, length `ncols + 1`.
    col_ptr: Vec<usize>,
    /// Row indices, length `nnz`.
    row_idx: Vec<usize>,
    /// Values, length `nnz`.
    values: Vec<f64>,
}

impl CscMatrix {
    /// Builds a CSC matrix from coordinate triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if the triplet arrays have different lengths or contain
    /// out-of-bounds indices.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        rows: &[usize],
        cols: &[usize],
        vals: &[f64],
    ) -> Self {
        assert_eq!(rows.len(), cols.len(), "triplet arrays must match");
        assert_eq!(rows.len(), vals.len(), "triplet arrays must match");

        // Count entries per column.
        let mut counts = vec![0usize; ncols + 1];
        for (&r, &c) in rows.iter().zip(cols) {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of bounds");
            counts[c + 1] += 1;
        }
        for c in 0..ncols {
            counts[c + 1] += counts[c];
        }
        let col_ptr_raw = counts.clone();

        // Scatter into place (unsorted within column).
        let mut next = col_ptr_raw.clone();
        let mut row_idx = vec![0usize; rows.len()];
        let mut values = vec![0.0f64; rows.len()];
        for ((&r, &c), &v) in rows.iter().zip(cols).zip(vals) {
            let slot = next[c];
            row_idx[slot] = r;
            values[slot] = v;
            next[c] += 1;
        }

        // Sort each column by row and accumulate duplicates.
        let mut out_col_ptr = vec![0usize; ncols + 1];
        let mut out_rows = Vec::with_capacity(rows.len());
        let mut out_vals = Vec::with_capacity(rows.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..ncols {
            scratch.clear();
            for k in col_ptr_raw[c]..col_ptr_raw[c + 1] {
                scratch.push((row_idx[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut iter = scratch.iter().copied();
            if let Some((mut cur_row, mut cur_val)) = iter.next() {
                for (r, v) in iter {
                    if r == cur_row {
                        cur_val += v;
                    } else {
                        out_rows.push(cur_row);
                        out_vals.push(cur_val);
                        cur_row = r;
                        cur_val = v;
                    }
                }
                out_rows.push(cur_row);
                out_vals.push(cur_val);
            }
            out_col_ptr[c + 1] = out_rows.len();
        }

        CscMatrix {
            nrows,
            ncols,
            col_ptr: out_col_ptr,
            row_idx: out_rows,
            values: out_vals,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column pointer array (length `ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// Row index array (length `nnz`).
    pub fn row_idx(&self) -> &[usize] {
        &self.row_idx
    }

    /// Value array (length `nnz`).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over the `(row, value)` entries of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols`.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at `(row, col)`, or `0.0` if the entry is not stored.
    ///
    /// Binary search within the column — O(log nnz_col).
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Overwrites the stored values by re-accumulating `vals` through the
    /// scatter `map` produced by
    /// [`TripletMatrix::to_csc_with_map`](crate::TripletMatrix::to_csc_with_map):
    /// value slot `map[k]` receives the sum of every `vals[k]` mapped to
    /// it. The sparsity pattern is untouched, so any
    /// [`SymbolicLu`](crate::SymbolicLu) captured from this matrix stays
    /// valid — this is the O(nnz) half of an incremental re-assembly.
    ///
    /// # Panics
    ///
    /// Panics if `map` and `vals` differ in length or a map entry is out
    /// of range.
    pub fn update_values(&mut self, map: &[usize], vals: &[f64]) {
        assert_eq!(map.len(), vals.len(), "scatter map/value length mismatch");
        self.values.iter_mut().for_each(|v| *v = 0.0);
        for (&slot, &v) in map.iter().zip(vals) {
            self.values[slot] += v;
        }
    }

    /// `true` when `other` has exactly this matrix's sparsity pattern
    /// (dimensions, column pointers and row indices; values free to
    /// differ). This is the validity condition for reusing a
    /// [`SymbolicLu`](crate::SymbolicLu) captured from one matrix on
    /// another.
    pub fn same_pattern(&self, other: &CscMatrix) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.col_ptr == other.col_ptr
            && self.row_idx == other.row_idx
    }

    /// Matrix–vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-owned buffer: `y = A·x`,
    /// overwriting `y` completely. Bit-identical to [`CscMatrix::matvec`]
    /// without the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec_into: x dimension mismatch");
        assert_eq!(y.len(), self.nrows, "matvec_into: y dimension mismatch");
        y.fill(0.0);
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
    }

    /// In-place `y += alpha · A·x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn matvec_acc(&self, x: &[f64], alpha: f64, y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec_acc: x dimension mismatch");
        assert_eq!(y.len(), self.nrows, "matvec_acc: y dimension mismatch");
        for (c, &xv) in x.iter().enumerate() {
            let xc = alpha * xv;
            if xc == 0.0 {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
    }

    /// Transposed product `y = Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_transpose: dimension mismatch");
        let mut y = vec![0.0; self.ncols];
        for (c, yc) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                acc += self.values[k] * x[self.row_idx[k]];
            }
            *yc = acc;
        }
        y
    }

    /// The main diagonal as a dense vector (zeros for missing entries).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> CscMatrix {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for c in 0..self.ncols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                rows.push(c);
                cols.push(self.row_idx[k]);
                vals.push(self.values[k]);
            }
        }
        CscMatrix::from_triplets(self.ncols, self.nrows, &rows, &cols, &vals)
    }

    /// `true` if the matrix is square and its sparsity pattern equals the
    /// pattern of its transpose (values may differ).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.col_ptr == t.col_ptr && self.row_idx == t.row_idx
    }

    /// Maximum absolute difference `max |A − Aᵀ|` over all entries; zero for
    /// numerically symmetric matrices.
    pub fn asymmetry(&self) -> f64 {
        let t = self.transpose();
        let mut worst = 0.0f64;
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                worst = worst.max((v - t.get(r, c)).abs());
            }
            for (r, v) in t.col_iter(c) {
                worst = worst.max((v - self.get(r, c)).abs());
            }
        }
        worst
    }

    /// Returns `A + alpha·D` where `D` is the diagonal matrix with entries
    /// `d` — used to form the backward-Euler operator `G + C/Δt`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `d.len()` differs from the matrix
    /// dimension or the matrix is not square.
    pub fn add_diagonal(&self, d: &[f64], alpha: f64) -> Result<CscMatrix, SparseError> {
        if self.nrows != self.ncols || d.len() != self.nrows {
            return Err(SparseError::Shape {
                detail: format!(
                    "add_diagonal: matrix {}x{}, diagonal length {}",
                    self.nrows,
                    self.ncols,
                    d.len()
                ),
            });
        }
        let mut rows: Vec<usize> = Vec::with_capacity(self.nnz() + d.len());
        let mut cols: Vec<usize> = Vec::with_capacity(self.nnz() + d.len());
        let mut vals: Vec<f64> = Vec::with_capacity(self.nnz() + d.len());
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            }
        }
        for (i, &di) in d.iter().enumerate() {
            rows.push(i);
            cols.push(i);
            vals.push(alpha * di);
        }
        Ok(CscMatrix::from_triplets(
            self.nrows, self.ncols, &rows, &cols, &vals,
        ))
    }

    /// Dense copy (row-major, rows × cols) — intended for tests and small
    /// matrices only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        #[allow(clippy::needless_range_loop)] // `c` indexes the inner vecs, not a slice to iterate
        for c in 0..self.ncols {
            for (r, v) in self.col_iter(c) {
                d[r][c] = v;
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CscMatrix::from_triplets(
            3,
            3,
            &[0, 2, 1, 0, 2],
            &[0, 0, 1, 2, 2],
            &[1.0, 4.0, 3.0, 2.0, 5.0],
        )
    }

    #[test]
    fn same_pattern_ignores_values_only() {
        let a = sample();
        let mut b = sample();
        assert!(a.same_pattern(&b));
        // Different values, same pattern.
        b.update_values(&[0, 1, 2, 3, 4], &[9.0, 8.0, 7.0, 6.0, 5.0]);
        assert!(a.same_pattern(&b));
        // Different pattern (extra entry).
        let c = CscMatrix::from_triplets(
            3,
            3,
            &[0, 2, 1, 0, 2, 1],
            &[0, 0, 1, 2, 2, 0],
            &[1.0, 4.0, 3.0, 2.0, 5.0, 1.0],
        );
        assert!(!a.same_pattern(&c));
        // Different dimensions.
        assert!(!a.same_pattern(&CscMatrix::identity(3)));
        assert!(!a.same_pattern(&CscMatrix::identity(4)));
    }

    #[test]
    fn construction_sorts_and_indexes() {
        let a = sample();
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 0), 4.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(2, 2), 5.0);
        assert_eq!(a.get(1, 0), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let a = sample();
        let y = a.matvec(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn matvec_transpose_agrees_with_transpose_matvec() {
        let a = sample();
        let x = [1.0, -2.0, 0.5];
        let y1 = a.matvec_transpose(&x);
        let y2 = a.transpose().matvec(&x);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn structural_symmetry_detection() {
        let sym =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[2.0, -1.0, -1.0, 2.0]);
        assert!(sym.is_structurally_symmetric());
        assert!(sym.asymmetry() < 1e-15);
        // Entry at (1,0) with no matching (0,1): structurally asymmetric —
        // exactly the upwind-advection pattern of the micro-channel model.
        let asym = CscMatrix::from_triplets(2, 2, &[0, 1, 1], &[0, 0, 1], &[2.0, -1.0, 2.0]);
        assert!(!asym.is_structurally_symmetric());
        assert!(asym.asymmetry() > 0.5);
        // The sample matrix has a symmetric *pattern* but asymmetric values.
        assert!(sample().is_structurally_symmetric());
        assert!(sample().asymmetry() > 0.0);
    }

    #[test]
    fn add_diagonal_builds_backward_euler_operator() {
        let a = sample();
        let b = a.add_diagonal(&[10.0, 20.0, 30.0], 2.0).unwrap();
        assert_eq!(b.get(0, 0), 1.0 + 20.0);
        assert_eq!(b.get(1, 1), 3.0 + 40.0);
        assert_eq!(b.get(2, 2), 5.0 + 60.0);
        assert_eq!(b.get(0, 2), 2.0);
        assert!(a.add_diagonal(&[1.0], 1.0).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let i = CscMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x.to_vec());
        assert!(i.is_structurally_symmetric());
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn empty_columns_are_fine() {
        let a = CscMatrix::from_triplets(3, 3, &[0], &[0], &[7.0]);
        assert_eq!(a.nnz(), 1);
        assert_eq!(a.col_iter(1).count(), 0);
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![7.0, 0.0, 0.0]);
    }
}
