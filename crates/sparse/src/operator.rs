//! Operator and preconditioner abstractions for the iterative solvers.
//!
//! [`bicgstab_into`](crate::bicgstab_into) is generic over these two
//! traits so the same Krylov loop runs against an assembled
//! [`CscMatrix`] or a matrix-free stencil form (the thermal crate's
//! `StencilOperator`), and against any preconditioner — [`Ilu0`] or the
//! geometric [`Multigrid`](crate::Multigrid).
//!
//! # Contracts
//!
//! * [`LinearOperator::matvec_into`] must fully overwrite `y` and, once
//!   warm, perform **zero heap allocation** — it sits on the innermost
//!   solver path.
//! * Two operators representing the same matrix must produce
//!   **bit-identical** `matvec_into` results for the Krylov trajectory to
//!   be reproducible across representations; implementations therefore
//!   document their accumulation order.
//! * [`LinearOperator::max_abs`] is the operator scale used by the
//!   scale-relative breakdown guards; it must equal the maximum absolute
//!   value over the *stored/emitted* entries (the same fold a CSC form
//!   would compute over its value array).
//! * [`Preconditioner::apply_into`] takes `&mut self` so implementations
//!   may use internal scratch (the multigrid level buffers); applying the
//!   preconditioner twice to the same residual must still produce
//!   identical results — the mutation is scratch, not state.

use crate::csc::CscMatrix;
use crate::ilu::Ilu0;
use crate::SparseError;

/// A linear operator `A` that can be applied to a dense vector.
///
/// Implemented by [`CscMatrix`] (assembled form) and by matrix-free
/// stencil operators in downstream crates.
pub trait LinearOperator {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// `y = A·x`, fully overwriting `y`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()` or `y.len() != nrows()` (programmer
    /// error, mirroring [`CscMatrix::matvec_into`]).
    fn matvec_into(&self, x: &[f64], y: &mut [f64]);

    /// Maximum absolute value over the operator's stored entries — the
    /// operator scale used by scale-relative breakdown tests.
    fn max_abs(&self) -> f64;

    /// One relaxation pass of the multigrid smoother: by default a damped
    /// Jacobi update `x ← x + ω·D⁻¹·(b − A·x)`, computing `A·x` into
    /// `scratch`. `inv_diag` holds the reciprocal operator diagonal.
    ///
    /// Implementations may override this with a stronger pass that
    /// exploits their structure (the thermal stencil chases advection
    /// chains downstream with a Gauss–Seidel substitution), provided the
    /// pass remains a deterministic, allocation-free function of `(x, b)`
    /// that is linear in both — the properties the V-cycle's
    /// [`Preconditioner`] contract rests on.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the operator dimension
    /// (programmer error, as in [`LinearOperator::matvec_into`]).
    fn smooth_pass(
        &self,
        x: &mut [f64],
        b: &[f64],
        inv_diag: &[f64],
        omega: f64,
        scratch: &mut [f64],
    ) {
        self.matvec_into(x, scratch);
        for i in 0..x.len() {
            x[i] += omega * inv_diag[i] * (b[i] - scratch[i]);
        }
    }
}

impl LinearOperator for CscMatrix {
    fn nrows(&self) -> usize {
        CscMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CscMatrix::ncols(self)
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        CscMatrix::matvec_into(self, x, y);
    }

    fn max_abs(&self) -> f64 {
        self.values().iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }
}

/// A preconditioner `M` approximating `A⁻¹`, applied as `z = M⁻¹·r`.
///
/// Takes `&mut self` so implementations may keep internal scratch (the
/// multigrid V-cycle's per-level buffers); the application must still be
/// a pure function of `r` — repeated applies on the same residual return
/// identical bits.
pub trait Preconditioner {
    /// Dimension of the preconditioned system.
    fn n(&self) -> usize;

    /// Applies the preconditioner: `z = M⁻¹·r`, overwriting `z`
    /// completely (resized to `n`). Once `z` and the internal scratch
    /// have warmed to this dimension the call performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `r.len() != n`.
    fn apply_into(&mut self, r: &[f64], z: &mut Vec<f64>) -> Result<(), SparseError>;
}

impl Preconditioner for Ilu0 {
    fn n(&self) -> usize {
        Ilu0::n(self)
    }

    fn apply_into(&mut self, r: &[f64], z: &mut Vec<f64>) -> Result<(), SparseError> {
        Ilu0::apply_into(self, r, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn small() -> CscMatrix {
        let mut t = TripletMatrix::new(3, 3);
        t.push(0, 0, 4.0);
        t.push(1, 1, -5.0);
        t.push(2, 2, 3.0);
        t.push(1, 0, -1.5);
        t.push(0, 2, 2.0);
        t.to_csc()
    }

    #[test]
    fn csc_trait_impl_matches_inherent_methods() {
        let a = small();
        let x = [1.0, 2.0, -3.0];
        let mut y_trait = [0.0; 3];
        let mut y_inherent = [0.0; 3];
        LinearOperator::matvec_into(&a, &x, &mut y_trait);
        CscMatrix::matvec_into(&a, &x, &mut y_inherent);
        assert_eq!(y_trait, y_inherent);
        assert_eq!(LinearOperator::nrows(&a), 3);
        assert_eq!(LinearOperator::ncols(&a), 3);
        assert_eq!(a.max_abs(), 5.0, "largest |entry| regardless of sign");
    }

    #[test]
    fn ilu0_precond_impl_delegates_to_apply_into() {
        let mut t = TripletMatrix::new(3, 3);
        for i in 0..3 {
            t.push(i, i, 2.0);
        }
        let a = t.to_csc();
        let mut m = Ilu0::new(&a).unwrap();
        assert_eq!(Preconditioner::n(&m), 3);
        let mut z_trait = Vec::new();
        Preconditioner::apply_into(&mut m, &[2.0, 4.0, 6.0], &mut z_trait).unwrap();
        let z_inherent = m.apply(&[2.0, 4.0, 6.0]).unwrap();
        assert_eq!(z_trait, z_inherent);
    }
}
