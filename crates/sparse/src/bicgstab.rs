//! BiCGSTAB iterative solver with optional ILU(0) preconditioning.
//!
//! Used to cross-validate the direct LU solver and as an alternative for
//! very large steady-state problems where factor fill would be a burden.

use crate::csc::CscMatrix;
use crate::ilu::Ilu0;
use crate::{dot, norm2, SparseError};

/// Options controlling the BiCGSTAB iteration.
#[derive(Debug, Clone)]
pub struct BicgstabOptions {
    /// Relative residual tolerance (‖r‖/‖b‖).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Whether to build and apply an ILU(0) preconditioner.
    pub use_ilu0: bool,
}

impl Default for BicgstabOptions {
    fn default() -> Self {
        BicgstabOptions {
            tolerance: 1e-10,
            max_iterations: 2000,
            use_ilu0: true,
        }
    }
}

/// Convergence report from [`bicgstab`].
#[derive(Debug, Clone, PartialEq)]
pub struct BicgstabOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Solves `A·x = b` by preconditioned BiCGSTAB.
///
/// # Errors
///
/// * [`SparseError::Shape`] — non-square `A` or mismatched `b`.
/// * [`SparseError::NoConvergence`] — iteration cap reached.
/// * [`SparseError::Breakdown`] — vanishing inner product (restart with the
///   direct solver in that case).
/// * [`SparseError::Singular`] — the ILU(0) preconditioner could not be
///   built.
pub fn bicgstab(
    a: &CscMatrix,
    b: &[f64],
    options: &BicgstabOptions,
) -> Result<BicgstabOutcome, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::Shape {
            detail: format!(
                "BiCGSTAB requires square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            ),
        });
    }
    if b.len() != a.nrows() {
        return Err(SparseError::Shape {
            detail: format!("rhs length {} != {}", b.len(), a.nrows()),
        });
    }
    let n = a.nrows();
    let precond = if options.use_ilu0 {
        Some(Ilu0::new(a)?)
    } else {
        None
    };
    let apply_m = |r: &[f64]| -> Vec<f64> {
        match &precond {
            Some(m) => m.apply(r),
            None => r.to_vec(),
        }
    };

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok(BicgstabOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual: 0.0,
        });
    }

    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec(); // r = b - A·0
    let r0 = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = vec![0.0f64; n];
    let mut p = vec![0.0f64; n];

    for it in 1..=options.max_iterations {
        let rho_new = dot(&r0, &r);
        if rho_new.abs() < 1e-300 {
            return Err(SparseError::Breakdown { iteration: it });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        let p_hat = apply_m(&p);
        v = a.matvec(&p_hat);
        let denom = dot(&r0, &v);
        if denom.abs() < 1e-300 {
            return Err(SparseError::Breakdown { iteration: it });
        }
        alpha = rho / denom;
        let s: Vec<f64> = (0..n).map(|i| r[i] - alpha * v[i]).collect();
        if norm2(&s) / bnorm < options.tolerance {
            for i in 0..n {
                x[i] += alpha * p_hat[i];
            }
            let res = relative_residual(a, &x, b, bnorm);
            return Ok(BicgstabOutcome {
                x,
                iterations: it,
                residual: res,
            });
        }
        let s_hat = apply_m(&s);
        let t = a.matvec(&s_hat);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return Err(SparseError::Breakdown { iteration: it });
        }
        omega = dot(&t, &s) / tt;
        for i in 0..n {
            x[i] += alpha * p_hat[i] + omega * s_hat[i];
            r[i] = s[i] - omega * t[i];
        }
        if norm2(&r) / bnorm < options.tolerance {
            let res = relative_residual(a, &x, b, bnorm);
            return Ok(BicgstabOutcome {
                x,
                iterations: it,
                residual: res,
            });
        }
        if omega.abs() < 1e-300 {
            return Err(SparseError::Breakdown { iteration: it });
        }
    }

    let res = relative_residual(a, &x, b, bnorm);
    Err(SparseError::NoConvergence {
        iterations: options.max_iterations,
        residual: res,
    })
}

fn relative_residual(a: &CscMatrix, x: &[f64], b: &[f64], bnorm: f64) -> f64 {
    let ax = a.matvec(x);
    let diff: Vec<f64> = ax.iter().zip(b).map(|(u, v)| u - v).collect();
    norm2(&diff) / bnorm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use crate::triplet::TripletMatrix;

    fn grid_with_sink(nx: usize, ny: usize) -> CscMatrix {
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    t.stamp_conductance(i, i + 1, 1.3);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, i + nx, 0.7);
                }
                t.push(i, i, 0.02);
            }
        }
        t.to_csc()
    }

    #[test]
    fn matches_direct_solver_on_spd_grid() {
        let a = grid_with_sink(12, 9);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) * 0.1 + 0.5).collect();
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        let iter = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        for (u, v) in iter.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
        assert!(iter.residual < 1e-9);
    }

    #[test]
    fn handles_nonsymmetric_advection() {
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
        }
        for i in 0..n - 1 {
            t.push(i + 1, i, -2.0); // upwind coupling
            t.push(i, i + 1, -0.5);
        }
        let a = t.to_csc();
        let b = vec![1.0; n];
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        let iter = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        for (u, v) in iter.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn unpreconditioned_still_converges_on_small_systems() {
        let a = grid_with_sink(5, 5);
        let b = vec![1.0; a.nrows()];
        let opts = BicgstabOptions {
            use_ilu0: false,
            ..Default::default()
        };
        let out = bicgstab(&a, &b, &opts).unwrap();
        assert!(out.residual < 1e-9);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = grid_with_sink(4, 4);
        let out = bicgstab(&a, &[0.0; 16], &BicgstabOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_reported() {
        let a = grid_with_sink(10, 10);
        // A non-eigenvector right-hand side (all-ones is an exact
        // eigenvector of this operator and converges in one step).
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.61).sin() + 2.0).collect();
        let opts = BicgstabOptions {
            tolerance: 1e-14,
            max_iterations: 1,
            use_ilu0: false,
        };
        assert!(matches!(
            bicgstab(&a, &b, &opts),
            Err(SparseError::NoConvergence { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        let a = CscMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(bicgstab(&a, &[1.0, 1.0], &BicgstabOptions::default()).is_err());
        let sq = CscMatrix::identity(3);
        assert!(bicgstab(&sq, &[1.0], &BicgstabOptions::default()).is_err());
    }
}
