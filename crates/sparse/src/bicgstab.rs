//! BiCGSTAB iterative solver with optional ILU(0) preconditioning.
//!
//! The workhorse alternative to the direct LU for very large steady-state
//! problems where factor fill would be a burden, and the engine behind the
//! thermal crate's iterative solver backend. Two entry points:
//!
//! * [`bicgstab`] — convenience API: allocates its own scratch and (when
//!   requested) builds the ILU(0) preconditioner per call.
//! * [`bicgstab_into`] — hot-path API: caller-owned
//!   [`IterativeWorkspace`] scratch, caller-owned (and therefore cacheable)
//!   [`Ilu0`] preconditioner, solution written into a caller-owned slice.
//!   Once the workspace has warmed to the system dimension a call performs
//!   **zero heap allocation** — the same contract as
//!   [`LuFactors::solve_with`](crate::LuFactors::solve_with), observable
//!   through [`IterativeWorkspace::grows`].
//!
//! # Breakdown detection is scale-relative
//!
//! BiCGSTAB breaks down when an inner product it must divide by vanishes
//! (`ρ = r̃·r`, `r̃·v`, `t·t`, `ω`). "Vanishes" is meaningful only relative
//! to the magnitudes of the vectors involved: an absolute threshold both
//! fires falsely on well-conditioned systems whose entries simply live at
//! a tiny magnitude (a system scaled by 1e-160 has `ρ ~ 1e-320`) and
//! misses true breakdowns at large scale. Every guard here therefore
//! compares against `ε · ‖u‖·‖v‖` of the vectors entering the product —
//! the cosine of the angle between them dropping to round-off — which is
//! invariant under any uniform rescaling of `A` and `b` that stays inside
//! the normal floating-point range.

use crate::csc::CscMatrix;
use crate::ilu::Ilu0;
use crate::operator::{LinearOperator, Preconditioner};
use crate::{dot, norm2, SparseError};

/// Relative breakdown threshold: an inner product smaller than
/// `BREAKDOWN_REL · ‖u‖·‖v‖` means the vectors are orthogonal to machine
/// precision.
const BREAKDOWN_REL: f64 = f64::EPSILON;

/// Options controlling the BiCGSTAB iteration.
#[derive(Debug, Clone)]
pub struct BicgstabOptions {
    /// Relative residual tolerance (‖r‖/‖b‖).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Whether [`bicgstab`] should build and apply an ILU(0)
    /// preconditioner. Ignored by [`bicgstab_into`], whose preconditioner
    /// is caller-owned.
    pub use_ilu0: bool,
    /// When set, [`bicgstab_into`] starts from the incoming contents of
    /// `x` instead of the zero guess (`r = b − A·x`), and may return in
    /// zero iterations if the guess already meets the tolerance.
    ///
    /// **Determinism contract:** off (the default), every solve of the
    /// same `(A, b)` is bit-identical regardless of history. On, the
    /// trajectory depends on the incoming guess — runs are still
    /// deterministic for a fixed solve sequence, but results are no
    /// longer independent of prior solves. Leave off where bit-stable
    /// reports are required.
    pub warm_start: bool,
}

impl Default for BicgstabOptions {
    fn default() -> Self {
        BicgstabOptions {
            tolerance: 1e-10,
            max_iterations: 2000,
            use_ilu0: true,
            warm_start: false,
        }
    }
}

/// Convergence report from [`bicgstab`].
#[derive(Debug, Clone, PartialEq)]
pub struct BicgstabOutcome {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Convergence report from [`bicgstab_into`] (the solution lands in the
/// caller's buffer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BicgstabSummary {
    /// Iterations used.
    pub iterations: usize,
    /// Final relative residual.
    pub residual: f64,
}

/// Caller-owned scratch for [`bicgstab_into`]: the eight dense working
/// vectors one BiCGSTAB iteration needs, kept across calls so a warm
/// solver loop performs zero heap allocation.
///
/// One workspace serves systems of any size — the buffers grow to the
/// largest `n` seen and then stay. [`IterativeWorkspace::grows`] counts
/// how often a buffer actually had to reallocate, the observable behind
/// the zero-allocation contract (mirroring
/// [`SolveWorkspace`](crate::SolveWorkspace)).
#[derive(Debug, Clone, Default)]
pub struct IterativeWorkspace {
    r: Vec<f64>,
    r0: Vec<f64>,
    v: Vec<f64>,
    p: Vec<f64>,
    p_hat: Vec<f64>,
    s: Vec<f64>,
    s_hat: Vec<f64>,
    t: Vec<f64>,
    grows: u64,
}

impl IterativeWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for systems of dimension `n`, so even
    /// the first solve allocates nothing.
    pub fn with_dimension(n: usize) -> Self {
        IterativeWorkspace {
            r: vec![0.0; n],
            r0: vec![0.0; n],
            v: vec![0.0; n],
            p: vec![0.0; n],
            p_hat: vec![0.0; n],
            s: vec![0.0; n],
            s_hat: vec![0.0; n],
            t: vec![0.0; n],
            grows: 0,
        }
    }

    /// Number of times a buffer had to reallocate since construction. A
    /// warm loop must keep this constant.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Sizes every buffer to `n`, counting real reallocations. All
    /// buffers are fully (re)initialised by the solve itself.
    fn ensure(&mut self, n: usize) {
        let bufs = [
            &mut self.r,
            &mut self.r0,
            &mut self.v,
            &mut self.p,
            &mut self.p_hat,
            &mut self.s,
            &mut self.s_hat,
            &mut self.t,
        ];
        let mut grew = false;
        for b in bufs {
            if b.capacity() < n {
                grew = true;
            }
            if b.len() != n {
                b.clear();
                b.resize(n, 0.0);
            }
        }
        if grew {
            self.grows += 1;
        }
    }
}

/// Solves `A·x = b` by preconditioned BiCGSTAB.
///
/// Convenience wrapper over [`bicgstab_into`]: allocates a workspace,
/// builds the ILU(0) preconditioner when `options.use_ilu0` is set, and
/// returns the solution by value. Use [`bicgstab_into`] in loops.
///
/// # Errors
///
/// * [`SparseError::Shape`] — non-square `A` or mismatched `b`.
/// * [`SparseError::NoConvergence`] — iteration cap reached.
/// * [`SparseError::Breakdown`] — vanishing inner product (restart with the
///   direct solver in that case).
/// * [`SparseError::Singular`] — the ILU(0) preconditioner could not be
///   built.
pub fn bicgstab(
    a: &CscMatrix,
    b: &[f64],
    options: &BicgstabOptions,
) -> Result<BicgstabOutcome, SparseError> {
    // Validate the shapes before paying for the O(nnz) preconditioner
    // build (and so a shape problem is reported as Shape, not as a
    // Singular from factorising a matrix we were never going to solve).
    if a.nrows() == a.ncols() && b.len() != a.nrows() {
        return Err(SparseError::Shape {
            detail: format!("rhs length {} != {}", b.len(), a.nrows()),
        });
    }
    let mut precond = if options.use_ilu0 && a.nrows() == a.ncols() {
        Some(Ilu0::new(a)?)
    } else {
        None
    };
    let mut ws = IterativeWorkspace::new();
    let mut x = vec![0.0f64; a.nrows()];
    let summary = bicgstab_into(a, b, precond.as_mut(), options, &mut ws, &mut x)?;
    Ok(BicgstabOutcome {
        x,
        iterations: summary.iterations,
        residual: summary.residual,
    })
}

/// Solves `A·x = b` by BiCGSTAB with a caller-owned preconditioner and
/// workspace, writing the solution into `x`.
///
/// Generic over the [`LinearOperator`] being solved (assembled
/// [`CscMatrix`] or a matrix-free stencil form) and the
/// [`Preconditioner`] applied ([`Ilu0`] or
/// [`Multigrid`](crate::Multigrid)).
///
/// By default `x` is fully overwritten — the iteration starts from the
/// zero guess, so the result is independent of `x`'s incoming contents.
/// With [`BicgstabOptions::warm_start`] set, `x`'s incoming contents are
/// the initial guess instead; see the field docs for the determinism
/// trade-off.
///
/// `precond` is applied as-is — build it once per operator
/// ([`Ilu0::new`]) and reuse it across every solve of that operator.
/// `options.use_ilu0` is ignored here. Once `ws` has warmed to dimension
/// `n` the call performs zero heap allocation
/// ([`IterativeWorkspace::grows`] stays flat).
///
/// # Errors
///
/// * [`SparseError::Shape`] — non-square `A`, mismatched `b`/`x`, or a
///   preconditioner of the wrong dimension.
/// * [`SparseError::NoConvergence`] — iteration cap reached.
/// * [`SparseError::Breakdown`] — a scale-relative vanishing inner
///   product (see the [module docs](self)); fall back to the direct
///   solver.
pub fn bicgstab_into<A, M>(
    a: &A,
    b: &[f64],
    precond: Option<&mut M>,
    options: &BicgstabOptions,
    ws: &mut IterativeWorkspace,
    x: &mut [f64],
) -> Result<BicgstabSummary, SparseError>
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    if a.nrows() != a.ncols() {
        return Err(SparseError::Shape {
            detail: format!(
                "BiCGSTAB requires square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            ),
        });
    }
    let n = a.nrows();
    if b.len() != n || x.len() != n {
        return Err(SparseError::Shape {
            detail: format!(
                "rhs length {} / solution length {} != {n}",
                b.len(),
                x.len()
            ),
        });
    }
    let mut precond = precond;
    if let Some(m) = &precond {
        if m.n() != n {
            return Err(SparseError::Shape {
                detail: format!("preconditioner dimension {} != {n}", m.n()),
            });
        }
    }

    let bnorm = norm2(b);
    if bnorm == 0.0 {
        x.fill(0.0);
        return Ok(BicgstabSummary {
            iterations: 0,
            residual: 0.0,
        });
    }

    // Scale of the operator, the reference for the `t = A·ŝ` vanishing
    // test below (‖t‖ must be judged against ‖A‖·‖ŝ‖, not ‖ŝ‖ alone).
    let a_scale = a.max_abs();

    ws.ensure(n);
    let r0_norm;
    let mut r_norm;
    if options.warm_start {
        // r = b − A·x from the caller-supplied guess. Everything below is
        // unchanged; a zero incoming x reproduces the cold path exactly
        // (r = b bit-for-bit, and ‖r₀‖ = ‖b‖ through the same `norm2`).
        a.matvec_into(x, &mut ws.t);
        for (ri, (&bi, &ti)) in ws.r.iter_mut().zip(b.iter().zip(&ws.t)) {
            *ri = bi - ti;
        }
        ws.r0.copy_from_slice(&ws.r);
        r0_norm = norm2(&ws.r0);
        r_norm = r0_norm;
        if r_norm / bnorm < options.tolerance {
            let res = relative_residual_into(a, x, b, bnorm, &mut ws.t);
            return Ok(BicgstabSummary {
                iterations: 0,
                residual: res,
            });
        }
    } else {
        x.fill(0.0);
        ws.r.copy_from_slice(b); // r = b - A·0
        ws.r0.copy_from_slice(b);
        r0_norm = bnorm;
        r_norm = bnorm;
    }
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    ws.v.fill(0.0);
    ws.p.fill(0.0);

    for it in 1..=options.max_iterations {
        let rho_new = dot(&ws.r0, &ws.r);
        // ρ → 0 relative to ‖r̃‖·‖r‖: the shadow residual has become
        // orthogonal to the residual.
        if rho_new.abs() <= BREAKDOWN_REL * r0_norm * r_norm {
            return Err(SparseError::Breakdown { iteration: it });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            ws.p[i] = ws.r[i] + beta * (ws.p[i] - omega * ws.v[i]);
        }
        apply_precond(precond.as_deref_mut(), &ws.p, &mut ws.p_hat)?;
        a.matvec_into(&ws.p_hat, &mut ws.v);
        let denom = dot(&ws.r0, &ws.v);
        let v_norm = norm2(&ws.v);
        if denom.abs() <= BREAKDOWN_REL * r0_norm * v_norm {
            return Err(SparseError::Breakdown { iteration: it });
        }
        alpha = rho / denom;
        for i in 0..n {
            ws.s[i] = ws.r[i] - alpha * ws.v[i];
        }
        let s_norm = norm2(&ws.s);
        if s_norm / bnorm < options.tolerance {
            for (xi, &ph) in x.iter_mut().zip(&ws.p_hat) {
                *xi += alpha * ph;
            }
            let res = relative_residual_into(a, x, b, bnorm, &mut ws.t);
            return Ok(BicgstabSummary {
                iterations: it,
                residual: res,
            });
        }
        apply_precond(precond.as_deref_mut(), &ws.s, &mut ws.s_hat)?;
        let s_hat_norm = norm2(&ws.s_hat);
        a.matvec_into(&ws.s_hat, &mut ws.t);
        let tt = dot(&ws.t, &ws.t);
        // ‖t‖ ≤ ε·‖A‖·‖ŝ‖: A·ŝ has vanished relative to what the operator
        // scale says it should be — ŝ sits in A's numerical null space.
        if tt.sqrt() <= BREAKDOWN_REL * a_scale * s_hat_norm {
            return Err(SparseError::Breakdown { iteration: it });
        }
        let ts = dot(&ws.t, &ws.s);
        // t ⊥ s to machine precision makes ω ≈ 0 and the next β divide
        // by round-off.
        if ts.abs() <= BREAKDOWN_REL * tt.sqrt() * s_norm {
            return Err(SparseError::Breakdown { iteration: it });
        }
        omega = ts / tt;
        for (i, xi) in x.iter_mut().enumerate() {
            *xi += alpha * ws.p_hat[i] + omega * ws.s_hat[i];
            ws.r[i] = ws.s[i] - omega * ws.t[i];
        }
        r_norm = norm2(&ws.r);
        if r_norm / bnorm < options.tolerance {
            let res = relative_residual_into(a, x, b, bnorm, &mut ws.t);
            return Ok(BicgstabSummary {
                iterations: it,
                residual: res,
            });
        }
    }

    let res = relative_residual_into(a, x, b, bnorm, &mut ws.t);
    Err(SparseError::NoConvergence {
        iterations: options.max_iterations,
        residual: res,
    })
}

/// `z = M⁻¹·r`, or a plain copy when unpreconditioned.
fn apply_precond<M: Preconditioner + ?Sized>(
    m: Option<&mut M>,
    r: &[f64],
    z: &mut Vec<f64>,
) -> Result<(), SparseError> {
    match m {
        Some(m) => m.apply_into(r, z),
        None => {
            z.clear();
            z.extend_from_slice(r);
            Ok(())
        }
    }
}

/// ‖A·x − b‖ / ‖b‖ computed through a caller-owned scratch vector.
fn relative_residual_into<A: LinearOperator + ?Sized>(
    a: &A,
    x: &[f64],
    b: &[f64],
    bnorm: f64,
    scratch: &mut [f64],
) -> f64 {
    a.matvec_into(x, scratch);
    let mut sq = 0.0;
    for (u, v) in scratch.iter().zip(b) {
        let d = u - v;
        sq += d * d;
    }
    sq.sqrt() / bnorm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu;
    use crate::triplet::TripletMatrix;

    fn grid_with_sink_scaled(nx: usize, ny: usize, scale: f64) -> CscMatrix {
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    t.stamp_conductance(i, i + 1, 1.3 * scale);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, i + nx, 0.7 * scale);
                }
                t.push(i, i, 0.02 * scale);
            }
        }
        t.to_csc()
    }

    fn grid_with_sink(nx: usize, ny: usize) -> CscMatrix {
        grid_with_sink_scaled(nx, ny, 1.0)
    }

    #[test]
    fn matches_direct_solver_on_spd_grid() {
        let a = grid_with_sink(12, 9);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) * 0.1 + 0.5).collect();
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        let iter = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        for (u, v) in iter.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
        assert!(iter.residual < 1e-9);
    }

    #[test]
    fn handles_nonsymmetric_advection() {
        let n = 50;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
        }
        for i in 0..n - 1 {
            t.push(i + 1, i, -2.0); // upwind coupling
            t.push(i, i + 1, -0.5);
        }
        let a = t.to_csc();
        let b = vec![1.0; n];
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        let iter = bicgstab(&a, &b, &BicgstabOptions::default()).unwrap();
        for (u, v) in iter.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn unpreconditioned_still_converges_on_small_systems() {
        let a = grid_with_sink(5, 5);
        let b = vec![1.0; a.nrows()];
        let opts = BicgstabOptions {
            use_ilu0: false,
            ..Default::default()
        };
        let out = bicgstab(&a, &b, &opts).unwrap();
        assert!(out.residual < 1e-9);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = grid_with_sink(4, 4);
        let out = bicgstab(&a, &[0.0; 16], &BicgstabOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_reported() {
        let a = grid_with_sink(10, 10);
        // A non-eigenvector right-hand side (all-ones is an exact
        // eigenvector of this operator and converges in one step).
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.61).sin() + 2.0).collect();
        let opts = BicgstabOptions {
            tolerance: 1e-14,
            max_iterations: 1,
            use_ilu0: false,
            warm_start: false,
        };
        assert!(matches!(
            bicgstab(&a, &b, &opts),
            Err(SparseError::NoConvergence { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        let a = CscMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(bicgstab(&a, &[1.0, 1.0], &BicgstabOptions::default()).is_err());
        let sq = CscMatrix::identity(3);
        assert!(bicgstab(&sq, &[1.0], &BicgstabOptions::default()).is_err());
        // The _into entry point checks x and the preconditioner dimension
        // too.
        let a = grid_with_sink(3, 3);
        let mut ws = IterativeWorkspace::new();
        let mut x = vec![0.0; 9];
        assert!(bicgstab_into(
            &a,
            &[1.0; 4],
            None::<&mut Ilu0>,
            &BicgstabOptions::default(),
            &mut ws,
            &mut x
        )
        .is_err());
        let mut short = vec![0.0; 4];
        assert!(bicgstab_into(
            &a,
            &[1.0; 9],
            None::<&mut Ilu0>,
            &BicgstabOptions::default(),
            &mut ws,
            &mut short
        )
        .is_err());
        let mut wrong_m = Ilu0::new(&grid_with_sink(2, 2)).unwrap();
        assert!(matches!(
            bicgstab_into(
                &a,
                &[1.0; 9],
                Some(&mut wrong_m),
                &BicgstabOptions::default(),
                &mut ws,
                &mut x
            ),
            Err(SparseError::Shape { .. })
        ));
    }

    #[test]
    fn into_path_matches_the_allocating_path_bitwise() {
        let a = grid_with_sink(8, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos() + 1.1).collect();
        let opts = BicgstabOptions::default();
        let fresh = bicgstab(&a, &b, &opts).unwrap();
        let mut m = Ilu0::new(&a).unwrap();
        let mut ws = IterativeWorkspace::with_dimension(n);
        let mut x = vec![7.0; n]; // stale contents must not matter
        let summary = bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        assert_eq!(x, fresh.x, "identical bits through either entry point");
        assert_eq!(summary.iterations, fresh.iterations);
        assert_eq!(summary.residual, fresh.residual);
        assert_eq!(ws.grows(), 0, "pre-sized workspace never grows");
    }

    #[test]
    fn warm_workspace_never_regrows() {
        let a = grid_with_sink(9, 9);
        let n = a.nrows();
        let b = vec![1.0; n];
        let mut m = Ilu0::new(&a).unwrap();
        let opts = BicgstabOptions::default();
        let mut ws = IterativeWorkspace::new();
        let mut x = vec![0.0; n];
        bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        let warm = ws.grows();
        assert!(warm >= 1, "first use must grow the buffers");
        for _ in 0..20 {
            bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        }
        assert_eq!(ws.grows(), warm, "warm solves must never reallocate");
    }

    #[test]
    fn warm_start_from_zero_guess_matches_cold_path_bitwise() {
        // The determinism contract's boundary case: a zero incoming guess
        // under warm_start reproduces the cold path exactly.
        let a = grid_with_sink(8, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 1.2).collect();
        let mut m = Ilu0::new(&a).unwrap();
        let cold = BicgstabOptions::default();
        let warm = BicgstabOptions {
            warm_start: true,
            ..Default::default()
        };
        let mut ws = IterativeWorkspace::new();
        let mut x_cold = vec![3.0; n];
        let s_cold = bicgstab_into(&a, &b, Some(&mut m), &cold, &mut ws, &mut x_cold).unwrap();
        let mut x_warm = vec![0.0; n];
        let s_warm = bicgstab_into(&a, &b, Some(&mut m), &warm, &mut ws, &mut x_warm).unwrap();
        assert_eq!(x_cold, x_warm, "zero guess must reproduce the cold bits");
        assert_eq!(s_cold, s_warm);
    }

    #[test]
    fn warm_start_from_converged_guess_exits_in_zero_iterations() {
        let a = grid_with_sink(8, 7);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos() + 1.1).collect();
        let mut m = Ilu0::new(&a).unwrap();
        let opts = BicgstabOptions {
            warm_start: true,
            ..Default::default()
        };
        let mut ws = IterativeWorkspace::new();
        let mut x = vec![0.0; n];
        let first = bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        assert!(first.iterations > 0);
        // Re-solving from the converged solution is (near-)free: either the
        // guess already meets the tolerance (0 iterations) or one cleanup
        // iteration closes the gap between recursive and true residual.
        let again = bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        assert!(
            again.iterations <= 1,
            "warm restart took {} iterations",
            again.iterations
        );
    }

    #[test]
    fn tiny_magnitude_system_converges_without_false_breakdown() {
        // Regression: the breakdown guards used to compare |rho|, |r̃·v|,
        // t·t and |omega| against an absolute 1e-300. A well-conditioned
        // system uniformly scaled by 1e-160 has rho = dot(r0, r) ~ 1e-320
        // and tripped the rho guard on the very first iteration; the
        // scale-relative guards must sail through. (At this scale the
        // squares inside `norm2` graze the subnormal-flush floor, which
        // caps the *certifiable* accuracy at a few percent — hence the
        // loose tolerance here; the companion test below checks full
        // accuracy one decade of headroom up.)
        let scale = 1e-160;
        let a = grid_with_sink_scaled(10, 8, scale);
        let n = a.nrows();
        let b: Vec<f64> = (0..n)
            .map(|i| (((i * 5 % 11) as f64) * 0.2 + 0.4) * scale)
            .collect();
        let opts = BicgstabOptions {
            tolerance: 1e-3,
            ..Default::default()
        };
        let out = bicgstab(&a, &b, &opts).expect("tiny-magnitude system must not break down");
        // x is scale-free (A and b carry the same factor): compare against
        // the unscaled direct solve, loosely (see above).
        let a1 = grid_with_sink_scaled(10, 8, 1.0);
        let b1: Vec<f64> = b.iter().map(|v| v / scale).collect();
        let direct = lu::factor(&a1).unwrap().solve(&b1).unwrap();
        for (u, v) in out.x.iter().zip(&direct) {
            assert!(u.is_finite());
            assert!((u - v).abs() < 0.15 * v.abs().max(1.0), "{u} vs {v}");
        }
    }

    #[test]
    fn tiny_magnitude_system_converges_to_full_tolerance() {
        // One decade of subnormal headroom up from the extreme case above,
        // the default 1e-10 tolerance is reachable and the solution must
        // match the direct solve tightly. The old absolute guards failed
        // here too (rho falls through 1e-300 mid-convergence).
        let scale = 1e-150;
        let a = grid_with_sink_scaled(10, 8, scale);
        let n = a.nrows();
        let b: Vec<f64> = (0..n)
            .map(|i| (((i * 5 % 11) as f64) * 0.2 + 0.4) * scale)
            .collect();
        let out = bicgstab(&a, &b, &BicgstabOptions::default())
            .expect("tiny-magnitude system must not break down");
        assert!(out.residual < 1e-9, "residual {}", out.residual);
        let a1 = grid_with_sink_scaled(10, 8, 1.0);
        let b1: Vec<f64> = b.iter().map(|v| v / scale).collect();
        let direct = lu::factor(&a1).unwrap().solve(&b1).unwrap();
        for (u, v) in out.x.iter().zip(&direct) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn unpreconditioned_tiny_magnitude_system_also_converges() {
        // Without the ILU(0) solve to restore magnitudes, the iteration's
        // intermediates live at scale² and scale³, so the usable range is
        // narrower — 1e-80 keeps every inner product representable while
        // still sitting far below any plausible absolute threshold.
        let scale = 1e-80;
        let a = grid_with_sink_scaled(5, 5, scale);
        let b: Vec<f64> = (0..a.nrows()).map(|i| (1.0 + i as f64) * scale).collect();
        let opts = BicgstabOptions {
            use_ilu0: false,
            ..Default::default()
        };
        let out = bicgstab(&a, &b, &opts).expect("no false breakdown");
        assert!(out.residual < 1e-9);
    }
}
