//! Small dense matrices — the test oracle and the fallback for tiny systems
//! (e.g. the flow-network solves in `cmosaic-hydraulics`).

use crate::SparseError;

/// A row-major dense matrix.
///
/// ```
/// use cmosaic_sparse::DenseMatrix;
/// # fn main() -> Result<(), cmosaic_sparse::SparseError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, SparseError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(SparseError::Shape {
                    detail: format!("row {i} has length {} expected {ncols}", r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c]
    }

    /// Sets the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] = v;
    }

    /// Adds `v` to the value at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] += v;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols);
        (0..self.nrows)
            .map(|r| {
                (0..self.ncols)
                    .map(|c| self.data[r * self.ncols + c] * x[c])
                    .sum()
            })
            .collect()
    }

    /// Solves `A·x = b` by LU with partial pivoting (in a copy).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] for non-square systems or length
    /// mismatch, [`SparseError::Singular`] when a pivot vanishes.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if self.nrows != self.ncols {
            return Err(SparseError::Shape {
                detail: format!(
                    "solve requires square matrix, got {}x{}",
                    self.nrows, self.ncols
                ),
            });
        }
        if b.len() != self.nrows {
            return Err(SparseError::Shape {
                detail: format!("rhs length {} != {}", b.len(), self.nrows),
            });
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for k in 0..n {
            // Partial pivot.
            let mut piv = k;
            let mut best = a[k * n + k].abs();
            for r in (k + 1)..n {
                let cand = a[r * n + k].abs();
                if cand > best {
                    best = cand;
                    piv = r;
                }
            }
            if best < 1e-300 {
                return Err(SparseError::Singular { column: k });
            }
            if piv != k {
                for c in 0..n {
                    a.swap(k * n + c, piv * n + c);
                }
                x.swap(k, piv);
            }
            let pivot = a[k * n + k];
            for r in (k + 1)..n {
                let f = a[r * n + k] / pivot;
                if f == 0.0 {
                    continue;
                }
                a[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    a[r * n + c] -= f * a[k * n + c];
                }
                x[r] -= f * x[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut acc = x[k];
            for c in (k + 1)..n {
                acc -= a[k * n + c] * x[c];
            }
            x[k] = acc / a[k * n + k];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_3x3_known_system() {
        let a = DenseMatrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]])
            .unwrap();
        // Solution of tridiag(-1,2,-1) x = [1,0,1] is [1,1,1].
        let x = a.solve(&[1.0, 0.0, 1.0]).unwrap();
        for v in &x {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.solve(&[1.0, 2.0]),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn shape_errors() {
        assert!(DenseMatrix::from_rows(&[&[1.0, 2.0][..], &[1.0][..]]).is_err());
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
