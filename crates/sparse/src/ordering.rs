//! Fill-reducing orderings.
//!
//! The thermal grid is a 3D lattice; a reverse Cuthill–McKee (RCM) ordering
//! of `A + Aᵀ` keeps the LU factors banded, which bounds fill-in to roughly
//! `n × bandwidth` — entirely adequate for the problem sizes of the paper
//! (tens of thousands of cells) and far simpler than a minimum-degree code.

use crate::csc::CscMatrix;

/// A permutation of `0..n`, stored as `perm[new_index] = old_index`.
#[derive(Debug, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<usize>,
    inverse: Vec<usize>,
}

impl Clone for Permutation {
    fn clone(&self) -> Self {
        Permutation {
            forward: self.forward.clone(),
            inverse: self.inverse.clone(),
        }
    }

    /// Field-wise `clone_from` so hot refactorisation loops reuse the
    /// donor's buffers instead of reallocating (a derived `Clone` would
    /// fall back to clone-and-drop).
    fn clone_from(&mut self, source: &Self) {
        self.forward.clone_from(&source.forward);
        self.inverse.clone_from(&source.inverse);
    }
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n).collect(),
            inverse: (0..n).collect(),
        }
    }

    /// Builds a permutation from `perm[new] = old`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn from_forward(perm: Vec<usize>) -> Self {
        let n = perm.len();
        let mut inverse = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            assert!(old < n, "permutation entry out of range");
            assert_eq!(inverse[old], usize::MAX, "duplicate permutation entry");
            inverse[old] = new;
        }
        Permutation {
            forward: perm,
            inverse,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Old index of new position `new`.
    pub fn old_of(&self, new: usize) -> usize {
        self.forward[new]
    }

    /// New position of old index `old`.
    pub fn new_of(&self, old: usize) -> usize {
        self.inverse[old]
    }

    /// Applies the permutation to a vector indexed by *old* indices,
    /// producing one indexed by *new* indices.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn gather(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len());
        self.forward.iter().map(|&old| v[old]).collect()
    }

    /// Inverse of [`Permutation::gather`]: turns a new-indexed vector back
    /// into old indexing.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn scatter(&self, v: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; v.len()];
        self.scatter_into(v, &mut out);
        out
    }

    /// Allocation-free [`Permutation::scatter`]: writes the old-indexed
    /// vector into `out`, overwriting every entry.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` or `out.len()` differ from `self.len()`.
    pub fn scatter_into(&self, v: &[f64], out: &mut [f64]) {
        assert_eq!(v.len(), self.len());
        assert_eq!(out.len(), self.len());
        for (new, &old) in self.forward.iter().enumerate() {
            out[old] = v[new];
        }
    }

    /// Symmetrically permutes a square matrix: `B = P·A·Pᵀ` so that
    /// `B[new_i, new_j] = A[old_i, old_j]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square of matching dimension.
    pub fn permute_symmetric(&self, a: &CscMatrix) -> CscMatrix {
        assert_eq!(a.nrows(), self.len());
        assert_eq!(a.ncols(), self.len());
        let mut rows = Vec::with_capacity(a.nnz());
        let mut cols = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        for c in 0..a.ncols() {
            let nc = self.inverse[c];
            for (r, v) in a.col_iter(c) {
                rows.push(self.inverse[r]);
                cols.push(nc);
                vals.push(v);
            }
        }
        CscMatrix::from_triplets(a.nrows(), a.ncols(), &rows, &cols, &vals)
    }
}

/// Computes the bandwidth of a matrix: `max |i - j|` over stored entries.
pub fn bandwidth(a: &CscMatrix) -> usize {
    let mut bw = 0usize;
    for c in 0..a.ncols() {
        for (r, _) in a.col_iter(c) {
            bw = bw.max(r.abs_diff(c));
        }
    }
    bw
}

/// Reverse Cuthill–McKee ordering on the symmetrised pattern of `a`.
///
/// Works on any square matrix; disconnected components are handled by
/// restarting from the unvisited vertex of minimum degree.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn reverse_cuthill_mckee(a: &CscMatrix) -> Permutation {
    assert_eq!(a.nrows(), a.ncols(), "RCM requires a square matrix");
    let n = a.nrows();
    // Build symmetrised adjacency (pattern of A + Aᵀ, excluding diagonal).
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for c in 0..n {
        for (r, _) in a.col_iter(c) {
            if r != c {
                adj[r].push(c);
                adj[c].push(r);
            }
        }
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    let degree: Vec<usize> = adj.iter().map(|l| l.len()).collect();

    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();

    loop {
        // Find unvisited vertex of minimum degree as the next seed.
        let seed = (0..n).filter(|&v| !visited[v]).min_by_key(|&v| degree[v]);
        let Some(seed) = seed else { break };
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut neighbours: Vec<usize> =
                adj[v].iter().copied().filter(|&u| !visited[u]).collect();
            neighbours.sort_unstable_by_key(|&u| degree[u]);
            for u in neighbours {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_forward(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    /// 1D chain Laplacian of length n.
    fn chain(n: usize) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.stamp_conductance(i, i + 1, 1.0);
            }
        }
        t.to_csc()
    }

    /// 2D grid Laplacian, nodes shuffled by a stride permutation to create
    /// a large bandwidth.
    fn shuffled_grid(nx: usize, ny: usize) -> CscMatrix {
        let n = nx * ny;
        let reindex = |i: usize| (i * 17) % n; // 17 coprime with n choices below
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                t.push(reindex(i), reindex(i), 4.0);
                if x + 1 < nx {
                    t.stamp_conductance(reindex(i), reindex(i + 1), 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(reindex(i), reindex(i + nx), 1.0);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn permutation_round_trips() {
        let p = Permutation::from_forward(vec![2, 0, 1]);
        let v = [10.0, 20.0, 30.0];
        let g = p.gather(&v);
        assert_eq!(g, vec![30.0, 10.0, 20.0]);
        assert_eq!(p.scatter(&g), v.to_vec());
        for old in 0..3 {
            assert_eq!(p.old_of(p.new_of(old)), old);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn invalid_permutation_panics() {
        let _ = Permutation::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn rcm_keeps_chain_bandwidth_one() {
        let a = chain(20);
        let p = reverse_cuthill_mckee(&a);
        let b = p.permute_symmetric(&a);
        assert_eq!(bandwidth(&b), 1);
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_grid() {
        let a = shuffled_grid(10, 10);
        let before = bandwidth(&a);
        let p = reverse_cuthill_mckee(&a);
        let b = p.permute_symmetric(&a);
        let after = bandwidth(&b);
        assert!(
            after < before,
            "RCM should reduce bandwidth: {after} !< {before}"
        );
        // A 10x10 grid has optimal bandwidth ~10; RCM should get close.
        assert!(after <= 14, "bandwidth {after} too large for 10x10 grid");
    }

    #[test]
    fn permute_symmetric_preserves_values() {
        let a = shuffled_grid(5, 4);
        let p = reverse_cuthill_mckee(&a);
        let b = p.permute_symmetric(&a);
        for c in 0..a.ncols() {
            for (r, v) in a.col_iter(c) {
                assert_eq!(b.get(p.new_of(r), p.new_of(c)), v);
            }
        }
    }

    #[test]
    fn rcm_handles_disconnected_components() {
        // Two disjoint chains.
        let mut t = TripletMatrix::new(6, 6);
        for i in 0..6 {
            t.push(i, i, 2.0);
        }
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(1, 2, 1.0);
        t.stamp_conductance(3, 4, 1.0);
        t.stamp_conductance(4, 5, 1.0);
        let p = reverse_cuthill_mckee(&t.to_csc());
        assert_eq!(p.len(), 6);
        // Must be a valid permutation over all 6 nodes.
        let mut seen: Vec<usize> = (0..6).map(|i| p.old_of(i)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
