//! Sparse linear algebra substrate for the `cmosaic` thermal toolkit.
//!
//! The compact thermal model of 3D-ICE (paper ref. \[17]) reduces a 3D chip
//! stack with inter-tier micro-channels to a large, sparse, *nonsymmetric*
//! system of equations: conduction contributes a symmetric Laplacian-like
//! structure, while coolant advection couples each fluid cell to its
//! *upstream* neighbour only. The original tool links SuperLU; this crate is
//! our from-scratch replacement:
//!
//! * [`TripletMatrix`] — coordinate-format builder with duplicate
//!   accumulation (the natural output of RC-network assembly).
//! * [`CscMatrix`] — compressed sparse column storage with matrix–vector
//!   products and structure queries.
//! * [`LuFactors`] — Gilbert–Peierls left-looking sparse LU with partial
//!   pivoting ([`lu::factor`]), the workhorse direct solver.
//! * [`SymbolicLu`] — the reusable symbolic half of a factorisation,
//!   enabling cheap numeric refactorisation (below).
//! * [`ordering`] — reverse Cuthill–McKee bandwidth reduction used as a
//!   fill-reducing column pre-ordering.
//! * [`bicgstab`](mod@bicgstab) — BiCGSTAB with an [`ilu::Ilu0`]
//!   preconditioner: the iterative solver backend for fine grids where
//!   direct-LU fill is a burden, also used to cross-validate the direct
//!   solver. Breakdown detection is scale-relative (see the module docs)
//!   and the [`bicgstab_into`] entry point performs zero heap allocation
//!   once its [`IterativeWorkspace`] is warm — the iterative counterpart
//!   of [`LuFactors::solve_with`] + [`SolveWorkspace`].
//! * [`operator`] — the [`LinearOperator`] / [`Preconditioner`] traits
//!   that [`bicgstab_into`] is generic over, so the Krylov loop runs
//!   unchanged against an assembled [`CscMatrix`] or a matrix-free
//!   stencil operator supplied by a downstream crate.
//! * [`multigrid`] — a seeded, deterministic geometric V-cycle
//!   [`Multigrid`] preconditioner (full-weighting restriction, bilinear
//!   prolongation, damped-Jacobi smoothing, direct-LU coarse solve) for
//!   structured-grid operators, giving (near-)resolution-independent
//!   BiCGSTAB iteration counts.
//! * [`dense`] — small dense LU used by tests as an oracle.
//!
//! # Operator and preconditioner contracts
//!
//! [`LinearOperator::matvec_into`] must fully overwrite its output, be
//! allocation-free once warm, and — for two representations of the same
//! matrix to be interchangeable mid-run — produce **bit-identical**
//! results, which pins the accumulation order (see the trait docs).
//! [`Preconditioner::apply_into`] must be a pure function of the residual
//! (its `&mut self` is scratch, not state), so a preconditioned solve is
//! reproducible bit-for-bit across repeats. A preconditioner that cannot
//! be *built* (singular ILU pivot, singular coarse operator) fails at
//! construction, never mid-solve; failures mid-solve surface as
//! [`SparseError::Breakdown`]/[`SparseError::NoConvergence`] and callers
//! (the thermal crate's backend ladder) fall back to the direct solver.
//!
//! # Symbolic/numeric split
//!
//! RC-network operators have a sparsity pattern fixed at model
//! construction; only values change between operating points. Like 3D-ICE,
//! which links SuperLU precisely to reuse one symbolic analysis across a
//! transient run (`SamePattern_SameRowPerm`), this crate splits the direct
//! solver: [`lu::factor_with_symbolic`] performs one full pivoting
//! factorisation and freezes the column ordering, pivot sequence and L/U
//! patterns in a [`SymbolicLu`]; [`LuFactors::refactor`] (or
//! [`SymbolicLu::refactor_into`] for allocation reuse) then replays only
//! the numeric sweep — no DFS, no pivot search — for any matrix with the
//! *identical* pattern.
//!
//! **When refactorisation is valid.** The frozen pivot sequence was chosen
//! for the values seen at analysis time. It remains numerically sound
//! while value changes preserve the character of the matrix (the RC
//! operators stay diagonally dominant M-matrix-like for every flow rate
//! and Δt, so in practice it always holds). It is *invalid* — and rejected
//! — when the new matrix has a different sparsity pattern, and it is
//! *unsafe* when the new values make a frozen pivot relatively tiny: the
//! multiplier-growth guard detects that case and returns
//! [`SparseError::UnstablePivot`], at which point the caller must run a
//! fresh pivoting [`lu::factor`] (callers in this workspace do so
//! automatically and re-capture the symbolic object).
//!
//! Pair the split with [`TripletMatrix::to_csc_with_map`] +
//! [`CscMatrix::update_values`] so a new operating point costs one O(nnz)
//! value rewrite and one numeric sweep — no re-assembly, no conversion,
//! no symbolic work.
//!
//! # Example
//!
//! ```
//! use cmosaic_sparse::{TripletMatrix, lu};
//!
//! # fn main() -> Result<(), cmosaic_sparse::SparseError> {
//! // 2x2 system: [[4, 1], [2, 5]] · x = [9, 12]  =>  x = [1.5, 1.8]... let's check.
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 2.0);
//! t.push(1, 1, 5.0);
//! let a = t.to_csc();
//! let f = lu::factor(&a)?;
//! let x = f.solve(&[9.0, 12.0])?;
//! let r0 = 4.0 * x[0] + 1.0 * x[1] - 9.0;
//! let r1 = 2.0 * x[0] + 5.0 * x[1] - 12.0;
//! assert!(r0.abs() < 1e-12 && r1.abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bicgstab;
pub mod csc;
pub mod dense;
pub mod ilu;
pub mod lu;
pub mod multigrid;
pub mod operator;
pub mod ordering;
pub mod triplet;

pub use bicgstab::{
    bicgstab, bicgstab_into, BicgstabOptions, BicgstabOutcome, BicgstabSummary, IterativeWorkspace,
};
pub use csc::CscMatrix;
pub use dense::DenseMatrix;
pub use ilu::Ilu0;
pub use lu::{LuFactors, SolveWorkspace, SymbolicLu};
pub use multigrid::{GridShape, Multigrid, MultigridOptions, MultigridStats};
pub use operator::{LinearOperator, Preconditioner};
pub use triplet::TripletMatrix;

use std::error::Error;
use std::fmt;

/// Errors produced by the sparse solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// A matrix dimension or index was inconsistent.
    Shape {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// The matrix is numerically singular (no acceptable pivot at a column).
    Singular {
        /// Column at which factorisation broke down.
        column: usize,
    },
    /// A numeric refactorisation over a frozen pivot sequence saw
    /// multiplier growth beyond the stability bound; the caller should
    /// fall back to a fresh pivoting factorisation.
    UnstablePivot {
        /// Column at which the frozen pivot degraded.
        column: usize,
        /// Largest multiplier magnitude observed in that column.
        growth: f64,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
    },
    /// Numerical breakdown (division by a vanishing inner product) in an
    /// iterative method.
    Breakdown {
        /// Iteration at which breakdown occurred.
        iteration: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::Shape { detail } => write!(f, "shape mismatch: {detail}"),
            SparseError::Singular { column } => {
                write!(f, "matrix is singular at column {column}")
            }
            SparseError::UnstablePivot { column, growth } => write!(
                f,
                "refactorisation unstable at column {column} \
                 (multiplier growth {growth:.3e}); re-pivot with a full factorisation"
            ),
            SparseError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            SparseError::Breakdown { iteration } => {
                write!(f, "numerical breakdown at iteration {iteration}")
            }
        }
    }
}

impl Error for SparseError {}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_and_dot() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-15);
    }

    #[test]
    fn error_types_are_send_sync_and_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
        assert!(SparseError::Singular { column: 3 }
            .to_string()
            .contains('3'));
    }
}
