//! Sparse LU factorisation (Gilbert–Peierls, left-looking, partial
//! pivoting).
//!
//! This is the direct solver behind every thermal solve in the toolkit. The
//! algorithm factors one column at a time: the nonzero pattern of
//! `L⁻¹·A(:,j)` is discovered by a depth-first search over the graph of the
//! already-computed columns of `L` (Gilbert & Peierls, 1988), then the
//! numeric values follow in one topologically-ordered pass — total work
//! proportional to arithmetic operations, independent of `n`.
//!
//! Columns are pre-ordered with reverse Cuthill–McKee by default, which for
//! the lattice-structured matrices of the thermal model keeps the factors
//! essentially banded.

use crate::csc::CscMatrix;
use crate::ordering::{reverse_cuthill_mckee, Permutation};
use crate::SparseError;

/// Absolute pivot magnitude below which a column is declared singular.
const PIVOT_TINY: f64 = 1e-300;

/// Column pre-ordering strategy for [`factor_with_ordering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrdering {
    /// Factor the matrix in its natural column order.
    Natural,
    /// Reverse Cuthill–McKee on the symmetrised pattern (default).
    #[default]
    Rcm,
}

/// The result of a sparse LU factorisation: `P·A·Q = L·U`.
///
/// `L` has an implicit unit diagonal and stores *original* row indices; `U`
/// is strictly upper triangular in pivot coordinates with its diagonal held
/// separately. Use [`LuFactors::solve`] to solve `A·x = b`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `p[j]` = original row index chosen as the pivot of step `j`.
    p: Vec<usize>,
    /// Column permutation (`q.old_of(j)` = original column factored at `j`).
    q: Permutation,
}

/// Factors a square matrix with the default (RCM) column pre-ordering.
///
/// # Errors
///
/// Returns [`SparseError::Shape`] if `a` is not square and
/// [`SparseError::Singular`] if a pivot vanishes.
pub fn factor(a: &CscMatrix) -> Result<LuFactors, SparseError> {
    factor_with_ordering(a, ColumnOrdering::Rcm)
}

/// Factors a square matrix with an explicit column ordering choice.
///
/// # Errors
///
/// See [`factor`].
pub fn factor_with_ordering(
    a: &CscMatrix,
    ordering: ColumnOrdering,
) -> Result<LuFactors, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::Shape {
            detail: format!("LU requires a square matrix, got {}x{}", a.nrows(), a.ncols()),
        });
    }
    let n = a.nrows();
    let q = match ordering {
        ColumnOrdering::Natural => Permutation::identity(n),
        ColumnOrdering::Rcm => reverse_cuthill_mckee(a),
    };

    let mut l_colptr = Vec::with_capacity(n + 1);
    let mut l_rows: Vec<usize> = Vec::new();
    let mut l_vals: Vec<f64> = Vec::new();
    let mut u_colptr = Vec::with_capacity(n + 1);
    let mut u_rows: Vec<usize> = Vec::new();
    let mut u_vals: Vec<f64> = Vec::new();
    let mut u_diag = vec![0.0; n];
    let mut p = vec![usize::MAX; n];
    // pinv[original row] = pivot step, or MAX if not yet pivoted.
    let mut pinv = vec![usize::MAX; n];

    // Workspaces.
    let mut x = vec![0.0f64; n];
    let mut mark = vec![usize::MAX; n];
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    // DFS stack of (node, next-child cursor).
    let mut stack: Vec<(usize, usize)> = Vec::with_capacity(64);

    l_colptr.push(0);
    u_colptr.push(0);

    for jj in 0..n {
        let col = q.old_of(jj);
        topo.clear();

        // ---- Symbolic: pattern of x = L⁻¹ A(:,col) by DFS over L's graph.
        for (seed, _) in a.col_iter(col) {
            if mark[seed] == jj {
                continue;
            }
            mark[seed] = jj;
            stack.push((seed, 0));
            while let Some(top) = stack.len().checked_sub(1) {
                let (node, cursor) = stack[top];
                let piv_col = pinv[node];
                let mut next_child = None;
                if piv_col != usize::MAX {
                    let lo = l_colptr[piv_col];
                    let hi = l_colptr[piv_col + 1];
                    let mut cur = cursor;
                    while lo + cur < hi {
                        let child = l_rows[lo + cur];
                        cur += 1;
                        if mark[child] != jj {
                            next_child = Some(child);
                            break;
                        }
                    }
                    stack[top].1 = cur;
                }
                match next_child {
                    Some(child) => {
                        mark[child] = jj;
                        stack.push((child, 0));
                    }
                    None => {
                        stack.pop();
                        topo.push(node);
                    }
                }
            }
        }

        // ---- Numeric: scatter A(:,col), then eliminate in topological order.
        for (r, v) in a.col_iter(col) {
            x[r] = v;
        }
        for &i in topo.iter().rev() {
            let piv_col = pinv[i];
            if piv_col == usize::MAX {
                continue;
            }
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for k in l_colptr[piv_col]..l_colptr[piv_col + 1] {
                x[l_rows[k]] -= l_vals[k] * xi;
            }
        }

        // ---- Pivot selection among not-yet-pivoted pattern rows.
        let mut ipiv = usize::MAX;
        let mut best = 0.0f64;
        for &i in &topo {
            if pinv[i] == usize::MAX {
                let cand = x[i].abs();
                if cand > best {
                    best = cand;
                    ipiv = i;
                }
            }
        }
        if ipiv == usize::MAX || best < PIVOT_TINY {
            // Clean workspace before bailing out.
            for &i in &topo {
                x[i] = 0.0;
            }
            return Err(SparseError::Singular { column: col });
        }
        let d = x[ipiv];
        u_diag[jj] = d;
        pinv[ipiv] = jj;
        p[jj] = ipiv;

        // ---- Emit U (pivoted pattern rows) and L (remaining rows).
        for &i in &topo {
            let piv_col = pinv[i];
            if i == ipiv {
                // diagonal handled above
            } else if piv_col != usize::MAX && piv_col < jj {
                if x[i] != 0.0 {
                    u_rows.push(piv_col);
                    u_vals.push(x[i]);
                }
            } else if x[i] != 0.0 {
                l_rows.push(i);
                l_vals.push(x[i] / d);
            }
            x[i] = 0.0;
        }
        l_colptr.push(l_rows.len());
        u_colptr.push(u_rows.len());
    }

    Ok(LuFactors {
        n,
        l_colptr,
        l_rows,
        l_vals,
        u_colptr,
        u_rows,
        u_vals,
        u_diag,
        p,
        q,
    })
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` (excluding the implicit unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_vals.len()
    }

    /// Stored entries in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_vals.len() + self.n
    }

    /// Solves `A·x = b` using the computed factors.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        if b.len() != self.n {
            return Err(SparseError::Shape {
                detail: format!("rhs length {} != {}", b.len(), self.n),
            });
        }
        let mut w = b.to_vec();
        let mut y = vec![0.0f64; self.n];
        self.solve_into(&mut w, &mut y);
        Ok(self.q.scatter(&y))
    }

    /// Low-allocation solve: `w` must contain the right-hand side on entry
    /// (it is destroyed), `y` receives the solution in *factor* ordering.
    /// Use [`LuFactors::solve`] unless profiling says otherwise; note the
    /// final column-permutation scatter is skipped here, so `y` is only
    /// meaningful after [`Permutation::scatter`] with
    /// [`LuFactors::column_permutation`].
    ///
    /// # Panics
    ///
    /// Panics if `w` or `y` have length different from `n`.
    pub fn solve_into(&self, w: &mut [f64], y: &mut [f64]) {
        assert_eq!(w.len(), self.n);
        assert_eq!(y.len(), self.n);
        // Forward: y = L⁻¹ P w.
        for j in 0..self.n {
            let t = w[self.p[j]];
            y[j] = t;
            if t != 0.0 {
                for k in self.l_colptr[j]..self.l_colptr[j + 1] {
                    w[self.l_rows[k]] -= self.l_vals[k] * t;
                }
            }
        }
        // Backward: y = U⁻¹ y.
        for j in (0..self.n).rev() {
            let yj = y[j] / self.u_diag[j];
            y[j] = yj;
            if yj != 0.0 {
                for k in self.u_colptr[j]..self.u_colptr[j + 1] {
                    y[self.u_rows[k]] -= self.u_vals[k] * yj;
                }
            }
        }
    }

    /// The column permutation used by the factorisation.
    pub fn column_permutation(&self) -> &Permutation {
        &self.q
    }

    /// Solves `A·X = B` for multiple right-hand sides.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if any right-hand side has the wrong
    /// length.
    pub fn solve_many(&self, bs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, SparseError> {
        bs.iter().map(|b| self.solve(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::triplet::TripletMatrix;

    fn residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn identity_solve() {
        let a = CscMatrix::identity(5);
        let f = factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = f.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn diagonal_solve() {
        let a = CscMatrix::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[2.0, 4.0, 8.0]);
        let f = factor(&a).unwrap();
        let x = f.solve(&[2.0, 4.0, 8.0]).unwrap();
        for v in &x {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn permutation_matrix_requires_pivoting() {
        // A = anti-diagonal: needs row swaps everywhere.
        let a = CscMatrix::from_triplets(3, 3, &[2, 1, 0], &[0, 1, 2], &[1.0, 1.0, 1.0]);
        let f = factor(&a).unwrap();
        let x = f.solve(&[5.0, 7.0, 9.0]).unwrap();
        assert!((x[2] - 5.0).abs() < 1e-14);
        assert!((x[1] - 7.0).abs() < 1e-14);
        assert!((x[0] - 9.0).abs() < 1e-14);
    }

    #[test]
    fn laplacian_with_leak_matches_dense() {
        // 1D conduction chain with a conductance to ambient at one end:
        // nonsingular, the canonical thermal-model structure.
        let n = 12;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        t.push(0, 0, 0.5); // sink to ambient
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();

        let dense_rows = a.to_dense();
        let dref: Vec<&[f64]> = dense_rows.iter().map(|r| r.as_slice()).collect();
        let oracle = DenseMatrix::from_rows(&dref).unwrap().solve(&b).unwrap();

        for ord in [ColumnOrdering::Natural, ColumnOrdering::Rcm] {
            let f = factor_with_ordering(&a, ord).unwrap();
            let x = f.solve(&b).unwrap();
            for (u, v) in x.iter().zip(&oracle) {
                assert!((u - v).abs() < 1e-10, "{ord:?}: {u} vs {v}");
            }
            assert!(residual_inf(&a, &x, &b) < 1e-10);
        }
    }

    #[test]
    fn nonsymmetric_advection_like_system() {
        // Conduction chain plus one-directional (upwind) coupling — the
        // exact structure the micro-channel model produces.
        let n = 10;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0); // conduction (symmetric part)
            t.push(i + 1, i, -1.0);
            t.push(i + 1, i, -0.8); // advection: downstream depends on upstream
        }
        let a = t.to_csc();
        let b = vec![1.0; n];
        let f = factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-11);
    }

    #[test]
    fn singular_matrix_detected() {
        // Rank-deficient: column 2 is zero.
        let a = CscMatrix::from_triplets(3, 3, &[0, 1], &[0, 1], &[1.0, 1.0]);
        assert!(matches!(factor(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn pure_laplacian_is_singular() {
        // No path to ambient: floating thermal network, singular G.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..3 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        assert!(factor(&t.to_csc()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = CscMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(matches!(factor(&a), Err(SparseError::Shape { .. })));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let f = factor(&CscMatrix::identity(3)).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn grid_laplacian_2d_many_rhs() {
        // 2D 8x8 grid with sink: solve for several right-hand sides and
        // verify residuals.
        let (nx, ny) = (8, 8);
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, i + nx, 2.0);
                }
                t.push(i, i, 0.05); // distributed sink
            }
        }
        let a = t.to_csc();
        let f = factor(&a).unwrap();
        for k in 0..4 {
            let b: Vec<f64> = (0..n).map(|i| ((i + k) as f64 * 0.37).cos()).collect();
            let x = f.solve(&b).unwrap();
            assert!(residual_inf(&a, &x, &b) < 1e-9);
        }
    }
}
