//! Sparse LU factorisation (Gilbert–Peierls, left-looking, partial
//! pivoting) with a symbolic/numeric split for cheap refactorisation.
//!
//! This is the direct solver behind every thermal solve in the toolkit. The
//! algorithm factors one column at a time: the nonzero pattern of
//! `L⁻¹·A(:,j)` is discovered by a depth-first search over the graph of the
//! already-computed columns of `L` (Gilbert & Peierls, 1988), then the
//! numeric values follow in one topologically-ordered pass — total work
//! proportional to arithmetic operations, independent of `n`.
//!
//! Columns are pre-ordered with reverse Cuthill–McKee by default, which for
//! the lattice-structured matrices of the thermal model keeps the factors
//! essentially banded.
//!
//! # Symbolic/numeric split
//!
//! The RC networks this crate serves have a sparsity pattern fixed at model
//! construction; only the *values* change between operating points (flow
//! rates, transient time steps, two-phase sweeps). [`factor_with_symbolic`]
//! therefore captures the column ordering, pivot sequence and L/U nonzero
//! patterns of one full pivoting factorisation in a [`SymbolicLu`], and
//! [`LuFactors::refactor`] replays only the numeric sweep over that frozen
//! pattern — the same trick 3D-ICE gets from SuperLU's
//! `SamePattern_SameRowPerm` path. A refactorisation skips the DFS *and*
//! the pivot search, so it is valid only while the frozen pivot sequence
//! remains numerically acceptable; a pivot-growth guard detects degradation
//! and reports [`SparseError::UnstablePivot`] so callers can fall back to a
//! fresh pivoting factorisation.

use crate::csc::CscMatrix;
use crate::ordering::{reverse_cuthill_mckee, Permutation};
use crate::SparseError;

/// Absolute pivot magnitude below which a column is declared singular.
const PIVOT_TINY: f64 = 1e-300;

/// Largest tolerated `max|L(:,j)|` during a refactorisation. A fresh
/// partial-pivoting factorisation keeps every multiplier at or below one;
/// replaying a frozen pivot sequence lets multipliers grow, and growth
/// beyond this bound costs enough of the 52-bit mantissa that the caller
/// should re-pivot instead.
const MAX_PIVOT_GROWTH: f64 = 1e8;

/// Column pre-ordering strategy for [`factor_with_ordering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColumnOrdering {
    /// Factor the matrix in its natural column order.
    Natural,
    /// Reverse Cuthill–McKee on the symmetrised pattern (default).
    #[default]
    Rcm,
}

/// The result of a sparse LU factorisation: `P·A·Q = L·U`.
///
/// `L` has an implicit unit diagonal and stores *original* row indices; `U`
/// is strictly upper triangular in pivot coordinates with its diagonal held
/// separately. Use [`LuFactors::solve`] to solve `A·x = b`.
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    l_colptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rows: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// `p[j]` = original row index chosen as the pivot of step `j`.
    p: Vec<usize>,
    /// Column permutation (`q.old_of(j)` = original column factored at `j`).
    q: Permutation,
}

/// Factors a square matrix with the default (RCM) column pre-ordering.
///
/// # Errors
///
/// Returns [`SparseError::Shape`] if `a` is not square and
/// [`SparseError::Singular`] if a pivot vanishes.
pub fn factor(a: &CscMatrix) -> Result<LuFactors, SparseError> {
    factor_with_ordering(a, ColumnOrdering::Rcm)
}

/// Factors a square matrix with an explicit column ordering choice.
///
/// # Errors
///
/// See [`factor`].
pub fn factor_with_ordering(
    a: &CscMatrix,
    ordering: ColumnOrdering,
) -> Result<LuFactors, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::Shape {
            detail: format!(
                "LU requires a square matrix, got {}x{}",
                a.nrows(),
                a.ncols()
            ),
        });
    }
    let n = a.nrows();
    let q = match ordering {
        ColumnOrdering::Natural => Permutation::identity(n),
        ColumnOrdering::Rcm => reverse_cuthill_mckee(a),
    };

    let mut l_colptr = Vec::with_capacity(n + 1);
    let mut l_rows: Vec<usize> = Vec::new();
    let mut l_vals: Vec<f64> = Vec::new();
    let mut u_colptr = Vec::with_capacity(n + 1);
    let mut u_rows: Vec<usize> = Vec::new();
    let mut u_vals: Vec<f64> = Vec::new();
    let mut u_diag = vec![0.0; n];
    let mut p = vec![usize::MAX; n];
    // pinv[original row] = pivot step, or MAX if not yet pivoted.
    let mut pinv = vec![usize::MAX; n];

    // Workspaces.
    let mut x = vec![0.0f64; n];
    let mut mark = vec![usize::MAX; n];
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    // DFS stack of (node, next-child cursor).
    let mut stack: Vec<(usize, usize)> = Vec::with_capacity(64);

    l_colptr.push(0);
    u_colptr.push(0);

    for jj in 0..n {
        let col = q.old_of(jj);
        topo.clear();

        // ---- Symbolic: pattern of x = L⁻¹ A(:,col) by DFS over L's graph.
        for (seed, _) in a.col_iter(col) {
            if mark[seed] == jj {
                continue;
            }
            mark[seed] = jj;
            stack.push((seed, 0));
            while let Some(top) = stack.len().checked_sub(1) {
                let (node, cursor) = stack[top];
                let piv_col = pinv[node];
                let mut next_child = None;
                if piv_col != usize::MAX {
                    let lo = l_colptr[piv_col];
                    let hi = l_colptr[piv_col + 1];
                    let mut cur = cursor;
                    while lo + cur < hi {
                        let child = l_rows[lo + cur];
                        cur += 1;
                        if mark[child] != jj {
                            next_child = Some(child);
                            break;
                        }
                    }
                    stack[top].1 = cur;
                }
                match next_child {
                    Some(child) => {
                        mark[child] = jj;
                        stack.push((child, 0));
                    }
                    None => {
                        stack.pop();
                        topo.push(node);
                    }
                }
            }
        }

        // ---- Numeric: scatter A(:,col), then eliminate in topological order.
        for (r, v) in a.col_iter(col) {
            x[r] = v;
        }
        for &i in topo.iter().rev() {
            let piv_col = pinv[i];
            if piv_col == usize::MAX {
                continue;
            }
            let xi = x[i];
            if xi == 0.0 {
                continue;
            }
            for k in l_colptr[piv_col]..l_colptr[piv_col + 1] {
                x[l_rows[k]] -= l_vals[k] * xi;
            }
        }

        // ---- Pivot selection among not-yet-pivoted pattern rows.
        let mut ipiv = usize::MAX;
        let mut best = 0.0f64;
        for &i in &topo {
            if pinv[i] == usize::MAX {
                let cand = x[i].abs();
                if cand > best {
                    best = cand;
                    ipiv = i;
                }
            }
        }
        if ipiv == usize::MAX || best < PIVOT_TINY {
            // Clean workspace before bailing out.
            for &i in &topo {
                x[i] = 0.0;
            }
            return Err(SparseError::Singular { column: col });
        }
        let d = x[ipiv];
        u_diag[jj] = d;
        pinv[ipiv] = jj;
        p[jj] = ipiv;

        // ---- Emit U (pivoted pattern rows) and L (remaining rows).
        // Exact zeros are kept: the stored pattern must equal the full
        // symbolic reach set so a later refactorisation over the frozen
        // pattern stays valid even where values cancelled here.
        for &i in &topo {
            let piv_col = pinv[i];
            if i == ipiv {
                // diagonal handled above
            } else if piv_col != usize::MAX && piv_col < jj {
                u_rows.push(piv_col);
                u_vals.push(x[i]);
            } else {
                l_rows.push(i);
                l_vals.push(x[i] / d);
            }
            x[i] = 0.0;
        }
        l_colptr.push(l_rows.len());
        u_colptr.push(u_rows.len());
    }

    Ok(LuFactors {
        n,
        l_colptr,
        l_rows,
        l_vals,
        u_colptr,
        u_rows,
        u_vals,
        u_diag,
        p,
        q,
    })
}

/// Factors `a` and captures the symbolic analysis for later numeric
/// refactorisations over the same sparsity pattern.
///
/// # Errors
///
/// See [`factor`].
pub fn factor_with_symbolic(
    a: &CscMatrix,
    ordering: ColumnOrdering,
) -> Result<(LuFactors, SymbolicLu), SparseError> {
    let factors = factor_with_ordering(a, ordering)?;
    let symbolic = SymbolicLu::capture(&factors, a);
    Ok((factors, symbolic))
}

/// The reusable symbolic half of a sparse LU factorisation: column
/// ordering, pivot sequence and the L/U nonzero patterns, frozen from one
/// full pivoting factorisation ([`factor_with_symbolic`]).
///
/// A `SymbolicLu` is valid for any matrix with *exactly* the sparsity
/// pattern of the matrix it was captured from (values free to change); the
/// pattern is checked on every [`SymbolicLu::refactor`] call. Within each U
/// column the pattern is stored in ascending pivot order, which is a valid
/// topological elimination order, so the numeric sweep needs no DFS.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    l_colptr: Vec<usize>,
    /// L pattern rows in *original* row indices.
    l_rows: Vec<usize>,
    u_colptr: Vec<usize>,
    /// U pattern rows as pivot steps, ascending within each column.
    u_rows: Vec<usize>,
    /// `p[j]` = original row pivoted at step `j`.
    p: Vec<usize>,
    q: Permutation,
    /// Pattern of the factored matrix, for validity checking.
    a_colptr: Vec<usize>,
    a_rows: Vec<usize>,
}

impl SymbolicLu {
    /// Extracts the symbolic analysis from a completed factorisation of
    /// `a`.
    fn capture(f: &LuFactors, a: &CscMatrix) -> Self {
        let mut u_rows = f.u_rows.clone();
        for j in 0..f.n {
            u_rows[f.u_colptr[j]..f.u_colptr[j + 1]].sort_unstable();
        }
        SymbolicLu {
            n: f.n,
            l_colptr: f.l_colptr.clone(),
            l_rows: f.l_rows.clone(),
            u_colptr: f.u_colptr.clone(),
            u_rows,
            p: f.p.clone(),
            q: f.q.clone(),
            a_colptr: a.col_ptr().to_vec(),
            a_rows: a.row_idx().to_vec(),
        }
    }

    /// Dimension of the analysed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored entries in the frozen `L` pattern (implicit unit diagonal
    /// excluded).
    pub fn nnz_l(&self) -> usize {
        self.l_rows.len()
    }

    /// Stored entries in the frozen `U` pattern (diagonal included).
    pub fn nnz_u(&self) -> usize {
        self.u_rows.len() + self.n
    }

    /// Allocates a factor object shaped for this pattern, ready for
    /// [`SymbolicLu::refactor_into`].
    pub fn allocate_factors(&self) -> LuFactors {
        LuFactors {
            n: self.n,
            l_colptr: self.l_colptr.clone(),
            l_rows: self.l_rows.clone(),
            l_vals: vec![0.0; self.l_rows.len()],
            u_colptr: self.u_colptr.clone(),
            u_rows: self.u_rows.clone(),
            u_vals: vec![0.0; self.u_rows.len()],
            u_diag: vec![0.0; self.n],
            p: self.p.clone(),
            q: self.q.clone(),
        }
    }

    /// Numerically refactors `a` over the frozen pattern into a fresh
    /// factor object. See [`SymbolicLu::refactor_into`] for the conditions.
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::refactor_into`].
    pub fn refactor(&self, a: &CscMatrix) -> Result<LuFactors, SparseError> {
        let mut f = self.allocate_factors();
        self.refactor_into(a, &mut f)?;
        Ok(f)
    }

    /// Numerically refactors `a` into `f`, reusing `f`'s allocations.
    ///
    /// `f` is an allocation donor: any factor object with this pattern's
    /// array shapes works (one from [`SymbolicLu::allocate_factors`], a
    /// previous refactorisation, or a fresh [`factor`] of the same
    /// matrix), and its pattern arrays are rewritten to this symbolic
    /// object's layout.
    ///
    /// # Errors
    ///
    /// * [`SparseError::Shape`] — `a`'s sparsity pattern differs from the
    ///   analysed one, or `f`'s array shapes do not match.
    /// * [`SparseError::Singular`] — a frozen pivot vanished.
    /// * [`SparseError::UnstablePivot`] — multiplier growth beyond the
    ///   stability bound; the caller should run a fresh pivoting
    ///   [`factor`].
    pub fn refactor_into(&self, a: &CscMatrix, f: &mut LuFactors) -> Result<(), SparseError> {
        let mut x = vec![0.0f64; self.n];
        self.refactor_into_with(a, f, &mut x)
    }

    /// [`SymbolicLu::refactor_into`] with a caller-owned dense scratch
    /// column, so a warm solver loop performs no heap allocation at all.
    ///
    /// `x` is resized to `n` if needed and left zeroed on return (success
    /// or error), so the same buffer can be passed to every call.
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::refactor_into`].
    pub fn refactor_into_with(
        &self,
        a: &CscMatrix,
        f: &mut LuFactors,
        x: &mut Vec<f64>,
    ) -> Result<(), SparseError> {
        // The scratch column must start zeroed, and the documented
        // invariant is that it comes back sized-to-`n` and zeroed on
        // *every* exit path — including the shape-check early returns
        // below — so warm loops can hand the same buffer back blindly.
        x.clear();
        x.resize(self.n, 0.0);
        if a.col_ptr() != self.a_colptr.as_slice() || a.row_idx() != self.a_rows.as_slice() {
            return Err(SparseError::Shape {
                detail: format!(
                    "refactor pattern mismatch: symbolic analysis is for a \
                     {n}x{n} matrix with {nnz} stored entries in a fixed \
                     pattern; pass a matrix with the identical pattern or \
                     re-run the full factorisation",
                    n = self.n,
                    nnz = self.a_rows.len(),
                ),
            });
        }
        if f.n != self.n
            || f.l_vals.len() != self.l_rows.len()
            || f.u_vals.len() != self.u_rows.len()
        {
            return Err(SparseError::Shape {
                detail: "refactor target does not match this pattern's array shapes".into(),
            });
        }
        // Align the donor's pattern with this symbolic layout (a fresh
        // `factor` stores U columns in topological rather than ascending
        // pivot order).
        f.l_colptr.clone_from(&self.l_colptr);
        f.l_rows.clone_from(&self.l_rows);
        f.u_colptr.clone_from(&self.u_colptr);
        f.u_rows.clone_from(&self.u_rows);
        f.p.clone_from(&self.p);
        f.q.clone_from(&self.q);

        for jj in 0..self.n {
            let col = self.q.old_of(jj);
            for (r, v) in a.col_iter(col) {
                x[r] = v;
            }
            // Eliminate with the frozen pivot sequence: ascending pivot
            // order within the column is topological. Slice-pair iteration
            // keeps the hot multiply-accumulate free of index bounds
            // checks on the pattern arrays.
            let (u_lo, u_hi) = (self.u_colptr[jj], self.u_colptr[jj + 1]);
            for (t, &k) in (u_lo..u_hi).zip(&self.u_rows[u_lo..u_hi]) {
                let xk = x[self.p[k]];
                f.u_vals[t] = xk;
                x[self.p[k]] = 0.0;
                if xk != 0.0 {
                    let (lo, hi) = (self.l_colptr[k], self.l_colptr[k + 1]);
                    for (&r, &lv) in self.l_rows[lo..hi].iter().zip(&f.l_vals[lo..hi]) {
                        x[r] -= lv * xk;
                    }
                }
            }
            let d = x[self.p[jj]];
            x[self.p[jj]] = 0.0;
            let (lo, hi) = (self.l_colptr[jj], self.l_colptr[jj + 1]);
            let mut colmax = 0.0f64;
            for &r in &self.l_rows[lo..hi] {
                colmax = colmax.max(x[r].abs());
            }
            if !d.is_finite() || d.abs() <= PIVOT_TINY {
                x.iter_mut().for_each(|v| *v = 0.0);
                return Err(SparseError::Singular { column: col });
            }
            if colmax > MAX_PIVOT_GROWTH * d.abs() {
                x.iter_mut().for_each(|v| *v = 0.0);
                return Err(SparseError::UnstablePivot {
                    column: col,
                    growth: colmax / d.abs(),
                });
            }
            f.u_diag[jj] = d;
            let inv_d = 1.0 / d;
            for (&r, lv) in self.l_rows[lo..hi].iter().zip(&mut f.l_vals[lo..hi]) {
                *lv = x[r] * inv_d;
                x[r] = 0.0;
            }
        }
        Ok(())
    }
}

/// Reusable scratch for [`LuFactors::solve_with`]: the two dense working
/// vectors a triangular solve needs, kept across calls so a warm solver
/// loop performs zero heap allocation.
///
/// One workspace serves factorisations of any size — the buffers grow to
/// the largest `n` seen and then stay. [`SolveWorkspace::grows`] counts how
/// often a buffer actually had to reallocate, which is the observable that
/// lets callers *assert* their hot path is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    w: Vec<f64>,
    y: Vec<f64>,
    grows: u64,
}

impl SolveWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a workspace pre-sized for systems of dimension `n`, so even
    /// the first solve allocates nothing.
    pub fn with_dimension(n: usize) -> Self {
        SolveWorkspace {
            w: vec![0.0; n],
            y: vec![0.0; n],
            grows: 0,
        }
    }

    /// Number of times a buffer had to reallocate since construction. A
    /// warm loop must keep this constant.
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Sizes both buffers to `n`, counting real reallocations. Both
    /// buffers are fully overwritten by every solve (`w` by the RHS copy,
    /// `y` by the forward sweep), so a warm call — lengths already `n` —
    /// does no work here at all.
    fn ensure(&mut self, n: usize) {
        if self.w.capacity() < n || self.y.capacity() < n {
            self.grows += 1;
        }
        if self.w.len() != n {
            self.w.clear();
            self.w.resize(n, 0.0);
        }
        if self.y.len() != n {
            self.y.clear();
            self.y.resize(n, 0.0);
        }
    }
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Numeric-only refactorisation: recomputes factors for `a` over the
    /// frozen pattern and pivot sequence of `symbolic`, skipping the DFS
    /// and pivot search. Equivalent to [`SymbolicLu::refactor`].
    ///
    /// # Errors
    ///
    /// See [`SymbolicLu::refactor_into`]; on
    /// [`SparseError::UnstablePivot`], fall back to a fresh [`factor`].
    pub fn refactor(symbolic: &SymbolicLu, a: &CscMatrix) -> Result<LuFactors, SparseError> {
        symbolic.refactor(a)
    }

    /// Stored entries in `L` (excluding the implicit unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_vals.len()
    }

    /// Stored entries in `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_vals.len() + self.n
    }

    /// Solves `A·x = b` using the computed factors.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `b.len() != n`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut ws = SolveWorkspace::new();
        let mut x = vec![0.0f64; self.n];
        self.solve_with(&mut ws, b, &mut x)?;
        Ok(x)
    }

    /// Allocation-free solve: `A·x = b` using caller-owned scratch. The
    /// solution (in original ordering, permutation applied) overwrites `x`
    /// completely; `b` is untouched. After the workspace has warmed to this
    /// dimension, the call performs no heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `b.len() != n` or `x.len() != n`.
    pub fn solve_with(
        &self,
        ws: &mut SolveWorkspace,
        b: &[f64],
        x: &mut [f64],
    ) -> Result<(), SparseError> {
        if b.len() != self.n || x.len() != self.n {
            return Err(SparseError::Shape {
                detail: format!(
                    "rhs length {} / solution length {} != {}",
                    b.len(),
                    x.len(),
                    self.n
                ),
            });
        }
        ws.ensure(self.n);
        ws.w.copy_from_slice(b);
        // Split borrow: forward/backward sweeps need w and y separately.
        let (w, y) = (&mut ws.w, &mut ws.y);
        self.solve_into(w, y);
        self.q.scatter_into(y, x);
        Ok(())
    }

    /// Low-allocation solve: `w` must contain the right-hand side on entry
    /// (it is destroyed), `y` receives the solution in *factor* ordering.
    /// Use [`LuFactors::solve`] unless profiling says otherwise; note the
    /// final column-permutation scatter is skipped here, so `y` is only
    /// meaningful after [`Permutation::scatter`] with
    /// [`LuFactors::column_permutation`].
    ///
    /// # Panics
    ///
    /// Panics if `w` or `y` have length different from `n`.
    pub fn solve_into(&self, w: &mut [f64], y: &mut [f64]) {
        assert_eq!(w.len(), self.n);
        assert_eq!(y.len(), self.n);
        // Forward: y = L⁻¹ P w.
        for j in 0..self.n {
            let t = w[self.p[j]];
            y[j] = t;
            if t != 0.0 {
                for k in self.l_colptr[j]..self.l_colptr[j + 1] {
                    w[self.l_rows[k]] -= self.l_vals[k] * t;
                }
            }
        }
        // Backward: y = U⁻¹ y.
        for j in (0..self.n).rev() {
            let yj = y[j] / self.u_diag[j];
            y[j] = yj;
            if yj != 0.0 {
                for k in self.u_colptr[j]..self.u_colptr[j + 1] {
                    y[self.u_rows[k]] -= self.u_vals[k] * yj;
                }
            }
        }
    }

    /// The column permutation used by the factorisation.
    pub fn column_permutation(&self) -> &Permutation {
        &self.q
    }

    /// Solves `A·X = B` for multiple right-hand sides, reusing one scratch
    /// pair across all columns instead of allocating two working vectors
    /// per column.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if any right-hand side has the wrong
    /// length.
    pub fn solve_many(&self, bs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, SparseError> {
        let mut ws = SolveWorkspace::with_dimension(self.n);
        bs.iter()
            .map(|b| {
                let mut x = vec![0.0f64; self.n];
                self.solve_with(&mut ws, b, &mut x)?;
                Ok(x)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMatrix;
    use crate::triplet::TripletMatrix;

    fn residual_inf(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn identity_solve() {
        let a = CscMatrix::identity(5);
        let f = factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = f.solve(&b).unwrap();
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn diagonal_solve() {
        let a = CscMatrix::from_triplets(3, 3, &[0, 1, 2], &[0, 1, 2], &[2.0, 4.0, 8.0]);
        let f = factor(&a).unwrap();
        let x = f.solve(&[2.0, 4.0, 8.0]).unwrap();
        for v in &x {
            assert!((v - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn permutation_matrix_requires_pivoting() {
        // A = anti-diagonal: needs row swaps everywhere.
        let a = CscMatrix::from_triplets(3, 3, &[2, 1, 0], &[0, 1, 2], &[1.0, 1.0, 1.0]);
        let f = factor(&a).unwrap();
        let x = f.solve(&[5.0, 7.0, 9.0]).unwrap();
        assert!((x[2] - 5.0).abs() < 1e-14);
        assert!((x[1] - 7.0).abs() < 1e-14);
        assert!((x[0] - 9.0).abs() < 1e-14);
    }

    #[test]
    fn laplacian_with_leak_matches_dense() {
        // 1D conduction chain with a conductance to ambient at one end:
        // nonsingular, the canonical thermal-model structure.
        let n = 12;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0 + i as f64 * 0.1);
        }
        t.push(0, 0, 0.5); // sink to ambient
        let a = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 1.5).collect();

        let dense_rows = a.to_dense();
        let dref: Vec<&[f64]> = dense_rows.iter().map(|r| r.as_slice()).collect();
        let oracle = DenseMatrix::from_rows(&dref).unwrap().solve(&b).unwrap();

        for ord in [ColumnOrdering::Natural, ColumnOrdering::Rcm] {
            let f = factor_with_ordering(&a, ord).unwrap();
            let x = f.solve(&b).unwrap();
            for (u, v) in x.iter().zip(&oracle) {
                assert!((u - v).abs() < 1e-10, "{ord:?}: {u} vs {v}");
            }
            assert!(residual_inf(&a, &x, &b) < 1e-10);
        }
    }

    #[test]
    fn nonsymmetric_advection_like_system() {
        // Conduction chain plus one-directional (upwind) coupling — the
        // exact structure the micro-channel model produces.
        let n = 10;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
        }
        for i in 0..n - 1 {
            t.push(i, i + 1, -1.0); // conduction (symmetric part)
            t.push(i + 1, i, -1.0);
            t.push(i + 1, i, -0.8); // advection: downstream depends on upstream
        }
        let a = t.to_csc();
        let b = vec![1.0; n];
        let f = factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-11);
    }

    #[test]
    fn singular_matrix_detected() {
        // Rank-deficient: column 2 is zero.
        let a = CscMatrix::from_triplets(3, 3, &[0, 1], &[0, 1], &[1.0, 1.0]);
        assert!(matches!(factor(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn pure_laplacian_is_singular() {
        // No path to ambient: floating thermal network, singular G.
        let mut t = TripletMatrix::new(4, 4);
        for i in 0..3 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        assert!(factor(&t.to_csc()).is_err());
    }

    #[test]
    fn non_square_rejected() {
        let a = CscMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(matches!(factor(&a), Err(SparseError::Shape { .. })));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let f = factor(&CscMatrix::identity(3)).unwrap();
        assert!(f.solve(&[1.0, 2.0]).is_err());
    }

    /// The advection-like grid operator used across the refactor tests.
    fn grid_with_advection(scale: f64) -> CscMatrix {
        let n = 30;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0 * scale + 0.05);
        }
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, scale);
            t.push(i + 1, i, -0.6 * scale);
        }
        t.to_csc()
    }

    #[test]
    fn refactor_matches_fresh_factor_on_new_values() {
        let a0 = grid_with_advection(1.0);
        let (_, sym) = factor_with_symbolic(&a0, ColumnOrdering::Rcm).unwrap();
        for scale in [0.3, 1.0, 2.5, 7.0] {
            let a = grid_with_advection(scale);
            let re = LuFactors::refactor(&sym, &a).unwrap();
            let fresh = factor(&a).unwrap();
            let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.31).cos()).collect();
            let x_re = re.solve(&b).unwrap();
            let x_fresh = fresh.solve(&b).unwrap();
            for (u, v) in x_re.iter().zip(&x_fresh) {
                assert!((u - v).abs() < 1e-11, "scale {scale}: {u} vs {v}");
            }
            assert!(residual_inf(&a, &x_re, &b) < 1e-10);
        }
    }

    #[test]
    fn refactor_into_reuses_allocations() {
        let a0 = grid_with_advection(1.0);
        let (mut f, sym) = factor_with_symbolic(&a0, ColumnOrdering::Rcm).unwrap();
        let a = grid_with_advection(4.0);
        sym.refactor_into(&a, &mut f).unwrap();
        let b = vec![1.0; a.nrows()];
        let x = f.solve(&b).unwrap();
        assert!(residual_inf(&a, &x, &b) < 1e-10);
    }

    #[test]
    fn refactor_rejects_foreign_pattern() {
        let a0 = grid_with_advection(1.0);
        let (_, sym) = factor_with_symbolic(&a0, ColumnOrdering::Rcm).unwrap();
        // Same size, different pattern.
        let other = CscMatrix::identity(a0.nrows());
        assert!(matches!(
            sym.refactor(&other),
            Err(SparseError::Shape { .. })
        ));
    }

    #[test]
    fn refactor_detects_degenerate_pivot() {
        // Factor a well-pivoted 2x2, then hand it values that make the
        // frozen pivot catastrophically small relative to its column.
        let a0 =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[4.0, 1.0, 1.0, 4.0]);
        let (_, sym) = factor_with_symbolic(&a0, ColumnOrdering::Natural).unwrap();
        let bad =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[1e-12, 1.0, 1.0, 4.0]);
        match sym.refactor(&bad) {
            Err(SparseError::UnstablePivot { growth, .. }) => {
                assert!(growth > MAX_PIVOT_GROWTH);
            }
            other => panic!("expected UnstablePivot, got {other:?}"),
        }
        // The fallback path: a fresh pivoting factorisation handles it.
        let f = factor(&bad).unwrap();
        let x = f.solve(&[1.0, 1.0]).unwrap();
        assert!(residual_inf(&bad, &x, &[1.0, 1.0]) < 1e-9);
    }

    #[test]
    fn refactor_flags_singular_values() {
        let a0 = CscMatrix::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0, 1.0]);
        let (_, sym) = factor_with_symbolic(&a0, ColumnOrdering::Natural).unwrap();
        let sing = CscMatrix::from_triplets(2, 2, &[0, 1], &[0, 1], &[1.0, 0.0]);
        assert!(matches!(
            sym.refactor(&sing),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn symbolic_reports_pattern_sizes() {
        let a = grid_with_advection(1.0);
        let (f, sym) = factor_with_symbolic(&a, ColumnOrdering::Rcm).unwrap();
        assert_eq!(sym.n(), a.nrows());
        assert_eq!(sym.nnz_l(), f.nnz_l());
        assert_eq!(sym.nnz_u(), f.nnz_u());
    }

    #[test]
    fn solve_with_matches_solve_bitwise() {
        let a = grid_with_advection(1.7);
        let f = factor(&a).unwrap();
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i as f64 * 0.13).sin()).collect();
        let expect = f.solve(&b).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut x = vec![0.0; a.nrows()];
        f.solve_with(&mut ws, &b, &mut x).unwrap();
        assert_eq!(x, expect, "in-place solve must be the identical bits");
        // Wrong shapes are rejected, not panicked on.
        assert!(f.solve_with(&mut ws, &b[1..], &mut x).is_err());
        let mut short = vec![0.0; a.nrows() - 1];
        assert!(f.solve_with(&mut ws, &b, &mut short).is_err());
    }

    #[test]
    fn solve_workspace_is_allocation_free_when_warm() {
        let a = grid_with_advection(2.0);
        let f = factor(&a).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut x = vec![0.0; a.nrows()];
        let b = vec![1.0; a.nrows()];
        f.solve_with(&mut ws, &b, &mut x).unwrap();
        let warm = ws.grows();
        assert!(warm >= 1, "first use must grow the buffers");
        for _ in 0..100 {
            f.solve_with(&mut ws, &b, &mut x).unwrap();
        }
        assert_eq!(ws.grows(), warm, "warm solves must never reallocate");
        // Pre-sized workspaces never grow at all.
        let mut pre = SolveWorkspace::with_dimension(a.nrows());
        f.solve_with(&mut pre, &b, &mut x).unwrap();
        assert_eq!(pre.grows(), 0);
    }

    #[test]
    fn solve_many_matches_column_by_column_solves() {
        let a = grid_with_advection(1.0);
        let f = factor(&a).unwrap();
        let n = a.nrows();
        let bs: Vec<Vec<f64>> = (0..5)
            .map(|k| {
                (0..n)
                    .map(|i| ((i * (k + 2)) as f64 * 0.21).cos())
                    .collect()
            })
            .collect();
        let many = f.solve_many(&bs).unwrap();
        assert_eq!(many.len(), bs.len());
        for (b, x) in bs.iter().zip(&many) {
            let single = f.solve(b).unwrap();
            assert_eq!(
                x, &single,
                "shared-scratch solve must match per-column solve"
            );
            assert!(residual_inf(&a, x, b) < 1e-10);
        }
        // A bad column surfaces as an error, same as `solve`.
        let bad = vec![vec![1.0; n], vec![1.0; n - 1]];
        assert!(f.solve_many(&bad).is_err());
    }

    #[test]
    fn refactor_into_with_reuses_scratch_and_rezeroes_on_error() {
        let a0 = grid_with_advection(1.0);
        let (mut f, sym) = factor_with_symbolic(&a0, ColumnOrdering::Rcm).unwrap();
        let mut scratch = Vec::new();
        for scale in [0.5, 2.0, 6.0] {
            let a = grid_with_advection(scale);
            sym.refactor_into_with(&a, &mut f, &mut scratch).unwrap();
            let b = vec![1.0; a.nrows()];
            let x = f.solve(&b).unwrap();
            assert!(residual_inf(&a, &x, &b) < 1e-10, "scale {scale}");
            assert!(scratch.iter().all(|&v| v == 0.0), "scratch left zeroed");
        }
        // Error path: scratch comes back zeroed too.
        let a0 =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[4.0, 1.0, 1.0, 4.0]);
        let (mut f, sym) = factor_with_symbolic(&a0, ColumnOrdering::Natural).unwrap();
        let bad =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[1e-12, 1.0, 1.0, 4.0]);
        let mut scratch = vec![7.0; 2];
        assert!(sym.refactor_into_with(&bad, &mut f, &mut scratch).is_err());
        assert!(scratch.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grid_laplacian_2d_many_rhs() {
        // 2D 8x8 grid with sink: solve for several right-hand sides and
        // verify residuals.
        let (nx, ny) = (8, 8);
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    t.stamp_conductance(i, i + 1, 1.0);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, i + nx, 2.0);
                }
                t.push(i, i, 0.05); // distributed sink
            }
        }
        let a = t.to_csc();
        let f = factor(&a).unwrap();
        for k in 0..4 {
            let b: Vec<f64> = (0..n).map(|i| ((i + k) as f64 * 0.37).cos()).collect();
            let x = f.solve(&b).unwrap();
            assert!(residual_inf(&a, &x, &b) < 1e-9);
        }
    }
}
