//! Zero-fill incomplete LU — the preconditioner for
//! [`crate::bicgstab()`].

use crate::csc::CscMatrix;
use crate::SparseError;

/// An ILU(0) factorisation: `A ≈ L·U` restricted to the sparsity pattern of
/// `A`, with no pivoting.
///
/// Intended for diagonally dominant matrices (the thermal operators are);
/// for general matrices prefer the exact [`crate::lu`].
///
/// The factorisation performs no pivoting, so a diagonal entry that is
/// structurally missing — or numerically vanishes relative to the matrix
/// scale during elimination — is reported as [`SparseError::Singular`]
/// rather than silently dividing by a meaningless pivot. The singularity
/// guard is *scale-relative* (`|pivot| ≤ ε·max|A|`): a perfectly
/// conditioned system whose entries all sit at 1e-160 factorises fine,
/// while a pivot that has cancelled down to round-off of the largest entry
/// is refused at any magnitude.
///
/// # Symbolic/numeric split
///
/// The expensive pattern work (CSC→CSR conversion order, diagonal
/// positions, L/U split structure) depends only on the sparsity pattern,
/// which is fixed per `(stack, grid)` in the thermal crate. It is
/// computed once by [`Ilu0::new`]; [`Ilu0::refresh`] then redoes only the
/// value elimination for a matrix with the **same pattern** — the
/// counterpart of [`SymbolicLu`](crate::SymbolicLu) /
/// [`LuFactors::refactor`](crate::LuFactors::refactor) for the incomplete
/// factorisation. A refresh performs zero heap allocation and produces
/// factors bit-identical to a fresh [`Ilu0::new`] on the same matrix.
#[derive(Debug, Clone)]
pub struct Ilu0 {
    n: usize,
    // --- symbolic state (fixed once analysed) ---
    // Merged row-major CSR pattern of A with sorted column indices.
    rowptr: Vec<usize>,
    cols: Vec<usize>,
    // Index of the diagonal entry within each CSR row.
    diag_pos: Vec<usize>,
    // CSR slot k takes its value from `a.values()[csc_src[k]]`.
    csc_src: Vec<usize>,
    // --- numeric working state ---
    // Merged factor values (L below the diagonal, U from it up).
    vals: Vec<f64>,
    // Scatter map scratch for the pattern-restricted elimination.
    colmap: Vec<usize>,
    // --- split factors consumed by `apply_into` ---
    // Row-major CSR copies of the L (unit diagonal, strictly lower) and U
    // (including diagonal) parts.
    l_rowptr: Vec<usize>,
    l_cols: Vec<usize>,
    l_vals: Vec<f64>,
    u_rowptr: Vec<usize>,
    u_cols: Vec<usize>,
    u_vals: Vec<f64>,
}

impl Ilu0 {
    /// Computes the ILU(0) factorisation of a square matrix: symbolic
    /// analysis plus a first [`Ilu0::refresh`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] for non-square input and
    /// [`SparseError::Singular`] if a diagonal entry is structurally
    /// missing or vanishes relative to the matrix scale during the
    /// factorisation.
    pub fn new(a: &CscMatrix) -> Result<Self, SparseError> {
        let mut ilu = Self::analyze(a)?;
        ilu.refresh(a)?;
        Ok(ilu)
    }

    /// Symbolic-only analysis: builds the CSR pattern, the CSC→CSR value
    /// gather map, the diagonal positions, and the L/U split structure.
    /// The numeric values are all zero until the first refresh.
    fn analyze(a: &CscMatrix) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::Shape {
                detail: format!(
                    "ILU0 requires square matrix, got {}x{}",
                    a.nrows(),
                    a.ncols()
                ),
            });
        }
        let n = a.nrows();
        let nnz = a.nnz();

        // CSC→CSR conversion without materialising the transpose: count
        // entries per row, then walk the columns in ascending order so
        // each row's column indices come out sorted.
        let mut rowptr = vec![0usize; n + 1];
        for &r in a.row_idx() {
            rowptr[r + 1] += 1;
        }
        for r in 0..n {
            rowptr[r + 1] += rowptr[r];
        }
        let mut next = rowptr[..n].to_vec();
        let mut cols = vec![0usize; nnz];
        let mut csc_src = vec![0usize; nnz];
        let col_ptr = a.col_ptr();
        let row_idx = a.row_idx();
        for c in 0..n {
            for k in col_ptr[c]..col_ptr[c + 1] {
                let slot = next[row_idx[k]];
                next[row_idx[k]] += 1;
                cols[slot] = c;
                csc_src[slot] = k;
            }
        }

        // diag_pos[r] = index of the diagonal entry within row r.
        let mut diag_pos = vec![usize::MAX; n];
        for r in 0..n {
            let (lo, hi) = (rowptr[r], rowptr[r + 1]);
            if let Some(k) = cols[lo..hi].iter().position(|&c| c == r) {
                diag_pos[r] = lo + k;
            } else {
                return Err(SparseError::Singular { column: r });
            }
        }

        // L/U split structure (values filled by refresh).
        let mut l_rowptr = vec![0usize; n + 1];
        let mut l_cols = Vec::new();
        let mut u_rowptr = vec![0usize; n + 1];
        let mut u_cols = Vec::new();
        for r in 0..n {
            for &c in &cols[rowptr[r]..rowptr[r + 1]] {
                if c < r {
                    l_cols.push(c);
                } else {
                    u_cols.push(c);
                }
            }
            l_rowptr[r + 1] = l_cols.len();
            u_rowptr[r + 1] = u_cols.len();
        }
        let l_vals = vec![0.0; l_cols.len()];
        let u_vals = vec![0.0; u_cols.len()];

        Ok(Ilu0 {
            n,
            rowptr,
            cols,
            diag_pos,
            csc_src,
            vals: vec![0.0; nnz],
            colmap: vec![usize::MAX; n],
            l_rowptr,
            l_cols,
            l_vals,
            u_rowptr,
            u_cols,
            u_vals,
        })
    }

    /// Value-only refactorisation for a matrix with the **same sparsity
    /// pattern** as the one this factorisation was analysed on: gathers
    /// the new values through the stored CSC→CSR map and redoes the
    /// pattern-restricted elimination. Performs zero heap allocation and
    /// produces factors bit-identical to a fresh [`Ilu0::new`].
    ///
    /// On error the split L/U factors keep their previous values (the
    /// merged working buffer is garbage); a later refresh fully
    /// overwrites everything, so the factorisation stays reusable.
    ///
    /// # Errors
    ///
    /// * [`SparseError::Shape`] — `a`'s dimension or nonzero count does
    ///   not match the analysed pattern. (Matching counts with a
    ///   *different* pattern is not detected in release builds — the
    ///   caller owns the fixed-pattern contract, as with
    ///   [`CscMatrix::update_values`].)
    /// * [`SparseError::Singular`] — a pivot vanishes relative to the
    ///   matrix scale during elimination.
    pub fn refresh(&mut self, a: &CscMatrix) -> Result<(), SparseError> {
        if a.nrows() != self.n || a.ncols() != self.n || a.nnz() != self.cols.len() {
            return Err(SparseError::Shape {
                detail: format!(
                    "ILU0 refresh: matrix {}x{} with {} nonzeros does not match \
                     analysed pattern ({} rows, {} nonzeros)",
                    a.nrows(),
                    a.ncols(),
                    a.nnz(),
                    self.n,
                    self.cols.len()
                ),
            });
        }
        let n = self.n;

        // Scale-relative pivot floor: a pivot at or below round-off of the
        // largest entry is numerically zero whatever the absolute
        // magnitude of the matrix.
        let scale = a.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let tiny = scale * f64::EPSILON;

        let src = a.values();
        for (v, &k) in self.vals.iter_mut().zip(&self.csc_src) {
            *v = src[k];
        }

        // IKJ-variant Gaussian elimination restricted to the pattern.
        let (rowptr, cols, diag_pos) = (&self.rowptr, &self.cols, &self.diag_pos);
        let (vals, colmap) = (&mut self.vals, &mut self.colmap);
        for i in 0..n {
            // Load row i's pattern into the scatter map.
            for k in rowptr[i]..rowptr[i + 1] {
                colmap[cols[k]] = k;
            }
            // Eliminate using rows k < i present in row i's pattern.
            for kk in rowptr[i]..rowptr[i + 1] {
                let k = cols[kk];
                if k >= i {
                    break; // columns are sorted
                }
                let dk = vals[diag_pos[k]];
                if dk.abs() <= tiny {
                    // Clear the scatter map before bailing so a retry
                    // starts from a clean scratch state.
                    for kc in rowptr[i]..rowptr[i + 1] {
                        colmap[cols[kc]] = usize::MAX;
                    }
                    return Err(SparseError::Singular { column: k });
                }
                let factor = vals[kk] / dk;
                vals[kk] = factor;
                // Subtract factor * (row k, columns > k), pattern-restricted.
                for kj in (diag_pos[k] + 1)..rowptr[k + 1] {
                    let j = cols[kj];
                    let pos = colmap[j];
                    if pos != usize::MAX {
                        vals[pos] -= factor * vals[kj];
                    }
                }
            }
            // Clear the scatter map.
            for k in rowptr[i]..rowptr[i + 1] {
                colmap[cols[k]] = usize::MAX;
            }
            if vals[diag_pos[i]].abs() <= tiny {
                return Err(SparseError::Singular { column: i });
            }
        }

        // Split the merged values into the L and U factor arrays.
        let mut lk = 0usize;
        let mut uk = 0usize;
        for r in 0..n {
            for k in self.rowptr[r]..self.rowptr[r + 1] {
                if self.cols[k] < r {
                    self.l_vals[lk] = self.vals[k];
                    lk += 1;
                } else {
                    self.u_vals[uk] = self.vals[k];
                    uk += 1;
                }
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Applies the preconditioner: solves `L·U·z = r` into a fresh vector.
    ///
    /// Prefer [`Ilu0::apply_into`] in iteration loops — it reuses a
    /// caller-owned buffer and performs no heap allocation once warm.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `r.len() != n`.
    pub fn apply(&self, r: &[f64]) -> Result<Vec<f64>, SparseError> {
        let mut z = Vec::with_capacity(self.n);
        self.apply_into(r, &mut z)?;
        Ok(z)
    }

    /// Applies the preconditioner into a caller-owned buffer: solves
    /// `L·U·z = r`, overwriting `z` completely (it is resized to `n`).
    /// After `z` has warmed to this dimension the call performs no heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::Shape`] if `r.len() != n` (the buffer is
    /// left untouched in that case).
    pub fn apply_into(&self, r: &[f64], z: &mut Vec<f64>) -> Result<(), SparseError> {
        if r.len() != self.n {
            return Err(SparseError::Shape {
                detail: format!("ILU0 apply: vector length {} != {}", r.len(), self.n),
            });
        }
        z.clear();
        z.extend_from_slice(r);
        // Forward solve (unit lower).
        for i in 0..self.n {
            let mut acc = z[i];
            for k in self.l_rowptr[i]..self.l_rowptr[i + 1] {
                acc -= self.l_vals[k] * z[self.l_cols[k]];
            }
            z[i] = acc;
        }
        // Backward solve (upper, diagonal somewhere in each row part).
        for i in (0..self.n).rev() {
            let lo = self.u_rowptr[i];
            let hi = self.u_rowptr[i + 1];
            let mut acc = z[i];
            let mut diag = 1.0;
            for k in lo..hi {
                let c = self.u_cols[k];
                if c == i {
                    diag = self.u_vals[k];
                } else {
                    acc -= self.u_vals[k] * z[c];
                }
            }
            z[i] = acc / diag;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triplet::TripletMatrix;

    fn tridiagonal(n: usize, scale: f64) -> CscMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.5 * scale);
            if i + 1 < n {
                t.push(i, i + 1, -scale);
                t.push(i + 1, i, -scale);
            }
        }
        t.to_csc()
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // Tridiagonal matrices have no fill, so ILU(0) == LU and the
        // preconditioner solve is the exact solve.
        let n = 9;
        let a = tridiagonal(n, 1.0);
        let ilu = Ilu0::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let x = ilu.apply(&b).unwrap();
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    #[test]
    fn apply_into_reuses_the_buffer_and_matches_apply() {
        let n = 12;
        let a = tridiagonal(n, 1.0);
        let ilu = Ilu0::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let fresh = ilu.apply(&b).unwrap();
        let mut z = Vec::new();
        ilu.apply_into(&b, &mut z).unwrap();
        assert_eq!(z, fresh, "identical bits through either entry point");
        let cap = z.capacity();
        for _ in 0..10 {
            ilu.apply_into(&b, &mut z).unwrap();
        }
        assert_eq!(z.capacity(), cap, "warm applies must not reallocate");
    }

    #[test]
    fn length_mismatch_is_an_error_not_a_panic() {
        let a = tridiagonal(4, 1.0);
        let ilu = Ilu0::new(&a).unwrap();
        assert!(matches!(
            ilu.apply(&[1.0, 2.0]),
            Err(SparseError::Shape { .. })
        ));
        let mut z = vec![9.0; 3];
        assert!(matches!(
            ilu.apply_into(&[1.0; 7], &mut z),
            Err(SparseError::Shape { .. })
        ));
        assert_eq!(z, vec![9.0; 3], "buffer untouched on shape error");
    }

    #[test]
    fn missing_diagonal_is_singular() {
        let a = CscMatrix::from_triplets(2, 2, &[1, 0], &[0, 1], &[1.0, 1.0]);
        assert!(matches!(Ilu0::new(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn zero_diagonal_is_singular() {
        // The diagonal slot exists structurally but holds an exact zero.
        let a = CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[0.0, 1.0, 1.0, 4.0]);
        assert!(matches!(Ilu0::new(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn near_zero_diagonal_relative_to_scale_is_singular() {
        // A pivot at round-off of the matrix scale: |d| <= eps * max|A|.
        let a =
            CscMatrix::from_triplets(2, 2, &[0, 1, 0, 1], &[0, 0, 1, 1], &[1e-18, 1.0, 1.0, 4.0]);
        assert!(matches!(Ilu0::new(&a), Err(SparseError::Singular { .. })));
    }

    #[test]
    fn tiny_magnitude_systems_factor_fine() {
        // A perfectly conditioned system scaled down to 1e-160: the old
        // absolute 1e-300 pivot guard fired on its elimination products;
        // the scale-relative guard must not.
        let n = 9;
        let a = tridiagonal(n, 1e-160);
        let ilu = Ilu0::new(&a).expect("tiny but well-conditioned");
        let b: Vec<f64> = (0..n).map(|i| (1.0 + i as f64) * 1e-160).collect();
        let x = ilu.apply(&b).unwrap();
        // Tridiagonal => exact solve: residual at the scale of b.
        let r = a.matvec(&x);
        for (u, v) in r.iter().zip(&b) {
            assert!((u - v).abs() < 1e-10 * 1e-160, "{u} vs {v}");
        }
    }

    #[test]
    fn non_square_rejected() {
        let a = CscMatrix::from_triplets(2, 3, &[0], &[0], &[1.0]);
        assert!(matches!(Ilu0::new(&a), Err(SparseError::Shape { .. })));
    }

    #[test]
    fn refresh_matches_fresh_factorisation_bitwise() {
        // Two same-pattern matrices with different values: analysing once
        // and refreshing must give the exact bits a fresh Ilu0::new on
        // the second matrix would.
        let n = 14;
        let a1 = tridiagonal(n, 1.0);
        let a2 = tridiagonal(n, 3.7);
        let mut ilu = Ilu0::new(&a1).unwrap();
        ilu.refresh(&a2).unwrap();
        let fresh = Ilu0::new(&a2).unwrap();
        assert_eq!(ilu.l_vals, fresh.l_vals, "L values bit-identical");
        assert_eq!(ilu.u_vals, fresh.u_vals, "U values bit-identical");
    }

    #[test]
    fn refresh_performs_no_heap_allocation_observably() {
        // Indirect observable: all buffers keep their capacity across a
        // refresh (the direct counting-allocator check lives in the bench
        // suite).
        let n = 20;
        let a = tridiagonal(n, 1.0);
        let mut ilu = Ilu0::new(&a).unwrap();
        let caps = (
            ilu.vals.capacity(),
            ilu.l_vals.capacity(),
            ilu.u_vals.capacity(),
        );
        for s in [0.5, 2.0, 9.0] {
            ilu.refresh(&tridiagonal(n, s)).unwrap();
        }
        assert_eq!(
            caps,
            (
                ilu.vals.capacity(),
                ilu.l_vals.capacity(),
                ilu.u_vals.capacity()
            )
        );
    }

    #[test]
    fn refresh_rejects_mismatched_pattern_size() {
        let mut ilu = Ilu0::new(&tridiagonal(6, 1.0)).unwrap();
        assert!(matches!(
            ilu.refresh(&tridiagonal(7, 1.0)),
            Err(SparseError::Shape { .. })
        ));
    }

    #[test]
    fn refresh_recovers_after_singular_values() {
        let n = 8;
        let good = tridiagonal(n, 1.0);
        let mut ilu = Ilu0::new(&good).unwrap();
        // Same pattern, but a zero diagonal entry makes the values singular.
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            // Row 0 has no elimination updates, so a zero there is a
            // genuinely vanishing pivot.
            t.push(i, i, if i == 0 { 0.0 } else { 2.5 });
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let bad = t.to_csc();
        assert!(matches!(
            ilu.refresh(&bad),
            Err(SparseError::Singular { .. })
        ));
        // A later refresh on good values fully overwrites the state.
        ilu.refresh(&good).unwrap();
        let fresh = Ilu0::new(&good).unwrap();
        assert_eq!(ilu.l_vals, fresh.l_vals);
        assert_eq!(ilu.u_vals, fresh.u_vals);
    }
}
