//! Coordinate-format (COO) matrix builder.

use crate::csc::CscMatrix;

/// A growable coordinate-format sparse matrix.
///
/// This is the assembly format: RC-network construction pushes one entry per
/// conductance contribution and duplicates are *summed* on conversion, which
/// is exactly the stamp-and-accumulate pattern circuit and thermal
/// simulators use.
///
/// ```
/// use cmosaic_sparse::TripletMatrix;
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: accumulates to 3.0
/// let a = t.to_csc();
/// assert_eq!(a.get(0, 0), 3.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TripletMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl TripletMatrix {
    /// Creates an empty builder with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty builder with pre-allocated capacity for `nnz`
    /// entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        TripletMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw (pre-accumulation) entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate on conversion.
    ///
    /// Entries that are exactly zero are stored anyway — they may be
    /// structurally meaningful (and accumulation may make them nonzero).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "triplet ({row},{col}) out of bounds for {}x{}",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Stamps a two-terminal conductance `g` between diagonal entries `i`
    /// and `j` (adds `+g` to both diagonals, `-g` to both off-diagonals) —
    /// the fundamental RC-assembly operation.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of bounds or `i == j`.
    pub fn stamp_conductance(&mut self, i: usize, j: usize, g: f64) {
        assert_ne!(i, j, "conductance endpoints must differ");
        self.push(i, i, g);
        self.push(j, j, g);
        self.push(i, j, -g);
        self.push(j, i, -g);
    }

    /// Converts to compressed sparse column storage, summing duplicates.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_triplets(self.nrows, self.ncols, &self.rows, &self.cols, &self.vals)
    }

    /// Converts to CSC and returns the scatter map `slot[k]` = index into
    /// the CSC value array that triplet entry `k` accumulates into.
    ///
    /// The map is what makes incremental assembly O(nnz): rebuild only the
    /// triplet *values* for a new operating point (same push order, hence
    /// the same pattern) and fold them into the existing matrix with
    /// [`CscMatrix::update_values`] — no sorting, no re-allocation, no
    /// symbolic work.
    pub fn to_csc_with_map(&self) -> (CscMatrix, Vec<usize>) {
        let csc = self.to_csc();
        let mut map = Vec::with_capacity(self.vals.len());
        for (&r, &c) in self.rows.iter().zip(&self.cols) {
            let lo = csc.col_ptr()[c];
            let hi = csc.col_ptr()[c + 1];
            let k = csc.row_idx()[lo..hi]
                .binary_search(&r)
                .expect("triplet entry present in its own CSC");
            map.push(lo + k);
        }
        (csc, map)
    }

    /// Read-only view of the raw (pre-accumulation) values, aligned with
    /// push order.
    pub fn values(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable view of the raw values (push order); the pattern is fixed.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_accumulate() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(1, 2, 2.5);
        t.push(0, 0, 1.0);
        let a = t.to_csc();
        assert_eq!(a.get(1, 2), 4.0);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(2, 2), 0.0);
    }

    #[test]
    fn stamp_conductance_is_symmetric_and_conservative() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(0, 1, 3.0);
        let a = t.to_csc();
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.get(1, 1), 3.0);
        assert_eq!(a.get(0, 1), -3.0);
        assert_eq!(a.get(1, 0), -3.0);
        // Row sums are zero: pure conduction conserves heat.
        let ones = vec![1.0; 2];
        let y = a.matvec(&ones);
        assert!(y.iter().all(|v| v.abs() < 1e-15));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn scatter_map_tracks_duplicates() {
        let mut t = TripletMatrix::new(3, 3);
        t.push(1, 2, 1.5);
        t.push(0, 0, 1.0);
        t.push(1, 2, 2.5); // duplicate of the first entry
        t.stamp_conductance(0, 1, 2.0);
        let (mut a, map) = t.to_csc_with_map();
        assert_eq!(map.len(), t.nnz());
        assert_eq!(a.get(1, 2), 4.0);
        // Duplicates share a slot.
        assert_eq!(map[0], map[2]);
        // Updating through the map reproduces a fresh conversion.
        let mut vals: Vec<f64> = t.values().to_vec();
        for v in &mut vals {
            *v *= 3.0;
        }
        a.update_values(&map, &vals);
        let fresh = {
            let mut t2 = TripletMatrix::new(3, 3);
            t2.push(1, 2, 4.5);
            t2.push(0, 0, 3.0);
            t2.push(1, 2, 7.5);
            t2.stamp_conductance(0, 1, 6.0);
            t2.to_csc()
        };
        assert_eq!(a, fresh);
    }

    #[test]
    fn values_are_editable_in_place() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.values_mut()[1] = 5.0;
        assert_eq!(t.values(), &[1.0, 5.0]);
        assert_eq!(t.to_csc().get(1, 1), 5.0);
    }

    #[test]
    fn capacity_constructor() {
        let t = TripletMatrix::with_capacity(4, 4, 16);
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.nnz(), 0);
    }
}
