//! Geometric multigrid preconditioner for structured-grid operators.
//!
//! A [`Multigrid`] runs V-cycles over a caller-supplied hierarchy of
//! [`LinearOperator`] levels living on nested cell-centered grids
//! ([`GridShape`]): operator-defined smoothing on every level (damped
//! Jacobi by default, via [`LinearOperator::smooth_pass`]), aggregation
//! (full-weighting) restriction of the residual, cell-centered bilinear
//! prolongation of the correction, and a small direct-LU coarse solve
//! reusing the existing [`SymbolicLu`] machinery. Implemented against the
//! [`Preconditioner`] trait, so [`crate::bicgstab_into`] accepts it
//! anywhere an [`crate::Ilu0`] is accepted.
//!
//! # Why geometric, and who builds the hierarchy
//!
//! The thermal operators live on a structured per-tier grid with a fixed
//! stencil; re-discretising the physics on a 2×-coarser grid is exact and
//! O(n), so the *caller* owns coarsening (it knows the physics) and this
//! module owns the cycle (it knows the numerics). Coarsening halves the
//! in-plane dimensions only — layers and trailing lumped nodes (the heat
//! sink) pass through every level unchanged.
//!
//! # Determinism
//!
//! The cycle contains no randomness and every loop runs in a fixed order,
//! so an apply is a pure function of the residual vector and the
//! construction inputs: repeated applies return bit-identical results,
//! independent of thread count. This is the contract
//! [`Preconditioner::apply_into`] requires.
//!
//! # Transfer-operator conventions
//!
//! Residuals in an RC thermal network are *extensive* (watts), so
//! restriction **sums** the four fine children of each coarse cell —
//! consistent with coarse couplings re-discretised for 4× the cell area.
//! Prolongation interpolates the (intensive) correction bilinearly with
//! weights 3/4 and 1/4 per axis, clamped at boundaries; trailing lumped
//! nodes restrict and prolongate by injection.

use std::sync::Arc;

use crate::csc::CscMatrix;
use crate::lu::{self, ColumnOrdering, LuFactors, SolveWorkspace, SymbolicLu};
use crate::operator::{LinearOperator, Preconditioner};
use crate::SparseError;

/// Cell-centered structured-grid shape of one multigrid level:
/// `nz` tiers of `nx × ny` cells plus `extra` trailing lumped nodes
/// (heat-sink node), for `nx·ny·nz + extra` unknowns, cells numbered
/// `z·nx·ny + y·nx + x` with the lumped nodes last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridShape {
    /// Cells along x within each tier.
    pub nx: usize,
    /// Cells along y within each tier.
    pub ny: usize,
    /// Number of tiers (never coarsened).
    pub nz: usize,
    /// Trailing lumped nodes (never coarsened).
    pub extra: usize,
}

impl GridShape {
    /// Total number of unknowns on this level.
    pub fn n(&self) -> usize {
        self.nx * self.ny * self.nz + self.extra
    }

    /// Number of grid cells (excluding the trailing lumped nodes).
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// The 2×-coarser in-plane shape, or `None` when either in-plane
    /// dimension is odd or would drop below one cell.
    pub fn coarsened(&self) -> Option<GridShape> {
        if self.nx < 2 || self.ny < 2 || !self.nx.is_multiple_of(2) || !self.ny.is_multiple_of(2) {
            return None;
        }
        Some(GridShape {
            nx: self.nx / 2,
            ny: self.ny / 2,
            nz: self.nz,
            extra: self.extra,
        })
    }
}

/// Tuning knobs for the V-cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultigridOptions {
    /// Smoothing sweeps before restriction on each level.
    pub pre_sweeps: usize,
    /// Smoothing sweeps after prolongation on each level.
    pub post_sweeps: usize,
    /// Jacobi damping factor ω in `x ← x + ω·D⁻¹·(b − A·x)`.
    pub damping: f64,
    /// V-cycles per preconditioner application.
    pub cycles: usize,
}

impl Default for MultigridOptions {
    fn default() -> Self {
        MultigridOptions {
            pre_sweeps: 1,
            post_sweeps: 1,
            damping: 0.8,
            cycles: 1,
        }
    }
}

/// Cumulative work counters, drained with [`Multigrid::take_stats`] so a
/// caller can attribute V-cycle work to individual solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultigridStats {
    /// V-cycles executed.
    pub cycles: u64,
    /// Smoothing sweeps across all levels.
    pub smooth_sweeps: u64,
    /// Direct solves on the coarsest level.
    pub coarse_solves: u64,
}

/// One smoothed level of the hierarchy.
#[derive(Debug, Clone)]
struct MgLevel<A> {
    op: A,
    shape: GridShape,
    inv_diag: Vec<f64>,
    x: Vec<f64>,
    b: Vec<f64>,
    r: Vec<f64>,
}

/// Geometric V-cycle preconditioner over a caller-built operator
/// hierarchy; see the [module docs](self) for the scheme and contracts.
///
/// Apply it through [`Preconditioner::apply_into`]; applies are
/// allocation-free once the output buffer is warm (the level scratch and
/// the coarse [`SolveWorkspace`] are pre-sized at construction).
#[derive(Debug, Clone)]
pub struct Multigrid<A> {
    levels: Vec<MgLevel<A>>,
    coarse_shape: GridShape,
    coarse_factors: LuFactors,
    coarse_symbolic: Arc<SymbolicLu>,
    coarse_ws: SolveWorkspace,
    coarse_x: Vec<f64>,
    coarse_b: Vec<f64>,
    options: MultigridOptions,
    stats: MultigridStats,
}

impl<A: LinearOperator> Multigrid<A> {
    /// Builds a multigrid preconditioner from smoothed levels (finest
    /// first, each exactly the in-plane coarsening of its predecessor)
    /// plus the assembled coarsest-level operator, which is LU-factored
    /// here.
    ///
    /// `levels` entries are `(operator, shape, diagonal)`; the diagonal
    /// drives the Jacobi smoother. `coarse_symbolic` is an optional
    /// symbolic factorisation captured from a previous build on the same
    /// coarse pattern (an operating-point refresh): when valid it turns
    /// the coarse factorisation into a numeric-only
    /// [`SymbolicLu::refactor`]; when stale or unstable the build falls
    /// back to a fresh pivoting factorisation transparently. Retrieve the
    /// current symbolic with [`Multigrid::coarse_symbolic`] for reuse.
    ///
    /// # Errors
    ///
    /// * [`SparseError::Shape`] — empty `levels`, an operator/shape/
    ///   diagonal dimension mismatch, a level that is not the coarsening
    ///   of its predecessor, or a coarse operator of the wrong dimension.
    /// * [`SparseError::Singular`] — a zero or non-finite smoother
    ///   diagonal entry, or a singular coarse operator.
    pub fn new(
        levels: Vec<(A, GridShape, Vec<f64>)>,
        coarse_op: &CscMatrix,
        coarse_symbolic: Option<Arc<SymbolicLu>>,
        options: MultigridOptions,
    ) -> Result<Self, SparseError> {
        if levels.is_empty() {
            return Err(SparseError::Shape {
                detail: "multigrid needs at least one smoothed level".into(),
            });
        }
        let mut built = Vec::with_capacity(levels.len());
        let mut expected: Option<GridShape> = None;
        for (op, shape, diag) in levels {
            let n = shape.n();
            if op.nrows() != n || op.ncols() != n || diag.len() != n {
                return Err(SparseError::Shape {
                    detail: format!(
                        "multigrid level: operator {}x{} / diagonal {} vs shape {n}",
                        op.nrows(),
                        op.ncols(),
                        diag.len()
                    ),
                });
            }
            if let Some(want) = expected {
                if shape != want {
                    return Err(SparseError::Shape {
                        detail: format!("multigrid level shape {shape:?}, expected {want:?}"),
                    });
                }
            }
            expected = Some(shape.coarsened().ok_or_else(|| SparseError::Shape {
                detail: format!("multigrid level shape {shape:?} cannot coarsen further"),
            })?);
            let mut inv_diag = Vec::with_capacity(n);
            for (i, &d) in diag.iter().enumerate() {
                if d == 0.0 || !d.is_finite() {
                    return Err(SparseError::Singular { column: i });
                }
                inv_diag.push(1.0 / d);
            }
            built.push(MgLevel {
                op,
                shape,
                inv_diag,
                x: vec![0.0; n],
                b: vec![0.0; n],
                r: vec![0.0; n],
            });
        }
        let coarse_shape = expected.expect("levels nonempty");
        let nc = coarse_shape.n();
        if coarse_op.nrows() != nc || coarse_op.ncols() != nc {
            return Err(SparseError::Shape {
                detail: format!(
                    "coarse operator {}x{} vs coarse shape {nc}",
                    coarse_op.nrows(),
                    coarse_op.ncols()
                ),
            });
        }
        // Numeric-only refactorisation through a donated symbolic when it
        // still fits; silently fall back to a fresh pivoting
        // factorisation when it does not (different pattern or degraded
        // pivots) — the preconditioner must never be *wrong*, only
        // occasionally slower to build.
        let (coarse_factors, coarse_symbolic) = match coarse_symbolic {
            Some(sym) if sym.n() == nc => match sym.refactor(coarse_op) {
                Ok(f) => (f, sym),
                Err(SparseError::Singular { column }) => {
                    return Err(SparseError::Singular { column })
                }
                Err(_) => {
                    let (f, s) = lu::factor_with_symbolic(coarse_op, ColumnOrdering::Rcm)?;
                    (f, Arc::new(s))
                }
            },
            _ => {
                let (f, s) = lu::factor_with_symbolic(coarse_op, ColumnOrdering::Rcm)?;
                (f, Arc::new(s))
            }
        };
        Ok(Multigrid {
            levels: built,
            coarse_shape,
            coarse_factors,
            coarse_symbolic,
            coarse_ws: SolveWorkspace::with_dimension(nc),
            coarse_x: vec![0.0; nc],
            coarse_b: vec![0.0; nc],
            options,
            stats: MultigridStats::default(),
        })
    }

    /// Number of smoothed levels (the direct-solved coarsest level not
    /// included).
    pub fn smoothed_levels(&self) -> usize {
        self.levels.len()
    }

    /// Shape of the direct-solved coarsest level.
    pub fn coarse_shape(&self) -> GridShape {
        self.coarse_shape
    }

    /// The symbolic factorisation of the coarsest operator — cache it and
    /// donate it to the next [`Multigrid::new`] on the same `(stack,
    /// grid)` so operating-point refreshes skip the symbolic LU work.
    pub fn coarse_symbolic(&self) -> Arc<SymbolicLu> {
        Arc::clone(&self.coarse_symbolic)
    }

    /// Returns the work counters accumulated since the last call and
    /// resets them to zero.
    pub fn take_stats(&mut self) -> MultigridStats {
        std::mem::take(&mut self.stats)
    }

    /// `sweeps` smoothing passes on level `l`, delegated to the
    /// operator's [`LinearOperator::smooth_pass`] (damped Jacobi
    /// `x += ω·D⁻¹·(b − A·x)` unless the operator overrides it).
    fn smooth(&mut self, l: usize, sweeps: usize) {
        let omega = self.options.damping;
        let lev = &mut self.levels[l];
        for _ in 0..sweeps {
            lev.op
                .smooth_pass(&mut lev.x, &lev.b, &lev.inv_diag, omega, &mut lev.r);
            self.stats.smooth_sweeps += 1;
        }
    }

    /// One V-cycle starting at level `l` (level 0 = finest). Expects
    /// `levels[l].b` set; refines `levels[l].x` in place.
    fn v_cycle(&mut self, l: usize) {
        self.smooth(l, self.options.pre_sweeps);
        // Residual r = b − A·x on this level.
        {
            let lev = &mut self.levels[l];
            lev.op.matvec_into(&lev.x, &mut lev.r);
            for i in 0..lev.r.len() {
                lev.r[i] = lev.b[i] - lev.r[i];
            }
        }
        if l + 1 < self.levels.len() {
            let (fine, rest) = self.levels.split_at_mut(l + 1);
            let fine = &fine[l];
            let next = &mut rest[0];
            restrict(fine.shape, &fine.r, next.shape, &mut next.b);
            next.x.fill(0.0);
            self.v_cycle(l + 1);
            let (fine, rest) = self.levels.split_at_mut(l + 1);
            prolong_add(rest[0].shape, &rest[0].x, fine[l].shape, &mut fine[l].x);
        } else {
            let fine = &self.levels[l];
            restrict(fine.shape, &fine.r, self.coarse_shape, &mut self.coarse_b);
            self.coarse_factors
                .solve_with(&mut self.coarse_ws, &self.coarse_b, &mut self.coarse_x)
                .expect("coarse dimensions validated at construction");
            self.stats.coarse_solves += 1;
            let fine = &mut self.levels[l];
            prolong_add(self.coarse_shape, &self.coarse_x, fine.shape, &mut fine.x);
        }
        self.smooth(l, self.options.post_sweeps);
    }
}

impl<A: LinearOperator> Preconditioner for Multigrid<A> {
    fn n(&self) -> usize {
        self.levels[0].shape.n()
    }

    fn apply_into(&mut self, r: &[f64], z: &mut Vec<f64>) -> Result<(), SparseError> {
        let n = self.n();
        if r.len() != n {
            return Err(SparseError::Shape {
                detail: format!("multigrid apply: vector length {} != {n}", r.len()),
            });
        }
        {
            let fine = &mut self.levels[0];
            fine.b.copy_from_slice(r);
            fine.x.fill(0.0);
        }
        for _ in 0..self.options.cycles {
            self.v_cycle(0);
            self.stats.cycles += 1;
        }
        z.clear();
        z.extend_from_slice(&self.levels[0].x);
        Ok(())
    }
}

/// Aggregation (full-weighting) restriction of an extensive residual:
/// each coarse cell receives the **sum** of its four fine children;
/// trailing lumped nodes are injected.
fn restrict(fine: GridShape, rf: &[f64], coarse: GridShape, rc: &mut [f64]) {
    debug_assert_eq!(Some(coarse), fine.coarsened());
    debug_assert_eq!(rf.len(), fine.n());
    debug_assert_eq!(rc.len(), coarse.n());
    let (fnx, fny) = (fine.nx, fine.ny);
    let (cnx, cny) = (coarse.nx, coarse.ny);
    let f_cells = fnx * fny;
    let c_cells = cnx * cny;
    for z in 0..fine.nz {
        let fz = z * f_cells;
        let cz = z * c_cells;
        for cy in 0..cny {
            let f0 = fz + (2 * cy) * fnx;
            let f1 = fz + (2 * cy + 1) * fnx;
            let c0 = cz + cy * cnx;
            for cx in 0..cnx {
                let fx = 2 * cx;
                rc[c0 + cx] = (rf[f0 + fx] + rf[f0 + fx + 1]) + (rf[f1 + fx] + rf[f1 + fx + 1]);
            }
        }
    }
    for e in 0..fine.extra {
        rc[coarse.cells() + e] = rf[fine.cells() + e];
    }
}

/// Weight pair for cell-centered bilinear interpolation along one axis:
/// fine cell `i` interpolates between coarse cell `i/2` (weight 3/4) and
/// its nearer neighbour (weight 1/4), clamped at the boundary.
fn axis_neighbors(i: usize, cn: usize) -> (usize, usize) {
    let main = i / 2;
    let side = if i.is_multiple_of(2) {
        main.saturating_sub(1)
    } else {
        (main + 1).min(cn - 1)
    };
    (main, side)
}

/// Cell-centered bilinear prolongation, *added* into the fine vector
/// (coarse-grid correction); trailing lumped nodes are injected.
fn prolong_add(coarse: GridShape, xc: &[f64], fine: GridShape, xf: &mut [f64]) {
    debug_assert_eq!(Some(coarse), fine.coarsened());
    debug_assert_eq!(xc.len(), coarse.n());
    debug_assert_eq!(xf.len(), fine.n());
    const W_MAIN: f64 = 0.75;
    const W_SIDE: f64 = 0.25;
    let (fnx, fny) = (fine.nx, fine.ny);
    let (cnx, cny) = (coarse.nx, coarse.ny);
    let f_cells = fnx * fny;
    let c_cells = cnx * cny;
    for z in 0..fine.nz {
        let fz = z * f_cells;
        let cz = z * c_cells;
        for fy in 0..fny {
            let (ym, ys) = axis_neighbors(fy, cny);
            let row_m = cz + ym * cnx;
            let row_s = cz + ys * cnx;
            let frow = fz + fy * fnx;
            for fx in 0..fnx {
                let (xm, xs) = axis_neighbors(fx, cnx);
                let v = W_MAIN * (W_MAIN * xc[row_m + xm] + W_SIDE * xc[row_m + xs])
                    + W_SIDE * (W_MAIN * xc[row_s + xm] + W_SIDE * xc[row_s + xs]);
                xf[frow + fx] += v;
            }
        }
    }
    for e in 0..fine.extra {
        xf[fine.cells() + e] += xc[coarse.cells() + e];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::{bicgstab_into, BicgstabOptions, IterativeWorkspace};
    use crate::triplet::TripletMatrix;

    /// 2D 5-point Poisson-with-sink operator on an nx×ny grid (single
    /// tier, no lumped nodes), plus its shape and diagonal.
    fn poisson(
        nx: usize,
        ny: usize,
        gx: f64,
        gy: f64,
        leak: f64,
    ) -> (CscMatrix, GridShape, Vec<f64>) {
        let n = nx * ny;
        let mut t = TripletMatrix::new(n, n);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    t.stamp_conductance(i, i + 1, gx);
                }
                if y + 1 < ny {
                    t.stamp_conductance(i, i + nx, gy);
                }
                t.push(i, i, leak);
            }
        }
        let a = t.to_csc();
        let shape = GridShape {
            nx,
            ny,
            nz: 1,
            extra: 0,
        };
        let diag = a.diagonal();
        (a, shape, diag)
    }

    /// Two-level hierarchy for a Poisson problem, coarse level
    /// re-discretised with the cell-area scaling the thermal crate uses
    /// (lateral conductances unchanged, leak ×4).
    fn two_level(nx: usize, ny: usize) -> (CscMatrix, Multigrid<CscMatrix>) {
        let (fine, fshape, fdiag) = poisson(nx, ny, 1.3, 0.7, 0.05);
        let (coarse, _, _) = poisson(nx / 2, ny / 2, 1.3, 0.7, 0.2);
        let mg = Multigrid::new(
            vec![(fine.clone(), fshape, fdiag)],
            &coarse,
            None,
            MultigridOptions::default(),
        )
        .unwrap();
        (fine, mg)
    }

    #[test]
    fn restriction_sums_children_and_injects_extras() {
        let fine = GridShape {
            nx: 4,
            ny: 2,
            nz: 1,
            extra: 1,
        };
        let coarse = fine.coarsened().unwrap();
        let rf: Vec<f64> = (1..=9).map(|v| v as f64).collect(); // 8 cells + 1 extra
        let mut rc = vec![0.0; coarse.n()];
        restrict(fine, &rf, coarse, &mut rc);
        // Children of coarse (0,0): fine 1,2,5,6; coarse (1,0): 3,4,7,8.
        assert_eq!(rc, vec![14.0, 22.0, 9.0]);
    }

    #[test]
    fn prolongation_is_exact_for_constants() {
        // Constant coarse corrections must prolongate to the same
        // constant (the boundary-clamped weights sum to one everywhere).
        let fine = GridShape {
            nx: 8,
            ny: 6,
            nz: 2,
            extra: 1,
        };
        let coarse = fine.coarsened().unwrap();
        let xc = vec![3.5; coarse.n()];
        let mut xf = vec![1.0; fine.n()];
        prolong_add(coarse, &xc, fine, &mut xf);
        for &v in &xf {
            assert!((v - 4.5).abs() < 1e-14, "{v}");
        }
    }

    #[test]
    fn apply_is_deterministic_and_allocation_free_once_warm() {
        let (_, mut mg) = two_level(16, 12);
        let n = Preconditioner::n(&mg);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin() + 0.3).collect();
        let mut z1 = Vec::new();
        mg.apply_into(&r, &mut z1).unwrap();
        let mut z2 = Vec::with_capacity(n);
        mg.apply_into(&r, &mut z2).unwrap();
        assert_eq!(z1, z2, "repeat applies must be bit-identical");
        let cap = z2.capacity();
        for _ in 0..5 {
            mg.apply_into(&r, &mut z2).unwrap();
        }
        assert_eq!(z2.capacity(), cap, "warm applies must not reallocate");
        assert_eq!(z1, z2, "state leaks across applies");
        let stats = mg.take_stats();
        assert_eq!(stats.cycles, 7);
        assert_eq!(stats.coarse_solves, 7);
        assert_eq!(stats.smooth_sweeps, 14);
        assert_eq!(mg.take_stats(), MultigridStats::default());
    }

    #[test]
    fn one_v_cycle_contracts_the_error() {
        // The V-cycle must reduce the residual of A·z = r substantially
        // in a single application — the property that makes it a useful
        // preconditioner at all.
        let (a, mut mg) = two_level(32, 32);
        let n = a.nrows();
        let r: Vec<f64> = (0..n).map(|i| ((i * 13 % 29) as f64) * 0.1 + 0.2).collect();
        let mut z = Vec::new();
        mg.apply_into(&r, &mut z).unwrap();
        let az = a.matvec(&z);
        let num: f64 = az
            .iter()
            .zip(&r)
            .map(|(u, v)| (u - v) * (u - v))
            .sum::<f64>()
            .sqrt();
        let den: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(num / den < 0.5, "V-cycle residual ratio {}", num / den);
    }

    #[test]
    fn preconditions_bicgstab_with_flat_iteration_growth() {
        // The headline property: MG-preconditioned BiCGSTAB iteration
        // counts barely grow when the grid is refined 2× per axis.
        let mut iters = Vec::new();
        for s in [16usize, 32, 64] {
            let (a, mut mg) = two_level(s, s);
            let n = a.nrows();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos() + 1.5).collect();
            let mut ws = IterativeWorkspace::new();
            let mut x = vec![0.0; n];
            let summary = bicgstab_into(
                &a,
                &b,
                Some(&mut mg),
                &BicgstabOptions::default(),
                &mut ws,
                &mut x,
            )
            .unwrap();
            assert!(summary.residual < 1e-9);
            iters.push(summary.iterations as f64);
        }
        assert!(
            iters[2] <= 1.5 * iters[0],
            "iterations not resolution-independent: {iters:?}"
        );
    }

    #[test]
    fn shape_and_hierarchy_validation() {
        let (fine, fshape, fdiag) = poisson(8, 8, 1.0, 1.0, 0.1);
        let (coarse, _, _) = poisson(4, 4, 1.0, 1.0, 0.4);
        // Wrong coarse dimension.
        let (too_small, _, _) = poisson(2, 2, 1.0, 1.0, 1.0);
        assert!(matches!(
            Multigrid::new(
                vec![(fine.clone(), fshape, fdiag.clone())],
                &too_small,
                None,
                MultigridOptions::default(),
            ),
            Err(SparseError::Shape { .. })
        ));
        // Odd in-plane dimension cannot coarsen.
        let (odd, odd_shape, odd_diag) = poisson(7, 8, 1.0, 1.0, 0.1);
        assert!(matches!(
            Multigrid::new(
                vec![(odd, odd_shape, odd_diag)],
                &coarse,
                None,
                MultigridOptions::default(),
            ),
            Err(SparseError::Shape { .. })
        ));
        // Zero smoother diagonal is singular.
        let mut bad_diag = fdiag.clone();
        bad_diag[5] = 0.0;
        assert!(matches!(
            Multigrid::new(
                vec![(fine.clone(), fshape, bad_diag)],
                &coarse,
                None,
                MultigridOptions::default(),
            ),
            Err(SparseError::Singular { column: 5 })
        ));
        // Mismatched apply length.
        let mut mg = Multigrid::new(
            vec![(fine, fshape, fdiag)],
            &coarse,
            None,
            MultigridOptions::default(),
        )
        .unwrap();
        let mut z = Vec::new();
        assert!(matches!(
            mg.apply_into(&[1.0; 3], &mut z),
            Err(SparseError::Shape { .. })
        ));
    }

    #[test]
    fn donated_symbolic_is_reused_and_stale_symbolic_falls_back() {
        let (fine, fshape, fdiag) = poisson(8, 8, 1.0, 1.0, 0.1);
        let (coarse, _, _) = poisson(4, 4, 1.0, 1.0, 0.4);
        let mg1 = Multigrid::new(
            vec![(fine.clone(), fshape, fdiag.clone())],
            &coarse,
            None,
            MultigridOptions::default(),
        )
        .unwrap();
        let sym = mg1.coarse_symbolic();
        // Same pattern: the donated symbolic is kept.
        let mg2 = Multigrid::new(
            vec![(fine.clone(), fshape, fdiag.clone())],
            &coarse,
            Some(Arc::clone(&sym)),
            MultigridOptions::default(),
        )
        .unwrap();
        assert!(Arc::ptr_eq(&sym, &mg2.coarse_symbolic()));
        // Wrong-dimension symbolic: silently replaced, same results.
        let (big_fine, big_shape, big_diag) = poisson(16, 16, 1.0, 1.0, 0.1);
        let (big_coarse, _, _) = poisson(8, 8, 1.0, 1.0, 0.4);
        let mg3 = Multigrid::new(
            vec![(big_fine, big_shape, big_diag)],
            &big_coarse,
            Some(sym.clone()),
            MultigridOptions::default(),
        )
        .unwrap();
        assert!(!Arc::ptr_eq(&sym, &mg3.coarse_symbolic()));
    }
}
