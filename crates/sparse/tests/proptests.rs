//! Property-based tests for the sparse substrate: the LU and iterative
//! solvers are checked against the dense oracle on randomly generated,
//! well-conditioned systems with random sparsity.

use cmosaic_sparse::{
    bicgstab, lu, BicgstabOptions, CscMatrix, DenseMatrix, SparseError, TripletMatrix,
};
use proptest::prelude::*;

/// Strategy: a random square, strictly diagonally dominant sparse matrix of
/// size 2..=24 with ~25% fill, plus a random right-hand side.
fn dominant_system() -> impl Strategy<Value = (CscMatrix, Vec<f64>)> {
    (2usize..=24)
        .prop_flat_map(|n| {
            let entries =
                proptest::collection::vec((0..n, 0..n, -1.0f64..1.0), 0..(n * n / 4).max(1));
            let rhs = proptest::collection::vec(-10.0f64..10.0, n..=n);
            (Just(n), entries, rhs)
        })
        .prop_map(|(n, entries, rhs)| {
            let mut t = TripletMatrix::new(n, n);
            let mut row_abs = vec![0.0f64; n];
            for &(r, c, v) in &entries {
                if r != c {
                    t.push(r, c, v);
                    row_abs[r] += v.abs();
                }
            }
            // Strict diagonal dominance guarantees nonsingularity and keeps
            // the condition number moderate.
            for (r, &s) in row_abs.iter().enumerate() {
                t.push(r, r, s + 1.0);
            }
            (t.to_csc(), rhs)
        })
}

/// Strategy: a thermal-like 2D grid operator — a symmetric conduction
/// Laplacian, a one-directional (upwind) advection coupling along +x and a
/// distributed sink to ambient — with random dimensions and coefficient
/// scales, plus a random non-negative power-like right-hand side. This is
/// exactly the diagonally-dominant nonsymmetric structure the thermal
/// model assembles.
fn thermal_like_system() -> impl Strategy<Value = (CscMatrix, Vec<f64>)> {
    (
        2usize..=7,
        2usize..=7,
        0.2f64..4.0,
        0.0f64..2.0,
        0.02f64..0.5,
    )
        .prop_flat_map(|(nx, ny, g, adv, sink)| {
            let n = nx * ny;
            let rhs = proptest::collection::vec(0.0f64..10.0, n..=n);
            (Just((nx, ny, g, adv, sink)), rhs)
        })
        .prop_map(|((nx, ny, g, adv, sink), rhs)| {
            let n = nx * ny;
            let mut t = TripletMatrix::new(n, n);
            for y in 0..ny {
                for x in 0..nx {
                    let i = y * nx + x;
                    if x + 1 < nx {
                        t.stamp_conductance(i, i + 1, g);
                    }
                    if y + 1 < ny {
                        t.stamp_conductance(i, i + nx, 0.7 * g);
                    }
                    // Upwind advection: this cell's balance gains mdot*cp
                    // on the diagonal and couples to the upstream cell
                    // only.
                    if x > 0 {
                        t.push(i, i, adv);
                        t.push(i, i - 1, -adv);
                    }
                    t.push(i, i, sink); // distributed sink to ambient
                }
            }
            (t.to_csc(), rhs)
        })
}

fn dense_oracle(a: &CscMatrix, b: &[f64]) -> Vec<f64> {
    let rows = a.to_dense();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    DenseMatrix::from_rows(&refs).unwrap().solve(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_matches_dense_oracle((a, b) in dominant_system()) {
        let f = lu::factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let oracle = dense_oracle(&a, &b);
        for (u, v) in x.iter().zip(&oracle) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn lu_residual_is_tiny((a, b) in dominant_system()) {
        let f = lu::factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9, "residual {u} vs {v}");
        }
    }

    #[test]
    fn natural_and_rcm_orderings_agree((a, b) in dominant_system()) {
        let x_nat = lu::factor_with_ordering(&a, lu::ColumnOrdering::Natural)
            .unwrap()
            .solve(&b)
            .unwrap();
        let x_rcm = lu::factor_with_ordering(&a, lu::ColumnOrdering::Rcm)
            .unwrap()
            .solve(&b)
            .unwrap();
        for (u, v) in x_nat.iter().zip(&x_rcm) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn bicgstab_agrees_with_lu((a, b) in dominant_system()) {
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        match bicgstab(&a, &b, &BicgstabOptions::default()) {
            Ok(out) => {
                for (u, v) in out.x.iter().zip(&direct) {
                    prop_assert!((u - v).abs() < 1e-5, "{u} vs {v}");
                }
            }
            // Breakdown is a legitimate BiCGSTAB outcome on unlucky
            // systems; the caller falls back to the direct solver.
            Err(cmosaic_sparse::SparseError::Breakdown { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// BiCGSTAB — preconditioned and bare — must agree with the direct LU
    /// on every thermal-like operator. These systems are diagonally
    /// dominant and well conditioned, so breakdown is *not* an acceptable
    /// outcome here (unlike the fully random systems above): both solver
    /// configurations must converge.
    #[test]
    fn bicgstab_cross_validates_lu_on_thermal_like_operators(
        (a, b) in thermal_like_system(),
    ) {
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        for use_ilu0 in [true, false] {
            let opts = BicgstabOptions { use_ilu0, ..Default::default() };
            let out = bicgstab(&a, &b, &opts);
            let out = match out {
                Ok(o) => o,
                Err(e) => return Err(TestCaseError::fail(
                    format!("{} solve failed: {e}", if use_ilu0 { "ILU(0)" } else { "bare" }),
                )),
            };
            prop_assert!(out.residual < 1e-9, "residual {}", out.residual);
            for (u, v) in out.x.iter().zip(&direct) {
                prop_assert!((u - v).abs() < 1e-6 * (1.0 + v.abs()), "{u} vs {v}");
            }
        }
    }

    /// The zero-allocation entry point is bit-identical to the allocating
    /// one on the same thermal-like operators.
    #[test]
    fn bicgstab_into_matches_bicgstab_bitwise((a, b) in thermal_like_system()) {
        use cmosaic_sparse::{bicgstab_into, Ilu0, IterativeWorkspace};
        let opts = BicgstabOptions::default();
        let fresh = bicgstab(&a, &b, &opts).unwrap();
        let mut m = Ilu0::new(&a).unwrap();
        let mut ws = IterativeWorkspace::new();
        let mut x = vec![0.0; a.nrows()];
        let summary = bicgstab_into(&a, &b, Some(&mut m), &opts, &mut ws, &mut x).unwrap();
        prop_assert_eq!(x, fresh.x);
        prop_assert_eq!(summary.iterations, fresh.iterations);
    }

    /// A numeric refactorisation over the frozen pattern must agree with a
    /// fresh pivoting factorisation for any perturbation of the values.
    #[test]
    fn refactor_matches_fresh_factor(
        (a, b) in dominant_system(),
        perturb in proptest::collection::vec(0.2f64..5.0, 64),
    ) {
        let (_, sym) = lu::factor_with_symbolic(&a, lu::ColumnOrdering::Rcm).unwrap();
        // Same pattern, perturbed values (scaling preserves the diagonal
        // dominance that keeps the frozen pivot order stable).
        let vals: Vec<f64> = a
            .values()
            .iter()
            .enumerate()
            .map(|(k, v)| v * perturb[k % perturb.len()])
            .collect();
        let a2 = {
            let mut c = a.clone();
            let ident: Vec<usize> = (0..a.nnz()).collect();
            c.update_values(&ident, &vals);
            c
        };
        let re = lu::LuFactors::refactor(&sym, &a2).unwrap();
        let fresh = lu::factor(&a2).unwrap();
        let x_re = re.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        for (u, v) in x_re.iter().zip(&x_fresh) {
            prop_assert!((u - v).abs() < 1e-10, "{u} vs {v}");
        }
    }

    /// When a frozen pivot degenerates, the refactorisation must refuse
    /// (singular or unstable-pivot) rather than return garbage — and the
    /// fresh-factorisation fallback must recover a valid solve.
    #[test]
    fn refactor_fallback_on_degenerate_pivot(
        (a, b) in dominant_system(),
        column_seed in 0usize..1024,
    ) {
        let (_, sym) = lu::factor_with_symbolic(&a, lu::ColumnOrdering::Rcm).unwrap();
        let n = a.nrows();
        // Crush the diagonal entry of one column to break the frozen
        // pivot. (The first pivot of the sequence is the one guaranteed to
        // notice a vanished diagonal in a dominant system.)
        let col = column_seed % n;
        let mut vals = a.values().to_vec();
        let mut crushed = false;
        for (k, v) in vals.iter_mut().enumerate() {
            let (lo, hi) = (a.col_ptr()[col], a.col_ptr()[col + 1]);
            if (lo..hi).contains(&k) && a.row_idx()[k] == col {
                *v *= 1e-14;
                crushed = true;
            }
        }
        prop_assert!(crushed, "dominant system always has a diagonal");
        let a2 = {
            let mut c = a.clone();
            let ident: Vec<usize> = (0..a.nnz()).collect();
            c.update_values(&ident, &vals);
            c
        };
        // Crushing a diagonal can leave the matrix itself near-singular, so
        // residuals must be judged relative to ‖A‖·‖x‖ — the backward-error
        // criterion a pivoting factorisation actually guarantees.
        let rel_residual = |x: &[f64]| {
            let amax = a2.values().iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let xinf = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let binf = b.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            let scale = (amax * xinf * n as f64).max(binf).max(1.0);
            a2.matvec(x)
                .iter()
                .zip(&b)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0f64, f64::max)
                / scale
        };
        match lu::LuFactors::refactor(&sym, &a2) {
            Ok(re) => {
                // The frozen sequence survived: backward error bounded by
                // the tolerated pivot growth (1e8) times machine epsilon.
                let x = re.solve(&b).unwrap();
                let r = rel_residual(&x);
                prop_assert!(r < 1e-6, "refactor relative residual {r}");
            }
            Err(SparseError::UnstablePivot { .. } | SparseError::Singular { .. }) => {
                // Fallback path: a fresh pivoting factorisation handles the
                // same values with a clean backward error.
                let fresh = lu::factor(&a2).unwrap();
                let x = fresh.solve(&b).unwrap();
                let r = rel_residual(&x);
                prop_assert!(r < 1e-10, "fallback relative residual {r}");
            }
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    /// The triplet→CSC scatter map reproduces `to_csc` for any value
    /// rewrite of the same pattern.
    #[test]
    fn scatter_map_update_matches_fresh_conversion(
        entries in proptest::collection::vec((0usize..12, 0usize..12, -3.0f64..3.0), 1..80),
        scale in -2.0f64..2.0,
    ) {
        let mut t = TripletMatrix::new(12, 12);
        for &(r, c, v) in &entries {
            t.push(r, c, v);
        }
        let (mut csc, map) = t.to_csc_with_map();
        for v in t.values_mut() {
            *v *= scale;
        }
        csc.update_values(&map, t.values());
        prop_assert_eq!(csc, t.to_csc());
    }

    #[test]
    fn matvec_linearity((a, b) in dominant_system()) {
        let two_b: Vec<f64> = b.iter().map(|v| 2.0 * v).collect();
        let y1 = a.matvec(&b);
        let y2 = a.matvec(&two_b);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((2.0 * u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive((a, _b) in dominant_system()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
