//! Property-based tests for the sparse substrate: the LU and iterative
//! solvers are checked against the dense oracle on randomly generated,
//! well-conditioned systems with random sparsity.

use cmosaic_sparse::{bicgstab, lu, BicgstabOptions, CscMatrix, DenseMatrix, TripletMatrix};
use proptest::prelude::*;

/// Strategy: a random square, strictly diagonally dominant sparse matrix of
/// size 2..=24 with ~25% fill, plus a random right-hand side.
fn dominant_system() -> impl Strategy<Value = (CscMatrix, Vec<f64>)> {
    (2usize..=24)
        .prop_flat_map(|n| {
            let entries = proptest::collection::vec(
                (0..n, 0..n, -1.0f64..1.0),
                0..(n * n / 4).max(1),
            );
            let rhs = proptest::collection::vec(-10.0f64..10.0, n..=n);
            (Just(n), entries, rhs)
        })
        .prop_map(|(n, entries, rhs)| {
            let mut t = TripletMatrix::new(n, n);
            let mut row_abs = vec![0.0f64; n];
            for &(r, c, v) in &entries {
                if r != c {
                    t.push(r, c, v);
                    row_abs[r] += v.abs();
                }
            }
            // Strict diagonal dominance guarantees nonsingularity and keeps
            // the condition number moderate.
            for (r, &s) in row_abs.iter().enumerate() {
                t.push(r, r, s + 1.0);
            }
            (t.to_csc(), rhs)
        })
}

fn dense_oracle(a: &CscMatrix, b: &[f64]) -> Vec<f64> {
    let rows = a.to_dense();
    let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    DenseMatrix::from_rows(&refs).unwrap().solve(b).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_matches_dense_oracle((a, b) in dominant_system()) {
        let f = lu::factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let oracle = dense_oracle(&a, &b);
        for (u, v) in x.iter().zip(&oracle) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    #[test]
    fn lu_residual_is_tiny((a, b) in dominant_system()) {
        let f = lu::factor(&a).unwrap();
        let x = f.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (u, v) in ax.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-9, "residual {u} vs {v}");
        }
    }

    #[test]
    fn natural_and_rcm_orderings_agree((a, b) in dominant_system()) {
        let x_nat = lu::factor_with_ordering(&a, lu::ColumnOrdering::Natural)
            .unwrap()
            .solve(&b)
            .unwrap();
        let x_rcm = lu::factor_with_ordering(&a, lu::ColumnOrdering::Rcm)
            .unwrap()
            .solve(&b)
            .unwrap();
        for (u, v) in x_nat.iter().zip(&x_rcm) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn bicgstab_agrees_with_lu((a, b) in dominant_system()) {
        let direct = lu::factor(&a).unwrap().solve(&b).unwrap();
        match bicgstab(&a, &b, &BicgstabOptions::default()) {
            Ok(out) => {
                for (u, v) in out.x.iter().zip(&direct) {
                    prop_assert!((u - v).abs() < 1e-5, "{u} vs {v}");
                }
            }
            // Breakdown is a legitimate BiCGSTAB outcome on unlucky
            // systems; the caller falls back to the direct solver.
            Err(cmosaic_sparse::SparseError::Breakdown { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    #[test]
    fn matvec_linearity((a, b) in dominant_system()) {
        let two_b: Vec<f64> = b.iter().map(|v| 2.0 * v).collect();
        let y1 = a.matvec(&b);
        let y2 = a.matvec(&two_b);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((2.0 * u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive((a, _b) in dominant_system()) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }
}
