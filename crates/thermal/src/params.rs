//! Simulation parameters.

use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::Kelvin;

/// Discretisation of the coolant energy-transport term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvectionScheme {
    /// First-order upwind: the cell's outflow temperature equals the cell
    /// temperature. Unconditionally monotone; the default.
    #[default]
    Upwind,
    /// The 3D-ICE convention: a linear temperature profile inside the cell,
    /// `T_out = 2·T_cell − T_in`, which doubles the advective coupling
    /// coefficient and sharpens outlet-temperature prediction on coarse
    /// grids.
    LinearProfile,
}

/// The coolant circulating through the inter-tier cavities.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Coolant {
    /// Single-phase water (§II): sensible heat removal, flow set at run
    /// time via [`crate::ThermalModel::set_flow_rate`].
    #[default]
    Water,
    /// Two-phase refrigerant (§III): latent heat removal at the local
    /// saturation temperature, with a flux-dependent boiling HTC. The
    /// operating point is fixed at model construction.
    TwoPhase(TwoPhaseCoolant),
}

/// Operating point of a two-phase inter-tier coolant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseCoolant {
    /// Working fluid.
    pub refrigerant: Refrigerant,
    /// Inlet saturation temperature.
    pub inlet_saturation: Kelvin,
    /// Channel mass flux, kg/(m²·s).
    pub mass_flux: f64,
    /// Inlet vapour quality.
    pub inlet_quality: f64,
    /// Dry-out quality bound.
    pub dryout_quality: f64,
}

impl TwoPhaseCoolant {
    /// An R134a operating point at 30 °C saturation — the §III
    /// recommendation for chip-scale stacks (moderate saturation pressure,
    /// dense vapour).
    pub fn r134a_30c(mass_flux: f64) -> Self {
        TwoPhaseCoolant {
            refrigerant: Refrigerant::R134a,
            inlet_saturation: Kelvin::from_celsius(30.0),
            mass_flux,
            inlet_quality: 0.05,
            dryout_quality: 0.65,
        }
    }
}

/// Global parameters of a [`crate::ThermalModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalParams {
    /// Coolant inlet temperature (single-phase stacks). Default 27 °C.
    pub inlet: Kelvin,
    /// Initial temperature of every cell for transient runs. Default
    /// 27 °C; simulations normally overwrite this with a steady-state
    /// solve first (§IV.A "we initialize the simulations with steady state
    /// temperature values").
    pub initial: Kelvin,
    /// Advection discretisation (single-phase only).
    pub advection: AdvectionScheme,
    /// Cavity coolant.
    pub coolant: Coolant,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            inlet: Kelvin::from_celsius(27.0),
            initial: Kelvin::from_celsius(27.0),
            advection: AdvectionScheme::default(),
            coolant: Coolant::Water,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = ThermalParams::default();
        assert!((p.inlet.to_celsius().0 - 27.0).abs() < 1e-12);
        assert_eq!(p.advection, AdvectionScheme::Upwind);
    }
}
