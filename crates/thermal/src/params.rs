//! Simulation parameters.

use cmosaic_materials::refrigerant::Refrigerant;
use cmosaic_materials::units::Kelvin;

/// Discretisation of the coolant energy-transport term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvectionScheme {
    /// First-order upwind: the cell's outflow temperature equals the cell
    /// temperature. Unconditionally monotone; the default.
    #[default]
    Upwind,
    /// The 3D-ICE convention: a linear temperature profile inside the cell,
    /// `T_out = 2·T_cell − T_in`, which doubles the advective coupling
    /// coefficient and sharpens outlet-temperature prediction on coarse
    /// grids.
    LinearProfile,
}

/// Which linear-solver backend serves the model's steady and transient
/// solves.
///
/// The operators are assembled, cached and value-updated identically under
/// either backend; only the solve step differs:
///
/// * [`SolverBackend::DirectLu`] (default) — sparse LU with the
///   symbolic/numeric refactorisation split. Robust, bit-reproducible,
///   and fastest at the paper's grid sizes, but factor fill grows
///   superlinearly with grid resolution.
/// * [`SolverBackend::IterativeIlu0`] — ILU(0)-preconditioned BiCGSTAB.
///   No fill at all (the preconditioner reuses the operator's own
///   pattern), so memory and per-solve cost scale with nnz — the regime
///   that wins on fine grids. If an iterative solve breaks down or fails
///   to converge, the model **falls back to direct LU automatically** for
///   that solve (recorded in
///   [`SolverStats::iterative_fallbacks`](crate::SolverStats::iterative_fallbacks)),
///   so results are always delivered; per backend the results are
///   bit-reproducible across runs and thread counts.
/// * [`SolverBackend::IterativeMg`] — BiCGSTAB preconditioned by a
///   geometric multigrid V-cycle over the **matrix-free**
///   [`StencilOperator`](crate::StencilOperator): the fine level is never
///   assembled, operating-point setup is O(nz) scalar updates instead of
///   an O(nnz) numeric ILU factorisation, and iteration counts stay
///   (near-)resolution-independent as the grid refines. The same
///   automatic direct-LU fallback applies. Unavailable grids (odd
///   in-plane dimensions that cannot coarsen) fall back to direct LU at
///   operator build, counted the same way.
///
/// Two-phase (Dirichlet-fluid) fixed-point sweeps always use the direct
/// solver: their operator is re-factorised each sweep anyway and the
/// frozen-pattern refactorisation is already the cheap path there.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SolverBackend {
    /// Direct sparse LU (Gilbert–Peierls with refactorisation); the
    /// default.
    #[default]
    DirectLu,
    /// ILU(0)-preconditioned BiCGSTAB with automatic direct-LU fallback.
    IterativeIlu0 {
        /// Relative residual tolerance (‖r‖/‖b‖) of the iteration.
        tolerance: f64,
        /// Iteration cap before the solve is declared non-convergent (and
        /// the direct fallback takes over).
        max_iterations: usize,
    },
    /// Matrix-free BiCGSTAB with a geometric-multigrid V-cycle
    /// preconditioner and automatic direct-LU fallback.
    IterativeMg {
        /// Relative residual tolerance (‖r‖/‖b‖) of the iteration.
        tolerance: f64,
        /// Iteration cap before the solve is declared non-convergent (and
        /// the direct fallback takes over).
        max_iterations: usize,
    },
}

impl SolverBackend {
    /// The ILU(0) iterative backend at its default operating point
    /// (tolerance `1e-10`, cap 2000 — tight enough that steady fields
    /// agree with the direct backend to micro-kelvins).
    pub fn iterative() -> Self {
        SolverBackend::IterativeIlu0 {
            tolerance: 1e-10,
            max_iterations: 2000,
        }
    }

    /// The multigrid iterative backend at the same default operating
    /// point as [`SolverBackend::iterative`].
    pub fn multigrid() -> Self {
        SolverBackend::IterativeMg {
            tolerance: 1e-10,
            max_iterations: 2000,
        }
    }

    /// `true` for either BiCGSTAB backend (ILU(0) or multigrid).
    pub fn is_iterative(&self) -> bool {
        matches!(
            self,
            SolverBackend::IterativeIlu0 { .. } | SolverBackend::IterativeMg { .. }
        )
    }

    /// The iterative operating point `(tolerance, max_iterations)`, or
    /// `None` for the direct backend.
    pub fn iteration_limits(&self) -> Option<(f64, usize)> {
        match *self {
            SolverBackend::DirectLu => None,
            SolverBackend::IterativeIlu0 {
                tolerance,
                max_iterations,
            }
            | SolverBackend::IterativeMg {
                tolerance,
                max_iterations,
            } => Some((tolerance, max_iterations)),
        }
    }
}

impl std::fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverBackend::DirectLu => f.write_str("direct-lu"),
            // The operating point is part of the label so two iterative
            // configurations (e.g. a tolerance axis) stay distinguishable
            // in study rows and optimizer reports.
            SolverBackend::IterativeIlu0 {
                tolerance,
                max_iterations,
            } => write!(f, "bicgstab-ilu0(tol {tolerance:e}, cap {max_iterations})"),
            SolverBackend::IterativeMg {
                tolerance,
                max_iterations,
            } => write!(f, "bicgstab-mg(tol {tolerance:e}, cap {max_iterations})"),
        }
    }
}

/// The coolant circulating through the inter-tier cavities.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Coolant {
    /// Single-phase water (§II): sensible heat removal, flow set at run
    /// time via [`crate::ThermalModel::set_flow_rate`].
    #[default]
    Water,
    /// Two-phase refrigerant (§III): latent heat removal at the local
    /// saturation temperature, with a flux-dependent boiling HTC. The
    /// operating point is fixed at model construction.
    TwoPhase(TwoPhaseCoolant),
}

/// Operating point of a two-phase inter-tier coolant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPhaseCoolant {
    /// Working fluid.
    pub refrigerant: Refrigerant,
    /// Inlet saturation temperature.
    pub inlet_saturation: Kelvin,
    /// Channel mass flux, kg/(m²·s).
    pub mass_flux: f64,
    /// Inlet vapour quality.
    pub inlet_quality: f64,
    /// Dry-out quality bound.
    pub dryout_quality: f64,
}

impl TwoPhaseCoolant {
    /// An R134a operating point at 30 °C saturation — the §III
    /// recommendation for chip-scale stacks (moderate saturation pressure,
    /// dense vapour).
    pub fn r134a_30c(mass_flux: f64) -> Self {
        TwoPhaseCoolant {
            refrigerant: Refrigerant::R134a,
            inlet_saturation: Kelvin::from_celsius(30.0),
            mass_flux,
            inlet_quality: 0.05,
            dryout_quality: 0.65,
        }
    }
}

/// Global parameters of a [`crate::ThermalModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalParams {
    /// Coolant inlet temperature (single-phase stacks). Default 27 °C.
    pub inlet: Kelvin,
    /// Initial temperature of every cell for transient runs. Default
    /// 27 °C; simulations normally overwrite this with a steady-state
    /// solve first (§IV.A "we initialize the simulations with steady state
    /// temperature values").
    pub initial: Kelvin,
    /// Advection discretisation (single-phase only).
    pub advection: AdvectionScheme,
    /// Cavity coolant.
    pub coolant: Coolant,
    /// Linear-solver backend for the steady/transient solves.
    pub solver: SolverBackend,
    /// Seed each iterative solve from the model's previous temperature
    /// state instead of a zero initial guess. **Off by default** to
    /// preserve the determinism contract: with the flag off every solve's
    /// Krylov trajectory is a pure function of its own operator and
    /// right-hand side, bit-identical across runs, thread counts and
    /// solve *histories*. Turning it on keeps runs bit-reproducible
    /// (the state sequence itself is deterministic) but makes each
    /// solve's iteration count depend on what was solved before — results
    /// still agree with cold starts to the configured tolerance, not
    /// bitwise. Ignored by the direct backend.
    pub warm_start: bool,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            inlet: Kelvin::from_celsius(27.0),
            initial: Kelvin::from_celsius(27.0),
            advection: AdvectionScheme::default(),
            coolant: Coolant::Water,
            solver: SolverBackend::default(),
            warm_start: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let p = ThermalParams::default();
        assert!((p.inlet.to_celsius().0 - 27.0).abs() < 1e-12);
        assert_eq!(p.advection, AdvectionScheme::Upwind);
        assert_eq!(p.solver, SolverBackend::DirectLu);
        assert!(!p.warm_start, "warm starts are opt-in (determinism)");
    }

    #[test]
    fn solver_backend_helpers() {
        assert!(!SolverBackend::DirectLu.is_iterative());
        let it = SolverBackend::iterative();
        assert!(it.is_iterative());
        assert_eq!(it.to_string(), "bicgstab-ilu0(tol 1e-10, cap 2000)");
        assert_eq!(SolverBackend::DirectLu.to_string(), "direct-lu");
        // Distinct operating points get distinct labels.
        let loose = SolverBackend::IterativeIlu0 {
            tolerance: 1e-6,
            max_iterations: 500,
        };
        assert_eq!(loose.to_string(), "bicgstab-ilu0(tol 1e-6, cap 500)");
        assert_ne!(loose.to_string(), it.to_string());
        // The multigrid backend mirrors the ILU(0) helper surface.
        let mg = SolverBackend::multigrid();
        assert!(mg.is_iterative());
        assert_eq!(mg.to_string(), "bicgstab-mg(tol 1e-10, cap 2000)");
        assert_ne!(mg, it);
        assert_eq!(mg.iteration_limits(), Some((1e-10, 2000)));
        assert_eq!(it.iteration_limits(), Some((1e-10, 2000)));
        assert_eq!(SolverBackend::DirectLu.iteration_limits(), None);
    }
}
