//! Temperature fields returned by the model.

use cmosaic_floorplan::{Floorplan, GridSpec};
use cmosaic_materials::units::Kelvin;

/// A snapshot of every cell temperature in the stack (plus the sink node
/// for air-cooled stacks).
#[derive(Debug, Clone, PartialEq)]
pub struct TemperatureField {
    nx: usize,
    ny: usize,
    n_layers: usize,
    /// Source-layer index per tier.
    source_layers: Vec<usize>,
    /// Footprint width/height (m) for element queries.
    width: f64,
    height: f64,
    /// Cell temperatures in kelvin, layer-major; an optional trailing sink
    /// entry.
    data: Vec<f64>,
    has_sink: bool,
}

impl TemperatureField {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        nx: usize,
        ny: usize,
        n_layers: usize,
        source_layers: Vec<usize>,
        width: f64,
        height: f64,
        data: Vec<f64>,
        has_sink: bool,
    ) -> Self {
        debug_assert_eq!(data.len(), nx * ny * n_layers + usize::from(has_sink));
        TemperatureField {
            nx,
            ny,
            n_layers,
            source_layers,
            width,
            height,
            data,
            has_sink,
        }
    }

    /// Overwrites every component in place, reusing the existing buffers
    /// so a warm caller-owned field is updated with zero heap allocation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn overwrite(
        &mut self,
        nx: usize,
        ny: usize,
        n_layers: usize,
        source_layers: &[usize],
        width: f64,
        height: f64,
        data: &[f64],
        has_sink: bool,
    ) {
        debug_assert_eq!(data.len(), nx * ny * n_layers + usize::from(has_sink));
        self.nx = nx;
        self.ny = ny;
        self.n_layers = n_layers;
        self.source_layers.clear();
        self.source_layers.extend_from_slice(source_layers);
        self.width = width;
        self.height = height;
        self.data.clear();
        self.data.extend_from_slice(data);
        self.has_sink = has_sink;
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Raw cell data (kelvin), layer-major, excluding the sink node.
    pub fn cells(&self) -> &[f64] {
        &self.data[..self.nx * self.ny * self.n_layers]
    }

    /// All cell temperatures of one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer >= n_layers`.
    pub fn layer(&self, layer: usize) -> &[f64] {
        assert!(layer < self.n_layers, "layer {layer} out of range");
        let n = self.nx * self.ny;
        &self.data[layer * n..(layer + 1) * n]
    }

    /// The source-layer temperatures of tier `tier` — where the junctions
    /// live, i.e. what a thermal sensor reads.
    ///
    /// # Panics
    ///
    /// Panics if the tier does not exist.
    pub fn tier(&self, tier: usize) -> &[f64] {
        let layer = self.source_layers[tier];
        self.layer(layer)
    }

    /// Number of tiers.
    pub fn n_tiers(&self) -> usize {
        self.source_layers.len()
    }

    /// Hottest cell anywhere in the stack.
    pub fn max(&self) -> Kelvin {
        Kelvin(
            self.cells()
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Coolest cell anywhere in the stack.
    pub fn min(&self) -> Kelvin {
        Kelvin(self.cells().iter().copied().fold(f64::INFINITY, f64::min))
    }

    /// Hottest cell of one tier's source layer.
    ///
    /// # Panics
    ///
    /// Panics if the tier does not exist.
    pub fn tier_max(&self, tier: usize) -> Kelvin {
        Kelvin(
            self.tier(tier)
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Mean temperature of one tier's source layer — the per-epoch tier
    /// summary observers record without walking the raw cells.
    ///
    /// # Panics
    ///
    /// Panics if the tier does not exist.
    pub fn tier_mean(&self, tier: usize) -> Kelvin {
        let cells = self.tier(tier);
        Kelvin(cells.iter().sum::<f64>() / cells.len() as f64)
    }

    /// Number of cells of one tier's source layer strictly above
    /// `threshold` — the spatial extent of a hot spot, as opposed to the
    /// temporal residency the run metrics track.
    ///
    /// # Panics
    ///
    /// Panics if the tier does not exist.
    pub fn tier_cells_above(&self, tier: usize, threshold: Kelvin) -> usize {
        self.tier(tier).iter().filter(|&&t| t > threshold.0).count()
    }

    /// Overwrites one cell temperature (layer-major index, excluding the
    /// sink node). The hook fault-injection harnesses use to poison a
    /// field with NaN and exercise divergence guards.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn set_cell(&mut self, cell: usize, value: Kelvin) {
        let n = self.nx * self.ny * self.n_layers;
        assert!(cell < n, "cell {cell} out of range ({n} cells)");
        self.data[cell] = value.0;
    }

    /// First cell whose temperature is non-finite or outside the
    /// `(lo, hi)` physical band, as `(cell index, value)` — the cheap
    /// O(cells) divergence guard the co-simulation loop runs once per
    /// control interval. `None` means every cell is finite and plausible.
    ///
    /// The scan is layer-major over [`TemperatureField::cells`] (the sink
    /// node is excluded: it is bounded by the ambient model by
    /// construction), so the reported cell index is deterministic — the
    /// lowest offending index — regardless of how the field was produced.
    pub fn first_non_physical(&self, lo: Kelvin, hi: Kelvin) -> Option<(usize, f64)> {
        self.cells()
            .iter()
            .copied()
            .enumerate()
            .find(|&(_, t)| !t.is_finite() || t < lo.0 || t > hi.0)
    }

    /// Sink-node temperature, for air-cooled stacks.
    pub fn sink(&self) -> Option<Kelvin> {
        self.has_sink
            .then(|| Kelvin(*self.data.last().expect("non-empty")))
    }

    /// Area-averaged temperature of one floorplan element on a tier.
    ///
    /// # Panics
    ///
    /// Panics if tier/element are out of range or `grid` does not match
    /// this field's dimensions.
    pub fn element_average(
        &self,
        grid: &GridSpec,
        plan: &Floorplan,
        tier: usize,
        element: usize,
    ) -> Kelvin {
        assert_eq!((grid.nx(), grid.ny()), (self.nx, self.ny));
        Kelvin(grid.element_average(plan, element, self.tier(tier), self.width, self.height))
    }

    /// Hottest cell under one floorplan element on a tier.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TemperatureField::element_average`].
    pub fn element_max(
        &self,
        grid: &GridSpec,
        plan: &Floorplan,
        tier: usize,
        element: usize,
    ) -> Kelvin {
        assert_eq!((grid.nx(), grid.ny()), (self.nx, self.ny));
        Kelvin(grid.element_max(plan, element, self.tier(tier), self.width, self.height))
    }

    /// Raw node data including the trailing sink entry, kelvin.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Renders one tier's junction temperatures as an ASCII heat map
    /// (one character per cell, ` .:-=+*#%@` from coolest to hottest over
    /// the tier's own range), one row per grid line, hottest rows printed
    /// last (y grows downwards). Intended for examples and debugging.
    ///
    /// # Panics
    ///
    /// Panics if the tier does not exist.
    pub fn render_tier(&self, tier: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let cells = self.tier(tier);
        let lo = cells.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = cells.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (hi - lo).max(1e-9);
        let mut out = String::with_capacity((self.nx + 1) * self.ny + 64);
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                let t = cells[iy * self.nx + ix];
                let idx = (((t - lo) / span) * (RAMP.len() - 1) as f64).round() as usize;
                out.push(RAMP[idx.min(RAMP.len() - 1)] as char);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "min {:.1} °C  max {:.1} °C\n",
            lo - 273.15,
            hi - 273.15
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> TemperatureField {
        // 2x2 grid, 2 layers (layer 0 is tier 0's source), plus sink.
        TemperatureField::new(
            2,
            2,
            2,
            vec![0],
            1.0,
            1.0,
            vec![
                300.0, 301.0, 302.0, 303.0, 310.0, 311.0, 312.0, 313.0, 320.0,
            ],
            true,
        )
    }

    #[test]
    fn accessors() {
        let f = field();
        assert_eq!(f.n_layers(), 2);
        assert_eq!(f.layer(0), &[300.0, 301.0, 302.0, 303.0]);
        assert_eq!(f.tier(0), f.layer(0));
        assert_eq!(f.max().0, 313.0);
        assert_eq!(f.min().0, 300.0);
        assert_eq!(f.tier_max(0).0, 303.0);
        assert_eq!(f.sink().unwrap().0, 320.0);
        assert_eq!(f.n_tiers(), 1);
    }

    #[test]
    fn tier_summaries() {
        let f = field();
        assert!((f.tier_mean(0).0 - 301.5).abs() < 1e-12);
        assert_eq!(f.tier_cells_above(0, Kelvin(301.0)), 2);
        assert_eq!(f.tier_cells_above(0, Kelvin(400.0)), 0);
    }

    #[test]
    fn non_physical_cells_are_flagged_by_lowest_index() {
        let lo = Kelvin(200.0);
        let hi = Kelvin(1000.0);
        let f = field();
        assert_eq!(f.first_non_physical(lo, hi), None);
        let mut data = vec![
            300.0, 301.0, 302.0, 303.0, 310.0, 311.0, 312.0, 313.0, 320.0,
        ];
        data[5] = f64::NAN;
        data[7] = 1e6;
        let bad = TemperatureField::new(2, 2, 2, vec![0], 1.0, 1.0, data, true);
        let (cell, value) = bad.first_non_physical(lo, hi).expect("flagged");
        assert_eq!(cell, 5, "lowest offending cell wins");
        assert!(value.is_nan());
        // The sink node is outside the scan.
        let sink_hot = TemperatureField::new(1, 1, 1, vec![0], 1.0, 1.0, vec![300.0, 1e9], true);
        assert_eq!(sink_hot.first_non_physical(lo, hi), None);
    }

    #[test]
    fn sink_absent_when_liquid_cooled() {
        let f = TemperatureField::new(1, 1, 1, vec![0], 1.0, 1.0, vec![300.0], false);
        assert!(f.sink().is_none());
        assert_eq!(f.max().0, 300.0);
    }

    #[test]
    fn render_produces_one_row_per_grid_line() {
        let f = field();
        let art = f.render_tier(0);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3, "2 rows + legend");
        assert_eq!(lines[0].len(), 2);
        // The hottest cell uses the hottest glyph.
        assert!(lines[1].contains('@'));
        assert!(art.contains("max"));
    }
}
