//! Matrix-free stencil form of the compact thermal operator.
//!
//! A [`StencilOperator`] stores the RC-network operator of one operating
//! point as a handful of per-layer scalars (lateral conductances,
//! advection coefficient, capacitance-over-Δt diagonal shift), per
//! interface couplings, cavity wall-skip conductances and an optional
//! lumped heat-sink node — O(nz) numbers instead of O(n·nnz/row) assembled
//! storage — and applies `y = A·x` directly from the grid geometry.
//!
//! # Bit-identity contract
//!
//! [`StencilOperator::matvec_into`] and the assembled form returned by
//! [`StencilOperator::assemble`] produce **bit-identical** products: both
//! walk the same column-major, row-ascending entry emission (one shared
//! code path generates the entries), and the assembled CSC preserves that
//! emission order verbatim, so `CscMatrix::matvec_into` replays the exact
//! floating-point accumulation sequence of the stencil apply. This is the
//! [`LinearOperator`] interchangeability contract the iterative solvers
//! rely on when a solve mixes representations (e.g. a matrix-free fine
//! level over an assembled direct-LU fallback).
//!
//! A coefficient that is exactly `0.0` is *structurally absent*: neither
//! the matvec nor the assembled matrix emits it, using the same predicate,
//! so the two forms always agree on sparsity as well as on bits.
//!
//! # Layer taxonomy
//!
//! * [`StencilLayerKind::Solid`] — lateral x/y conduction, vertical
//!   coupling through the interfaces, no advection.
//! * [`StencilLayerKind::Cavity`] — a liquid micro-channel layer: upwind
//!   advection along +x (each cell couples to its upstream neighbour
//!   only — the structurally *nonsymmetric* part of the operator),
//!   vertical convective coupling through the interfaces, no lateral
//!   conduction.
//! * [`StencilLayerKind::DirichletCavity`] — a two-phase cavity pinned at
//!   saturation temperature: its rows are exact identity rows (`T = T_sat`
//!   moves to the right-hand side), while neighbouring solid rows still
//!   couple *into* the cavity column through one-sided interface
//!   conductances.
//!
//! # Coarsening
//!
//! [`StencilOperator::coarsen`] re-discretises the same physics on the
//! 2×-coarser in-plane grid ([`GridShape::coarsened`]), the exact-physics
//! hierarchy builder for the geometric multigrid preconditioner: lateral
//! conductances are invariant under uniform 2× in-plane coarsening
//! (`k·(2Δy)·t/(2Δx) = k·Δy·t/Δx`), area-proportional couplings
//! (interfaces, wall skips, per-cell capacitance, sink spreading) scale
//! ×4, the advection coefficient (∝ channel count × Δy) scales ×2, and
//! the lumped sink node passes through unchanged.

use cmosaic_sparse::{CscMatrix, GridShape, LinearOperator};

/// Physical role of one layer of a [`StencilOperator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StencilLayerKind {
    /// Conducting solid: lateral + vertical conduction, no advection.
    Solid,
    /// Single-phase coolant cavity: upwind advection along +x plus
    /// vertical convective coupling; no lateral conduction.
    Cavity,
    /// Two-phase cavity pinned at saturation temperature: identity rows,
    /// with one-sided couplings from the neighbouring solid rows.
    DirichletCavity,
}

/// Per-layer stencil coefficients (all conductances in W/K).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilLayer {
    /// What the layer is; constrains which coefficients may be nonzero
    /// (see [`StencilOperator::new`]).
    pub kind: StencilLayerKind,
    /// Lateral conductance between x-neighbours.
    pub gx: f64,
    /// Lateral conductance between y-neighbours.
    pub gy: f64,
    /// Upwind advection coefficient: `+adv` on the diagonal, `-adv` to
    /// the upstream (x−1) neighbour; inlet cells carry the upstream term
    /// on the right-hand side instead.
    pub adv: f64,
    /// Extra diagonal term per cell — the backward-Euler `C/Δt` shift
    /// (zero for steady-state operators).
    pub diag_extra: f64,
}

/// Vertical coupling across one interface, between layers `z` and `z+1`.
///
/// Stored one-sided so Dirichlet cavities fall out naturally: the matrix
/// entry `a[z+1·plane, z·plane] = -lower` (how strongly the *upper* row
/// couples down into the lower column) and `a[z·plane, z+1·plane] =
/// -upper`. Symmetric conduction/convection sets `lower == upper`; a
/// Dirichlet cavity zeroes the component pointing *out of* its own row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilInterface {
    /// Conductance carried by the upper layer's row toward the lower
    /// layer (column-`z` entry).
    pub lower: f64,
    /// Conductance carried by the lower layer's row toward the upper
    /// layer (column-`z+1` entry).
    pub upper: f64,
}

impl StencilInterface {
    /// A symmetric interface coupling of conductance `g`.
    pub fn symmetric(g: f64) -> Self {
        StencilInterface { lower: g, upper: g }
    }
}

/// The lumped heat-sink node terminating the stack (always the last
/// unknown).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StencilSink {
    /// Spreading conductance from each top-layer cell to the sink node.
    pub g_top: f64,
    /// Sink-to-ambient conductance (its ambient product lives in the
    /// model's right-hand side, not in the operator).
    pub lumped: f64,
    /// Sink `C/Δt` diagonal shift for transient operators.
    pub diag_extra: f64,
}

/// Matrix-free structured-grid thermal operator; see the
/// [module docs](self) for the representation, the bit-identity contract
/// with [`StencilOperator::assemble`], and the coarsening rules.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilOperator {
    shape: GridShape,
    layers: Vec<StencilLayer>,
    interfaces: Vec<StencilInterface>,
    walls: Vec<f64>,
    sink: Option<StencilSink>,
    /// Precomputed diagonal (length `shape.n()`), shared verbatim by
    /// `matvec_into` and `assemble` so the two forms cannot disagree on
    /// the one entry built from many terms.
    diag: Vec<f64>,
}

impl StencilOperator {
    /// Builds the operator and precomputes its diagonal.
    ///
    /// `walls[z]` is the conduction skip *through the walls of cavity
    /// `z`*, coupling layers `z-1` and `z+1` directly; boundary entries
    /// (`walls[0]`, `walls[nz-1]`) must be zero since they have no pair
    /// of neighbours to couple.
    ///
    /// # Panics
    ///
    /// Panics when the inputs are inconsistent (programmer error — the
    /// thermal model constructs these from validated geometry):
    /// `layers`/`interfaces`/`walls` lengths not `nz`/`nz-1`/`nz`,
    /// `shape.extra` disagreeing with `sink.is_some()`, a non-finite or
    /// negative coefficient, a nonzero boundary wall entry, or a
    /// coefficient forbidden by the layer kind ([`Solid`] with advection,
    /// [`Cavity`] with lateral conduction, [`DirichletCavity`] with any
    /// nonzero coefficient).
    ///
    /// [`Solid`]: StencilLayerKind::Solid
    /// [`Cavity`]: StencilLayerKind::Cavity
    /// [`DirichletCavity`]: StencilLayerKind::DirichletCavity
    pub fn new(
        shape: GridShape,
        layers: Vec<StencilLayer>,
        interfaces: Vec<StencilInterface>,
        walls: Vec<f64>,
        sink: Option<StencilSink>,
    ) -> Self {
        let nz = shape.nz;
        assert!(nz >= 1 && shape.nx >= 1 && shape.ny >= 1, "empty grid");
        assert_eq!(layers.len(), nz, "one StencilLayer per tier");
        assert_eq!(
            interfaces.len(),
            nz - 1,
            "one StencilInterface per adjacent layer pair"
        );
        assert_eq!(walls.len(), nz, "one wall-skip conductance per tier");
        assert_eq!(
            shape.extra,
            usize::from(sink.is_some()),
            "shape.extra must count exactly the sink node"
        );
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        for (z, l) in layers.iter().enumerate() {
            assert!(
                ok(l.gx) && ok(l.gy) && ok(l.adv) && ok(l.diag_extra),
                "layer {z}: non-finite or negative coefficient"
            );
            match l.kind {
                StencilLayerKind::Solid => {
                    assert!(l.adv == 0.0, "layer {z}: solid layers do not advect")
                }
                StencilLayerKind::Cavity => assert!(
                    l.gx == 0.0 && l.gy == 0.0,
                    "layer {z}: cavities have no lateral conduction"
                ),
                StencilLayerKind::DirichletCavity => assert!(
                    l.gx == 0.0 && l.gy == 0.0 && l.adv == 0.0 && l.diag_extra == 0.0,
                    "layer {z}: Dirichlet rows are identity rows"
                ),
            }
        }
        for (z, i) in interfaces.iter().enumerate() {
            assert!(
                ok(i.lower) && ok(i.upper),
                "interface {z}: non-finite or negative coupling"
            );
        }
        for (z, &w) in walls.iter().enumerate() {
            assert!(ok(w), "wall {z}: non-finite or negative conductance");
            assert!(
                w == 0.0 || (z >= 1 && z + 1 < nz),
                "wall {z}: boundary layers have no pair of neighbours to skip-couple"
            );
        }
        if let Some(s) = &sink {
            assert!(
                ok(s.g_top) && ok(s.lumped) && ok(s.diag_extra),
                "sink: non-finite or negative coefficient"
            );
        }

        let mut op = StencilOperator {
            shape,
            layers,
            interfaces,
            walls,
            sink,
            diag: vec![0.0; shape.n()],
        };
        op.compute_diagonal();
        op
    }

    /// Rebuilds `self.diag` from the current coefficients.
    fn compute_diagonal(&mut self) {
        let GridShape { nx, ny, nz, .. } = self.shape;
        let mut c = 0usize;
        for (z, layer) in self.layers.iter().enumerate() {
            for iy in 0..ny {
                for ix in 0..nx {
                    self.diag[c] = if layer.kind == StencilLayerKind::DirichletCavity {
                        1.0
                    } else {
                        let x_nb = u32::from(ix > 0) + u32::from(ix + 1 < nx);
                        let y_nb = u32::from(iy > 0) + u32::from(iy + 1 < ny);
                        let mut d = layer.diag_extra
                            + layer.adv
                            + layer.gx * f64::from(x_nb)
                            + layer.gy * f64::from(y_nb);
                        if z >= 1 {
                            d += self.interfaces[z - 1].lower;
                        }
                        if z + 1 < nz {
                            d += self.interfaces[z].upper;
                        }
                        if z >= 2 {
                            d += self.walls[z - 1];
                        }
                        if z + 2 < nz {
                            d += self.walls[z + 1];
                        }
                        if z + 1 == nz {
                            if let Some(s) = &self.sink {
                                d += s.g_top;
                            }
                        }
                        d
                    };
                    c += 1;
                }
            }
        }
        if let Some(s) = &self.sink {
            self.diag[c] = s.lumped + s.diag_extra + (nx * ny) as f64 * s.g_top;
        }
    }

    /// The structured-grid shape this operator lives on.
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// The precomputed main diagonal (length `shape.n()`) — what the
    /// multigrid Jacobi smoother consumes.
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// Per-layer coefficients, bottom tier first.
    pub fn layers(&self) -> &[StencilLayer] {
        &self.layers
    }

    /// Per-interface vertical couplings (`nz - 1` entries).
    pub fn interfaces(&self) -> &[StencilInterface] {
        &self.interfaces
    }

    /// Cavity wall-skip conductances (`nz` entries, boundaries zero).
    pub fn walls(&self) -> &[f64] {
        &self.walls
    }

    /// The lumped sink node, when present.
    pub fn sink(&self) -> Option<&StencilSink> {
        self.sink.as_ref()
    }

    /// Emits the stored entries of cell column `c = (z, iy, ix)` in
    /// ascending row order — the single code path behind both
    /// [`Self::matvec_into`] and [`Self::assemble`], which is what makes
    /// them bit-identical. Zero coefficients are structurally absent.
    #[inline]
    fn cell_column(
        &self,
        z: usize,
        iy: usize,
        ix: usize,
        c: usize,
        emit: &mut impl FnMut(usize, f64),
    ) {
        let GridShape { nx, ny, nz, .. } = self.shape;
        let nxy = nx * ny;
        let layer = &self.layers[z];
        if z >= 2 {
            let w = self.walls[z - 1];
            if w != 0.0 {
                emit(c - 2 * nxy, -w);
            }
        }
        if z >= 1 {
            let g = self.interfaces[z - 1].upper;
            if g != 0.0 {
                emit(c - nxy, -g);
            }
        }
        if iy > 0 && layer.gy != 0.0 {
            emit(c - nx, -layer.gy);
        }
        if ix > 0 && layer.gx != 0.0 {
            emit(c - 1, -layer.gx);
        }
        emit(c, self.diag[c]);
        if ix + 1 < nx {
            // At most one of gx/adv is nonzero (enforced per kind), so
            // this is the lateral conduction entry on solid layers and
            // the downstream upwind entry on cavity layers.
            let g = layer.gx + layer.adv;
            if g != 0.0 {
                emit(c + 1, -g);
            }
        }
        if iy + 1 < ny && layer.gy != 0.0 {
            emit(c + nx, -layer.gy);
        }
        if z + 1 < nz {
            let g = self.interfaces[z].lower;
            if g != 0.0 {
                emit(c + nxy, -g);
            }
        }
        if z + 2 < nz {
            let w = self.walls[z + 1];
            if w != 0.0 {
                emit(c + 2 * nxy, -w);
            }
        }
        if z + 1 == nz {
            if let Some(s) = &self.sink {
                if s.g_top != 0.0 {
                    emit(self.shape.cells(), -s.g_top);
                }
            }
        }
    }

    /// Emits the sink column (the last column) in ascending row order:
    /// every top-layer cell row, then the sink diagonal.
    #[inline]
    fn sink_column(&self, s: &StencilSink, emit: &mut impl FnMut(usize, f64)) {
        let cells = self.shape.cells();
        let nxy = self.shape.nx * self.shape.ny;
        if s.g_top != 0.0 {
            for r in (cells - nxy)..cells {
                emit(r, -s.g_top);
            }
        }
        emit(cells, self.diag[cells]);
    }

    /// `y = A·x`, fully overwriting `y`, with zero heap allocation —
    /// bit-identical to `assemble().matvec_into(x, y)` (see the
    /// [module docs](self)).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` differs from `shape.n()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        let n = self.shape.n();
        assert_eq!(x.len(), n, "matvec_into: x dimension mismatch");
        assert_eq!(y.len(), n, "matvec_into: y dimension mismatch");
        y.fill(0.0);
        let GridShape { nx, ny, nz, .. } = self.shape;
        let mut c = 0usize;
        for z in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let xc = x[c];
                    // Mirrors CscMatrix::matvec_into's `xc == 0.0` column
                    // skip (NaN columns are processed by both).
                    if xc != 0.0 {
                        self.cell_column(z, iy, ix, c, &mut |r, v| y[r] += v * xc);
                    }
                    c += 1;
                }
            }
        }
        if let Some(s) = &self.sink {
            let xc = x[c];
            if xc != 0.0 {
                self.sink_column(s, &mut |r, v| y[r] += v * xc);
            }
        }
    }

    /// Assembles the operator into CSC form, preserving the stencil's
    /// column-major, row-ascending emission order entry for entry — the
    /// result's `matvec_into` is bit-identical to [`Self::matvec_into`],
    /// and its pattern is the exact structural sparsity (no explicit
    /// zeros).
    pub fn assemble(&self) -> CscMatrix {
        let GridShape { nx, ny, nz, .. } = self.shape;
        let n = self.shape.n();
        let mut rows: Vec<usize> = Vec::new();
        let mut cols: Vec<usize> = Vec::new();
        let mut vals: Vec<f64> = Vec::new();
        let mut c = 0usize;
        for z in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    self.cell_column(z, iy, ix, c, &mut |r, v| {
                        rows.push(r);
                        cols.push(c);
                        vals.push(v);
                    });
                    c += 1;
                }
            }
        }
        if let Some(s) = &self.sink {
            self.sink_column(s, &mut |r, v| {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            });
        }
        CscMatrix::from_triplets(n, n, &rows, &cols, &vals)
    }

    /// Re-discretises the operator on the 2×-coarser in-plane grid, or
    /// `None` when the shape cannot coarsen ([`GridShape::coarsened`]).
    /// See the [module docs](self) for the scaling rules.
    pub fn coarsen(&self) -> Option<StencilOperator> {
        let shape = self.shape.coarsened()?;
        let layers = self
            .layers
            .iter()
            .map(|l| StencilLayer {
                kind: l.kind,
                gx: l.gx,
                gy: l.gy,
                adv: 2.0 * l.adv,
                diag_extra: 4.0 * l.diag_extra,
            })
            .collect();
        let interfaces = self
            .interfaces
            .iter()
            .map(|i| StencilInterface {
                lower: 4.0 * i.lower,
                upper: 4.0 * i.upper,
            })
            .collect();
        let walls = self.walls.iter().map(|&w| 4.0 * w).collect();
        let sink = self.sink.map(|s| StencilSink {
            g_top: 4.0 * s.g_top,
            lumped: s.lumped,
            diag_extra: s.diag_extra,
        });
        Some(StencilOperator::new(shape, layers, interfaces, walls, sink))
    }
}

impl LinearOperator for StencilOperator {
    fn nrows(&self) -> usize {
        self.shape.n()
    }

    fn ncols(&self) -> usize {
        self.shape.n()
    }

    fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        StencilOperator::matvec_into(self, x, y);
    }

    /// Maximum absolute value over the *emitted* entries — bit-identical
    /// to `LinearOperator::max_abs` of [`Self::assemble`]'s result: the
    /// diagonal array plus each structurally present coefficient class
    /// (lateral/advective terms exist only when the grid spans more than
    /// one cell along the axis; boundary walls are zero by construction).
    fn max_abs(&self) -> f64 {
        let mut m = self.diag.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for layer in &self.layers {
            if self.shape.nx > 1 {
                m = m.max(layer.gx.abs()).max(layer.adv.abs());
            }
            if self.shape.ny > 1 {
                m = m.max(layer.gy.abs());
            }
        }
        for i in &self.interfaces {
            m = m.max(i.lower.abs()).max(i.upper.abs());
        }
        for &w in &self.walls {
            m = m.max(w.abs());
        }
        if let Some(s) = &self.sink {
            m = m.max(s.g_top.abs());
        }
        m
    }

    /// Damped Jacobi (the trait default) followed by one downstream
    /// Gauss–Seidel substitution along each advecting cavity channel, in
    /// ascending-x order so the substitution solves the upwind advection
    /// chain *exactly* given the current vertical neighbours. Point
    /// Jacobi alone moves advective error only one cell upstream per
    /// sweep, making V-cycle convergence degrade ∝ nx on liquid-cooled
    /// stacks; the flow-ordered pass restores resolution-independent
    /// smoothing while remaining a deterministic, allocation-free linear
    /// function of `(x, b)` (fixed traversal order, no branches on
    /// values).
    fn smooth_pass(
        &self,
        x: &mut [f64],
        b: &[f64],
        inv_diag: &[f64],
        omega: f64,
        scratch: &mut [f64],
    ) {
        self.matvec_into(x, scratch);
        for i in 0..x.len() {
            x[i] += omega * inv_diag[i] * (b[i] - scratch[i]);
        }
        let GridShape { nx, ny, nz, .. } = self.shape;
        let nxy = nx * ny;
        for (z, layer) in self.layers.iter().enumerate() {
            // Only Cavity layers carry advection (enforced in `new`);
            // Dirichlet rows are identity rows the Jacobi pass already
            // solved exactly.
            if layer.adv == 0.0 {
                continue;
            }
            for iy in 0..ny {
                for ix in 0..nx {
                    let c = z * nxy + iy * nx + ix;
                    // Full row substitution: x[c] = (b[c] − Σ_offdiag)/diag.
                    // Cavity rows have no lateral conduction, so the
                    // off-diagonals are the upstream advective neighbour
                    // (already updated this sweep — the Gauss–Seidel
                    // part), the vertical couplings, any wall skips and
                    // the sink spreading term.
                    let mut s = b[c];
                    if ix > 0 {
                        s += layer.adv * x[c - 1];
                    }
                    if z >= 2 {
                        let w = self.walls[z - 1];
                        if w != 0.0 {
                            s += w * x[c - 2 * nxy];
                        }
                    }
                    if z >= 1 {
                        s += self.interfaces[z - 1].lower * x[c - nxy];
                    }
                    if z + 1 < nz {
                        s += self.interfaces[z].upper * x[c + nxy];
                    }
                    if z + 2 < nz {
                        let w = self.walls[z + 1];
                        if w != 0.0 {
                            s += w * x[c + 2 * nxy];
                        }
                    }
                    if z + 1 == nz {
                        if let Some(sk) = &self.sink {
                            s += sk.g_top * x[self.shape.cells()];
                        }
                    }
                    x[c] = s * inv_diag[c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG over (-1, 1) — the crate has no dev-dependency
    /// on a property-testing framework, so randomized coverage is seeded
    /// and reproducible by construction.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let unit = (*state >> 11) as f64 / (1u64 << 53) as f64;
        2.0 * unit - 1.0
    }

    fn solid(g: f64, extra: f64) -> StencilLayer {
        StencilLayer {
            kind: StencilLayerKind::Solid,
            gx: g,
            gy: 0.8 * g,
            adv: 0.0,
            diag_extra: extra,
        }
    }

    fn cavity(adv: f64) -> StencilLayer {
        StencilLayer {
            kind: StencilLayerKind::Cavity,
            gx: 0.0,
            gy: 0.0,
            adv,
            diag_extra: 0.0,
        }
    }

    fn dirichlet() -> StencilLayer {
        StencilLayer {
            kind: StencilLayerKind::DirichletCavity,
            gx: 0.0,
            gy: 0.0,
            adv: 0.0,
            diag_extra: 0.0,
        }
    }

    /// A 4-tier liquid-cooled stack slice: solid / cavity / solid / solid
    /// with a wall skip through the cavity and a lumped sink on top.
    fn liquid_stack(nx: usize, ny: usize, transient: bool) -> StencilOperator {
        let extra = if transient { 2.5e-3 } else { 0.0 };
        StencilOperator::new(
            GridShape {
                nx,
                ny,
                nz: 4,
                extra: 1,
            },
            vec![
                solid(1.7, extra),
                cavity(0.45),
                solid(2.1, 1.3 * extra),
                solid(0.9, 0.7 * extra),
            ],
            vec![
                StencilInterface::symmetric(0.31),
                StencilInterface::symmetric(0.27),
                StencilInterface::symmetric(1.9),
            ],
            vec![0.0, 0.12, 0.0, 0.0],
            Some(StencilSink {
                g_top: 3.4,
                lumped: 11.0,
                diag_extra: if transient { 0.8 } else { 0.0 },
            }),
        )
    }

    /// A stack whose cavity is a Dirichlet (two-phase) layer: one-sided
    /// interface couplings into the cavity column, identity cavity rows.
    fn dirichlet_stack(nx: usize, ny: usize) -> StencilOperator {
        StencilOperator::new(
            GridShape {
                nx,
                ny,
                nz: 3,
                extra: 1,
            },
            vec![solid(1.1, 0.0), dirichlet(), solid(1.4, 0.0)],
            vec![
                StencilInterface {
                    lower: 0.0,
                    upper: 0.62,
                },
                StencilInterface {
                    lower: 0.55,
                    upper: 0.0,
                },
            ],
            vec![0.0, 0.09, 0.0],
            Some(StencilSink {
                g_top: 2.2,
                lumped: 7.5,
                diag_extra: 0.0,
            }),
        )
    }

    /// Draws a test vector with exact zeros sprinkled in (every fifth
    /// entry, plus one negative zero) to exercise the column-skip
    /// predicate both forms share.
    fn seeded_vector(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        let mut x: Vec<f64> = (0..n).map(|_| lcg(&mut state)).collect();
        for (i, v) in x.iter_mut().enumerate() {
            if i % 5 == 0 {
                *v = 0.0;
            }
        }
        if n > 3 {
            x[3] = -0.0;
        }
        x
    }

    fn assert_bitwise_matvec(op: &StencilOperator, seed: u64) {
        let a = op.assemble();
        let n = op.shape().n();
        assert_eq!(a.nrows(), n);
        let x = seeded_vector(n, seed);
        let mut y_stencil = vec![f64::NAN; n];
        let mut y_csc = vec![f64::NAN; n];
        op.matvec_into(&x, &mut y_stencil);
        a.matvec_into(&x, &mut y_csc);
        for (i, (s, c)) in y_stencil.iter().zip(&y_csc).enumerate() {
            assert_eq!(
                s.to_bits(),
                c.to_bits(),
                "row {i}: stencil {s:e} != assembled {c:e}"
            );
        }
    }

    #[test]
    fn matvec_is_bit_identical_to_assembled_csc() {
        for (i, op) in [
            liquid_stack(5, 3, false),
            liquid_stack(5, 3, true),
            liquid_stack(1, 4, true), // nx == 1: no lateral-x, no advection entries
            liquid_stack(6, 1, false), // ny == 1: no lateral-y entries
            dirichlet_stack(4, 3),
        ]
        .iter()
        .enumerate()
        {
            for seed in [1u64, 77, 2026] {
                assert_bitwise_matvec(op, seed + i as u64);
            }
        }
    }

    #[test]
    fn max_abs_is_bit_identical_to_assembled_fold() {
        for op in [
            liquid_stack(5, 3, true),
            liquid_stack(1, 4, false),
            liquid_stack(6, 1, true),
            dirichlet_stack(4, 3),
        ] {
            let a = op.assemble();
            assert_eq!(
                LinearOperator::max_abs(&op).to_bits(),
                LinearOperator::max_abs(&a).to_bits()
            );
        }
    }

    #[test]
    fn assembled_structure_matches_the_physics() {
        let op = liquid_stack(4, 3, false);
        let a = op.assemble();
        let nxy = 12;
        // Cavity layer (z = 1): upwind advection couples cell (1,0,1) to
        // its upstream neighbour only — structurally nonsymmetric.
        let c = nxy + 1;
        assert_eq!(a.get(c, c - 1), -0.45, "downstream row, upstream column");
        assert_eq!(a.get(c - 1, c), 0.0, "no reverse advective coupling");
        // No lateral conduction within the cavity.
        assert_eq!(a.get(c, c + 4), 0.0);
        // Wall skip through the cavity couples z=0 and z=2 directly.
        assert_eq!(a.get(1, 1 + 2 * nxy), -0.12);
        assert_eq!(a.get(1 + 2 * nxy, 1), -0.12);
        // Sink: every top-layer cell couples symmetrically to the last
        // node.
        let s = op.shape().cells();
        let top0 = 3 * nxy;
        assert_eq!(a.get(s, top0), -3.4);
        assert_eq!(a.get(top0, s), -3.4);
        assert_eq!(a.get(s, s), 11.0 + 12.0 * 3.4);
        // Solid lateral conduction is symmetric.
        assert_eq!(a.get(0, 1), -1.7);
        assert_eq!(a.get(1, 0), -1.7);
    }

    #[test]
    fn dirichlet_rows_are_identity_with_one_sided_couplings() {
        let op = dirichlet_stack(4, 3);
        let a = op.assemble();
        let nxy = 12;
        for cell in nxy..2 * nxy {
            // The cavity row is exactly [0.. 1 ..0].
            for col in 0..a.ncols() {
                let expect = if col == cell { 1.0 } else { 0.0 };
                assert_eq!(a.get(cell, col), expect, "row {cell}, col {col}");
            }
            // ...while the neighbouring solid rows still reach in.
            assert_eq!(a.get(cell - nxy, cell), -0.62, "below couples into cavity");
            assert_eq!(a.get(cell + nxy, cell), -0.55, "above couples into cavity");
        }
    }

    #[test]
    fn row_sums_reduce_to_source_and_storage_terms() {
        // A·1: conduction/convection terms cancel per row, leaving the
        // C/Δt shifts, the advective inlet excess, and the sink's
        // ambient-side conductance.
        let op = liquid_stack(4, 3, true);
        let n = op.shape().n();
        let ones = vec![1.0; n];
        let mut y = vec![0.0; n];
        op.matvec_into(&ones, &mut y);
        let nxy = 12;
        let layers = op.layers();
        for (c, &v) in y.iter().enumerate().take(op.shape().cells()) {
            let z = c / nxy;
            let ix = c % 4;
            let mut expect = layers[z].diag_extra;
            if layers[z].kind == StencilLayerKind::Cavity && ix == 0 {
                expect += layers[z].adv; // inlet upstream term lives on the RHS
            }
            assert!(
                (v - expect).abs() <= 1e-12 * op.max_abs(),
                "row {c}: got {v}, expected {expect}"
            );
        }
        let sink = op.sink().unwrap();
        assert!((y[n - 1] - (sink.lumped + sink.diag_extra)).abs() <= 1e-12 * op.max_abs());
    }

    #[test]
    fn coarsening_rescales_couplings_for_the_quadrupled_cell_area() {
        let fine = liquid_stack(8, 6, true);
        let coarse = fine.coarsen().expect("8x6 coarsens");
        assert_eq!(
            coarse.shape(),
            GridShape {
                nx: 4,
                ny: 3,
                nz: 4,
                extra: 1
            }
        );
        for (f, c) in fine.layers().iter().zip(coarse.layers()) {
            assert_eq!(c.kind, f.kind);
            assert_eq!(c.gx, f.gx, "lateral conductance is scale-invariant");
            assert_eq!(c.gy, f.gy);
            assert_eq!(c.adv, 2.0 * f.adv, "advection scales with channel count");
            assert_eq!(
                c.diag_extra,
                4.0 * f.diag_extra,
                "capacitance scales with area"
            );
        }
        for (f, c) in fine.interfaces().iter().zip(coarse.interfaces()) {
            assert_eq!(c.lower, 4.0 * f.lower);
            assert_eq!(c.upper, 4.0 * f.upper);
        }
        for (f, c) in fine.walls().iter().zip(coarse.walls()) {
            assert_eq!(*c, 4.0 * f);
        }
        let (fs, cs) = (fine.sink().unwrap(), coarse.sink().unwrap());
        assert_eq!(cs.g_top, 4.0 * fs.g_top);
        assert_eq!(cs.lumped, fs.lumped, "the lumped node does not coarsen");
        assert_eq!(cs.diag_extra, fs.diag_extra);
        // The coarse operator keeps the bit-identity contract too.
        assert_bitwise_matvec(&coarse, 11);
        // Coarsening stops once an in-plane dimension turns odd.
        assert!(coarse.coarsen().is_none(), "4x3 has an odd axis");
    }

    #[test]
    fn coarsen_refuses_odd_or_degenerate_shapes() {
        assert!(liquid_stack(5, 4, false).coarsen().is_none(), "odd nx");
        assert!(liquid_stack(4, 3, false).coarsen().is_none(), "odd ny");
        assert!(liquid_stack(1, 4, false).coarsen().is_none(), "nx below 2");
    }

    #[test]
    fn constant_diag_shift_moves_rows_uniformly() {
        // Transient vs steady operators differ exactly by C/Δt on the
        // diagonal: A_t·x − A_s·x == diag_extra·x per row.
        let steady = liquid_stack(4, 3, false);
        let transient = liquid_stack(4, 3, true);
        let n = steady.shape().n();
        let x = seeded_vector(n, 5);
        let mut ys = vec![0.0; n];
        let mut yt = vec![0.0; n];
        steady.matvec_into(&x, &mut ys);
        transient.matvec_into(&x, &mut yt);
        let nxy = 12;
        for c in 0..steady.shape().cells() {
            let extra = transient.layers()[c / nxy].diag_extra;
            assert!(
                ((yt[c] - ys[c]) - extra * x[c]).abs() <= 1e-12 * transient.max_abs(),
                "cell {c}"
            );
        }
    }
}
