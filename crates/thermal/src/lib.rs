//! Compact transient thermal model of 3D stacks with inter-tier
//! micro-channel liquid cooling — the 3D-ICE-style simulator (§II.D,
//! paper ref. \[17]) the CMOSAIC experiments run on.
//!
//! # Model
//!
//! Each stack layer is discretised into `nx × ny` finite-volume cells; the
//! stack becomes an RC network:
//!
//! * **Solid cells** exchange heat with their six neighbours through
//!   series-connected half-cell conductances and store heat in their
//!   volumetric capacitance.
//! * **Cavity cells** are porous-media-homogenised micro-channel cells: a
//!   fluid node exchanges heat with the layers above and below through a
//!   convective conductance `h·A_eff` (with `A_eff` including fin area at
//!   near-unit fin efficiency), the silicon walls add a parallel
//!   through-conductance between the neighbouring layers, and the coolant
//!   *advects* heat downstream with coefficient `ṁ·c_p` — the nonsymmetric
//!   coupling that distinguishes liquid-cooled stacks
//!   ([`AdvectionScheme::Upwind`] by default, the 3D-ICE linear-outlet
//!   profile as an option).
//! * **Air-cooled stacks** attach a lumped sink node (Table I: 10 W/K,
//!   140 J/K) above the top layer, grounded at the 45 °C ambient.
//!
//! Steady state solves `G·T = P`; transients use backward Euler
//! `(C/Δt + G)·T⁺ = C/Δt·T + P`.
//!
//! # Solver architecture: symbolic/numeric split + incremental assembly
//!
//! The sparsity pattern of the RC network is fixed by (stack, grid), so
//! the model separates what changes from what does not:
//!
//! * the flow-independent skeleton (conduction, wall through-paths, sink,
//!   one capacitance-diagonal slot per node) is assembled **once** at
//!   first solve, together with a triplet→CSC scatter map;
//! * every operating-point change — a new flow rate, a new transient Δt,
//!   each sweep of the two-phase fixed-point loop — is an O(nnz) value
//!   rewrite into the existing CSC operator;
//! * exactly **one full pivoting factorisation** is performed per model
//!   (per sparsity pattern: single-phase and two-phase operators differ),
//!   capturing a `SymbolicLu`; every later operator is produced by numeric
//!   refactorisation over that frozen pattern — the same trick 3D-ICE
//!   obtains by linking SuperLU. If a refactorisation trips the
//!   pivot-growth guard (it cannot for these diagonally-dominant
//!   operators under physical parameters, but the fallback is load-bearing
//!   for robustness), the model transparently re-pivots and re-captures
//!   the symbolic analysis.
//!
//! Factorised operators are held in small bounded LRU caches (one steady,
//! one transient), so a controller sweeping the discrete pump levels pays
//! solve-only cost at revisited operating points while continuous
//! modulation cannot grow memory without bound.
//! [`ThermalModel::solver_stats`] and [`ThermalModel::cached_operators`]
//! expose the full/refactor/fallback counters and cache evictions.
//!
//! # Solver backends
//!
//! [`ThermalParams::solver`] selects how each cached operator is solved:
//!
//! * [`SolverBackend::DirectLu`] (default) — the split direct solver
//!   described above. Fastest at the paper's 12×12-per-layer grids.
//! * [`SolverBackend::IterativeIlu0`] — ILU(0)-preconditioned BiCGSTAB.
//!   The preconditioner reuses the operator's own sparsity pattern (zero
//!   fill), so cost and memory stay O(nnz) as the grid refines — the
//!   regime where direct-LU fill becomes the bottleneck (see
//!   `BENCH_iterative.json` for the measured crossover). The symbolic
//!   ILU(0) analysis is performed once per model; later operating points
//!   refresh only the factor values
//!   ([`SolverStats::ilu_refreshes`](crate::SolverStats::ilu_refreshes)).
//! * [`SolverBackend::IterativeMg`] — BiCGSTAB over the **matrix-free**
//!   [`StencilOperator`], preconditioned by a geometric multigrid V-cycle
//!   built by re-discretising the stack physics on 2×-coarser in-plane
//!   grids. The fine level is never assembled: the operator is O(nz)
//!   scalars applied straight from the grid geometry (bit-identical to
//!   the assembled CSC product — the `LinearOperator` contract), so
//!   per-operating-point setup cost is independent of nnz, and iteration
//!   counts stay resolution-independent where ILU(0)'s local error
//!   reduction degrades with refinement. Only the small coarsest level is
//!   assembled and LU-factored (reusing a frozen symbolic analysis across
//!   operating points).
//!
//! **Fallback contract.** The iterative backends never fail where the
//! direct backend would succeed: on BiCGSTAB `Breakdown`/`NoConvergence`
//! (or an ILU(0) construction failure) the model transparently re-solves
//! through direct LU — factorising that operator lazily, once — and
//! counts the event in [`SolverStats::iterative_fallbacks`]. The
//! multigrid backend additionally falls back at operator *build* when the
//! grid cannot coarsen (odd in-plane dimensions) or the coarse operator
//! is singular, counted the same way, so every grid is solvable under
//! every backend. All backends run through the same persistent workspace,
//! so the warm path stays allocation-free either way, and each backend is
//! bit-reproducible across runs and thread counts (the backends agree
//! with each other to the configured iteration tolerance, not bitwise).
//! Iterative solves start cold by default; [`ThermalParams::warm_start`]
//! opts into seeding them from the previous temperature state (fewer
//! iterations, same tolerance, history-dependent trajectories).
//!
//! # Zero-allocation hot path and analysis sharing
//!
//! Every model owns a persistent workspace (operator values, RHS, the
//! transient ping-pong state buffer, dense refactorisation scratch and
//! the triangular-solve scratch). [`ThermalModel::step_into`] and the
//! internally workspace-routed steady solves reuse it, so once an
//! operating point's operator is cached the warm path performs **zero
//! heap allocation per solve** — observable through
//! [`SolverStats::workspace_grows`] (flat when warm) and
//! [`SolverStats::in_place_solves`]. Cache keys are exact bit patterns of
//! (flow, Δt), so nearby-but-distinct operating points never alias.
//!
//! For batch sweeps over many same-(stack, grid) models,
//! [`ThermalModel::export_analysis`] snapshots the frozen symbolic
//! analyses as an `Arc`-shared [`SharedAnalysis`] and
//! [`ThermalModel::adopt_analysis`] installs them in a fresh model, which
//! then skips its own full pivoting factorisation entirely (pattern
//! verified on every refactorisation, with a safe local fallback).
//!
//! # Example
//!
//! ```
//! use cmosaic_floorplan::{stack::presets, GridSpec};
//! use cmosaic_thermal::{ThermalModel, ThermalParams};
//! use cmosaic_materials::units::VolumetricFlow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = presets::liquid_cooled_mpsoc(2)?;
//! let grid = GridSpec::new(12, 12)?;
//! let mut model = ThermalModel::new(&stack, grid, ThermalParams::default())?;
//! model.set_flow_rate(VolumetricFlow::from_ml_per_min(32.3))?;
//! // 30 W on the core tier, 10 W on the cache tier, uniformly spread.
//! let powers = vec![
//!     vec![30.0 / 144.0; 144],
//!     vec![10.0 / 144.0; 144],
//! ];
//! let field = model.steady_state(&powers)?;
//! assert!(field.max().to_celsius().0 < 85.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod field;
pub mod model;
pub mod params;
pub mod stencil;

pub use field::TemperatureField;
pub use model::{
    CacheStats, PatternSignature, SharedAnalysis, SolverStats, ThermalModel, TwoPhaseSummary,
};
pub use params::{AdvectionScheme, Coolant, SolverBackend, ThermalParams, TwoPhaseCoolant};
pub use stencil::{StencilInterface, StencilLayer, StencilLayerKind, StencilOperator, StencilSink};

use cmosaic_floorplan::FloorplanError;
use cmosaic_materials::MaterialError;
use cmosaic_sparse::SparseError;

use std::error::Error;
use std::fmt;

/// Errors produced by the thermal model.
#[derive(Debug)]
pub enum ThermalError {
    /// The stack description cannot be simulated (e.g. adjacent cavities).
    UnsupportedStack {
        /// Explanation.
        detail: String,
    },
    /// A power input had the wrong shape.
    PowerShape {
        /// Explanation.
        detail: String,
    },
    /// A flow rate was requested on an air-cooled stack, was non-positive,
    /// or produced an invalid channel operating point.
    InvalidFlow {
        /// Explanation.
        detail: String,
    },
    /// A non-positive timestep was requested.
    InvalidTimestep {
        /// The offending Δt.
        dt: f64,
    },
    /// The two-phase coolant dried out inside a cavity: the operating
    /// point cannot absorb the offered heat without exceeding the critical
    /// vapour quality.
    Dryout {
        /// Cavity layer index (bottom-up).
        cavity: usize,
        /// The quality reached at the worst channel exit.
        quality: f64,
    },
    /// The underlying linear solver failed.
    Solver(SparseError),
    /// A material-property query failed.
    Material(MaterialError),
    /// A floorplan/grid operation failed.
    Floorplan(FloorplanError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::UnsupportedStack { detail } => {
                write!(f, "unsupported stack: {detail}")
            }
            ThermalError::PowerShape { detail } => write!(f, "bad power input: {detail}"),
            ThermalError::InvalidFlow { detail } => write!(f, "invalid flow rate: {detail}"),
            ThermalError::InvalidTimestep { dt } => {
                write!(f, "timestep must be positive, got {dt}")
            }
            ThermalError::Dryout { cavity, quality } => write!(
                f,
                "two-phase dry-out in cavity {cavity} (quality {quality:.3})"
            ),
            ThermalError::Solver(e) => write!(f, "linear solver failed: {e}"),
            ThermalError::Material(e) => write!(f, "material property error: {e}"),
            ThermalError::Floorplan(e) => write!(f, "floorplan error: {e}"),
        }
    }
}

impl Error for ThermalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ThermalError::Solver(e) => Some(e),
            ThermalError::Material(e) => Some(e),
            ThermalError::Floorplan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for ThermalError {
    fn from(e: SparseError) -> Self {
        ThermalError::Solver(e)
    }
}

impl From<MaterialError> for ThermalError {
    fn from(e: MaterialError) -> Self {
        ThermalError::Material(e)
    }
}

impl From<FloorplanError> for ThermalError {
    fn from(e: FloorplanError) -> Self {
        ThermalError::Floorplan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = ThermalError::InvalidTimestep { dt: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e: ThermalError = SparseError::Singular { column: 2 }.into();
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ThermalError>();
    }
}
