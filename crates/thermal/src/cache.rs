//! Bounded least-recently-used cache for factorised operators.
//!
//! A run-time controller modulating the pump continuously can visit an
//! unbounded set of (flow, Δt) operating points; an unbounded map of
//! factorisations is a slow memory leak. Operators are cheap to rebuild
//! through the numeric refactorisation path, so a small LRU loses little
//! on eviction.

/// A fixed-capacity LRU map over a small number of entries.
///
/// Backed by a `Vec` kept in recency order (most recent last): with the
/// single-digit capacities used here, linear scans beat any pointer-chasing
/// scheme.
#[derive(Debug, Clone)]
pub(crate) struct LruCache<K: Eq + Copy, V> {
    capacity: usize,
    entries: Vec<(K, V)>,
    evictions: u64,
}

impl<K: Eq + Copy, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            evictions: 0,
        }
    }

    /// Looks up `k`, marking it most recently used. A hit on the
    /// already-most-recent entry (the common case in a control loop that
    /// dwells on one operating point) skips the recency move entirely.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        self.get_mut(k).map(|v| &*v)
    }

    /// Looks up `k` without touching recency (usable through `&self`).
    pub fn peek(&self, k: &K) -> Option<&V> {
        self.entries
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v)
    }

    /// Mutable lookup, marking `k` most recently used.
    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        let idx = self.entries.iter().position(|(key, _)| key == k)?;
        if idx + 1 != self.entries.len() {
            self.entries[idx..].rotate_left(1);
        }
        Some(&mut self.entries.last_mut().expect("non-empty after hit").1)
    }

    /// Inserts or replaces `k`, evicting the least recently used entry if
    /// the cache is full.
    pub fn insert(&mut self, k: K, v: V) {
        if let Some(idx) = self.entries.iter().position(|(key, _)| *key == k) {
            self.entries.remove(idx);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push((k, v));
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Total evictions since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 becomes most recent
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.peek(&2).is_none());
        assert_eq!(c.peek(&1), Some(&"a"));
        assert_eq!(c.peek(&3), Some(&"c"));
    }

    #[test]
    fn reinsert_updates_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.peek(&1), Some(&11));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = LruCache::<u32, ()>::new(0);
    }
}
